# Empty compiler generated dependencies file for fig1_6_gshare_scaling.
# This may be replaced when dependencies are built.
