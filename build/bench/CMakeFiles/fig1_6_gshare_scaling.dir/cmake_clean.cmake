file(REMOVE_RECURSE
  "CMakeFiles/fig1_6_gshare_scaling.dir/fig1_6_gshare_scaling.cpp.o"
  "CMakeFiles/fig1_6_gshare_scaling.dir/fig1_6_gshare_scaling.cpp.o.d"
  "fig1_6_gshare_scaling"
  "fig1_6_gshare_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1_6_gshare_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
