file(REMOVE_RECURSE
  "CMakeFiles/ablation_alias_selection.dir/ablation_alias_selection.cpp.o"
  "CMakeFiles/ablation_alias_selection.dir/ablation_alias_selection.cpp.o.d"
  "ablation_alias_selection"
  "ablation_alias_selection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_alias_selection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
