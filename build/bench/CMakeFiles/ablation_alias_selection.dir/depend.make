# Empty dependencies file for ablation_alias_selection.
# This may be replaced when dependencies are built.
