# Empty compiler generated dependencies file for microbench_predictors.
# This may be replaced when dependencies are built.
