file(REMOVE_RECURSE
  "CMakeFiles/microbench_predictors.dir/microbench_predictors.cpp.o"
  "CMakeFiles/microbench_predictors.dir/microbench_predictors.cpp.o.d"
  "microbench_predictors"
  "microbench_predictors.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/microbench_predictors.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
