file(REMOVE_RECURSE
  "CMakeFiles/table3_2bcgskew_small.dir/table3_2bcgskew_small.cpp.o"
  "CMakeFiles/table3_2bcgskew_small.dir/table3_2bcgskew_small.cpp.o.d"
  "table3_2bcgskew_small"
  "table3_2bcgskew_small.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_2bcgskew_small.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
