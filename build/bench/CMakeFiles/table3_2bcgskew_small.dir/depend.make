# Empty dependencies file for table3_2bcgskew_small.
# This may be replaced when dependencies are built.
