file(REMOVE_RECURSE
  "CMakeFiles/ablation_history_lengths.dir/ablation_history_lengths.cpp.o"
  "CMakeFiles/ablation_history_lengths.dir/ablation_history_lengths.cpp.o.d"
  "ablation_history_lengths"
  "ablation_history_lengths.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_history_lengths.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
