# Empty compiler generated dependencies file for ablation_history_lengths.
# This may be replaced when dependencies are built.
