# Empty dependencies file for aliasing_loss.
# This may be replaced when dependencies are built.
