file(REMOVE_RECURSE
  "CMakeFiles/aliasing_loss.dir/aliasing_loss.cpp.o"
  "CMakeFiles/aliasing_loss.dir/aliasing_loss.cpp.o.d"
  "aliasing_loss"
  "aliasing_loss.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aliasing_loss.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
