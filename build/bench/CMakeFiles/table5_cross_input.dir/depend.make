# Empty dependencies file for table5_cross_input.
# This may be replaced when dependencies are built.
