file(REMOVE_RECURSE
  "CMakeFiles/table5_cross_input.dir/table5_cross_input.cpp.o"
  "CMakeFiles/table5_cross_input.dir/table5_cross_input.cpp.o.d"
  "table5_cross_input"
  "table5_cross_input.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table5_cross_input.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
