# Empty dependencies file for table4_ghist_shift.
# This may be replaced when dependencies are built.
