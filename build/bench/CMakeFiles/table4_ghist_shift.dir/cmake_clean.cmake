file(REMOVE_RECURSE
  "CMakeFiles/table4_ghist_shift.dir/table4_ghist_shift.cpp.o"
  "CMakeFiles/table4_ghist_shift.dir/table4_ghist_shift.cpp.o.d"
  "table4_ghist_shift"
  "table4_ghist_shift.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table4_ghist_shift.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
