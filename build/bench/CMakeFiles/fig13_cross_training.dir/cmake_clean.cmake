file(REMOVE_RECURSE
  "CMakeFiles/fig13_cross_training.dir/fig13_cross_training.cpp.o"
  "CMakeFiles/fig13_cross_training.dir/fig13_cross_training.cpp.o.d"
  "fig13_cross_training"
  "fig13_cross_training.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_cross_training.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
