# Empty compiler generated dependencies file for fig13_cross_training.
# This may be replaced when dependencies are built.
