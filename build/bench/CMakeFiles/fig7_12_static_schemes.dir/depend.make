# Empty dependencies file for fig7_12_static_schemes.
# This may be replaced when dependencies are built.
