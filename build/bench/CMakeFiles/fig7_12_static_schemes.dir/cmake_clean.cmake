file(REMOVE_RECURSE
  "CMakeFiles/fig7_12_static_schemes.dir/fig7_12_static_schemes.cpp.o"
  "CMakeFiles/fig7_12_static_schemes.dir/fig7_12_static_schemes.cpp.o.d"
  "fig7_12_static_schemes"
  "fig7_12_static_schemes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_12_static_schemes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
