# Empty compiler generated dependencies file for ablation_iterative.
# This may be replaced when dependencies are built.
