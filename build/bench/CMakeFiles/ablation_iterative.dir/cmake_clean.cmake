file(REMOVE_RECURSE
  "CMakeFiles/ablation_iterative.dir/ablation_iterative.cpp.o"
  "CMakeFiles/ablation_iterative.dir/ablation_iterative.cpp.o.d"
  "ablation_iterative"
  "ablation_iterative.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_iterative.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
