file(REMOVE_RECURSE
  "CMakeFiles/bpsim_tests.dir/test_args.cc.o"
  "CMakeFiles/bpsim_tests.dir/test_args.cc.o.d"
  "CMakeFiles/bpsim_tests.dir/test_core.cc.o"
  "CMakeFiles/bpsim_tests.dir/test_core.cc.o.d"
  "CMakeFiles/bpsim_tests.dir/test_extensions.cc.o"
  "CMakeFiles/bpsim_tests.dir/test_extensions.cc.o.d"
  "CMakeFiles/bpsim_tests.dir/test_integration.cc.o"
  "CMakeFiles/bpsim_tests.dir/test_integration.cc.o.d"
  "CMakeFiles/bpsim_tests.dir/test_kernels.cc.o"
  "CMakeFiles/bpsim_tests.dir/test_kernels.cc.o.d"
  "CMakeFiles/bpsim_tests.dir/test_policies.cc.o"
  "CMakeFiles/bpsim_tests.dir/test_policies.cc.o.d"
  "CMakeFiles/bpsim_tests.dir/test_predictor.cc.o"
  "CMakeFiles/bpsim_tests.dir/test_predictor.cc.o.d"
  "CMakeFiles/bpsim_tests.dir/test_profile.cc.o"
  "CMakeFiles/bpsim_tests.dir/test_profile.cc.o.d"
  "CMakeFiles/bpsim_tests.dir/test_property.cc.o"
  "CMakeFiles/bpsim_tests.dir/test_property.cc.o.d"
  "CMakeFiles/bpsim_tests.dir/test_staticsel.cc.o"
  "CMakeFiles/bpsim_tests.dir/test_staticsel.cc.o.d"
  "CMakeFiles/bpsim_tests.dir/test_support.cc.o"
  "CMakeFiles/bpsim_tests.dir/test_support.cc.o.d"
  "CMakeFiles/bpsim_tests.dir/test_trace.cc.o"
  "CMakeFiles/bpsim_tests.dir/test_trace.cc.o.d"
  "CMakeFiles/bpsim_tests.dir/test_workflow.cc.o"
  "CMakeFiles/bpsim_tests.dir/test_workflow.cc.o.d"
  "CMakeFiles/bpsim_tests.dir/test_workload.cc.o"
  "CMakeFiles/bpsim_tests.dir/test_workload.cc.o.d"
  "bpsim_tests"
  "bpsim_tests.pdb"
  "bpsim_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bpsim_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
