# Empty compiler generated dependencies file for bpsim_tests.
# This may be replaced when dependencies are built.
