
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_args.cc" "tests/CMakeFiles/bpsim_tests.dir/test_args.cc.o" "gcc" "tests/CMakeFiles/bpsim_tests.dir/test_args.cc.o.d"
  "/root/repo/tests/test_core.cc" "tests/CMakeFiles/bpsim_tests.dir/test_core.cc.o" "gcc" "tests/CMakeFiles/bpsim_tests.dir/test_core.cc.o.d"
  "/root/repo/tests/test_extensions.cc" "tests/CMakeFiles/bpsim_tests.dir/test_extensions.cc.o" "gcc" "tests/CMakeFiles/bpsim_tests.dir/test_extensions.cc.o.d"
  "/root/repo/tests/test_integration.cc" "tests/CMakeFiles/bpsim_tests.dir/test_integration.cc.o" "gcc" "tests/CMakeFiles/bpsim_tests.dir/test_integration.cc.o.d"
  "/root/repo/tests/test_kernels.cc" "tests/CMakeFiles/bpsim_tests.dir/test_kernels.cc.o" "gcc" "tests/CMakeFiles/bpsim_tests.dir/test_kernels.cc.o.d"
  "/root/repo/tests/test_policies.cc" "tests/CMakeFiles/bpsim_tests.dir/test_policies.cc.o" "gcc" "tests/CMakeFiles/bpsim_tests.dir/test_policies.cc.o.d"
  "/root/repo/tests/test_predictor.cc" "tests/CMakeFiles/bpsim_tests.dir/test_predictor.cc.o" "gcc" "tests/CMakeFiles/bpsim_tests.dir/test_predictor.cc.o.d"
  "/root/repo/tests/test_profile.cc" "tests/CMakeFiles/bpsim_tests.dir/test_profile.cc.o" "gcc" "tests/CMakeFiles/bpsim_tests.dir/test_profile.cc.o.d"
  "/root/repo/tests/test_property.cc" "tests/CMakeFiles/bpsim_tests.dir/test_property.cc.o" "gcc" "tests/CMakeFiles/bpsim_tests.dir/test_property.cc.o.d"
  "/root/repo/tests/test_staticsel.cc" "tests/CMakeFiles/bpsim_tests.dir/test_staticsel.cc.o" "gcc" "tests/CMakeFiles/bpsim_tests.dir/test_staticsel.cc.o.d"
  "/root/repo/tests/test_support.cc" "tests/CMakeFiles/bpsim_tests.dir/test_support.cc.o" "gcc" "tests/CMakeFiles/bpsim_tests.dir/test_support.cc.o.d"
  "/root/repo/tests/test_trace.cc" "tests/CMakeFiles/bpsim_tests.dir/test_trace.cc.o" "gcc" "tests/CMakeFiles/bpsim_tests.dir/test_trace.cc.o.d"
  "/root/repo/tests/test_workflow.cc" "tests/CMakeFiles/bpsim_tests.dir/test_workflow.cc.o" "gcc" "tests/CMakeFiles/bpsim_tests.dir/test_workflow.cc.o.d"
  "/root/repo/tests/test_workload.cc" "tests/CMakeFiles/bpsim_tests.dir/test_workload.cc.o" "gcc" "tests/CMakeFiles/bpsim_tests.dir/test_workload.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/bpsim_core.dir/DependInfo.cmake"
  "/root/repo/build/src/predictor/CMakeFiles/bpsim_predictor.dir/DependInfo.cmake"
  "/root/repo/build/src/staticsel/CMakeFiles/bpsim_staticsel.dir/DependInfo.cmake"
  "/root/repo/build/src/profile/CMakeFiles/bpsim_profile.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/bpsim_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/bpsim_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/bpsim_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
