file(REMOVE_RECURSE
  "CMakeFiles/predictor_zoo.dir/predictor_zoo.cpp.o"
  "CMakeFiles/predictor_zoo.dir/predictor_zoo.cpp.o.d"
  "predictor_zoo"
  "predictor_zoo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/predictor_zoo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
