file(REMOVE_RECURSE
  "CMakeFiles/branch_report.dir/branch_report.cpp.o"
  "CMakeFiles/branch_report.dir/branch_report.cpp.o.d"
  "branch_report"
  "branch_report.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/branch_report.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
