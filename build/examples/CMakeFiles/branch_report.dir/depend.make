# Empty dependencies file for branch_report.
# This may be replaced when dependencies are built.
