file(REMOVE_RECURSE
  "libbpsim_core.a"
)
