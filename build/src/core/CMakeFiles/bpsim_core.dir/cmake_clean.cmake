file(REMOVE_RECURSE
  "CMakeFiles/bpsim_core.dir/combined_predictor.cc.o"
  "CMakeFiles/bpsim_core.dir/combined_predictor.cc.o.d"
  "CMakeFiles/bpsim_core.dir/engine.cc.o"
  "CMakeFiles/bpsim_core.dir/engine.cc.o.d"
  "CMakeFiles/bpsim_core.dir/experiment.cc.o"
  "CMakeFiles/bpsim_core.dir/experiment.cc.o.d"
  "CMakeFiles/bpsim_core.dir/iterative.cc.o"
  "CMakeFiles/bpsim_core.dir/iterative.cc.o.d"
  "libbpsim_core.a"
  "libbpsim_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bpsim_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
