
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/combined_predictor.cc" "src/core/CMakeFiles/bpsim_core.dir/combined_predictor.cc.o" "gcc" "src/core/CMakeFiles/bpsim_core.dir/combined_predictor.cc.o.d"
  "/root/repo/src/core/engine.cc" "src/core/CMakeFiles/bpsim_core.dir/engine.cc.o" "gcc" "src/core/CMakeFiles/bpsim_core.dir/engine.cc.o.d"
  "/root/repo/src/core/experiment.cc" "src/core/CMakeFiles/bpsim_core.dir/experiment.cc.o" "gcc" "src/core/CMakeFiles/bpsim_core.dir/experiment.cc.o.d"
  "/root/repo/src/core/iterative.cc" "src/core/CMakeFiles/bpsim_core.dir/iterative.cc.o" "gcc" "src/core/CMakeFiles/bpsim_core.dir/iterative.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/predictor/CMakeFiles/bpsim_predictor.dir/DependInfo.cmake"
  "/root/repo/build/src/profile/CMakeFiles/bpsim_profile.dir/DependInfo.cmake"
  "/root/repo/build/src/staticsel/CMakeFiles/bpsim_staticsel.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/bpsim_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/bpsim_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/bpsim_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
