
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/staticsel/selection.cc" "src/staticsel/CMakeFiles/bpsim_staticsel.dir/selection.cc.o" "gcc" "src/staticsel/CMakeFiles/bpsim_staticsel.dir/selection.cc.o.d"
  "/root/repo/src/staticsel/static_hint.cc" "src/staticsel/CMakeFiles/bpsim_staticsel.dir/static_hint.cc.o" "gcc" "src/staticsel/CMakeFiles/bpsim_staticsel.dir/static_hint.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/profile/CMakeFiles/bpsim_profile.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/bpsim_support.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/bpsim_trace.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
