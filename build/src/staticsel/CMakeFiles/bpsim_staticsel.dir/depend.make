# Empty dependencies file for bpsim_staticsel.
# This may be replaced when dependencies are built.
