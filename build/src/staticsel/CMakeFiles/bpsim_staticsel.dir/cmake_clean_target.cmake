file(REMOVE_RECURSE
  "libbpsim_staticsel.a"
)
