file(REMOVE_RECURSE
  "CMakeFiles/bpsim_staticsel.dir/selection.cc.o"
  "CMakeFiles/bpsim_staticsel.dir/selection.cc.o.d"
  "CMakeFiles/bpsim_staticsel.dir/static_hint.cc.o"
  "CMakeFiles/bpsim_staticsel.dir/static_hint.cc.o.d"
  "libbpsim_staticsel.a"
  "libbpsim_staticsel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bpsim_staticsel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
