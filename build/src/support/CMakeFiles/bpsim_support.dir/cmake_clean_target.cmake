file(REMOVE_RECURSE
  "libbpsim_support.a"
)
