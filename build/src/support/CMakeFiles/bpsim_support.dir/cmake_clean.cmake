file(REMOVE_RECURSE
  "CMakeFiles/bpsim_support.dir/args.cc.o"
  "CMakeFiles/bpsim_support.dir/args.cc.o.d"
  "CMakeFiles/bpsim_support.dir/random.cc.o"
  "CMakeFiles/bpsim_support.dir/random.cc.o.d"
  "CMakeFiles/bpsim_support.dir/skew.cc.o"
  "CMakeFiles/bpsim_support.dir/skew.cc.o.d"
  "CMakeFiles/bpsim_support.dir/stats.cc.o"
  "CMakeFiles/bpsim_support.dir/stats.cc.o.d"
  "libbpsim_support.a"
  "libbpsim_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bpsim_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
