# Empty dependencies file for bpsim_support.
# This may be replaced when dependencies are built.
