file(REMOVE_RECURSE
  "CMakeFiles/bpsim_predictor.dir/agree.cc.o"
  "CMakeFiles/bpsim_predictor.dir/agree.cc.o.d"
  "CMakeFiles/bpsim_predictor.dir/bimodal.cc.o"
  "CMakeFiles/bpsim_predictor.dir/bimodal.cc.o.d"
  "CMakeFiles/bpsim_predictor.dir/bimode.cc.o"
  "CMakeFiles/bpsim_predictor.dir/bimode.cc.o.d"
  "CMakeFiles/bpsim_predictor.dir/counter_table.cc.o"
  "CMakeFiles/bpsim_predictor.dir/counter_table.cc.o.d"
  "CMakeFiles/bpsim_predictor.dir/factory.cc.o"
  "CMakeFiles/bpsim_predictor.dir/factory.cc.o.d"
  "CMakeFiles/bpsim_predictor.dir/ghist.cc.o"
  "CMakeFiles/bpsim_predictor.dir/ghist.cc.o.d"
  "CMakeFiles/bpsim_predictor.dir/gselect.cc.o"
  "CMakeFiles/bpsim_predictor.dir/gselect.cc.o.d"
  "CMakeFiles/bpsim_predictor.dir/gshare.cc.o"
  "CMakeFiles/bpsim_predictor.dir/gshare.cc.o.d"
  "CMakeFiles/bpsim_predictor.dir/ideal_gshare.cc.o"
  "CMakeFiles/bpsim_predictor.dir/ideal_gshare.cc.o.d"
  "CMakeFiles/bpsim_predictor.dir/tournament.cc.o"
  "CMakeFiles/bpsim_predictor.dir/tournament.cc.o.d"
  "CMakeFiles/bpsim_predictor.dir/two_bc_gskew.cc.o"
  "CMakeFiles/bpsim_predictor.dir/two_bc_gskew.cc.o.d"
  "CMakeFiles/bpsim_predictor.dir/yags.cc.o"
  "CMakeFiles/bpsim_predictor.dir/yags.cc.o.d"
  "libbpsim_predictor.a"
  "libbpsim_predictor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bpsim_predictor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
