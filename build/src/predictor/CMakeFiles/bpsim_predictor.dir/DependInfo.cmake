
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/predictor/agree.cc" "src/predictor/CMakeFiles/bpsim_predictor.dir/agree.cc.o" "gcc" "src/predictor/CMakeFiles/bpsim_predictor.dir/agree.cc.o.d"
  "/root/repo/src/predictor/bimodal.cc" "src/predictor/CMakeFiles/bpsim_predictor.dir/bimodal.cc.o" "gcc" "src/predictor/CMakeFiles/bpsim_predictor.dir/bimodal.cc.o.d"
  "/root/repo/src/predictor/bimode.cc" "src/predictor/CMakeFiles/bpsim_predictor.dir/bimode.cc.o" "gcc" "src/predictor/CMakeFiles/bpsim_predictor.dir/bimode.cc.o.d"
  "/root/repo/src/predictor/counter_table.cc" "src/predictor/CMakeFiles/bpsim_predictor.dir/counter_table.cc.o" "gcc" "src/predictor/CMakeFiles/bpsim_predictor.dir/counter_table.cc.o.d"
  "/root/repo/src/predictor/factory.cc" "src/predictor/CMakeFiles/bpsim_predictor.dir/factory.cc.o" "gcc" "src/predictor/CMakeFiles/bpsim_predictor.dir/factory.cc.o.d"
  "/root/repo/src/predictor/ghist.cc" "src/predictor/CMakeFiles/bpsim_predictor.dir/ghist.cc.o" "gcc" "src/predictor/CMakeFiles/bpsim_predictor.dir/ghist.cc.o.d"
  "/root/repo/src/predictor/gselect.cc" "src/predictor/CMakeFiles/bpsim_predictor.dir/gselect.cc.o" "gcc" "src/predictor/CMakeFiles/bpsim_predictor.dir/gselect.cc.o.d"
  "/root/repo/src/predictor/gshare.cc" "src/predictor/CMakeFiles/bpsim_predictor.dir/gshare.cc.o" "gcc" "src/predictor/CMakeFiles/bpsim_predictor.dir/gshare.cc.o.d"
  "/root/repo/src/predictor/ideal_gshare.cc" "src/predictor/CMakeFiles/bpsim_predictor.dir/ideal_gshare.cc.o" "gcc" "src/predictor/CMakeFiles/bpsim_predictor.dir/ideal_gshare.cc.o.d"
  "/root/repo/src/predictor/tournament.cc" "src/predictor/CMakeFiles/bpsim_predictor.dir/tournament.cc.o" "gcc" "src/predictor/CMakeFiles/bpsim_predictor.dir/tournament.cc.o.d"
  "/root/repo/src/predictor/two_bc_gskew.cc" "src/predictor/CMakeFiles/bpsim_predictor.dir/two_bc_gskew.cc.o" "gcc" "src/predictor/CMakeFiles/bpsim_predictor.dir/two_bc_gskew.cc.o.d"
  "/root/repo/src/predictor/yags.cc" "src/predictor/CMakeFiles/bpsim_predictor.dir/yags.cc.o" "gcc" "src/predictor/CMakeFiles/bpsim_predictor.dir/yags.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/bpsim_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
