file(REMOVE_RECURSE
  "CMakeFiles/bpsim_workload.dir/behavior.cc.o"
  "CMakeFiles/bpsim_workload.dir/behavior.cc.o.d"
  "CMakeFiles/bpsim_workload.dir/cfg.cc.o"
  "CMakeFiles/bpsim_workload.dir/cfg.cc.o.d"
  "CMakeFiles/bpsim_workload.dir/kernels.cc.o"
  "CMakeFiles/bpsim_workload.dir/kernels.cc.o.d"
  "CMakeFiles/bpsim_workload.dir/specint.cc.o"
  "CMakeFiles/bpsim_workload.dir/specint.cc.o.d"
  "CMakeFiles/bpsim_workload.dir/synthetic_program.cc.o"
  "CMakeFiles/bpsim_workload.dir/synthetic_program.cc.o.d"
  "libbpsim_workload.a"
  "libbpsim_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bpsim_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
