
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workload/behavior.cc" "src/workload/CMakeFiles/bpsim_workload.dir/behavior.cc.o" "gcc" "src/workload/CMakeFiles/bpsim_workload.dir/behavior.cc.o.d"
  "/root/repo/src/workload/cfg.cc" "src/workload/CMakeFiles/bpsim_workload.dir/cfg.cc.o" "gcc" "src/workload/CMakeFiles/bpsim_workload.dir/cfg.cc.o.d"
  "/root/repo/src/workload/kernels.cc" "src/workload/CMakeFiles/bpsim_workload.dir/kernels.cc.o" "gcc" "src/workload/CMakeFiles/bpsim_workload.dir/kernels.cc.o.d"
  "/root/repo/src/workload/specint.cc" "src/workload/CMakeFiles/bpsim_workload.dir/specint.cc.o" "gcc" "src/workload/CMakeFiles/bpsim_workload.dir/specint.cc.o.d"
  "/root/repo/src/workload/synthetic_program.cc" "src/workload/CMakeFiles/bpsim_workload.dir/synthetic_program.cc.o" "gcc" "src/workload/CMakeFiles/bpsim_workload.dir/synthetic_program.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/trace/CMakeFiles/bpsim_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/bpsim_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
