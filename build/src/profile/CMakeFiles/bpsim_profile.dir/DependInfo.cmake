
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/profile/profile_db.cc" "src/profile/CMakeFiles/bpsim_profile.dir/profile_db.cc.o" "gcc" "src/profile/CMakeFiles/bpsim_profile.dir/profile_db.cc.o.d"
  "/root/repo/src/profile/repository.cc" "src/profile/CMakeFiles/bpsim_profile.dir/repository.cc.o" "gcc" "src/profile/CMakeFiles/bpsim_profile.dir/repository.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/trace/CMakeFiles/bpsim_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/bpsim_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
