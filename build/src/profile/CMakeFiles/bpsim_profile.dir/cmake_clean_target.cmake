file(REMOVE_RECURSE
  "libbpsim_profile.a"
)
