# Empty dependencies file for bpsim_profile.
# This may be replaced when dependencies are built.
