file(REMOVE_RECURSE
  "CMakeFiles/bpsim_profile.dir/profile_db.cc.o"
  "CMakeFiles/bpsim_profile.dir/profile_db.cc.o.d"
  "CMakeFiles/bpsim_profile.dir/repository.cc.o"
  "CMakeFiles/bpsim_profile.dir/repository.cc.o.d"
  "libbpsim_profile.a"
  "libbpsim_profile.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bpsim_profile.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
