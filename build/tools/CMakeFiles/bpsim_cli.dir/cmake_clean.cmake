file(REMOVE_RECURSE
  "CMakeFiles/bpsim_cli.dir/bpsim_cli.cpp.o"
  "CMakeFiles/bpsim_cli.dir/bpsim_cli.cpp.o.d"
  "bpsim_cli"
  "bpsim_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bpsim_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
