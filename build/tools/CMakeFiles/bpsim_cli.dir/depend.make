# Empty dependencies file for bpsim_cli.
# This may be replaced when dependencies are built.
