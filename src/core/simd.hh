/**
 * @file
 * Runtime CPU-feature dispatch for the batch replay kernels.
 *
 * The batch kernels are compiled twice from one portable source: a
 * baseline translation unit (scalar; auto-vectorized with NEON on
 * aarch64, where NEON is part of the baseline ISA) and, on x86-64, an
 * AVX2 translation unit. Which set runs is decided once per
 * simulation from the CPU's capabilities, the run options and the
 * BPSIM_SIMD environment override; results are bit-identical across
 * every level by construction (the kernels are integer-exact), which
 * tests/test_simd.cc pins differentially.
 */

#ifndef BPSIM_CORE_SIMD_HH
#define BPSIM_CORE_SIMD_HH

namespace bpsim
{

#if (defined(__x86_64__) || defined(_M_X64)) && \
    !defined(BPSIM_NO_AVX2_KERNELS)
#define BPSIM_HAVE_AVX2_KERNELS 1
#endif

/** Which replay kernel family a simulation runs. */
enum class SimdLevel
{
    /** Batch kernels disabled: the record-at-a-time PR-5 kernels run.
     * This is the differential reference path (--no-simd). */
    Off,

    /** Portable batch kernels from the baseline translation unit. */
    Scalar,

    /** Batch kernels from the AVX2 translation unit (x86-64 only). */
    Avx2,

    /** Baseline translation unit on aarch64, where the compiler
     * vectorizes the batch loops with baseline NEON. */
    Neon,
};

/** Best level the hardware this process runs on supports. */
SimdLevel detectSimdLevel();

/**
 * Level for a run with --simd/--no-simd resolved to @p enabled.
 *
 * The BPSIM_SIMD environment variable (off|scalar|avx2|neon)
 * overrides the flag when set to a known value: a supported level is
 * forced, an unsupported one (avx2 without CPU support, neon on
 * x86-64) falls back to Scalar, and unknown values are ignored. With
 * no override the result is detectSimdLevel() when @p enabled, Off
 * otherwise. The environment is consulted on every call so tests can
 * flip it mid-process.
 */
SimdLevel resolveSimdLevel(bool enabled);

/** Lower-case level name: "off", "scalar", "avx2" or "neon". */
const char *simdLevelName(SimdLevel level);

/** Nominal vector width in 32-bit lanes (1 for Off/Scalar). */
unsigned simdWidth(SimdLevel level);

} // namespace bpsim

#endif // BPSIM_CORE_SIMD_HH
