#include "core/iterative.hh"

#include "core/engine.hh"

namespace bpsim
{

IterativeResult
selectStaticIterative(SyntheticProgram &program,
                      const IterativeConfig &config)
{
    program.setInput(config.profileInput);
    return selectStaticIterative(static_cast<BranchStream &>(program),
                                 config);
}

IterativeResult
selectStaticIterative(BranchStream &profile_stream,
                      const IterativeConfig &config)
{
    IterativeResult result;

    for (unsigned round = 0; round < config.maxIterations; ++round) {
        // Profile the combined predictor with the hints accumulated
        // so far; hinted branches contribute outcomes but no dynamic
        // prediction statistics, so the factor test below only
        // considers still-dynamic branches.
        CombinedPredictor combined(
            makePredictor(config.kind, config.sizeBytes),
            result.hints, config.shift);

        ProfileDb profile;
        SimOptions options;
        options.maxBranches = config.profileBranches;
        options.profile = &profile;
        simulate(combined, profile_stream, options);

        const HintDb additions =
            selectStaticFac(profile, config.selection);

        std::size_t added = 0;
        for (const auto &[pc, taken] : additions.entries()) {
            if (!result.hints.contains(pc)) {
                result.hints.insert(pc, taken);
                ++added;
            }
        }
        result.addedPerRound.push_back(added);
        ++result.iterations;
        if (added == 0)
            break;
    }
    return result;
}

} // namespace bpsim
