/**
 * @file
 * Iterative static-hint selection (extension).
 *
 * The paper's Static_Fac is "a simpler, single iteration, version of
 * Lindsay's scheme" [19], where selection originally alternated
 * between profiling and simulation: simulate the *combined* predictor
 * with the current hint set, find more branches whose static
 * misprediction cost beats their measured dynamic cost, add them, and
 * repeat until the hint set stops growing. Each round measures the
 * dynamic predictor as it would actually behave with the previous
 * round's branches already removed, so later rounds see the true
 * residual aliasing.
 */

#ifndef BPSIM_CORE_ITERATIVE_HH
#define BPSIM_CORE_ITERATIVE_HH

#include "core/combined_predictor.hh"
#include "predictor/factory.hh"
#include "staticsel/selection.hh"
#include "workload/synthetic_program.hh"

namespace bpsim
{

/** Configuration of the iterative selection loop. */
struct IterativeConfig
{
    /** Dynamic predictor being tuned for. */
    PredictorKind kind = PredictorKind::Gshare;

    /** Its hardware budget. */
    std::size_t sizeBytes = 8192;

    /** Branches simulated per profiling round. */
    Count profileBranches = 1'000'000;

    /** Input set profiled. */
    InputSet profileInput = InputSet::Ref;

    /** History policy used during profiling rounds. */
    ShiftPolicy shift = ShiftPolicy::NoShift;

    /** Per-round selection criterion (Static_Fac's factor test). */
    SelectionParams selection;

    /** Bound on profile/select rounds. */
    unsigned maxIterations = 4;
};

/** Result of the iterative loop. */
struct IterativeResult
{
    /** Final accumulated hint set. */
    HintDb hints;

    /** Rounds actually executed (converged when < maxIterations). */
    unsigned iterations = 0;

    /** Hints added per round (size == iterations). */
    std::vector<std::size_t> addedPerRound;
};

/**
 * Run Lindsay-style iterative selection on @p program. The program
 * is left on config.profileInput.
 */
IterativeResult selectStaticIterative(SyntheticProgram &program,
                                      const IterativeConfig &config);

/**
 * Stream-based variant: @p profile_stream must replay
 * config.profileInput and is reset before each round, so replay
 * cursors work as well as live programs.
 */
IterativeResult selectStaticIterative(BranchStream &profile_stream,
                                      const IterativeConfig &config);

} // namespace bpsim

#endif // BPSIM_CORE_ITERATIVE_HH
