/**
 * @file
 * Batched replay kernels: public interface.
 *
 * The batch kernels process each fused-walk block in batches of 16
 * records with a two-pass, carry-the-index discipline:
 *
 *  1. a precompute pass decodes the batch once, evolves the global
 *     history shadow record by record (the only true serial
 *     dependence), computes every table index for the batch, and
 *     issues software prefetches for the gathered counter/tag lines;
 *  2. an apply pass walks the records in order and performs the
 *     branchless counter load / predict / train / tag bookkeeping
 *     with the carried indices — the index is hashed exactly once per
 *     (record, table) and reused at update.
 *
 * The record axis stays scalar in the apply pass because consecutive
 * records genuinely collide in the counter tables (measured 68-99% of
 * 8-record windows share a bimodal index on the SPEC-like workloads),
 * so lane-parallel counter updates would be a conflict-fallback path
 * that almost always falls back. Vector parallelism instead comes
 * from the hash/decode precompute loops (auto-vectorized; the AVX2
 * translation unit compiles them with -mavx2) and from gang members
 * sharing one stream.
 *
 * Every kernel is integer-exact and bit-identical across translation
 * units and to the record-at-a-time PR-5 kernels (SimdLevel::Off);
 * tests/test_simd.cc pins that differentially.
 */

#ifndef BPSIM_CORE_BATCH_KERNELS_HH
#define BPSIM_CORE_BATCH_KERNELS_HH

#include <cstddef>
#include <cstdint>
#include <type_traits>
#include <vector>

#include "core/combined_predictor.hh"
#include "core/sim_stats.hh"
#include "core/simd.hh"
#include "predictor/bimodal.hh"
#include "predictor/bimode.hh"
#include "predictor/ghist.hh"
#include "predictor/gshare.hh"
#include "predictor/two_bc_gskew.hh"
#include "profile/branch_profile.hh"
#include "support/bits.hh"
#include "support/skew.hh"
#include "support/types.hh"
#include "trace/replay_buffer.hh"

namespace bpsim
{

/**
 * Access shims giving the kernels raw SoA views of each predictor's
 * component tables and history register (each predictor befriends
 * BatchTraits; see predictor/predictor.hh).
 */
template <> struct BatchTraits<Gshare>
{
    static CounterTable &table(Gshare &p) { return p.table; }
    static GlobalHistory &history(Gshare &p) { return p.history; }
};

template <> struct BatchTraits<Ghist>
{
    static CounterTable &table(Ghist &p) { return p.table; }
    static GlobalHistory &history(Ghist &p) { return p.history; }
};

template <> struct BatchTraits<Bimodal>
{
    static CounterTable &table(Bimodal &p) { return p.table; }
};

template <> struct BatchTraits<BiMode>
{
    static CounterTable &choice(BiMode &p) { return p.choice; }
    static CounterTable &takenTable(BiMode &p) { return p.takenTable; }
    static CounterTable &
    notTakenTable(BiMode &p)
    {
        return p.notTakenTable;
    }
    static GlobalHistory &history(BiMode &p) { return p.history; }
};

template <> struct BatchTraits<TwoBcGskew>
{
    static CounterTable &bim(TwoBcGskew &p) { return p.bim; }
    static CounterTable &g0(TwoBcGskew &p) { return p.g0; }
    static CounterTable &g1(TwoBcGskew &p) { return p.g1; }
    static CounterTable &meta(TwoBcGskew &p) { return p.meta; }
    static GlobalHistory &history(TwoBcGskew &p) { return p.history; }
    static BitCount histG0(const TwoBcGskew &p) { return p.histG0; }
    static BitCount histG1(const TwoBcGskew &p) { return p.histG1; }
    static BitCount histMeta(const TwoBcGskew &p) { return p.histMeta; }
};

namespace batch
{

/** Dense hint-code bits (0 = no hint for the site). */
inline constexpr std::uint8_t hintPresentBit = 2;
inline constexpr std::uint8_t hintTakenBit = 1;

/**
 * Per-site index material hoisted out of the record loop, built once
 * per stepper: every pure-PC quantity a predictor's index functions
 * need (masked PC indices and PC folds at the relevant widths). What
 * each vector holds depends on the predictor kind; unused vectors
 * stay empty.
 */
struct SiteTables
{
    /** Bimodal/gshare PC index or fold; bi-mode choice index; gskew
     * bimodal-bank index. */
    std::vector<std::uint32_t> primary;

    /** Bi-mode direction-table PC fold; gskew bank-0 PC skew chain
     * H(v1). */
    std::vector<std::uint32_t> secondary;

    /** Gskew bank-1 PC skew chain pre-mixed with its parity source:
     * H(H(v1)) ^ v1. */
    std::vector<std::uint32_t> tertiary;

    /** Gskew meta-bank PC fold. */
    std::vector<std::uint32_t> quaternary;
};

/** Build the per-site tables for @p predictor over @p sites. */
template <typename P>
SiteTables
buildSiteTables(P &predictor, const SiteIndex &sites)
{
    SiteTables tables;
    const std::uint32_t count = sites.siteCount();
    const auto pcIndexOf = [&](std::uint32_t site) {
        return sites.sitePc(site) / instructionBytes;
    };

    if constexpr (std::is_same_v<P, Bimodal>) {
        CounterTable &table = BatchTraits<P>::table(predictor);
        tables.primary.resize(count);
        for (std::uint32_t s = 0; s < count; ++s)
            tables.primary[s] = static_cast<std::uint32_t>(
                table.indexFor(pcIndexOf(s)));
    } else if constexpr (std::is_same_v<P, Gshare>) {
        CounterTable &table = BatchTraits<P>::table(predictor);
        tables.primary.resize(count);
        for (std::uint32_t s = 0; s < count; ++s)
            tables.primary[s] = static_cast<std::uint32_t>(
                foldBits(pcIndexOf(s), table.indexBits()));
    } else if constexpr (std::is_same_v<P, BiMode>) {
        CounterTable &choice = BatchTraits<P>::choice(predictor);
        CounterTable &dir = BatchTraits<P>::takenTable(predictor);
        tables.primary.resize(count);
        tables.secondary.resize(count);
        for (std::uint32_t s = 0; s < count; ++s) {
            tables.primary[s] = static_cast<std::uint32_t>(
                choice.indexFor(pcIndexOf(s)));
            tables.secondary[s] = static_cast<std::uint32_t>(
                foldBits(pcIndexOf(s), dir.indexBits()));
        }
    } else if constexpr (std::is_same_v<P, TwoBcGskew>) {
        CounterTable &bim = BatchTraits<P>::bim(predictor);
        CounterTable &g0 = BatchTraits<P>::g0(predictor);
        CounterTable &meta = BatchTraits<P>::meta(predictor);
        const BitCount bankBits = g0.indexBits();
        tables.primary.resize(count);
        tables.secondary.resize(count);
        tables.tertiary.resize(count);
        tables.quaternary.resize(count);
        for (std::uint32_t s = 0; s < count; ++s) {
            const std::uint64_t v1 =
                foldBits(pcIndexOf(s), bankBits);
            // skewIndex(bank, v1, v2) = H^(bank+1)(v1) ^
            // Hinv^(bank+1)(v2) ^ (bank even ? v2 : v1): the v1 chain
            // is history-free, so it hoists out of the record loop.
            const std::uint64_t a0 = skewH(v1, bankBits);
            tables.primary[s] = static_cast<std::uint32_t>(
                bim.indexFor(pcIndexOf(s)));
            tables.secondary[s] = static_cast<std::uint32_t>(a0);
            tables.tertiary[s] = static_cast<std::uint32_t>(
                skewH(a0, bankBits) ^ v1);
            tables.quaternary[s] = static_cast<std::uint32_t>(
                foldBits(pcIndexOf(s), meta.indexBits()));
        }
    }
    // Ghist indexes purely by history: nothing to hoist.
    (void)predictor;
    return tables;
}

/**
 * One gang segment: @p n same-type members stepping through records
 * [from, to) of the shared walk. Hint codes are per member (all-zero
 * arrays for members without hints); stats flush per member.
 */
template <typename P>
struct GangArgs
{
    P *const *predictors = nullptr;
    const SiteTables *const *siteTables = nullptr;
    const std::uint8_t *const *hintCodes = nullptr;
    SimStats *const *stats = nullptr;
    std::size_t n = 0;
    const ReplayBuffer *buffer = nullptr;
    const std::uint32_t *siteOf = nullptr;
    Count from = 0;
    Count to = 0;
    ShiftPolicy policy = ShiftPolicy::NoShift;
    bool track = true;
};

/**
 * One dense-profile segment: a single profiling sim accumulating
 * per-site BranchProfile counts (site-indexed array, flushed to the
 * ProfileDb when the pass finishes).
 */
template <typename P>
struct DenseArgs
{
    P *predictor = nullptr;
    const SiteTables *siteTables = nullptr;
    BranchProfile *profiles = nullptr;
    SimStats *stats = nullptr;
    const ReplayBuffer *buffer = nullptr;
    const std::uint32_t *siteOf = nullptr;
    Count from = 0;
    Count to = 0;
    bool track = true;
};

/**
 * One plain segment: a single dynamic sim, no sites, no hints, no
 * profile (the microbench / CLI / warmup shape).
 */
template <typename P>
struct PlainArgs
{
    P *predictor = nullptr;
    SimStats *stats = nullptr;
    const ReplayBuffer *buffer = nullptr;
    Count from = 0;
    Count to = 0;
    bool track = true;
};

} // namespace batch

/**
 * The batch kernels are compiled once per instruction-set target from
 * core/batch_kernels_impl.hh; each namespace below is one translation
 * unit's entry points (explicitly instantiated there for the five
 * paper predictors).
 */
namespace kernels_scalar
{
template <typename P> void runGangBatch(const batch::GangArgs<P> &args);
template <typename P>
void runDenseBatch(const batch::DenseArgs<P> &args);
template <typename P>
void runPlainBatch(const batch::PlainArgs<P> &args);
} // namespace kernels_scalar

#if defined(BPSIM_HAVE_AVX2_KERNELS)
namespace kernels_avx2
{
template <typename P> void runGangBatch(const batch::GangArgs<P> &args);
template <typename P>
void runDenseBatch(const batch::DenseArgs<P> &args);
template <typename P>
void runPlainBatch(const batch::PlainArgs<P> &args);
} // namespace kernels_avx2
#endif

/**
 * Whether batched kernel instantiations exist for predictor type
 * @p P. The impl translation units explicitly instantiate the batch
 * kernels for the five paper predictors only; a kernel-visitable type
 * without this trait (e.g. Tage, HashedPerceptron — multi-bank
 * allocation and weight sums don't fit the prepare/apply batch split)
 * gets an empty BatchKernelSet from batchKernelsFor and the engine
 * falls back to the record-at-a-time reference kernels.
 */
template <typename P> inline constexpr bool hasBatchKernels = false;
template <> inline constexpr bool hasBatchKernels<Bimodal> = true;
template <> inline constexpr bool hasBatchKernels<Ghist> = true;
template <> inline constexpr bool hasBatchKernels<Gshare> = true;
template <> inline constexpr bool hasBatchKernels<BiMode> = true;
template <> inline constexpr bool hasBatchKernels<TwoBcGskew> = true;

/** The kernel entry points one SimdLevel dispatches to. */
template <typename P>
struct BatchKernelSet
{
    void (*gang)(const batch::GangArgs<P> &) = nullptr;
    void (*dense)(const batch::DenseArgs<P> &) = nullptr;
    void (*plain)(const batch::PlainArgs<P> &) = nullptr;

    /** True when a batched level (not Off) is selected. */
    explicit operator bool() const { return gang != nullptr; }
};

/**
 * Resolve @p level to its kernel set. Off yields an empty set (the
 * caller falls back to the record-at-a-time kernels); Neon resolves
 * to the baseline translation unit, which on aarch64 the compiler
 * vectorizes with baseline NEON.
 */
template <typename P>
BatchKernelSet<P>
batchKernelsFor(SimdLevel level)
{
    BatchKernelSet<P> set;
    if constexpr (hasBatchKernels<P>) {
        switch (level) {
          case SimdLevel::Off:
            break;
#if defined(BPSIM_HAVE_AVX2_KERNELS)
          case SimdLevel::Avx2:
            set.gang = &kernels_avx2::runGangBatch<P>;
            set.dense = &kernels_avx2::runDenseBatch<P>;
            set.plain = &kernels_avx2::runPlainBatch<P>;
            break;
#else
          case SimdLevel::Avx2:
#endif
          case SimdLevel::Scalar:
          case SimdLevel::Neon:
            set.gang = &kernels_scalar::runGangBatch<P>;
            set.dense = &kernels_scalar::runDenseBatch<P>;
            set.plain = &kernels_scalar::runPlainBatch<P>;
            break;
        }
    } else {
        (void)level;
    }
    return set;
}

} // namespace bpsim

#endif // BPSIM_CORE_BATCH_KERNELS_HH
