#include "core/experiment.hh"

#include "core/engine.hh"
#include "predictor/registry.hh"
#include "support/logging.hh"
#include "trace/replay_buffer.hh"
#include "trace/trace_io.hh"

namespace bpsim
{

namespace
{

/** Build the dynamic component a config describes: makeDynamic
 * factory first, then a registered name, then the paper kind. */
std::unique_ptr<BranchPredictor>
makeDynamicComponent(const ExperimentConfig &config)
{
    if (config.makeDynamic)
        return config.makeDynamic();
    if (!config.predictor.empty()) {
        const PredictorInfo *info =
            PredictorRegistry::instance().find(config.predictor);
        // validate() rejects unregistered names before any phase runs.
        bpsim_assert(info != nullptr, "unregistered predictor '",
                     config.predictor, "' reached construction");
        return info->make(config.sizeBytes);
    }
    return makePredictor(config.kind, config.sizeBytes);
}

/** Options of the selection phase's profiling simulation. */
SimOptions
profileOptions(const ExperimentConfig &config, ProfileDb &profile)
{
    SimOptions options;
    options.maxBranches = config.profileBranches;
    options.profile = &profile;
    options.counters = config.counters;
    options.simd = config.simd;
    return options;
}

/**
 * Adapter pinning a SyntheticProgram to one input set: reset()
 * re-binds the input (which also rewinds execution), so the
 * stream-based experiment core can treat the two phases of a live
 * program exactly like two independent replay cursors.
 */
class InputBoundStream : public BranchStream
{
  public:
    InputBoundStream(SyntheticProgram &program, InputSet input)
        : program(program), input(input)
    {}

    bool
    next(BranchRecord &record) override
    {
        return program.next(record);
    }

    void reset() override { program.setInput(input); }

  private:
    SyntheticProgram &program;
    InputSet input;
};

/**
 * Selection + evaluation downstream of the profiling phase, shared
 * by the stream and replay paths. @p collect_eval_profile gathers
 * the merge filter's bias-only profile of the evaluation input;
 * @p evaluate runs the combined predictor over it.
 */
template <typename CollectEvalProfile, typename Evaluate>
ExperimentResult
finishExperiment(const ExperimentConfig &config,
                 const ProfilePhase *profile_phase,
                 CollectEvalProfile &&collect_eval_profile,
                 Evaluate &&evaluate)
{
    HintDb hints;
    Count simulated = 0;

    if (config.scheme != StaticScheme::None) {
        bpsim_assert(profile_phase != nullptr,
                     "selection scheme needs a profiling phase");
        simulated += profile_phase->simulatedBranches;

        const ProfileDb *selection_profile = &profile_phase->profile;
        ProfileDb filtered;
        if (config.filterUnstable &&
            config.profileInput != config.evalInput) {
            // The Spike-style merge filter: gather a bias-only
            // profile under the evaluation input and drop branches
            // whose behaviour is input-dependent.
            ProfileDb eval_profile = collect_eval_profile();
            simulated += eval_profile.totalExecuted();
            filtered = stableSubset(*selection_profile, eval_profile,
                                    config.stabilityThreshold);
            selection_profile = &filtered;
        }

        hints = selectStatic(config.scheme, *selection_profile,
                             config.selection);
    }

    // Phase 2: evaluate the combined predictor from a cold start.
    const std::size_t hint_count = hints.size();
    CombinedPredictor combined(makeDynamicComponent(config),
                               std::move(hints), config.shift);

    ExperimentResult result;
    result.stats = evaluate(combined);
    result.hintCount = hint_count;
    // Warmup branches are simulated work even though they are outside
    // the measured window; count them exactly once (streams shorter
    // than the warmup are the caller's misconfiguration — the matrix
    // runner sizes its buffers to cover warmup + eval).
    result.simulatedBranches =
        simulated + config.evalWarmupBranches + result.stats.branches;
    return result;
}

} // namespace

SimOptions
evalSimOptions(const ExperimentConfig &config)
{
    SimOptions options;
    options.maxBranches = config.evalBranches;
    options.warmupBranches = config.evalWarmupBranches;
    options.counters = config.counters;
    // Scenario cells must run record-at-a-time: the SIMD dense-profile
    // kernels bypass the per-lookup tag path the alias sink observes.
    options.simd = config.simd && config.scenarioContexts == 0;
    return options;
}

SimOptions
evalSimOptions(const ExperimentConfig &config,
               const PreparedEvaluation &prepared)
{
    SimOptions options = evalSimOptions(config);
    if (prepared.evalProfile != nullptr)
        options.profile = prepared.evalProfile.get();
    return options;
}

std::string
predictorIdentityOf(const ExperimentConfig &config)
{
    if (config.makeDynamic) {
        if (config.dynamicKey.empty())
            return {};
        return "custom:" + config.dynamicKey;
    }
    const std::string name = config.predictor.empty()
                                 ? predictorKindName(config.kind)
                                 : config.predictor;
    return name + ":" + std::to_string(config.sizeBytes);
}

Result<void>
ExperimentConfig::validate() const
{
    // The table factory carves sizeBytes into power-of-two entry
    // counts (halved or quartered by the multi-table schemes), so
    // the budget itself must be a power of two with room for the
    // smallest split. makeDynamic bypasses the factory entirely.
    if (!makeDynamic &&
        (sizeBytes < 16 || (sizeBytes & (sizeBytes - 1)) != 0)) {
        return Error(ErrorCode::ConfigInvalid,
                     "predictor sizeBytes must be a power of two "
                     ">= 16, got " +
                         std::to_string(sizeBytes));
    }
    if (!makeDynamic && !predictor.empty() &&
        PredictorRegistry::instance().find(predictor) == nullptr) {
        return Error(ErrorCode::ConfigInvalid,
                     "unknown predictor '" + predictor +
                         "' (registered: " +
                         PredictorRegistry::instance().namesJoined() +
                         ")");
    }
    if (evalBranches == 0) {
        return Error(ErrorCode::ConfigInvalid,
                     "evalBranches must be positive (zero-length "
                     "evaluation stream)");
    }
    if (scheme != StaticScheme::None && profileBranches == 0) {
        return Error(ErrorCode::ConfigInvalid,
                     "profileBranches must be positive when a static "
                     "scheme needs a profiling phase");
    }
    if (filterUnstable &&
        (stabilityThreshold < 0.0 || stabilityThreshold > 1.0)) {
        return Error(ErrorCode::ConfigInvalid,
                     "stabilityThreshold must be in [0, 1], got " +
                         std::to_string(stabilityThreshold));
    }
    if (selection.cutoffBias < 0.5 || selection.cutoffBias > 1.0) {
        return Error(ErrorCode::ConfigInvalid,
                     "selection.cutoffBias must be in [0.5, 1], got " +
                         std::to_string(selection.cutoffBias));
    }
    if (selection.aliasCutoffBias < 0.5 ||
        selection.aliasCutoffBias > 1.0) {
        return Error(ErrorCode::ConfigInvalid,
                     "selection.aliasCutoffBias must be in [0.5, 1], "
                     "got " +
                         std::to_string(selection.aliasCutoffBias));
    }
    if (selection.factor <= 0.0) {
        return Error(ErrorCode::ConfigInvalid,
                     "selection.factor must be positive, got " +
                         std::to_string(selection.factor));
    }
    if (selection.aliasMinCollisionRate < 0.0 ||
        selection.aliasMinCollisionRate > 1.0) {
        return Error(ErrorCode::ConfigInvalid,
                     "selection.aliasMinCollisionRate must be in "
                     "[0, 1], got " +
                         std::to_string(
                             selection.aliasMinCollisionRate));
    }
    return okResult();
}

ProfilePhase
runProfilePhase(BranchStream &profile_stream,
                const ExperimentConfig &config)
{
    // Profile the program, simulating the target dynamic predictor
    // so the profile carries per-branch accuracy (only
    // Static_Acc/Static_Fac read it; Static_95 just uses bias).
    auto profiling_predictor = makeDynamicComponent(config);
    ProfilePhase phase;
    const SimStats stats =
        simulate(*profiling_predictor, profile_stream,
                 profileOptions(config, phase.profile));
    phase.simulatedBranches = stats.branches;
    return phase;
}

ProfilePhase
runProfilePhaseReplay(const ReplayBuffer &profile_buffer,
                      const ExperimentConfig &config,
                      bool *used_fast_path, bool *used_simd)
{
    auto profiling_predictor = makeDynamicComponent(config);
    ProfilePhase phase;
    const SimStats stats =
        simulateReplay(*profiling_predictor, profile_buffer,
                       profileOptions(config, phase.profile),
                       used_fast_path, used_simd);
    phase.simulatedBranches = stats.branches;
    return phase;
}

ExperimentResult
runEvaluationStreams(BranchStream &eval_stream,
                     const ExperimentConfig &config,
                     const ProfilePhase *profile_phase)
{
    return finishExperiment(
        config, profile_phase,
        [&] {
            eval_stream.reset();
            BoundedStream bounded(eval_stream, config.profileBranches);
            return ProfileDb::collect(bounded, config.profileBranches);
        },
        [&](CombinedPredictor &combined) {
            return simulate(combined, eval_stream,
                            evalSimOptions(config));
        });
}

PreparedEvaluation
prepareEvaluationReplay(const ReplayBuffer *profile_buffer,
                        const ReplayBuffer &eval_buffer,
                        const ExperimentConfig &config,
                        const ProfilePhase *cached_profile)
{
    PreparedEvaluation prepared;
    HintDb hints;

    if (config.scheme != StaticScheme::None) {
        ProfilePhase local;
        const ProfilePhase *phase = cached_profile;
        if (phase == nullptr) {
            bpsim_assert(profile_buffer != nullptr,
                         "selection scheme needs a profile trace");
            local = runProfilePhaseReplay(*profile_buffer, config,
                                          &prepared.preEvalFastPath,
                                          &prepared.preEvalSimd);
            phase = &local;
        }
        prepared.preEvalBranches += phase->simulatedBranches;

        const ProfileDb *selection_profile = &phase->profile;
        ProfileDb filtered;
        if (config.filterUnstable &&
            config.profileInput != config.evalInput) {
            // The Spike-style merge filter: gather a bias-only
            // profile under the evaluation input and drop branches
            // whose behaviour is input-dependent.
            auto cursor = eval_buffer.cursor();
            BoundedStream bounded(cursor, config.profileBranches);
            ProfileDb eval_profile =
                ProfileDb::collect(bounded, config.profileBranches);
            prepared.preEvalBranches += eval_profile.totalExecuted();
            filtered = stableSubset(*selection_profile, eval_profile,
                                    config.stabilityThreshold);
            selection_profile = &filtered;
        }

        hints = selectStatic(config.scheme, *selection_profile,
                             config.selection);
    }

    prepared.hintCount = hints.size();
    prepared.combined = std::make_unique<CombinedPredictor>(
        makeDynamicComponent(config), std::move(hints), config.shift);

    if (config.scenarioContexts > 0) {
        prepared.evalProfile = std::make_unique<ProfileDb>();
        prepared.aliasSink =
            std::make_unique<ContextAliasSink>(config.scenarioContexts);
        prepared.combined->attachAliasSink(prepared.aliasSink.get());
    }
    return prepared;
}

ExperimentResult
finishPreparedEvaluation(const PreparedEvaluation &prepared,
                         const ExperimentConfig &config,
                         const SimStats &eval_stats,
                         const ReplayBuffer *eval_buffer)
{
    ExperimentResult result;
    result.stats = eval_stats;
    result.hintCount = prepared.hintCount;
    // Warmup branches are simulated work even though they are outside
    // the measured window; count them exactly once (streams shorter
    // than the warmup are the caller's misconfiguration — the matrix
    // runner sizes its buffers to cover warmup + eval).
    result.simulatedBranches = prepared.preEvalBranches +
                               config.evalWarmupBranches +
                               eval_stats.branches;

    if (config.scenarioContexts > 0 &&
        prepared.evalProfile != nullptr) {
        const std::size_t n = config.scenarioContexts;
        result.contextStats.assign(n, ContextStats{});

        // Branch/instruction ownership: the context id rides in the
        // PC's high bits, so a single pass over the measured window
        // attributes both exactly.
        if (eval_buffer != nullptr) {
            const Count begin = config.evalWarmupBranches;
            const Count end = begin + eval_stats.branches;
            BranchRecord record;
            for (Count i = begin; i < end; ++i) {
                eval_buffer->get(i, record);
                const std::size_t ctx = contextOfPc(record.pc);
                if (ctx >= n)
                    continue;
                ++result.contextStats[ctx].branches;
                result.contextStats[ctx].instructions += record.instGap;
            }
        }

        // Misprediction/collision ownership from the per-branch
        // profile: hinted branches mispredict exactly when the
        // outcome opposes the hint (the engine records only their
        // outcomes); dynamic branches carry prediction and collision
        // counts directly.
        for (const auto &[pc, prof] :
             prepared.evalProfile->entries()) {
            const std::size_t ctx = contextOfPc(pc);
            if (ctx >= n)
                continue;
            ContextStats &stats = result.contextStats[ctx];
            bool hint_taken = false;
            if (prepared.combined->hintDb().lookup(pc, hint_taken)) {
                stats.staticPredicted += prof.executed;
                stats.mispredictions += hint_taken
                                            ? prof.executed - prof.taken
                                            : prof.taken;
            } else {
                stats.mispredictions += prof.predicted - prof.correct;
                stats.collisions += prof.collisions;
            }
        }

        if (prepared.aliasSink != nullptr)
            result.aliasMatrix = prepared.aliasSink->cells();
    }
    return result;
}

ExperimentResult
runEvaluationReplay(const ReplayBuffer &eval_buffer,
                    const ExperimentConfig &config,
                    const ProfilePhase *profile_phase,
                    bool *used_fast_path, bool *used_simd)
{
    PreparedEvaluation prepared = prepareEvaluationReplay(
        nullptr, eval_buffer, config, profile_phase);
    const SimStats stats =
        simulateReplay(*prepared.combined, eval_buffer,
                       evalSimOptions(config, prepared), used_fast_path,
                       used_simd);
    return finishPreparedEvaluation(prepared, config, stats,
                                    &eval_buffer);
}

ExperimentResult
runExperimentStreams(BranchStream &profile_stream,
                     BranchStream &eval_stream,
                     const ExperimentConfig &config)
{
    if (Result<void> valid = config.validate(); !valid.ok())
        raise(std::move(valid.error()));
    ProfilePhase phase;
    const ProfilePhase *phase_ptr = nullptr;
    if (config.scheme != StaticScheme::None) {
        phase = runProfilePhase(profile_stream, config);
        phase_ptr = &phase;
    }
    return runEvaluationStreams(eval_stream, config, phase_ptr);
}

ExperimentResult
runExperimentReplay(const ReplayBuffer *profile_buffer,
                    const ReplayBuffer &eval_buffer,
                    const ExperimentConfig &config,
                    const ProfilePhase *cached_profile,
                    bool *used_fast_path, bool *used_simd)
{
    if (Result<void> valid = config.validate(); !valid.ok())
        raise(std::move(valid.error()));
    PreparedEvaluation prepared = prepareEvaluationReplay(
        profile_buffer, eval_buffer, config, cached_profile);
    bool eval_fast = false;
    bool eval_simd = false;
    const SimStats stats =
        simulateReplay(*prepared.combined, eval_buffer,
                       evalSimOptions(config, prepared), &eval_fast,
                       &eval_simd);
    if (used_fast_path != nullptr)
        *used_fast_path = prepared.preEvalFastPath && eval_fast;
    if (used_simd != nullptr)
        *used_simd = prepared.preEvalSimd && eval_simd;
    return finishPreparedEvaluation(prepared, config, stats,
                                    &eval_buffer);
}

std::vector<FusedProfileOutcome>
runProfilePhasesFusedReplay(
    const ReplayBuffer &profile_buffer,
    const std::vector<const ExperimentConfig *> &configs,
    const SiteIndex *sites)
{
    std::vector<FusedProfileOutcome> outcomes(configs.size());
    std::vector<std::unique_ptr<BranchPredictor>> predictors;
    predictors.reserve(configs.size());
    std::vector<FusedSim> sims(configs.size());
    for (std::size_t i = 0; i < configs.size(); ++i) {
        predictors.push_back(makeDynamicComponent(*configs[i]));
        sims[i].predictor = predictors.back().get();
        sims[i].options =
            profileOptions(*configs[i], outcomes[i].phase.profile);
    }

    simulateReplayFused(sims, profile_buffer, sites);

    for (std::size_t i = 0; i < configs.size(); ++i) {
        outcomes[i].phase.simulatedBranches = sims[i].stats.branches;
        outcomes[i].usedFastPath = sims[i].usedFastPath;
        outcomes[i].usedSimd = sims[i].usedSimd;
    }
    return outcomes;
}

ExperimentResult
runExperiment(SyntheticProgram &program, const ExperimentConfig &config)
{
    InputBoundStream profile_stream(program, config.profileInput);
    InputBoundStream eval_stream(program, config.evalInput);
    return runExperimentStreams(profile_stream, eval_stream, config);
}

SimStats
runBaseline(SyntheticProgram &program, PredictorKind kind,
            std::size_t size_bytes, Count eval_branches, InputSet input)
{
    ExperimentConfig config;
    config.kind = kind;
    config.sizeBytes = size_bytes;
    config.scheme = StaticScheme::None;
    config.evalBranches = eval_branches;
    config.evalInput = input;
    return runExperiment(program, config).stats;
}

} // namespace bpsim
