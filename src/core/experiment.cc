#include "core/experiment.hh"

#include "core/engine.hh"
#include "profile/profile_db.hh"
#include "trace/trace_io.hh"

namespace bpsim
{

ExperimentResult
runExperiment(SyntheticProgram &program, const ExperimentConfig &config)
{
    HintDb hints;

    if (config.scheme != StaticScheme::None) {
        // Phase 1: profile the program, simulating the target dynamic
        // predictor so the profile carries per-branch accuracy (only
        // Static_Acc/Static_Fac read it; Static_95 just uses bias).
        program.setInput(config.profileInput);
        auto profiling_predictor =
            makePredictor(config.kind, config.sizeBytes);
        ProfileDb profile;
        SimOptions profile_options;
        profile_options.maxBranches = config.profileBranches;
        profile_options.profile = &profile;
        simulate(*profiling_predictor, program, profile_options);

        if (config.filterUnstable &&
            config.profileInput != config.evalInput) {
            // The Spike-style merge filter: gather a bias-only
            // profile under the evaluation input and drop branches
            // whose behaviour is input-dependent.
            program.setInput(config.evalInput);
            BoundedStream bounded(program, config.profileBranches);
            ProfileDb eval_profile =
                ProfileDb::collect(bounded, config.profileBranches);
            profile = stableSubset(profile, eval_profile,
                                   config.stabilityThreshold);
        }

        hints = selectStatic(config.scheme, profile, config.selection);
    }

    // Phase 2: evaluate the combined predictor from a cold start.
    program.setInput(config.evalInput);
    const std::size_t hint_count = hints.size();
    CombinedPredictor combined(
        makePredictor(config.kind, config.sizeBytes),
        std::move(hints), config.shift);

    SimOptions eval_options;
    eval_options.maxBranches = config.evalBranches;
    ExperimentResult result;
    result.stats = simulate(combined, program, eval_options);
    result.hintCount = hint_count;
    return result;
}

SimStats
runBaseline(SyntheticProgram &program, PredictorKind kind,
            std::size_t size_bytes, Count eval_branches, InputSet input)
{
    ExperimentConfig config;
    config.kind = kind;
    config.sizeBytes = size_bytes;
    config.scheme = StaticScheme::None;
    config.evalBranches = eval_branches;
    config.evalInput = input;
    return runExperiment(program, config).stats;
}

} // namespace bpsim
