#include "core/experiment.hh"

#include "core/engine.hh"
#include "profile/profile_db.hh"
#include "trace/trace_io.hh"

namespace bpsim
{

namespace
{

/** Build the dynamic component a config describes. */
std::unique_ptr<BranchPredictor>
makeDynamicComponent(const ExperimentConfig &config)
{
    return config.makeDynamic
               ? config.makeDynamic()
               : makePredictor(config.kind, config.sizeBytes);
}

/**
 * Adapter pinning a SyntheticProgram to one input set: reset()
 * re-binds the input (which also rewinds execution), so the
 * stream-based experiment core can treat the two phases of a live
 * program exactly like two independent replay cursors.
 */
class InputBoundStream : public BranchStream
{
  public:
    InputBoundStream(SyntheticProgram &program, InputSet input)
        : program(program), input(input)
    {}

    bool
    next(BranchRecord &record) override
    {
        return program.next(record);
    }

    void reset() override { program.setInput(input); }

  private:
    SyntheticProgram &program;
    InputSet input;
};

} // namespace

ExperimentResult
runExperimentStreams(BranchStream &profile_stream,
                     BranchStream &eval_stream,
                     const ExperimentConfig &config)
{
    HintDb hints;
    Count simulated = 0;

    if (config.scheme != StaticScheme::None) {
        // Phase 1: profile the program, simulating the target dynamic
        // predictor so the profile carries per-branch accuracy (only
        // Static_Acc/Static_Fac read it; Static_95 just uses bias).
        auto profiling_predictor = makeDynamicComponent(config);
        ProfileDb profile;
        SimOptions profile_options;
        profile_options.maxBranches = config.profileBranches;
        profile_options.profile = &profile;
        const SimStats profile_stats = simulate(
            *profiling_predictor, profile_stream, profile_options);
        simulated += profile_stats.branches;

        if (config.filterUnstable &&
            config.profileInput != config.evalInput) {
            // The Spike-style merge filter: gather a bias-only
            // profile under the evaluation input and drop branches
            // whose behaviour is input-dependent.
            eval_stream.reset();
            BoundedStream bounded(eval_stream, config.profileBranches);
            ProfileDb eval_profile =
                ProfileDb::collect(bounded, config.profileBranches);
            simulated += eval_profile.totalExecuted();
            profile = stableSubset(profile, eval_profile,
                                   config.stabilityThreshold);
        }

        hints = selectStatic(config.scheme, profile, config.selection);
    }

    // Phase 2: evaluate the combined predictor from a cold start.
    const std::size_t hint_count = hints.size();
    CombinedPredictor combined(makeDynamicComponent(config),
                               std::move(hints), config.shift);

    SimOptions eval_options;
    eval_options.maxBranches = config.evalBranches;
    ExperimentResult result;
    result.stats = simulate(combined, eval_stream, eval_options);
    result.hintCount = hint_count;
    result.simulatedBranches = simulated + result.stats.branches;
    return result;
}

ExperimentResult
runExperiment(SyntheticProgram &program, const ExperimentConfig &config)
{
    InputBoundStream profile_stream(program, config.profileInput);
    InputBoundStream eval_stream(program, config.evalInput);
    return runExperimentStreams(profile_stream, eval_stream, config);
}

SimStats
runBaseline(SyntheticProgram &program, PredictorKind kind,
            std::size_t size_bytes, Count eval_branches, InputSet input)
{
    ExperimentConfig config;
    config.kind = kind;
    config.sizeBytes = size_bytes;
    config.scheme = StaticScheme::None;
    config.evalBranches = eval_branches;
    config.evalInput = input;
    return runExperiment(program, config).stats;
}

} // namespace bpsim
