/**
 * @file
 * Batched replay kernel implementation, compiled once per
 * instruction-set target.
 *
 * This header is NOT a normal include: it has no include guard and
 * must be included by exactly one translation unit per target, with
 * BPSIM_BATCH_NS defined to that target's namespace (kernels_scalar,
 * kernels_avx2). Everything except the entry points lives in an
 * anonymous namespace, so the per-target copies cannot collide even
 * though they are compiled with different instruction-set flags.
 *
 * Kernel shape (see core/batch_kernels.hh for the rationale): each
 * segment is walked in batches of batchRecords records, software
 * pipelined one batch deep. While batch b is applied, batch b+1 is
 * already decoded and prepared: the trace columns are read once, each
 * member's table indices are computed — evolving a register-resident
 * shadow of the global history, the one true serial dependence — and
 * the counter/tag lines are prefetched, so their latency overlaps
 * batch b's work. The prepare passes split into a serial loop
 * (history shadow, site-table loads, history folds) and a pure
 * elementwise loop (XOR/shift/mask index math) the compiler can
 * vectorize across records. The apply pass walks the records in
 * order, performing the branchless counter load / predict / train /
 * tag update with the carried indices; its per-record operation
 * sequence is exactly the one the record-at-a-time kernels in
 * core/engine.cc perform, so every SimStats field, collision
 * statistic, profile count and table byte is bit-identical to theirs.
 */

#include "core/batch_kernels.hh"

#include <algorithm>
#include <cstdint>
#include <vector>

#include "support/bits.hh"
#include "support/sat_counter.hh"
#include "support/skew.hh"

#ifndef BPSIM_BATCH_NS
#error "define BPSIM_BATCH_NS before including batch_kernels_impl.hh"
#endif

#if defined(__GNUC__) || defined(__clang__)
#define BPSIM_BATCH_PREFETCH(addr) __builtin_prefetch(addr)
#else
#define BPSIM_BATCH_PREFETCH(addr) ((void)0)
#endif

namespace bpsim
{
namespace BPSIM_BATCH_NS
{
namespace
{

/** Records per batch (the prepare/apply granularity). */
constexpr std::size_t batchRecords = 16;

/** Pipeline slots: batch b+1 is prepared while batch b is applied. */
constexpr unsigned pipelineSlots = 2;

/**
 * Members per gang chunk: gangs larger than this run as successive
 * fixed-size chunks. A compile-time member count lets the apply
 * pass's member loop fully unroll with its accumulators in
 * registers, and four independent predictor chains already saturate
 * the out-of-order window (same bound as the record-at-a-time gang
 * kernels).
 */
constexpr std::size_t gangChunk = 4;

/**
 * Tables whose counter array is at least this many entries get their
 * lines software-prefetched during prepare. Smaller tables live in
 * L1/L2 where the prefetch instructions cost more load-port slots
 * than the latency they hide — measured as a net loss on the paper's
 * 8KB configurations.
 */
constexpr std::size_t prefetchMinEntries = std::size_t{1} << 16;

/**
 * skewHinv with the width checks and masking hoisted out of the
 * per-record loop: @p x must already be below mask(bits) and @p bits
 * must be >= 2 (the caller branches to the library skewHinv for
 * degenerate one-entry banks). Kept branch-free and assert-free so
 * the elementwise index loops vectorize.
 */
inline std::uint64_t
skewHinvFast(std::uint64_t x, BitCount bits, std::uint64_t table_mask)
{
    const std::uint64_t msb = (x >> (bits - 1)) & 1;
    const std::uint64_t old_msb = (x >> (bits - 2)) & 1;
    return ((x << 1) & table_mask) | (msb ^ old_msb);
}

/** Raw structure-of-arrays view of one CounterTable. */
struct LaneTable
{
    explicit LaneTable(CounterTable &table)
        : cnt(table.counterData()), tags(table.tagData()),
          mask(table.indexMask()), src(&table),
          msb(table.counterMsb()), maxv(table.counterMax()),
          prefetch(table.indexMask() + 1 >= prefetchMinEntries)
    {
    }

    std::uint8_t *cnt;
    Addr *tags;
    std::size_t mask;
    CounterTable *src;
    std::uint8_t msb;
    std::uint8_t maxv;
    bool prefetch;
};

/**
 * Register-resident collision accumulators for one table, flushed
 * into the table's CollisionStats once per segment. The per-record
 * tag protocol matches CounterTable::lookup<true> exactly; the
 * classification happens inline (the overall correctness is already
 * known at apply time), so the table's pending counter stays zero —
 * the same state updateStep() leaves behind.
 */
struct LaneStats
{
    Count lookups = 0;
    Count collisions = 0;
    Count constructive = 0;
    Count destructive = 0;

    void
    flush(CounterTable &table)
    {
        CollisionStats &stats = table.statsRef();
        stats.lookups += lookups;
        stats.collisions += collisions;
        stats.constructive += constructive;
        stats.destructive += destructive;
        *this = LaneStats{};
    }
};

/**
 * One instrumented table access: tag check, tag write and classified
 * collision accounting, compiled out entirely when @p Track is off.
 *
 * @return 1 when the access collided, else 0
 */
template <bool Track>
inline std::uint32_t
touchLane(const LaneTable &table, LaneStats &stats, std::size_t index,
          Addr pc, bool correct)
{
    if constexpr (!Track) {
        (void)table;
        (void)stats;
        (void)index;
        (void)pc;
        (void)correct;
        return 0;
    } else {
        ++stats.lookups;
        const Addr tag = table.tags[index];
        const std::uint32_t collided =
            static_cast<std::uint32_t>(tag != CounterTable::invalidTag) &
            static_cast<std::uint32_t>(tag != pc);
        table.tags[index] = pc;
        stats.collisions += collided;
        stats.constructive +=
            collided & static_cast<std::uint32_t>(correct);
        stats.destructive +=
            collided & static_cast<std::uint32_t>(!correct);
        return collided;
    }
}

/** What one applied record reports back to the driver. */
struct ApplyResult
{
    bool correct;
    std::uint32_t collided;
};

/** How a predictor derives its table index. */
enum class IndexKind
{
    Pc,        ///< bimodal: masked PC index
    PcXorHist, ///< gshare: folded PC xor history
    HistOnly,  ///< ghist: masked history
};

/**
 * Shared history-shadow machinery: each state keeps the global
 * history in a register, advancing it per record with the same
 * policy/hint rules the scalar kernels apply through historyStep(),
 * and syncs it back into the predictor at segment end.
 */
struct HistoryShadow
{
    template <typename P>
    explicit HistoryShadow(P &predictor)
    {
        const GlobalHistory &history = BatchTraits<P>::history(predictor);
        hist = history.value();
        histMask = mask(history.width());
    }

    template <ShiftPolicy Policy, bool WithHints>
    void
    advance(std::uint8_t taken, std::uint8_t code)
    {
        // Branchless on purpose: this runs inside the serial history
        // chain, where a data-dependent branch on hint presence would
        // put its mispredictions on the critical path. Selects
        // compile to cmov.
        bool bit = taken != 0;
        if constexpr (WithHints) {
            const bool present = (code & batch::hintPresentBit) != 0;
            if constexpr (Policy == ShiftPolicy::NoShift) {
                const std::uint64_t next =
                    ((hist << 1) | (bit ? 1 : 0)) & histMask;
                hist = present ? hist : next;
                return;
            } else if constexpr (Policy ==
                                 ShiftPolicy::ShiftPrediction) {
                const bool hinted =
                    (code & batch::hintTakenBit) != 0;
                bit = present ? hinted : bit;
            }
        } else {
            (void)code;
        }
        hist = ((hist << 1) | (bit ? 1 : 0)) & histMask;
    }

    std::uint64_t hist = 0;
    std::uint64_t histMask = 0;
};

/**
 * Batch state for the single-table predictors (bimodal, ghist,
 * gshare), differing only in how the index is derived.
 */
template <typename P, IndexKind Kind, bool Track>
class TableState
{
  public:
    explicit TableState(P &predictor)
        : table(BatchTraits<P>::table(predictor))
    {
        if constexpr (Kind != IndexKind::Pc)
            shadow.emplace_back(predictor);
        idxBits = BatchTraits<P>::table(predictor).indexBits();
    }

    template <ShiftPolicy Policy, bool WithHints, bool WithSites>
    void
    prepare(unsigned slot, std::size_t count,
            const std::uint64_t *pc_index, const std::uint8_t *taken,
            const std::uint32_t *site, const std::uint8_t *codes,
            const batch::SiteTables *tables)
    {
        std::size_t *out = idx[slot];
        const std::size_t msk = table.mask;
        if constexpr (Kind == IndexKind::Pc) {
            (void)taken;
            (void)codes;
            // The masked PC index is cheap enough that apply()
            // recomputes it inline from the decoded column; prepare
            // only materializes indices when a big table wants its
            // lines prefetched.
            if (table.prefetch) {
                for (std::size_t i = 0; i < count; ++i) {
                    if constexpr (WithSites)
                        out[i] = tables->primary[site[i]] & msk;
                    else
                        out[i] = pc_index[i] & msk;
                }
            }
        } else if constexpr (Kind == IndexKind::PcXorHist) {
            std::uint64_t hist[batchRecords];
            std::uint64_t fold[batchRecords];
            // Serial pass: a register-resident copy of the history
            // shadow carries the loop dependence (the heap-resident
            // member would round-trip through memory every record);
            // the site-table loads stay scalar on purpose (they are
            // L1-resident and beat gathered vector loads).
            HistoryShadow sh = shadow.front();
            for (std::size_t i = 0; i < count; ++i) {
                hist[i] = sh.hist;
                if constexpr (WithSites)
                    fold[i] = tables->primary[site[i]];
                else
                    fold[i] = foldBits(pc_index[i], idxBits);
                sh.template advance<Policy, WithHints>(
                    taken[i], WithHints ? codes[site[i]] : 0);
            }
            shadow.front() = sh;
            // Elementwise pass: vectorizable across records.
            for (std::size_t i = 0; i < count; ++i)
                out[i] = (fold[i] ^ hist[i]) & msk;
        } else {
            HistoryShadow sh = shadow.front();
            for (std::size_t i = 0; i < count; ++i) {
                out[i] = sh.hist & msk;
                sh.template advance<Policy, WithHints>(
                    taken[i], WithHints ? codes[site[i]] : 0);
            }
            shadow.front() = sh;
        }
        if (table.prefetch) {
            for (std::size_t i = 0; i < count; ++i) {
                BPSIM_BATCH_PREFETCH(&table.cnt[out[i]]);
                if constexpr (Track)
                    BPSIM_BATCH_PREFETCH(&table.tags[out[i]]);
            }
        }
    }

    ApplyResult
    apply(unsigned slot, std::size_t i, Addr pc,
          std::uint64_t pc_index, bool taken)
    {
        const std::size_t k = Kind == IndexKind::Pc
                                  ? (pc_index & table.mask)
                                  : idx[slot][i];
        const std::uint8_t counter = table.cnt[k];
        const bool prediction = satCounterTaken(counter, table.msb);
        const bool correct = prediction == taken;
        const std::uint32_t collided =
            touchLane<Track>(table, stats, k, pc, correct);
        table.cnt[k] = satCounterTrain(counter, taken, table.maxv);
        return {correct, collided};
    }

    void
    flushSegment(P &predictor)
    {
        stats.flush(*table.src);
        if constexpr (Kind != IndexKind::Pc) {
            BatchTraits<P>::history(predictor).set(
                shadow.front().hist);
        }
    }

  private:
    LaneTable table;
    LaneStats stats;
    // Kept in a 0/1-sized vector so the Pc kind (bimodal, no history
    // member to read) never touches BatchTraits<P>::history.
    std::vector<HistoryShadow> shadow;
    BitCount idxBits = 0;
    std::size_t idx[pipelineSlots][batchRecords];
};

/** Batch state for the bi-mode predictor. */
template <bool Track>
class BiModeState
{
  public:
    explicit BiModeState(BiMode &predictor)
        : choice(BatchTraits<BiMode>::choice(predictor)),
          takenTable(BatchTraits<BiMode>::takenTable(predictor)),
          notTakenTable(BatchTraits<BiMode>::notTakenTable(predictor)),
          shadow(predictor),
          dirBits(
              BatchTraits<BiMode>::takenTable(predictor).indexBits())
    {
    }

    template <ShiftPolicy Policy, bool WithHints, bool WithSites>
    void
    prepare(unsigned slot, std::size_t count,
            const std::uint64_t *pc_index, const std::uint8_t *taken,
            const std::uint32_t *site, const std::uint8_t *codes,
            const batch::SiteTables *tables)
    {
        std::uint64_t hist[batchRecords];
        std::uint64_t fold[batchRecords];
        HistoryShadow sh = shadow;
        for (std::size_t i = 0; i < count; ++i) {
            hist[i] = sh.hist;
            if constexpr (WithSites) {
                choiceIdx[slot][i] =
                    tables->primary[site[i]] & choice.mask;
                fold[i] = tables->secondary[site[i]];
            } else {
                choiceIdx[slot][i] = pc_index[i] & choice.mask;
                fold[i] = foldBits(pc_index[i], dirBits);
            }
            sh.template advance<Policy, WithHints>(
                taken[i], WithHints ? codes[site[i]] : 0);
        }
        shadow = sh;
        for (std::size_t i = 0; i < count; ++i)
            dirIdx[slot][i] = (fold[i] ^ hist[i]) & takenTable.mask;
        if (choice.prefetch | takenTable.prefetch) {
            for (std::size_t i = 0; i < count; ++i) {
                BPSIM_BATCH_PREFETCH(&choice.cnt[choiceIdx[slot][i]]);
                // The direction table is chosen by the choice counter
                // at apply time; pull the line of both candidates.
                BPSIM_BATCH_PREFETCH(&takenTable.cnt[dirIdx[slot][i]]);
                BPSIM_BATCH_PREFETCH(
                    &notTakenTable.cnt[dirIdx[slot][i]]);
            }
        }
    }

    ApplyResult
    apply(unsigned slot, std::size_t i, Addr pc,
          std::uint64_t /*pc_index*/, bool taken)
    {
        const std::size_t kc = choiceIdx[slot][i];
        const std::size_t kd = dirIdx[slot][i];

        const std::uint8_t choiceCounter = choice.cnt[kc];
        const bool choseTaken =
            satCounterTaken(choiceCounter, choice.msb);
        LaneTable &selected = choseTaken ? takenTable : notTakenTable;
        LaneStats &selectedStats =
            choseTaken ? takenStats : notTakenStats;

        const std::uint8_t dirCounter = selected.cnt[kd];
        const bool prediction = satCounterTaken(dirCounter, selected.msb);
        const bool correct = prediction == taken;

        const std::uint32_t collided =
            touchLane<Track>(choice, choiceStats, kc, pc, correct) +
            touchLane<Track>(selected, selectedStats, kd, pc, correct);

        // Partial update: only the selected direction table trains.
        selected.cnt[kd] = satCounterTrain(dirCounter, taken,
                                           selected.maxv);

        // Choice trains toward the outcome except when it opposed the
        // outcome but the selected direction table still got it right.
        const bool choiceOpposes = choseTaken != taken;
        const std::uint8_t trained =
            satCounterTrain(choiceCounter, taken, choice.maxv);
        choice.cnt[kc] =
            (choiceOpposes && correct) ? choiceCounter : trained;

        return {correct, collided};
    }

    void
    flushSegment(BiMode &predictor)
    {
        choiceStats.flush(*choice.src);
        takenStats.flush(*takenTable.src);
        notTakenStats.flush(*notTakenTable.src);
        BatchTraits<BiMode>::history(predictor).set(shadow.hist);
    }

  private:
    LaneTable choice;
    LaneTable takenTable;
    LaneTable notTakenTable;
    LaneStats choiceStats;
    LaneStats takenStats;
    LaneStats notTakenStats;
    HistoryShadow shadow;
    BitCount dirBits;
    std::size_t choiceIdx[pipelineSlots][batchRecords];
    std::size_t dirIdx[pipelineSlots][batchRecords];
};

/** Batch state for the 2bcgskew predictor. */
template <bool Track>
class GskewState
{
  public:
    explicit GskewState(TwoBcGskew &predictor)
        : bim(BatchTraits<TwoBcGskew>::bim(predictor)),
          g0(BatchTraits<TwoBcGskew>::g0(predictor)),
          g1(BatchTraits<TwoBcGskew>::g1(predictor)),
          meta(BatchTraits<TwoBcGskew>::meta(predictor)),
          shadow(predictor),
          bankBits(
              BatchTraits<TwoBcGskew>::g0(predictor).indexBits()),
          metaBits(
              BatchTraits<TwoBcGskew>::meta(predictor).indexBits()),
          maskG0(mask(BatchTraits<TwoBcGskew>::histG0(predictor))),
          maskG1(mask(BatchTraits<TwoBcGskew>::histG1(predictor))),
          maskMeta(mask(BatchTraits<TwoBcGskew>::histMeta(predictor)))
    {
    }

    template <ShiftPolicy Policy, bool WithHints, bool WithSites>
    void
    prepare(unsigned slot, std::size_t count,
            const std::uint64_t *pc_index, const std::uint8_t *taken,
            const std::uint32_t *site, const std::uint8_t *codes,
            const batch::SiteTables *tables)
    {
        std::uint64_t a0[batchRecords];  // H(v1): bank-0 PC chain
        std::uint64_t a1x[batchRecords]; // H(H(v1)) ^ v1: bank-1 mix
        std::uint64_t v2a[batchRecords]; // folded history, g0 window
        std::uint64_t v2b[batchRecords]; // folded history, g1 window
        std::uint64_t mf[batchRecords];  // meta PC fold ^ history fold
        // Serial pass: history shadow, site-table loads (scalar on
        // purpose — L1-resident, beating gathered vector loads) and
        // the variable-width history folds. The shadow advances in a
        // register-resident copy, written back once per batch.
        HistoryShadow sh = shadow;
        for (std::size_t i = 0; i < count; ++i) {
            const std::uint64_t hist = sh.hist;
            if constexpr (WithSites) {
                bimIdx[slot][i] = tables->primary[site[i]] & bim.mask;
                a0[i] = tables->secondary[site[i]];
                a1x[i] = tables->tertiary[site[i]];
                mf[i] = tables->quaternary[site[i]];
            } else {
                bimIdx[slot][i] = pc_index[i] & bim.mask;
                const std::uint64_t v1 =
                    foldBits(pc_index[i], bankBits);
                a0[i] = skewH(v1, bankBits);
                a1x[i] = skewH(a0[i], bankBits) ^ v1;
                mf[i] = foldBits(pc_index[i], metaBits);
            }
            v2a[i] = foldBits(hist & maskG0, bankBits);
            v2b[i] = foldBits(hist & maskG1, bankBits);
            mf[i] ^= foldBits(hist & maskMeta, metaBits);
            sh.template advance<Policy, WithHints>(
                taken[i], WithHints ? codes[site[i]] : 0);
        }
        shadow = sh;
        // Elementwise pass: vectorizable across records.
        // skewIndex(0, v1, v2) = H(v1) ^ Hinv(v2) ^ v2 and
        // skewIndex(1, v1, v2) = H(H(v1)) ^ Hinv(Hinv(v2)) ^ v1; the
        // PC chains are carried per site, the history chains here.
        if (bankBits >= 2) {
            for (std::size_t i = 0; i < count; ++i) {
                const std::uint64_t inv1 =
                    skewHinvFast(v2a[i], bankBits, g0.mask);
                g0Idx[slot][i] = (a0[i] ^ inv1 ^ v2a[i]) & g0.mask;
                const std::uint64_t inv2 = skewHinvFast(
                    skewHinvFast(v2b[i], bankBits, g1.mask), bankBits,
                    g1.mask);
                g1Idx[slot][i] = (a1x[i] ^ inv2) & g1.mask;
                metaIdx[slot][i] = mf[i] & meta.mask;
            }
        } else {
            // Degenerate one-bit banks (tiny test tables): use the
            // library Hinv, which handles width 1.
            for (std::size_t i = 0; i < count; ++i) {
                g0Idx[slot][i] =
                    (a0[i] ^ skewHinv(v2a[i], bankBits) ^ v2a[i]) &
                    g0.mask;
                g1Idx[slot][i] =
                    (a1x[i] ^ skewHinv(skewHinv(v2b[i], bankBits),
                                       bankBits)) &
                    g1.mask;
                metaIdx[slot][i] = mf[i] & meta.mask;
            }
        }
        if (bim.prefetch | g0.prefetch | meta.prefetch) {
            for (std::size_t i = 0; i < count; ++i) {
                BPSIM_BATCH_PREFETCH(&bim.cnt[bimIdx[slot][i]]);
                BPSIM_BATCH_PREFETCH(&g0.cnt[g0Idx[slot][i]]);
                BPSIM_BATCH_PREFETCH(&g1.cnt[g1Idx[slot][i]]);
                BPSIM_BATCH_PREFETCH(&meta.cnt[metaIdx[slot][i]]);
            }
            if constexpr (Track) {
                for (std::size_t i = 0; i < count; ++i) {
                    BPSIM_BATCH_PREFETCH(&bim.tags[bimIdx[slot][i]]);
                    BPSIM_BATCH_PREFETCH(&g0.tags[g0Idx[slot][i]]);
                    BPSIM_BATCH_PREFETCH(&g1.tags[g1Idx[slot][i]]);
                    BPSIM_BATCH_PREFETCH(&meta.tags[metaIdx[slot][i]]);
                }
            }
        }
    }

    ApplyResult
    apply(unsigned slot, std::size_t i, Addr pc,
          std::uint64_t /*pc_index*/, bool taken)
    {
        const std::size_t kb = bimIdx[slot][i];
        const std::size_t k0 = g0Idx[slot][i];
        const std::size_t k1 = g1Idx[slot][i];
        const std::size_t km = metaIdx[slot][i];

        const std::uint8_t cb = bim.cnt[kb];
        const std::uint8_t c0 = g0.cnt[k0];
        const std::uint8_t c1 = g1.cnt[k1];
        const std::uint8_t cm = meta.cnt[km];
        const bool bimPred = satCounterTaken(cb, bim.msb);
        const bool g0Pred = satCounterTaken(c0, g0.msb);
        const bool g1Pred = satCounterTaken(c1, g1.msb);
        const bool majority =
            (static_cast<int>(bimPred) + static_cast<int>(g0Pred) +
             static_cast<int>(g1Pred)) >= 2;
        const bool useMajority = satCounterTaken(cm, meta.msb);
        const bool prediction = useMajority ? majority : bimPred;
        const bool correct = prediction == taken;

        const std::uint32_t collided =
            touchLane<Track>(bim, bimStats, kb, pc, correct) +
            touchLane<Track>(g0, g0Stats, k0, pc, correct) +
            touchLane<Track>(g1, g1Stats, k1, pc, correct) +
            touchLane<Track>(meta, metaStats, km, pc, correct);

        // Partial update as branchless masks: on a wrong overall
        // prediction all voting banks train; on a correct one only
        // the participants (majority voters, or the bimodal bank when
        // it alone was used) train.
        const bool trainBim =
            !correct || !useMajority || (bimPred == taken);
        const bool trainG0 =
            !correct || (useMajority && g0Pred == taken);
        const bool trainG1 =
            !correct || (useMajority && g1Pred == taken);
        bim.cnt[kb] =
            trainBim ? satCounterTrain(cb, taken, bim.maxv) : cb;
        g0.cnt[k0] = trainG0 ? satCounterTrain(c0, taken, g0.maxv) : c0;
        g1.cnt[k1] = trainG1 ? satCounterTrain(c1, taken, g1.maxv) : c1;

        // Meta trains only when the components disagree, toward
        // whichever was correct.
        const std::uint8_t metaTrained =
            satCounterTrain(cm, majority == taken, meta.maxv);
        meta.cnt[km] = (majority != bimPred) ? metaTrained : cm;

        return {correct, collided};
    }

    void
    flushSegment(TwoBcGskew &predictor)
    {
        bimStats.flush(*bim.src);
        g0Stats.flush(*g0.src);
        g1Stats.flush(*g1.src);
        metaStats.flush(*meta.src);
        BatchTraits<TwoBcGskew>::history(predictor).set(shadow.hist);
    }

  private:
    LaneTable bim;
    LaneTable g0;
    LaneTable g1;
    LaneTable meta;
    LaneStats bimStats;
    LaneStats g0Stats;
    LaneStats g1Stats;
    LaneStats metaStats;
    HistoryShadow shadow;
    BitCount bankBits;
    BitCount metaBits;
    std::uint64_t maskG0;
    std::uint64_t maskG1;
    std::uint64_t maskMeta;
    std::size_t bimIdx[pipelineSlots][batchRecords];
    std::size_t g0Idx[pipelineSlots][batchRecords];
    std::size_t g1Idx[pipelineSlots][batchRecords];
    std::size_t metaIdx[pipelineSlots][batchRecords];
};

/** The batch state class handling predictor type @p P. */
template <typename P, bool Track>
struct StateFor;

template <bool Track> struct StateFor<Bimodal, Track>
{
    using type = TableState<Bimodal, IndexKind::Pc, Track>;
};

template <bool Track> struct StateFor<Ghist, Track>
{
    using type = TableState<Ghist, IndexKind::HistOnly, Track>;
};

template <bool Track> struct StateFor<Gshare, Track>
{
    using type = TableState<Gshare, IndexKind::PcXorHist, Track>;
};

template <bool Track> struct StateFor<BiMode, Track>
{
    using type = BiModeState<Track>;
};

template <bool Track> struct StateFor<TwoBcGskew, Track>
{
    using type = GskewState<Track>;
};

/**
 * The batch driver: walk records [start, end) in batches, one batch
 * of lookahead deep. Each batch is decoded once and prepared for
 * every member while the previous batch is still unapplied, so the
 * prepare pass's work (and any prefetches) overlaps the previous
 * batch's apply work. The apply pass is record-major: every member
 * steps through a record before the pass moves to the next one, so
 * the members' mutually independent dependent chains (counter load ->
 * predict -> train -> store) overlap in the out-of-order window —
 * the same interleaving the record-at-a-time gang kernels use. @p N
 * is the compile-time member count (callers chunk larger gangs), so
 * the member loops fully unroll and the per-member accumulators are
 * register-resident fixed arrays. Stat totals equal the per-record
 * increments of the record-at-a-time kernels exactly (integer sums
 * in a different grouping); per member the record order is the
 * buffer order, so the table and history evolution is identical.
 */
template <typename P, ShiftPolicy Policy, bool Track, bool WithHints,
          bool WithSites, bool WithDense, std::size_t N>
void
runBatchLoop(P *const *predictors,
             const batch::SiteTables *const *site_tables,
             const std::uint8_t *const *hint_codes,
             SimStats *const *stats, const ReplayBuffer &buffer,
             const std::uint32_t *site_of, BranchProfile *profiles,
             Count start, Count end)
{
    using State = typename StateFor<P, Track>::type;
    constexpr std::size_t B = batchRecords;

    const Addr *pcs = buffer.pcData();
    const std::uint32_t *packed = buffer.packedData();

    std::vector<State> states;
    states.reserve(N);
    for (std::size_t m = 0; m < N; ++m)
        states.emplace_back(*predictors[m]);
    State *const st = states.data();

    Count mispredictions[N]{};
    Count staticPredicted[N]{};
    Count staticMispredicted[N]{};
    Count branches = 0;
    Count instructions = 0;

    Addr pc[pipelineSlots][B];
    std::uint64_t pcIndex[pipelineSlots][B];
    std::uint8_t taken[pipelineSlots][B];
    std::uint32_t site[pipelineSlots][B];
    std::size_t counts[pipelineSlots] = {};

    // Decode one batch's trace columns (lane-parallel: pure
    // elementwise integer ops over contiguous arrays), then run every
    // member's prepare pass over it. Static-hint codes are read
    // straight from the members' site-indexed code arrays — both here
    // and at apply time — so no per-batch staging buffer is needed.
    const auto decodeAndPrepare = [&](Count base, unsigned slot) {
        const std::size_t count =
            static_cast<std::size_t>(std::min<Count>(B, end - base));
        counts[slot] = count;
        for (std::size_t i = 0; i < count; ++i) {
            pc[slot][i] = pcs[base + i];
            pcIndex[slot][i] = pc[slot][i] / instructionBytes;
            const std::uint32_t word = packed[base + i];
            taken[slot][i] =
                (word & ReplayBuffer::packedTakenBit) != 0 ? 1 : 0;
            instructions += word & ~ReplayBuffer::packedTakenBit;
        }
        branches += count;
        if constexpr (WithSites) {
            for (std::size_t i = 0; i < count; ++i)
                site[slot][i] = site_of[base + i];
        }
        for (std::size_t m = 0; m < N; ++m) {
            st[m].template prepare<Policy, WithHints, WithSites>(
                slot, count, pcIndex[slot], taken[slot],
                WithSites ? site[slot] : nullptr,
                WithHints ? hint_codes[m] : nullptr,
                WithSites ? site_tables[m] : nullptr);
        }
    };

    if (start < end)
        decodeAndPrepare(start, 0);
    unsigned cur = 0;
    for (Count base = start; base < end; base += B) {
        if (base + B < end)
            decodeAndPrepare(base + B, cur ^ 1);
        const std::size_t count = counts[cur];
        for (std::size_t i = 0; i < count; ++i) {
            const Addr recPc = pc[cur][i];
            const std::uint64_t recPcIndex = pcIndex[cur][i];
            const bool recTaken = taken[cur][i] != 0;
            for (std::size_t m = 0; m < N; ++m) {
                if constexpr (WithHints) {
                    const std::uint8_t code =
                        hint_codes[m][site[cur][i]];
                    if ((code & batch::hintPresentBit) != 0) {
                        const bool direction =
                            (code & batch::hintTakenBit) != 0;
                        const bool miss = direction != recTaken;
                        mispredictions[m] += miss;
                        ++staticPredicted[m];
                        staticMispredicted[m] += miss;
                        continue;
                    }
                }
                const ApplyResult result =
                    st[m].apply(cur, i, recPc, recPcIndex, recTaken);
                mispredictions[m] += !result.correct;
                if constexpr (WithDense) {
                    BranchProfile &profile = profiles[site[cur][i]];
                    ++profile.executed;
                    profile.taken += recTaken ? 1 : 0;
                    ++profile.predicted;
                    profile.correct += result.correct ? 1 : 0;
                    profile.collisions += result.collided;
                }
            }
        }
        cur ^= 1;
    }

    for (std::size_t m = 0; m < N; ++m) {
        SimStats &out = *stats[m];
        out.branches += branches;
        out.instructions += instructions;
        out.mispredictions += mispredictions[m];
        out.staticPredicted += staticPredicted[m];
        out.staticMispredictions += staticMispredicted[m];
        st[m].flushSegment(*predictors[m]);
    }
}

/**
 * Run one gang chunk of compile-time size through the batch loop,
 * dispatching the runtime (policy, track) pair.
 */
template <typename P, std::size_t N>
void
dispatchGangChunk(const batch::GangArgs<P> &args, std::size_t offset)
{
    const auto run = [&](auto policy_tag, auto track_tag) {
        constexpr ShiftPolicy kPolicy = decltype(policy_tag)::value;
        constexpr bool kTrack = decltype(track_tag)::value;
        runBatchLoop<P, kPolicy, kTrack, true, true, false, N>(
            args.predictors + offset, args.siteTables + offset,
            args.hintCodes + offset, args.stats + offset,
            *args.buffer, args.siteOf, nullptr, args.from, args.to);
    };
    const auto dispatch = [&](auto policy_tag) {
        if (args.track)
            run(policy_tag, std::true_type{});
        else
            run(policy_tag, std::false_type{});
    };
    switch (args.policy) {
      case ShiftPolicy::NoShift:
        dispatch(std::integral_constant<ShiftPolicy,
                                        ShiftPolicy::NoShift>{});
        break;
      case ShiftPolicy::ShiftOutcome:
        dispatch(std::integral_constant<ShiftPolicy,
                                        ShiftPolicy::ShiftOutcome>{});
        break;
      case ShiftPolicy::ShiftPrediction:
        dispatch(std::integral_constant<
                 ShiftPolicy, ShiftPolicy::ShiftPrediction>{});
        break;
    }
}

} // namespace

template <typename P>
void
runGangBatch(const batch::GangArgs<P> &args)
{
    // Gangs larger than gangChunk run as successive fixed-size
    // chunks (each member still sees every record in order exactly
    // once); the compile-time chunk size keeps the apply pass's
    // member loop unrolled with register-resident accumulators.
    std::size_t offset = 0;
    while (offset < args.n) {
        const std::size_t rest = args.n - offset;
        switch (std::min(rest, gangChunk)) {
          case 1:
            dispatchGangChunk<P, 1>(args, offset);
            offset += 1;
            break;
          case 2:
            dispatchGangChunk<P, 2>(args, offset);
            offset += 2;
            break;
          case 3:
            dispatchGangChunk<P, 3>(args, offset);
            offset += 3;
            break;
          default:
            dispatchGangChunk<P, 4>(args, offset);
            offset += 4;
            break;
        }
    }
}

template <typename P>
void
runDenseBatch(const batch::DenseArgs<P> &args)
{
    P *predictor = args.predictor;
    const batch::SiteTables *tables = args.siteTables;
    SimStats *stats = args.stats;
    if (args.track) {
        runBatchLoop<P, ShiftPolicy::NoShift, true, false, true, true,
                     1>(&predictor, &tables, nullptr, &stats,
                        *args.buffer, args.siteOf, args.profiles,
                        args.from, args.to);
    } else {
        runBatchLoop<P, ShiftPolicy::NoShift, false, false, true,
                     true, 1>(&predictor, &tables, nullptr, &stats,
                              *args.buffer, args.siteOf, args.profiles,
                              args.from, args.to);
    }
}

template <typename P>
void
runPlainBatch(const batch::PlainArgs<P> &args)
{
    P *predictor = args.predictor;
    SimStats *stats = args.stats;
    if (args.track) {
        runBatchLoop<P, ShiftPolicy::NoShift, true, false, false,
                     false, 1>(&predictor, nullptr, nullptr, &stats,
                               *args.buffer, nullptr, nullptr,
                               args.from, args.to);
    } else {
        runBatchLoop<P, ShiftPolicy::NoShift, false, false, false,
                     false, 1>(&predictor, nullptr, nullptr, &stats,
                               *args.buffer, nullptr, nullptr,
                               args.from, args.to);
    }
}

template void runGangBatch<Bimodal>(const batch::GangArgs<Bimodal> &);
template void runGangBatch<Ghist>(const batch::GangArgs<Ghist> &);
template void runGangBatch<Gshare>(const batch::GangArgs<Gshare> &);
template void runGangBatch<BiMode>(const batch::GangArgs<BiMode> &);
template void
runGangBatch<TwoBcGskew>(const batch::GangArgs<TwoBcGskew> &);

template void
runDenseBatch<Bimodal>(const batch::DenseArgs<Bimodal> &);
template void runDenseBatch<Ghist>(const batch::DenseArgs<Ghist> &);
template void runDenseBatch<Gshare>(const batch::DenseArgs<Gshare> &);
template void runDenseBatch<BiMode>(const batch::DenseArgs<BiMode> &);
template void
runDenseBatch<TwoBcGskew>(const batch::DenseArgs<TwoBcGskew> &);

template void
runPlainBatch<Bimodal>(const batch::PlainArgs<Bimodal> &);
template void runPlainBatch<Ghist>(const batch::PlainArgs<Ghist> &);
template void runPlainBatch<Gshare>(const batch::PlainArgs<Gshare> &);
template void runPlainBatch<BiMode>(const batch::PlainArgs<BiMode> &);
template void
runPlainBatch<TwoBcGskew>(const batch::PlainArgs<TwoBcGskew> &);

} // namespace BPSIM_BATCH_NS
} // namespace bpsim

#undef BPSIM_BATCH_PREFETCH
