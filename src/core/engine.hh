/**
 * @file
 * Trace-driven simulation engine.
 *
 * Drives a predictor over a branch stream with the strict
 * predict/update/updateHistory protocol, gathers SimStats, and can
 * simultaneously populate a ProfileDb with per-branch outcome and
 * accuracy counts — which is exactly what the paper's phase-1
 * (selection) runs need.
 */

#ifndef BPSIM_CORE_ENGINE_HH
#define BPSIM_CORE_ENGINE_HH

#include "core/sim_stats.hh"
#include "predictor/predictor.hh"
#include "profile/profile_db.hh"
#include "trace/branch_stream.hh"

namespace bpsim
{

/** Options for one simulation run. */
struct SimOptions
{
    /** Stop after this many branches (0 = run the stream dry). */
    Count maxBranches = 0;

    /**
     * Branches simulated before statistics collection starts. The
     * predictor trains during warmup but mispredictions, collisions
     * and profile data are not recorded; maxBranches counts only the
     * measured window. Warmup removes cold-start noise when
     * comparing small measurement windows.
     */
    Count warmupBranches = 0;

    /**
     * Optional per-branch profile collector. Receives every outcome
     * and, for dynamically predicted branches, every prediction
     * result.
     */
    ProfileDb *profile = nullptr;

    /** Reset the predictor (tables + stats) before starting. */
    bool resetPredictor = true;

    /** Reset the stream before starting. */
    bool resetStream = true;
};

/**
 * Run @p predictor over @p stream.
 *
 * Works for plain dynamic predictors and for CombinedPredictor; in
 * the latter case static/dynamic attribution in the stats is taken
 * from the combined predictor.
 */
SimStats simulate(BranchPredictor &predictor, BranchStream &stream,
                  const SimOptions &options = {});

} // namespace bpsim

#endif // BPSIM_CORE_ENGINE_HH
