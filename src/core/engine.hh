/**
 * @file
 * Trace-driven simulation engine.
 *
 * Drives a predictor over a branch stream with the strict
 * predict/update/updateHistory protocol, gathers SimStats, and can
 * simultaneously populate a ProfileDb with per-branch outcome and
 * accuracy counts — which is exactly what the paper's phase-1
 * (selection) runs need.
 */

#ifndef BPSIM_CORE_ENGINE_HH
#define BPSIM_CORE_ENGINE_HH

#include <vector>

#include "core/sim_stats.hh"
#include "predictor/predictor.hh"
#include "profile/profile_db.hh"
#include "support/observe.hh"
#include "trace/branch_stream.hh"

namespace bpsim
{

class ReplayBuffer;

/** Options for one simulation run. */
struct SimOptions
{
    /** Stop after this many branches (0 = run the stream dry). */
    Count maxBranches = 0;

    /**
     * Branches simulated before statistics collection starts. The
     * predictor trains during warmup but mispredictions, collisions
     * and profile data are not recorded; maxBranches counts only the
     * measured window. Warmup removes cold-start noise when
     * comparing small measurement windows.
     */
    Count warmupBranches = 0;

    /**
     * Optional per-branch profile collector. Receives every outcome
     * and, for dynamically predicted branches, every prediction
     * result.
     */
    ProfileDb *profile = nullptr;

    /** Reset the predictor (tables + stats) before starting. */
    bool resetPredictor = true;

    /** Reset the stream before starting. */
    bool resetStream = true;

    /**
     * Let simulateReplay() use the devirtualized block kernels when
     * the predictor's concrete type supports them. When clear (or
     * when the type is not one of the five paper schemes) the run
     * falls back to the virtual-dispatch loop; results are
     * bit-identical either way.
     */
    bool fastPath = true;

    /**
     * Collect collision statistics. Honoured by the fast path only:
     * with it clear the kernels compile the tag bookkeeping out, so
     * SimStats::collisions and per-branch profile collision counts
     * read zero. The virtual path always tracks. Leave set whenever
     * collision numbers are part of the result.
     */
    bool trackCollisions = true;

    /**
     * Let the fast path run the batched SIMD-dispatch kernels
     * (core/batch_kernels.hh). When clear — or when BPSIM_SIMD=off
     * overrides — the record-at-a-time kernels run instead; results
     * are bit-identical either way. Honoured only where a batched
     * path exists (plain dynamic, gang, and dense-profile shapes);
     * other shapes silently use the record-at-a-time kernels.
     */
    bool simd = true;

    /**
     * Optional run-level counter registry (observability). The
     * engine bumps engine.kernel_runs / engine.virtual_runs,
     * engine.branches and engine.warmup_branches once per simulation
     * run — never inside the per-branch loop — so attaching a
     * registry costs nothing on the hot path.
     */
    CounterRegistry *counters = nullptr;
};

/**
 * Run @p predictor over @p stream.
 *
 * Works for plain dynamic predictors and for CombinedPredictor; in
 * the latter case static/dynamic attribution in the stats is taken
 * from the combined predictor.
 */
SimStats simulate(BranchPredictor &predictor, BranchStream &stream,
                  const SimOptions &options = {});

/**
 * Run @p predictor over a materialized trace.
 *
 * Semantically identical to simulate() over @p buffer.cursor() —
 * same stats, same profile contents, same final predictor state —
 * but when @p predictor (or, for a CombinedPredictor, its dynamic
 * component) is one of the five paper schemes, the run dispatches
 * once on the concrete type and executes a templated block kernel
 * over the buffer's raw columns: no virtual calls in the per-branch
 * loop. options.resetStream is meaningless here (the buffer is
 * immutable) and ignored.
 *
 * @param used_fast_path optionally receives whether a devirtualized
 *                       kernel ran (false = virtual fallback)
 * @param used_simd      optionally receives whether the batched
 *                       SIMD-dispatch kernels ran (false = the
 *                       record-at-a-time kernels or virtual loop)
 */
SimStats simulateReplay(BranchPredictor &predictor,
                        const ReplayBuffer &buffer,
                        const SimOptions &options = {},
                        bool *used_fast_path = nullptr,
                        bool *used_simd = nullptr);

class SiteIndex;

/**
 * One simulation of a fused replay pass: the predictor (with any
 * static-hint database and shift policy wrapped inside a
 * CombinedPredictor), its options, and the result slots
 * simulateReplayFused() fills.
 */
struct FusedSim
{
    /** The predictor to drive (not owned). */
    BranchPredictor *predictor = nullptr;

    /** Per-sim options; resetStream is ignored as in simulateReplay. */
    SimOptions options;

    /** Output: the run's statistics. */
    SimStats stats;

    /** Output: whether this sim ran a devirtualized kernel. */
    bool usedFastPath = false;

    /** Output: whether this sim ran the batched SIMD-dispatch
     * kernels (always false when usedFastPath is false). */
    bool usedSimd = false;
};

/**
 * Run every sim of @p sims over @p buffer in one fused pass: the
 * buffer's records are visited block by block, and every sim steps
 * through each block before the pass moves on, so N predictor
 * configurations share one trace walk instead of N.
 *
 * Results are bit-identical to calling simulateReplay() once per sim:
 * each sim advances its own predictor, history and statistics through
 * the same record sequence, warmup and maxBranches windows are
 * honoured per sim, and the same kernel-vs-virtual dispatch applies
 * (per sim, reported in FusedSim::usedFastPath).
 *
 * @p sites optionally carries the buffer's site enumeration, letting
 * the pass flatten per-record static-hint hash lookups and per-branch
 * profile accumulation onto dense site-indexed arrays. Pure
 * acceleration: results are identical with or without it. When given
 * it must have been built from @p buffer.
 */
void simulateReplayFused(std::vector<FusedSim> &sims,
                         const ReplayBuffer &buffer,
                         const SiteIndex *sites = nullptr);

} // namespace bpsim

#endif // BPSIM_CORE_ENGINE_HH
