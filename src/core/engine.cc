#include "core/engine.hh"

#include <algorithm>
#include <type_traits>

#include "core/combined_predictor.hh"
#include "predictor/factory.hh"
#include "trace/replay_buffer.hh"

namespace bpsim
{

namespace
{

/**
 * The measured loop, stamped out per configuration so the per-branch
 * path pays neither for profiling when no ProfileDb is attached nor
 * for static/dynamic attribution when the predictor is not combined.
 */
template <bool WithProfile, bool IsCombined>
SimStats
runMeasured(BranchPredictor &predictor, CombinedPredictor *combined,
            BranchStream &stream, const SimOptions &options)
{
    SimStats stats;
    BranchRecord record;
    const Count limit = options.maxBranches == 0 ? ~Count{0}
                                                 : options.maxBranches;

    while (stats.branches < limit && stream.next(record)) {
        const bool prediction = predictor.predict(record.pc);
        const bool correct = prediction == record.taken;
        // Must be sampled between predict() and update(): update()
        // classifies and clears the pending collision state.
        Count lookup_collisions = 0;
        if constexpr (WithProfile)
            lookup_collisions = predictor.lastPredictCollisions();

        predictor.update(record.pc, record.taken);
        predictor.updateHistory(record.taken);

        ++stats.branches;
        stats.instructions += record.instGap;
        if (!correct)
            ++stats.mispredictions;

        bool was_static = false;
        if constexpr (IsCombined) {
            was_static = combined->lastWasStatic();
            if (was_static) {
                ++stats.staticPredicted;
                if (!correct)
                    ++stats.staticMispredictions;
            }
        }

        if constexpr (WithProfile) {
            options.profile->recordOutcome(record.pc, record.taken);
            // Accuracy counts describe the *dynamic* predictor, so
            // statically resolved branches do not contribute.
            if (!was_static) {
                options.profile->recordPrediction(record.pc, correct);
                if (lookup_collisions > 0)
                    options.profile->recordCollisions(
                        record.pc, lookup_collisions);
            }
        }
    }

    stats.collisions = predictor.collisionStats();
    return stats;
}

/**
 * Branches per inner kernel loop. The bounded trip count lets the
 * compiler keep the loop body register-resident; the value itself is
 * not semantically significant.
 */
constexpr Count kernelBlock = 4096;

/**
 * Devirtualized replay kernel for a bare dynamic predictor of
 * concrete type @p P. Replays records [start, end) of the buffer's
 * raw columns through the predictor's inline *Step protocol —
 * the loop body contains no indirect calls.
 */
template <bool WithProfile, bool Track, typename P>
void
runReplayDynamic(P &predictor, const ReplayBuffer &buffer, Count start,
                 Count end, SimStats &stats, ProfileDb *profile)
{
    const Addr *pcs = buffer.pcData();
    const std::uint32_t *packed = buffer.packedData();

    for (Count base = start; base < end; base += kernelBlock) {
        const Count stop = std::min(base + kernelBlock, end);
        for (Count i = base; i < stop; ++i) {
            const Addr pc = pcs[i];
            const std::uint32_t word = packed[i];
            const bool taken =
                (word & ReplayBuffer::packedTakenBit) != 0;

            const bool prediction =
                predictor.template predictStep<Track>(pc);
            const bool correct = prediction == taken;
            // Must be sampled between the predict and update steps:
            // updateStep() classifies and clears the pending state.
            Count lookup_collisions = 0;
            if constexpr (WithProfile)
                lookup_collisions = predictor.pendingStep();

            predictor.template updateStep<Track>(pc, taken);
            predictor.historyStep(taken);

            ++stats.branches;
            stats.instructions += word & ~ReplayBuffer::packedTakenBit;
            if (!correct)
                ++stats.mispredictions;

            if constexpr (WithProfile) {
                profile->recordOutcome(pc, taken);
                profile->recordPrediction(pc, correct);
                if (lookup_collisions > 0)
                    profile->recordCollisions(pc, lookup_collisions);
            }
        }
    }
}

/**
 * Devirtualized replay kernel for a CombinedPredictor whose dynamic
 * component has concrete type @p P. Replicates the combined
 * predict/update/updateHistory semantics inline: hinted branches are
 * resolved statically, never touch the dynamic tables, and feed the
 * history register per the shift policy.
 */
template <bool WithProfile, bool Track, typename P>
void
runReplayCombined(P &predictor, const HintDb &hints,
                  ShiftPolicy policy, const ReplayBuffer &buffer,
                  Count start, Count end, SimStats &stats,
                  ProfileDb *profile)
{
    const Addr *pcs = buffer.pcData();
    const std::uint32_t *packed = buffer.packedData();

    for (Count base = start; base < end; base += kernelBlock) {
        const Count stop = std::min(base + kernelBlock, end);
        for (Count i = base; i < stop; ++i) {
            const Addr pc = pcs[i];
            const std::uint32_t word = packed[i];
            const bool taken =
                (word & ReplayBuffer::packedTakenBit) != 0;

            bool hint_direction = false;
            const bool was_static = hints.lookup(pc, hint_direction);
            bool correct;
            Count lookup_collisions = 0;
            if (was_static) {
                correct = hint_direction == taken;
                switch (policy) {
                  case ShiftPolicy::NoShift:
                    break;
                  case ShiftPolicy::ShiftOutcome:
                    predictor.historyStep(taken);
                    break;
                  case ShiftPolicy::ShiftPrediction:
                    predictor.historyStep(hint_direction);
                    break;
                }
                ++stats.staticPredicted;
                if (!correct)
                    ++stats.staticMispredictions;
            } else {
                const bool prediction =
                    predictor.template predictStep<Track>(pc);
                correct = prediction == taken;
                if constexpr (WithProfile)
                    lookup_collisions = predictor.pendingStep();
                predictor.template updateStep<Track>(pc, taken);
                predictor.historyStep(taken);
            }

            ++stats.branches;
            stats.instructions += word & ~ReplayBuffer::packedTakenBit;
            if (!correct)
                ++stats.mispredictions;

            if constexpr (WithProfile) {
                profile->recordOutcome(pc, taken);
                // Accuracy counts describe the *dynamic* predictor,
                // so statically resolved branches do not contribute.
                if (!was_static) {
                    profile->recordPrediction(pc, correct);
                    if (lookup_collisions > 0)
                        profile->recordCollisions(pc,
                                                  lookup_collisions);
                }
            }
        }
    }
}

/**
 * Run the full warmup + measurement schedule over the buffer through
 * the devirtualized kernels, mirroring simulate()'s structure.
 */
template <typename P>
SimStats
runReplay(P &concrete, BranchPredictor &outer, const HintDb *hints,
          ShiftPolicy policy, const ReplayBuffer &buffer,
          const SimOptions &options)
{
    const Count total = buffer.size();
    const Count warmup_end = std::min(options.warmupBranches, total);
    const Count limit = options.maxBranches == 0 ? ~Count{0}
                                                 : options.maxBranches;
    const Count end =
        warmup_end + std::min(limit, total - warmup_end);

    const bool with_profile = options.profile != nullptr;
    const bool track = options.trackCollisions;

    const auto run = [&](auto with_profile_tag, auto track_tag,
                         Count from, Count to, SimStats &stats,
                         ProfileDb *profile) {
        constexpr bool kWithProfile = decltype(with_profile_tag)::value;
        constexpr bool kTrack = decltype(track_tag)::value;
        if (hints != nullptr) {
            runReplayCombined<kWithProfile, kTrack>(
                concrete, *hints, policy, buffer, from, to, stats,
                profile);
        } else {
            runReplayDynamic<kWithProfile, kTrack>(
                concrete, buffer, from, to, stats, profile);
        }
    };

    // Warmup: train the predictor without recording anything.
    if (warmup_end > 0) {
        SimStats discarded;
        if (track) {
            run(std::false_type{}, std::true_type{}, 0, warmup_end,
                discarded, nullptr);
        } else {
            run(std::false_type{}, std::false_type{}, 0, warmup_end,
                discarded, nullptr);
        }
        outer.clearCollisionStats();
    }

    SimStats stats;
    if (with_profile && track) {
        run(std::true_type{}, std::true_type{}, warmup_end, end, stats,
            options.profile);
    } else if (with_profile) {
        run(std::true_type{}, std::false_type{}, warmup_end, end,
            stats, options.profile);
    } else if (track) {
        run(std::false_type{}, std::true_type{}, warmup_end, end,
            stats, nullptr);
    } else {
        run(std::false_type{}, std::false_type{}, warmup_end, end,
            stats, nullptr);
    }

    stats.collisions = outer.collisionStats();
    return stats;
}

} // namespace

SimStats
simulate(BranchPredictor &predictor, BranchStream &stream,
         const SimOptions &options)
{
    if (options.resetStream)
        stream.reset();
    if (options.resetPredictor)
        predictor.reset();
    predictor.clearCollisionStats();

    auto *combined = dynamic_cast<CombinedPredictor *>(&predictor);

    // Warmup: train the predictor without recording anything.
    BranchRecord record;
    Count warmup_run = 0;
    for (Count i = 0;
         i < options.warmupBranches && stream.next(record); ++i) {
        predictor.predict(record.pc);
        predictor.update(record.pc, record.taken);
        predictor.updateHistory(record.taken);
        ++warmup_run;
    }
    predictor.clearCollisionStats();

    const bool with_profile = options.profile != nullptr;
    SimStats stats;
    if (combined != nullptr) {
        stats = with_profile
                    ? runMeasured<true, true>(predictor, combined,
                                              stream, options)
                    : runMeasured<false, true>(predictor, combined,
                                               stream, options);
    } else {
        stats = with_profile
                    ? runMeasured<true, false>(predictor, nullptr,
                                               stream, options)
                    : runMeasured<false, false>(predictor, nullptr,
                                                stream, options);
    }

    if (options.counters != nullptr) {
        options.counters->add("engine.virtual_runs");
        options.counters->add("engine.branches", stats.branches);
        if (warmup_run > 0)
            options.counters->add("engine.warmup_branches",
                                  warmup_run);
    }
    return stats;
}

SimStats
simulateReplay(BranchPredictor &predictor, const ReplayBuffer &buffer,
               const SimOptions &options, bool *used_fast_path)
{
    SimStats stats;
    bool used = false;

    if (options.fastPath) {
        auto *combined = dynamic_cast<CombinedPredictor *>(&predictor);
        // An empty hint database makes the combined wrapper a pure
        // pass-through, so such cells run the cheaper dynamic kernel;
        // the results are identical.
        const bool hinted =
            combined != nullptr && combined->hintDb().size() > 0;
        const HintDb *hints = hinted ? &combined->hintDb() : nullptr;
        const ShiftPolicy policy =
            hinted ? combined->policy() : ShiftPolicy::NoShift;
        BranchPredictor &dyn = combined != nullptr
                                   ? combined->dynamicComponent()
                                   : predictor;

        used = visitPredictor(dyn, [&](auto &concrete) {
            if (options.resetPredictor)
                predictor.reset();
            predictor.clearCollisionStats();
            stats = runReplay(concrete, predictor, hints, policy,
                              buffer, options);
        });
        if (used && options.counters != nullptr) {
            options.counters->add("engine.kernel_runs");
            options.counters->add("engine.branches", stats.branches);
            const Count warmup_run =
                std::min(options.warmupBranches, buffer.size());
            if (warmup_run > 0)
                options.counters->add("engine.warmup_branches",
                                      warmup_run);
        }
    }

    if (!used) {
        auto cursor = buffer.cursor();
        stats = simulate(predictor, cursor, options);
    }
    if (used_fast_path != nullptr)
        *used_fast_path = used;
    return stats;
}

} // namespace bpsim
