#include "core/engine.hh"

#include "core/combined_predictor.hh"

namespace bpsim
{

SimStats
simulate(BranchPredictor &predictor, BranchStream &stream,
         const SimOptions &options)
{
    if (options.resetStream)
        stream.reset();
    if (options.resetPredictor)
        predictor.reset();
    predictor.clearCollisionStats();

    auto *combined = dynamic_cast<CombinedPredictor *>(&predictor);

    SimStats stats;
    BranchRecord record;
    const Count limit = options.maxBranches == 0 ? ~Count{0}
                                                 : options.maxBranches;

    // Warmup: train the predictor without recording anything.
    for (Count i = 0;
         i < options.warmupBranches && stream.next(record); ++i) {
        predictor.predict(record.pc);
        predictor.update(record.pc, record.taken);
        predictor.updateHistory(record.taken);
    }
    predictor.clearCollisionStats();

    while (stats.branches < limit && stream.next(record)) {
        const bool prediction = predictor.predict(record.pc);
        const bool correct = prediction == record.taken;
        // Must be sampled between predict() and update(): update()
        // classifies and clears the pending collision state.
        const Count lookup_collisions =
            options.profile != nullptr
                ? predictor.lastPredictCollisions()
                : 0;

        predictor.update(record.pc, record.taken);
        predictor.updateHistory(record.taken);

        ++stats.branches;
        stats.instructions += record.instGap;
        if (!correct)
            ++stats.mispredictions;

        const bool was_static =
            combined != nullptr && combined->lastWasStatic();
        if (was_static) {
            ++stats.staticPredicted;
            if (!correct)
                ++stats.staticMispredictions;
        }

        if (options.profile != nullptr) {
            options.profile->recordOutcome(record.pc, record.taken);
            // Accuracy counts describe the *dynamic* predictor, so
            // statically resolved branches do not contribute.
            if (!was_static) {
                options.profile->recordPrediction(record.pc, correct);
                if (lookup_collisions > 0)
                    options.profile->recordCollisions(
                        record.pc, lookup_collisions);
            }
        }
    }

    stats.collisions = predictor.collisionStats();
    return stats;
}

} // namespace bpsim
