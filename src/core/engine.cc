#include "core/engine.hh"

#include "core/combined_predictor.hh"

namespace bpsim
{

namespace
{

/**
 * The measured loop, stamped out per configuration so the per-branch
 * path pays neither for profiling when no ProfileDb is attached nor
 * for static/dynamic attribution when the predictor is not combined.
 */
template <bool WithProfile, bool IsCombined>
SimStats
runMeasured(BranchPredictor &predictor, CombinedPredictor *combined,
            BranchStream &stream, const SimOptions &options)
{
    SimStats stats;
    BranchRecord record;
    const Count limit = options.maxBranches == 0 ? ~Count{0}
                                                 : options.maxBranches;

    while (stats.branches < limit && stream.next(record)) {
        const bool prediction = predictor.predict(record.pc);
        const bool correct = prediction == record.taken;
        // Must be sampled between predict() and update(): update()
        // classifies and clears the pending collision state.
        Count lookup_collisions = 0;
        if constexpr (WithProfile)
            lookup_collisions = predictor.lastPredictCollisions();

        predictor.update(record.pc, record.taken);
        predictor.updateHistory(record.taken);

        ++stats.branches;
        stats.instructions += record.instGap;
        if (!correct)
            ++stats.mispredictions;

        bool was_static = false;
        if constexpr (IsCombined) {
            was_static = combined->lastWasStatic();
            if (was_static) {
                ++stats.staticPredicted;
                if (!correct)
                    ++stats.staticMispredictions;
            }
        }

        if constexpr (WithProfile) {
            options.profile->recordOutcome(record.pc, record.taken);
            // Accuracy counts describe the *dynamic* predictor, so
            // statically resolved branches do not contribute.
            if (!was_static) {
                options.profile->recordPrediction(record.pc, correct);
                if (lookup_collisions > 0)
                    options.profile->recordCollisions(
                        record.pc, lookup_collisions);
            }
        }
    }

    stats.collisions = predictor.collisionStats();
    return stats;
}

} // namespace

SimStats
simulate(BranchPredictor &predictor, BranchStream &stream,
         const SimOptions &options)
{
    if (options.resetStream)
        stream.reset();
    if (options.resetPredictor)
        predictor.reset();
    predictor.clearCollisionStats();

    auto *combined = dynamic_cast<CombinedPredictor *>(&predictor);

    // Warmup: train the predictor without recording anything.
    BranchRecord record;
    for (Count i = 0;
         i < options.warmupBranches && stream.next(record); ++i) {
        predictor.predict(record.pc);
        predictor.update(record.pc, record.taken);
        predictor.updateHistory(record.taken);
    }
    predictor.clearCollisionStats();

    const bool with_profile = options.profile != nullptr;
    if (combined != nullptr) {
        return with_profile
                   ? runMeasured<true, true>(predictor, combined,
                                             stream, options)
                   : runMeasured<false, true>(predictor, combined,
                                              stream, options);
    }
    return with_profile
               ? runMeasured<true, false>(predictor, nullptr, stream,
                                          options)
               : runMeasured<false, false>(predictor, nullptr, stream,
                                           options);
}

} // namespace bpsim
