#include "core/engine.hh"

#include <algorithm>
#include <memory>
#include <type_traits>
#include <typeindex>
#include <vector>

#include "core/batch_kernels.hh"
#include "core/combined_predictor.hh"
#include "core/simd.hh"
#include "predictor/factory.hh"
#include "support/logging.hh"
#include "trace/replay_buffer.hh"

namespace bpsim
{

namespace
{

/**
 * The measured loop, stamped out per configuration so the per-branch
 * path pays neither for profiling when no ProfileDb is attached nor
 * for static/dynamic attribution when the predictor is not combined.
 */
template <bool WithProfile, bool IsCombined>
SimStats
runMeasured(BranchPredictor &predictor, CombinedPredictor *combined,
            BranchStream &stream, const SimOptions &options)
{
    SimStats stats;
    BranchRecord record;
    const Count limit = options.maxBranches == 0 ? ~Count{0}
                                                 : options.maxBranches;

    while (stats.branches < limit && stream.next(record)) {
        const bool prediction = predictor.predict(record.pc);
        const bool correct = prediction == record.taken;
        // Must be sampled between predict() and update(): update()
        // classifies and clears the pending collision state.
        Count lookup_collisions = 0;
        if constexpr (WithProfile)
            lookup_collisions = predictor.lastPredictCollisions();

        predictor.update(record.pc, record.taken);
        predictor.updateHistory(record.taken);

        ++stats.branches;
        stats.instructions += record.instGap;
        if (!correct)
            ++stats.mispredictions;

        bool was_static = false;
        if constexpr (IsCombined) {
            was_static = combined->lastWasStatic();
            if (was_static) {
                ++stats.staticPredicted;
                if (!correct)
                    ++stats.staticMispredictions;
            }
        }

        if constexpr (WithProfile) {
            options.profile->recordOutcome(record.pc, record.taken);
            // Accuracy counts describe the *dynamic* predictor, so
            // statically resolved branches do not contribute.
            if (!was_static) {
                options.profile->recordPrediction(record.pc, correct);
                if (lookup_collisions > 0)
                    options.profile->recordCollisions(
                        record.pc, lookup_collisions);
            }
        }
    }

    stats.collisions = predictor.collisionStats();
    return stats;
}

/**
 * Branches per inner kernel loop. The bounded trip count lets the
 * compiler keep the loop body register-resident; the value itself is
 * not semantically significant.
 */
constexpr Count kernelBlock = 4096;

/**
 * Records per fused-walk block. Larger than kernelBlock: with every
 * sim of a fused pass stepping through the block before the walk
 * advances, the per-block fixed costs (virtual dispatch into each
 * exec, loop setup, stats spills) amortize over more records, and the
 * shared trace columns still stream through L2. 64Ki records ≈ 768KB
 * of trace columns; measured best on the reference container across a
 * 512..4Mi sweep.
 */
constexpr Count fusedBlock = 65536;

/**
 * Devirtualized replay kernel for a bare dynamic predictor of
 * concrete type @p P. Replays records [start, end) of the buffer's
 * raw columns through the predictor's inline *Step protocol —
 * the loop body contains no indirect calls.
 */
template <bool WithProfile, bool Track, typename P>
void
runReplayDynamic(P &predictor, const ReplayBuffer &buffer, Count start,
                 Count end, SimStats &stats, ProfileDb *profile)
{
    const Addr *pcs = buffer.pcData();
    const std::uint32_t *packed = buffer.packedData();

    for (Count base = start; base < end; base += kernelBlock) {
        const Count stop = std::min(base + kernelBlock, end);
        for (Count i = base; i < stop; ++i) {
            const Addr pc = pcs[i];
            const std::uint32_t word = packed[i];
            const bool taken =
                (word & ReplayBuffer::packedTakenBit) != 0;

            const bool prediction =
                predictor.template predictStep<Track>(pc);
            const bool correct = prediction == taken;
            // Must be sampled between the predict and update steps:
            // updateStep() classifies and clears the pending state.
            Count lookup_collisions = 0;
            if constexpr (WithProfile)
                lookup_collisions = predictor.pendingStep();

            predictor.template updateStep<Track>(pc, taken);
            predictor.historyStep(taken);

            ++stats.branches;
            stats.instructions += word & ~ReplayBuffer::packedTakenBit;
            if (!correct)
                ++stats.mispredictions;

            if constexpr (WithProfile) {
                profile->recordOutcome(pc, taken);
                profile->recordPrediction(pc, correct);
                if (lookup_collisions > 0)
                    profile->recordCollisions(pc, lookup_collisions);
            }
        }
    }
}

/**
 * Devirtualized replay kernel for a CombinedPredictor whose dynamic
 * component has concrete type @p P. Replicates the combined
 * predict/update/updateHistory semantics inline: hinted branches are
 * resolved statically, never touch the dynamic tables, and feed the
 * history register per the shift policy.
 */
template <bool WithProfile, bool Track, typename P>
void
runReplayCombined(P &predictor, const HintDb &hints,
                  ShiftPolicy policy, const ReplayBuffer &buffer,
                  Count start, Count end, SimStats &stats,
                  ProfileDb *profile)
{
    const Addr *pcs = buffer.pcData();
    const std::uint32_t *packed = buffer.packedData();

    for (Count base = start; base < end; base += kernelBlock) {
        const Count stop = std::min(base + kernelBlock, end);
        for (Count i = base; i < stop; ++i) {
            const Addr pc = pcs[i];
            const std::uint32_t word = packed[i];
            const bool taken =
                (word & ReplayBuffer::packedTakenBit) != 0;

            bool hint_direction = false;
            const bool was_static = hints.lookup(pc, hint_direction);
            bool correct;
            Count lookup_collisions = 0;
            if (was_static) {
                correct = hint_direction == taken;
                switch (policy) {
                  case ShiftPolicy::NoShift:
                    break;
                  case ShiftPolicy::ShiftOutcome:
                    predictor.historyStep(taken);
                    break;
                  case ShiftPolicy::ShiftPrediction:
                    predictor.historyStep(hint_direction);
                    break;
                }
                ++stats.staticPredicted;
                if (!correct)
                    ++stats.staticMispredictions;
            } else {
                const bool prediction =
                    predictor.template predictStep<Track>(pc);
                correct = prediction == taken;
                if constexpr (WithProfile)
                    lookup_collisions = predictor.pendingStep();
                predictor.template updateStep<Track>(pc, taken);
                predictor.historyStep(taken);
            }

            ++stats.branches;
            stats.instructions += word & ~ReplayBuffer::packedTakenBit;
            if (!correct)
                ++stats.mispredictions;

            if constexpr (WithProfile) {
                profile->recordOutcome(pc, taken);
                // Accuracy counts describe the *dynamic* predictor,
                // so statically resolved branches do not contribute.
                if (!was_static) {
                    profile->recordPrediction(pc, correct);
                    if (lookup_collisions > 0)
                        profile->recordCollisions(pc,
                                                  lookup_collisions);
                }
            }
        }
    }
}

/**
 * Run the full warmup + measurement schedule over the buffer through
 * the devirtualized kernels, mirroring simulate()'s structure.
 */
template <typename P>
SimStats
runReplay(P &concrete, BranchPredictor &outer, const HintDb *hints,
          ShiftPolicy policy, const ReplayBuffer &buffer,
          const SimOptions &options, bool *used_simd = nullptr)
{
    const Count total = buffer.size();
    const Count warmup_end = std::min(options.warmupBranches, total);
    const Count limit = options.maxBranches == 0 ? ~Count{0}
                                                 : options.maxBranches;
    const Count end =
        warmup_end + std::min(limit, total - warmup_end);

    const bool with_profile = options.profile != nullptr;
    const bool track = options.trackCollisions;

    // The batched kernels cover the plain dynamic shape here; hinted
    // (hash-lookup) and profiling runs keep the record-at-a-time
    // kernels. Bit-identical either way.
    const BatchKernelSet<P> kernels =
        batchKernelsFor<P>(resolveSimdLevel(options.simd));
    if (used_simd != nullptr) {
        *used_simd =
            kernels.plain != nullptr && hints == nullptr &&
            !with_profile;
    }

    const auto run = [&](auto with_profile_tag, auto track_tag,
                         Count from, Count to, SimStats &stats,
                         ProfileDb *profile) {
        constexpr bool kWithProfile = decltype(with_profile_tag)::value;
        constexpr bool kTrack = decltype(track_tag)::value;
        if (hints != nullptr) {
            runReplayCombined<kWithProfile, kTrack>(
                concrete, *hints, policy, buffer, from, to, stats,
                profile);
        } else if (!kWithProfile && kernels.plain != nullptr) {
            batch::PlainArgs<P> args;
            args.predictor = &concrete;
            args.stats = &stats;
            args.buffer = &buffer;
            args.from = from;
            args.to = to;
            args.track = kTrack;
            kernels.plain(args);
        } else {
            runReplayDynamic<kWithProfile, kTrack>(
                concrete, buffer, from, to, stats, profile);
        }
    };

    // Warmup: train the predictor without recording anything.
    if (warmup_end > 0) {
        SimStats discarded;
        if (track) {
            run(std::false_type{}, std::true_type{}, 0, warmup_end,
                discarded, nullptr);
        } else {
            run(std::false_type{}, std::false_type{}, 0, warmup_end,
                discarded, nullptr);
        }
        outer.clearCollisionStats();
    }

    SimStats stats;
    if (with_profile && track) {
        run(std::true_type{}, std::true_type{}, warmup_end, end, stats,
            options.profile);
    } else if (with_profile) {
        run(std::true_type{}, std::false_type{}, warmup_end, end,
            stats, options.profile);
    } else if (track) {
        run(std::false_type{}, std::true_type{}, warmup_end, end,
            stats, nullptr);
    } else {
        run(std::false_type{}, std::false_type{}, warmup_end, end,
            stats, nullptr);
    }

    stats.collisions = outer.collisionStats();
    return stats;
}

// Dense hint-code bits (0 = no hint for the site); shared with the
// batch kernels, which consume the same per-site code arrays.
using batch::hintPresentBit;
using batch::hintTakenBit;

/**
 * Dense-hint variant of runReplayCombined for the fused executor: the
 * per-record HintDb hash lookup becomes a site-indexed byte load and
 * the shift policy is a compile-time constant. Semantically identical
 * to runReplayCombined over the same records.
 */
template <bool WithProfile, bool Track, ShiftPolicy Policy, typename P>
void
runReplayCombinedSites(P &predictor, const std::uint8_t *hint_code,
                       const std::uint32_t *site_of,
                       const ReplayBuffer &buffer, Count start,
                       Count end, SimStats &stats, ProfileDb *profile)
{
    const Addr *pcs = buffer.pcData();
    const std::uint32_t *packed = buffer.packedData();

    for (Count base = start; base < end; base += kernelBlock) {
        const Count stop = std::min(base + kernelBlock, end);
        for (Count i = base; i < stop; ++i) {
            const Addr pc = pcs[i];
            const std::uint32_t word = packed[i];
            const bool taken =
                (word & ReplayBuffer::packedTakenBit) != 0;

            const std::uint8_t code = hint_code[site_of[i]];
            const bool was_static = (code & hintPresentBit) != 0;
            bool correct;
            Count lookup_collisions = 0;
            if (was_static) {
                const bool hint_direction =
                    (code & hintTakenBit) != 0;
                correct = hint_direction == taken;
                if constexpr (Policy == ShiftPolicy::ShiftOutcome)
                    predictor.historyStep(taken);
                else if constexpr (Policy ==
                                   ShiftPolicy::ShiftPrediction)
                    predictor.historyStep(hint_direction);
                ++stats.staticPredicted;
                if (!correct)
                    ++stats.staticMispredictions;
            } else {
                const bool prediction =
                    predictor.template predictStep<Track>(pc);
                correct = prediction == taken;
                if constexpr (WithProfile)
                    lookup_collisions = predictor.pendingStep();
                predictor.template updateStep<Track>(pc, taken);
                predictor.historyStep(taken);
            }

            ++stats.branches;
            stats.instructions += word & ~ReplayBuffer::packedTakenBit;
            if (!correct)
                ++stats.mispredictions;

            if constexpr (WithProfile) {
                profile->recordOutcome(pc, taken);
                // Accuracy counts describe the *dynamic* predictor,
                // so statically resolved branches do not contribute.
                if (!was_static) {
                    profile->recordPrediction(pc, correct);
                    if (lookup_collisions > 0)
                        profile->recordCollisions(pc,
                                                  lookup_collisions);
                }
            }
        }
    }
}

/** Per-site profile accumulator standing in for a ProfileDb. */
struct DenseProfile
{
    std::vector<BranchProfile> counts;
};

/**
 * Dense-profile variant of runReplayDynamic<true, Track> for the
 * fused executor: per-branch profile updates hit a site-indexed
 * array instead of the ProfileDb hash map; the counts are flushed
 * into the real database when the pass finishes. Every record of the
 * dynamic path is predicted, so predicted mirrors executed, and
 * adding a zero collision count matches skipping the call.
 */
template <bool Track, typename P>
void
runReplayDynamicDense(P &predictor, const std::uint32_t *site_of,
                      const ReplayBuffer &buffer, Count start,
                      Count end, SimStats &stats, DenseProfile &dense)
{
    const Addr *pcs = buffer.pcData();
    const std::uint32_t *packed = buffer.packedData();

    for (Count base = start; base < end; base += kernelBlock) {
        const Count stop = std::min(base + kernelBlock, end);
        for (Count i = base; i < stop; ++i) {
            const Addr pc = pcs[i];
            const std::uint32_t word = packed[i];
            const bool taken =
                (word & ReplayBuffer::packedTakenBit) != 0;

            const bool prediction =
                predictor.template predictStep<Track>(pc);
            const bool correct = prediction == taken;
            const Count lookup_collisions = predictor.pendingStep();

            predictor.template updateStep<Track>(pc, taken);
            predictor.historyStep(taken);

            ++stats.branches;
            stats.instructions += word & ~ReplayBuffer::packedTakenBit;
            if (!correct)
                ++stats.mispredictions;

            BranchProfile &site = dense.counts[site_of[i]];
            ++site.executed;
            site.taken += taken ? 1 : 0;
            ++site.predicted;
            site.correct += correct ? 1 : 0;
            site.collisions += lookup_collisions;
        }
    }
}

/**
 * One participant of a fused pass's shared block walk: a single sim
 * (FusedStepper) or a gang of same-type sims (GangStepper).
 */
class FusedExec
{
  public:
    virtual ~FusedExec() = default;

    /** One past the last record this exec consumes. */
    virtual Count end() const = 0;

    /** Step through records [from, to) of the shared walk. */
    virtual void step(Count from, Count to) = 0;

    /** Finalize stats and run-level counters after the pass. */
    virtual void finish() = 0;
};

/**
 * Per-sim driver of a fused pass: owns this sim's warmup/measurement
 * window over the shared block walk and forwards each visited span to
 * the right replay loop. One subclass per dispatch outcome (kernel vs
 * virtual), mirroring simulateReplay()'s per-cell dispatch.
 */
class FusedStepper : public FusedExec
{
  public:
    FusedStepper(FusedSim &sim, const ReplayBuffer &buffer)
        : sim(sim), buffer(buffer)
    {
        const Count total = buffer.size();
        warmupEnd = std::min(sim.options.warmupBranches, total);
        const Count limit = sim.options.maxBranches == 0
                                ? ~Count{0}
                                : sim.options.maxBranches;
        lastRecord = warmupEnd + std::min(limit, total - warmupEnd);
    }

    /** One past the last record this sim consumes. */
    Count end() const override { return lastRecord; }

    /** Step the sim through records [from, to). */
    void
    step(Count from, Count to) override
    {
        if (from < warmupEnd) {
            const Count warm_to = std::min(to, warmupEnd);
            runSegment(from, warm_to, false);
            // Collision state accumulated during warmup is discarded
            // exactly once, at the warmup/measurement boundary — the
            // same schedule the per-cell paths follow.
            if (warm_to == warmupEnd)
                sim.predictor->clearCollisionStats();
            from = warm_to;
        }
        if (from < to)
            runSegment(from, to, true);
    }

  protected:
    /** Replay [from, to); @p measured picks warmup vs measurement. */
    virtual void runSegment(Count from, Count to, bool measured) = 0;

    FusedSim &sim;
    const ReplayBuffer &buffer;
    Count warmupEnd = 0;
    Count lastRecord = 0;
    SimStats warmupStats; // discarded, as per-cell warmup stats are
};

/**
 * Fused stepper running the devirtualized kernels for concrete
 * predictor type @p P. With a SiteIndex available it additionally
 * flattens hint lookups (combined sims) or profile accumulation
 * (profiling sims) onto dense site arrays; both are pure
 * accelerations with bit-identical results.
 */
template <typename P>
class KernelStepper final : public FusedStepper
{
  public:
    KernelStepper(FusedSim &sim, const ReplayBuffer &buffer,
                  P &concrete, const HintDb *hints, ShiftPolicy policy,
                  const SiteIndex *sites)
        : FusedStepper(sim, buffer), concrete(concrete), hints(hints),
          policy(policy), sites(sites),
          kernels(batchKernelsFor<P>(
              resolveSimdLevel(sim.options.simd)))
    {
        if (sites != nullptr && hints != nullptr) {
            siteOf = sites->siteData();
            hintCode.assign(sites->siteCount(), 0);
            for (std::uint32_t s = 0; s < sites->siteCount(); ++s) {
                bool taken = false;
                if (hints->lookup(sites->sitePc(s), taken))
                    hintCode[s] = hintPresentBit |
                                  (taken ? hintTakenBit : 0);
            }
        } else if (sites != nullptr && hints == nullptr &&
                   sim.options.profile != nullptr) {
            siteOf = sites->siteData();
            dense.counts.assign(sites->siteCount(), BranchProfile{});
            useDense = true;
        }
        // Which batched kernel covers the *measured* segments of this
        // sim, if any. Hinted sims batch through the gang kernel
        // (gang of one) when the dense hint codes exist and no
        // profile is attached; profiling sims batch only in dense
        // (site-indexed) form; plain dynamic sims always batch.
        if (kernels.gang != nullptr) {
            if (hints != nullptr) {
                usedSimdFlag = !hintCode.empty() &&
                               sim.options.profile == nullptr;
            } else {
                usedSimdFlag =
                    sim.options.profile == nullptr || useDense;
            }
        }
        if (usedSimdFlag && sites != nullptr &&
            (useDense || !hintCode.empty()))
            siteTables = batch::buildSiteTables(concrete, *sites);
    }

    void
    finish() override
    {
        if (useDense) {
            for (std::uint32_t s = 0; s < sites->siteCount(); ++s)
                if (dense.counts[s].executed > 0)
                    sim.options.profile->addCounts(sites->sitePc(s),
                                                   dense.counts[s]);
        }
        sim.stats.collisions = sim.predictor->collisionStats();
        sim.usedFastPath = true;
        sim.usedSimd = usedSimdFlag;
        if (sim.options.counters != nullptr) {
            sim.options.counters->add("engine.kernel_runs");
            sim.options.counters->add("engine.branches",
                                      sim.stats.branches);
            const Count warmup_run =
                std::min(sim.options.warmupBranches, buffer.size());
            if (warmup_run > 0)
                sim.options.counters->add("engine.warmup_branches",
                                          warmup_run);
        }
    }

  protected:
    void
    runSegment(Count from, Count to, bool measured) override
    {
        SimStats &stats = measured ? sim.stats : warmupStats;
        ProfileDb *profile =
            measured ? sim.options.profile : nullptr;
        const bool with_profile = profile != nullptr;
        const bool track = sim.options.trackCollisions;

        const auto run = [&](auto profile_tag, auto track_tag) {
            constexpr bool kWithProfile =
                decltype(profile_tag)::value;
            constexpr bool kTrack = decltype(track_tag)::value;
            if (hints != nullptr) {
                if (!hintCode.empty()) {
                    if (!kWithProfile && usedSimdFlag) {
                        runGangOfOne<kTrack>(from, to, stats);
                    } else {
                        runSites<kWithProfile, kTrack>(from, to,
                                                       stats, profile);
                    }
                } else {
                    runReplayCombined<kWithProfile, kTrack>(
                        concrete, *hints, policy, buffer, from, to,
                        stats, profile);
                }
            } else if constexpr (kWithProfile) {
                if (useDense && usedSimdFlag) {
                    batch::DenseArgs<P> args;
                    args.predictor = &concrete;
                    args.siteTables = &siteTables;
                    args.profiles = dense.counts.data();
                    args.stats = &stats;
                    args.buffer = &buffer;
                    args.siteOf = siteOf;
                    args.from = from;
                    args.to = to;
                    args.track = kTrack;
                    kernels.dense(args);
                } else if (useDense) {
                    runReplayDynamicDense<kTrack>(
                        concrete, siteOf, buffer, from, to, stats,
                        dense);
                } else {
                    runReplayDynamic<true, kTrack>(
                        concrete, buffer, from, to, stats, profile);
                }
            } else if (kernels.plain != nullptr) {
                batch::PlainArgs<P> args;
                args.predictor = &concrete;
                args.stats = &stats;
                args.buffer = &buffer;
                args.from = from;
                args.to = to;
                args.track = kTrack;
                kernels.plain(args);
            } else {
                runReplayDynamic<false, kTrack>(
                    concrete, buffer, from, to, stats, profile);
            }
        };

        if (with_profile && track)
            run(std::true_type{}, std::true_type{});
        else if (with_profile)
            run(std::true_type{}, std::false_type{});
        else if (track)
            run(std::false_type{}, std::true_type{});
        else
            run(std::false_type{}, std::false_type{});
    }

  private:
    /** Batched hinted evaluation: the gang kernel with one member. */
    template <bool Track>
    void
    runGangOfOne(Count from, Count to, SimStats &stats)
    {
        P *predictor = &concrete;
        const batch::SiteTables *tables = &siteTables;
        const std::uint8_t *codes = hintCode.data();
        SimStats *stats_ptr = &stats;
        batch::GangArgs<P> args;
        args.predictors = &predictor;
        args.siteTables = &tables;
        args.hintCodes = &codes;
        args.stats = &stats_ptr;
        args.n = 1;
        args.buffer = &buffer;
        args.siteOf = siteOf;
        args.from = from;
        args.to = to;
        args.policy = policy;
        args.track = Track;
        kernels.gang(args);
    }

    template <bool WithProfile, bool Track>
    void
    runSites(Count from, Count to, SimStats &stats,
             ProfileDb *profile)
    {
        switch (policy) {
          case ShiftPolicy::NoShift:
            runReplayCombinedSites<WithProfile, Track,
                                   ShiftPolicy::NoShift>(
                concrete, hintCode.data(), siteOf, buffer, from, to,
                stats, profile);
            break;
          case ShiftPolicy::ShiftOutcome:
            runReplayCombinedSites<WithProfile, Track,
                                   ShiftPolicy::ShiftOutcome>(
                concrete, hintCode.data(), siteOf, buffer, from, to,
                stats, profile);
            break;
          case ShiftPolicy::ShiftPrediction:
            runReplayCombinedSites<WithProfile, Track,
                                   ShiftPolicy::ShiftPrediction>(
                concrete, hintCode.data(), siteOf, buffer, from, to,
                stats, profile);
            break;
        }
    }

    P &concrete;
    const HintDb *hints;
    ShiftPolicy policy;
    const SiteIndex *sites;
    const std::uint32_t *siteOf = nullptr;
    std::vector<std::uint8_t> hintCode;
    DenseProfile dense;
    bool useDense = false;
    BatchKernelSet<P> kernels;
    batch::SiteTables siteTables;
    bool usedSimdFlag = false;
};

/**
 * Fused stepper for predictors outside the devirtualized set: the
 * virtual-dispatch loop of simulate()/runMeasured(), segmented over
 * the shared block walk. Bit-identical to the per-cell fallback.
 */
class VirtualStepper final : public FusedStepper
{
  public:
    VirtualStepper(FusedSim &sim, const ReplayBuffer &buffer)
        : FusedStepper(sim, buffer),
          combined(dynamic_cast<CombinedPredictor *>(sim.predictor))
    {
    }

    void
    finish() override
    {
        sim.stats.collisions = sim.predictor->collisionStats();
        sim.usedFastPath = false;
        if (sim.options.counters != nullptr) {
            sim.options.counters->add("engine.virtual_runs");
            sim.options.counters->add("engine.branches",
                                      sim.stats.branches);
            if (warmupRun > 0)
                sim.options.counters->add("engine.warmup_branches",
                                          warmupRun);
        }
    }

  protected:
    void
    runSegment(Count from, Count to, bool measured) override
    {
        BranchPredictor &predictor = *sim.predictor;
        BranchRecord record;
        if (!measured) {
            for (Count i = from; i < to; ++i) {
                buffer.get(i, record);
                predictor.predict(record.pc);
                predictor.update(record.pc, record.taken);
                predictor.updateHistory(record.taken);
            }
            warmupRun += to - from;
            return;
        }

        ProfileDb *profile = sim.options.profile;
        const bool with_profile = profile != nullptr;
        SimStats &stats = sim.stats;
        for (Count i = from; i < to; ++i) {
            buffer.get(i, record);
            const bool prediction = predictor.predict(record.pc);
            const bool correct = prediction == record.taken;
            // Must be sampled between predict() and update():
            // update() classifies and clears the pending state.
            Count lookup_collisions = 0;
            if (with_profile)
                lookup_collisions = predictor.lastPredictCollisions();

            predictor.update(record.pc, record.taken);
            predictor.updateHistory(record.taken);

            ++stats.branches;
            stats.instructions += record.instGap;
            if (!correct)
                ++stats.mispredictions;

            bool was_static = false;
            if (combined != nullptr) {
                was_static = combined->lastWasStatic();
                if (was_static) {
                    ++stats.staticPredicted;
                    if (!correct)
                        ++stats.staticMispredictions;
                }
            }

            if (with_profile) {
                profile->recordOutcome(record.pc, record.taken);
                // Accuracy counts describe the *dynamic* predictor,
                // so statically resolved branches do not contribute.
                if (!was_static) {
                    profile->recordPrediction(record.pc, correct);
                    if (lookup_collisions > 0)
                        profile->recordCollisions(record.pc,
                                                  lookup_collisions);
                }
            }
        }
    }

  private:
    CombinedPredictor *combined;
    Count warmupRun = 0;
};

/**
 * Record-major gang kernel: advance @p n same-type predictors through
 * each record before moving to the next one. The members' dependent
 * chains (history -> index -> table load -> update) are mutually
 * independent, so the out-of-order window overlaps them — the main
 * single-core speedup of fusing. Per member the record-level operation
 * sequence is exactly runReplayCombinedSites', so results are
 * bit-identical to a private pass (an all-zero hint-code array makes
 * that sequence identical to runReplayDynamic's).
 */
template <bool Track, ShiftPolicy Policy, std::size_t N, typename P>
void
runReplayGang(P *const *predictors,
              const std::uint8_t *const *hint_codes,
              SimStats *const *stats, const std::uint32_t *site_of,
              const ReplayBuffer &buffer, Count start, Count end)
{
    const Addr *pcs = buffer.pcData();
    const std::uint32_t *packed = buffer.packedData();

    // Hoist the member state and keep the counters in locals: with N
    // a compile-time constant the member loop fully unrolls and the
    // accumulators stay register-resident instead of round-tripping
    // through SimStats memory on every record.
    P *preds[N];
    const std::uint8_t *codes[N];
    for (std::size_t k = 0; k < N; ++k) {
        preds[k] = predictors[k];
        codes[k] = hint_codes[k];
    }
    Count branches = 0;
    Count instructions = 0;
    Count mispredictions[N]{};
    Count static_predicted[N]{};
    Count static_mispredicted[N]{};

    for (Count i = start; i < end; ++i) {
        const Addr pc = pcs[i];
        const std::uint32_t word = packed[i];
        const bool taken = (word & ReplayBuffer::packedTakenBit) != 0;
        const std::uint32_t gap = word & ~ReplayBuffer::packedTakenBit;
        const std::uint32_t site = site_of[i];
        ++branches;
        instructions += gap;

        for (std::size_t k = 0; k < N; ++k) {
            P &predictor = *preds[k];

            const std::uint8_t code = codes[k][site];
            bool correct;
            if ((code & hintPresentBit) != 0) {
                const bool hint_direction =
                    (code & hintTakenBit) != 0;
                correct = hint_direction == taken;
                if constexpr (Policy == ShiftPolicy::ShiftOutcome)
                    predictor.historyStep(taken);
                else if constexpr (Policy ==
                                   ShiftPolicy::ShiftPrediction)
                    predictor.historyStep(hint_direction);
                ++static_predicted[k];
                if (!correct)
                    ++static_mispredicted[k];
            } else {
                const bool prediction =
                    predictor.template predictStep<Track>(pc);
                correct = prediction == taken;
                predictor.template updateStep<Track>(pc, taken);
                predictor.historyStep(taken);
            }

            if (!correct)
                ++mispredictions[k];
        }
    }

    // Pure integer sums flushed once per segment: the totals equal
    // the per-record increments of a private pass exactly.
    for (std::size_t k = 0; k < N; ++k) {
        SimStats &st = *stats[k];
        st.branches += branches;
        st.instructions += instructions;
        st.mispredictions += mispredictions[k];
        st.staticPredicted += static_predicted[k];
        st.staticMispredictions += static_mispredicted[k];
    }
}

/**
 * Fused driver for a gang of evaluation sims (no profiling) whose
 * dynamic components share one concrete type, one warmup/measurement
 * window, one collision-tracking setting and one effective shift
 * policy. Hint sets stay per-member (dense per-site code arrays;
 * all-zero for members without hints).
 */
template <typename P>
class GangStepper final : public FusedExec
{
  public:
    struct Member
    {
        FusedSim *sim = nullptr;
        P *concrete = nullptr;
        std::vector<std::uint8_t> hintCode;
    };

    GangStepper(std::vector<Member> gang_members,
                const ReplayBuffer &buffer, const SiteIndex *sites,
                ShiftPolicy policy, bool track)
        : members(std::move(gang_members)), buffer(buffer),
          siteOf(sites->siteData()), policy(policy), track(track),
          warmupStats(members.size())
    {
        const Count total = buffer.size();
        const FusedSim &first = *members.front().sim;
        warmupEnd = std::min(first.options.warmupBranches, total);
        const Count limit = first.options.maxBranches == 0
                                ? ~Count{0}
                                : first.options.maxBranches;
        lastRecord = warmupEnd + std::min(limit, total - warmupEnd);
        for (const Member &member : members) {
            bpsim_assert(
                member.sim->options.warmupBranches ==
                        first.options.warmupBranches &&
                    member.sim->options.maxBranches ==
                        first.options.maxBranches,
                "gang members must share one replay window");
            predictors.push_back(member.concrete);
            codes.push_back(member.hintCode.data());
        }
        // All members share one simd setting (part of the gang key).
        kernels =
            batchKernelsFor<P>(resolveSimdLevel(first.options.simd));
        if (kernels.gang != nullptr) {
            memberTables.reserve(members.size());
            for (const Member &member : members) {
                memberTables.push_back(batch::buildSiteTables(
                    *member.concrete, *sites));
            }
            for (const batch::SiteTables &tables : memberTables)
                tablePtrs.push_back(&tables);
        }
    }

    Count end() const override { return lastRecord; }

    void
    step(Count from, Count to) override
    {
        if (from < warmupEnd) {
            const Count warm_to = std::min(to, warmupEnd);
            runSegment(from, warm_to, false);
            // Same discard schedule as the per-cell paths: collision
            // state accumulated during warmup dies at the boundary.
            if (warm_to == warmupEnd) {
                for (Member &member : members)
                    member.sim->predictor->clearCollisionStats();
            }
            from = warm_to;
        }
        if (from < to)
            runSegment(from, to, true);
    }

    void
    finish() override
    {
        for (Member &member : members) {
            FusedSim &sim = *member.sim;
            sim.stats.collisions = sim.predictor->collisionStats();
            sim.usedFastPath = true;
            sim.usedSimd = kernels.gang != nullptr;
            if (sim.options.counters != nullptr) {
                sim.options.counters->add("engine.kernel_runs");
                sim.options.counters->add("engine.branches",
                                          sim.stats.branches);
                const Count warmup_run = std::min(
                    sim.options.warmupBranches, buffer.size());
                if (warmup_run > 0)
                    sim.options.counters->add(
                        "engine.warmup_branches", warmup_run);
            }
        }
    }

  private:
    void
    runSegment(Count from, Count to, bool measured)
    {
        std::vector<SimStats *> stats(members.size());
        for (std::size_t k = 0; k < members.size(); ++k) {
            stats[k] =
                measured ? &members[k].sim->stats : &warmupStats[k];
        }
        // Batched path: one kernel call advances every member through
        // the segment (the batch driver walks members per batch, so
        // the trace columns decode once regardless of gang size).
        if (kernels.gang != nullptr) {
            batch::GangArgs<P> args;
            args.predictors = predictors.data();
            args.siteTables = tablePtrs.data();
            args.hintCodes = codes.data();
            args.stats = stats.data();
            args.n = members.size();
            args.buffer = &buffer;
            args.siteOf = siteOf;
            args.from = from;
            args.to = to;
            args.policy = policy;
            args.track = track;
            kernels.gang(args);
            return;
        }
        // Record-at-a-time path: larger gangs run as sub-gangs of at
        // most four members; the fixed-N kernels keep their
        // accumulators in registers, and four independent predictor
        // chains already saturate the out-of-order window. Each
        // member still sees every record of [from, to) exactly once,
        // in order.
        std::size_t offset = 0;
        while (offset < members.size()) {
            const std::size_t rest = members.size() - offset;
            const std::size_t chunk = std::min<std::size_t>(rest, 4);
            runChunk(offset, chunk, stats.data(), from, to);
            offset += chunk;
        }
    }

    void
    runChunk(std::size_t offset, std::size_t chunk, SimStats **stats,
             Count from, Count to)
    {
        const auto run = [&](auto track_tag, auto n_tag) {
            constexpr bool kTrack = decltype(track_tag)::value;
            constexpr std::size_t kN = decltype(n_tag)::value;
            switch (policy) {
              case ShiftPolicy::NoShift:
                runReplayGang<kTrack, ShiftPolicy::NoShift, kN>(
                    predictors.data() + offset, codes.data() + offset,
                    stats + offset, siteOf, buffer, from, to);
                break;
              case ShiftPolicy::ShiftOutcome:
                runReplayGang<kTrack, ShiftPolicy::ShiftOutcome, kN>(
                    predictors.data() + offset, codes.data() + offset,
                    stats + offset, siteOf, buffer, from, to);
                break;
              case ShiftPolicy::ShiftPrediction:
                runReplayGang<kTrack, ShiftPolicy::ShiftPrediction,
                              kN>(predictors.data() + offset,
                                  codes.data() + offset,
                                  stats + offset, siteOf, buffer, from,
                                  to);
                break;
            }
        };
        const auto dispatch = [&](auto track_tag) {
            switch (chunk) {
              case 1:
                run(track_tag,
                    std::integral_constant<std::size_t, 1>{});
                break;
              case 2:
                run(track_tag,
                    std::integral_constant<std::size_t, 2>{});
                break;
              case 3:
                run(track_tag,
                    std::integral_constant<std::size_t, 3>{});
                break;
              default:
                run(track_tag,
                    std::integral_constant<std::size_t, 4>{});
                break;
            }
        };
        if (track)
            dispatch(std::true_type{});
        else
            dispatch(std::false_type{});
    }

    std::vector<Member> members;
    const ReplayBuffer &buffer;
    const std::uint32_t *siteOf;
    ShiftPolicy policy;
    bool track;
    Count warmupEnd = 0;
    Count lastRecord = 0;
    std::vector<SimStats> warmupStats; // discarded, like all warmup
    std::vector<P *> predictors;
    std::vector<const std::uint8_t *> codes;
    BatchKernelSet<P> kernels;
    std::vector<batch::SiteTables> memberTables;
    std::vector<const batch::SiteTables *> tablePtrs;
};

} // namespace

SimStats
simulate(BranchPredictor &predictor, BranchStream &stream,
         const SimOptions &options)
{
    if (options.resetStream)
        stream.reset();
    if (options.resetPredictor)
        predictor.reset();
    predictor.clearCollisionStats();

    auto *combined = dynamic_cast<CombinedPredictor *>(&predictor);

    // Warmup: train the predictor without recording anything.
    BranchRecord record;
    Count warmup_run = 0;
    for (Count i = 0;
         i < options.warmupBranches && stream.next(record); ++i) {
        predictor.predict(record.pc);
        predictor.update(record.pc, record.taken);
        predictor.updateHistory(record.taken);
        ++warmup_run;
    }
    predictor.clearCollisionStats();

    const bool with_profile = options.profile != nullptr;
    SimStats stats;
    if (combined != nullptr) {
        stats = with_profile
                    ? runMeasured<true, true>(predictor, combined,
                                              stream, options)
                    : runMeasured<false, true>(predictor, combined,
                                               stream, options);
    } else {
        stats = with_profile
                    ? runMeasured<true, false>(predictor, nullptr,
                                               stream, options)
                    : runMeasured<false, false>(predictor, nullptr,
                                                stream, options);
    }

    if (options.counters != nullptr) {
        options.counters->add("engine.virtual_runs");
        options.counters->add("engine.branches", stats.branches);
        if (warmup_run > 0)
            options.counters->add("engine.warmup_branches",
                                  warmup_run);
    }
    return stats;
}

SimStats
simulateReplay(BranchPredictor &predictor, const ReplayBuffer &buffer,
               const SimOptions &options, bool *used_fast_path,
               bool *used_simd)
{
    SimStats stats;
    bool used = false;

    if (options.fastPath) {
        auto *combined = dynamic_cast<CombinedPredictor *>(&predictor);
        // An empty hint database makes the combined wrapper a pure
        // pass-through, so such cells run the cheaper dynamic kernel;
        // the results are identical.
        const bool hinted =
            combined != nullptr && combined->hintDb().size() > 0;
        const HintDb *hints = hinted ? &combined->hintDb() : nullptr;
        const ShiftPolicy policy =
            hinted ? combined->policy() : ShiftPolicy::NoShift;
        BranchPredictor &dyn = combined != nullptr
                                   ? combined->dynamicComponent()
                                   : predictor;

        used = visitPredictor(dyn, [&](auto &concrete) {
            if (options.resetPredictor)
                predictor.reset();
            predictor.clearCollisionStats();
            stats = runReplay(concrete, predictor, hints, policy,
                              buffer, options, used_simd);
        });
        if (used && options.counters != nullptr) {
            options.counters->add("engine.kernel_runs");
            options.counters->add("engine.branches", stats.branches);
            const Count warmup_run =
                std::min(options.warmupBranches, buffer.size());
            if (warmup_run > 0)
                options.counters->add("engine.warmup_branches",
                                      warmup_run);
        }
    }

    if (!used) {
        auto cursor = buffer.cursor();
        stats = simulate(predictor, cursor, options);
        if (used_simd != nullptr)
            *used_simd = false;
    }
    if (used_fast_path != nullptr)
        *used_fast_path = used;
    return stats;
}

void
simulateReplayFused(std::vector<FusedSim> &sims,
                    const ReplayBuffer &buffer, const SiteIndex *sites)
{
    if (sites != nullptr)
        bpsim_assert(sites->size() == buffer.size(),
                     "site index does not match the replay buffer");

    // Dispatch each sim once (kernel vs virtual, hinted vs dynamic),
    // exactly as simulateReplay() would, and reset its predictor.
    // Evaluation sims (no profile) whose dynamic components share a
    // concrete type, replay window, tracking setting and effective
    // shift policy are ganged into one record-major exec; everything
    // else gets its own stepper.
    struct Resolved
    {
        const HintDb *hints = nullptr;
        ShiftPolicy policy = ShiftPolicy::NoShift;
        BranchPredictor *dyn = nullptr;
    };
    std::vector<Resolved> resolved(sims.size());

    struct GangPlan
    {
        std::type_index type;
        ShiftPolicy policy;
        Count warmup = 0;
        Count max = 0;
        bool track = false;
        bool simd = false;
        std::vector<std::size_t> members;
    };
    std::vector<GangPlan> plans;

    std::vector<std::unique_ptr<FusedExec>> execs;
    execs.reserve(sims.size());

    const auto makeStepper = [&](std::size_t s) {
        FusedSim &sim = sims[s];
        std::unique_ptr<FusedExec> stepper;
        if (sim.options.fastPath && resolved[s].dyn != nullptr) {
            visitPredictor(*resolved[s].dyn, [&](auto &concrete) {
                using Concrete = std::decay_t<decltype(concrete)>;
                stepper = std::make_unique<KernelStepper<Concrete>>(
                    sim, buffer, concrete, resolved[s].hints,
                    resolved[s].policy, sites);
            });
        }
        if (stepper == nullptr)
            stepper = std::make_unique<VirtualStepper>(sim, buffer);
        execs.push_back(std::move(stepper));
    };

    for (std::size_t s = 0; s < sims.size(); ++s) {
        FusedSim &sim = sims[s];
        bpsim_assert(sim.predictor != nullptr,
                     "fused sim needs a predictor");
        sim.stats = SimStats{};
        sim.usedFastPath = false;
        sim.usedSimd = false;

        auto *combined =
            dynamic_cast<CombinedPredictor *>(sim.predictor);
        // An empty hint database makes the combined wrapper a pure
        // pass-through, so such sims run the cheaper dynamic kernel;
        // the results are identical.
        const bool hinted =
            combined != nullptr && combined->hintDb().size() > 0;
        resolved[s].hints = hinted ? &combined->hintDb() : nullptr;
        resolved[s].policy =
            hinted ? combined->policy() : ShiftPolicy::NoShift;
        resolved[s].dyn = combined != nullptr
                              ? &combined->dynamicComponent()
                              : sim.predictor;

        bool planned = false;
        if (sim.options.fastPath && sites != nullptr &&
            sim.options.profile == nullptr) {
            visitPredictor(*resolved[s].dyn, [&](auto &concrete) {
                const std::type_index type(typeid(concrete));
                GangPlan *plan = nullptr;
                for (GangPlan &candidate : plans) {
                    if (candidate.type == type &&
                        candidate.policy == resolved[s].policy &&
                        candidate.warmup ==
                            sim.options.warmupBranches &&
                        candidate.max == sim.options.maxBranches &&
                        candidate.track ==
                            sim.options.trackCollisions &&
                        candidate.simd == sim.options.simd) {
                        plan = &candidate;
                        break;
                    }
                }
                if (plan == nullptr) {
                    plans.push_back({type, resolved[s].policy,
                                     sim.options.warmupBranches,
                                     sim.options.maxBranches,
                                     sim.options.trackCollisions,
                                     sim.options.simd,
                                     {}});
                    plan = &plans.back();
                }
                plan->members.push_back(s);
                planned = true;
            });
        }
        if (!planned)
            makeStepper(s);

        if (sim.options.resetPredictor)
            sim.predictor->reset();
        sim.predictor->clearCollisionStats();
    }

    for (const GangPlan &plan : plans) {
        // A singleton gang gains nothing; run the plain kernel
        // stepper (identical results either way).
        if (plan.members.size() == 1) {
            makeStepper(plan.members.front());
            continue;
        }
        visitPredictor(
            *resolved[plan.members.front()].dyn, [&](auto &first) {
                using Concrete = std::decay_t<decltype(first)>;
                using Gang = GangStepper<Concrete>;
                std::vector<typename Gang::Member> members;
                members.reserve(plan.members.size());
                for (const std::size_t s : plan.members) {
                    typename Gang::Member member;
                    member.sim = &sims[s];
                    member.concrete =
                        &dynamic_cast<Concrete &>(*resolved[s].dyn);
                    member.hintCode.assign(sites->siteCount(), 0);
                    if (resolved[s].hints != nullptr) {
                        for (std::uint32_t site = 0;
                             site < sites->siteCount(); ++site) {
                            bool taken = false;
                            if (resolved[s].hints->lookup(
                                    sites->sitePc(site), taken)) {
                                member.hintCode[site] =
                                    hintPresentBit |
                                    (taken ? hintTakenBit : 0);
                            }
                        }
                    }
                    members.push_back(std::move(member));
                }
                execs.push_back(std::make_unique<Gang>(
                    std::move(members), buffer, sites, plan.policy,
                    plan.track));
            });
    }

    // The fused walk: every sim steps through each block before the
    // pass moves to the next one, so the trace columns are decoded
    // from cache-resident memory once per block instead of once per
    // sim. Block boundaries are semantically invisible — each sim's
    // predictor state advances through the same record sequence it
    // would see in a private pass.
    Count max_end = 0;
    for (const auto &stepper : execs)
        max_end = std::max(max_end, stepper->end());

    for (Count base = 0; base < max_end; base += fusedBlock) {
        const Count block_stop = std::min(base + fusedBlock, max_end);
        for (auto &stepper : execs) {
            const Count to = std::min(block_stop, stepper->end());
            if (base < to)
                stepper->step(base, to);
        }
    }

    for (auto &stepper : execs)
        stepper->finish();
}

} // namespace bpsim
