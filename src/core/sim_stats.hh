/**
 * @file
 * Aggregate results of one simulation run.
 */

#ifndef BPSIM_CORE_SIM_STATS_HH
#define BPSIM_CORE_SIM_STATS_HH

#include "predictor/predictor.hh"
#include "support/stats.hh"
#include "support/types.hh"

namespace bpsim
{

/**
 * Whole-run statistics. The paper's headline metric is MISP/KI —
 * conditional-branch mispredictions per thousand instructions — which
 * it argues is more honest than raw accuracy when branch densities
 * differ across programs.
 */
struct SimStats
{
    /** Conditional branches simulated. */
    Count branches = 0;

    /** Instructions represented by the simulated stream. */
    Count instructions = 0;

    /** Total mispredictions (static- and dynamic-predicted). */
    Count mispredictions = 0;

    /** Branches resolved by a static hint. */
    Count staticPredicted = 0;

    /** Mispredictions among the statically predicted branches. */
    Count staticMispredictions = 0;

    /** Collision statistics of the dynamic predictor's tables. */
    CollisionStats collisions;

    /** Mispredictions per thousand instructions. */
    double mispKi() const { return perKilo(mispredictions, instructions); }

    /** Overall prediction accuracy in percent. */
    double
    accuracyPercent() const
    {
        return branches == 0
                   ? 0.0
                   : percent(branches - mispredictions, branches);
    }

    /** Dynamic conditional branches per thousand instructions. */
    double cbrsKi() const { return perKilo(branches, instructions); }

    /** Share of branches handled statically, in percent. */
    double
    staticShare() const
    {
        return percent(staticPredicted, branches);
    }
};

/** Percentage improvement of @p with over baseline @p without. */
inline double
mispKiImprovement(const SimStats &without, const SimStats &with)
{
    if (without.mispKi() == 0.0)
        return 0.0;
    return 100.0 * (without.mispKi() - with.mispKi()) /
           without.mispKi();
}

} // namespace bpsim

#endif // BPSIM_CORE_SIM_STATS_HH
