/**
 * @file
 * Simple pipeline cost model translating MISP/KI into cycles per
 * instruction and speedups (extension).
 *
 * The paper motivates everything through pipeline flush cost but
 * reports only MISP/KI; this model closes the loop so users can see
 * the performance meaning of an improvement. CPI is modelled as a
 * base CPI plus the misprediction penalty amortised over
 * instructions:
 *
 *   CPI = base + penalty * (mispredictions / instructions)
 *
 * The default penalty of 7 cycles matches the Alpha 21264's minimum
 * branch misprediction cost, fitting the paper's platform.
 */

#ifndef BPSIM_CORE_CPI_MODEL_HH
#define BPSIM_CORE_CPI_MODEL_HH

#include "core/sim_stats.hh"

namespace bpsim
{

/** Parameters of the pipeline cost model. */
struct PipelineParams
{
    /** CPI with perfect branch prediction. */
    double baseCpi = 1.0;

    /** Cycles lost per branch misprediction. */
    double mispredictPenalty = 7.0;
};

/** Estimated CPI of a run under the cost model. */
inline double
estimateCpi(const SimStats &stats, const PipelineParams &params = {})
{
    if (stats.instructions == 0)
        return params.baseCpi;
    return params.baseCpi +
           params.mispredictPenalty *
               static_cast<double>(stats.mispredictions) /
               static_cast<double>(stats.instructions);
}

/** Speedup of @p with over @p base under the cost model. */
inline double
estimateSpeedup(const SimStats &base, const SimStats &with,
                const PipelineParams &params = {})
{
    const double with_cpi = estimateCpi(with, params);
    return with_cpi == 0.0 ? 0.0
                           : estimateCpi(base, params) / with_cpi;
}

} // namespace bpsim

#endif // BPSIM_CORE_CPI_MODEL_HH
