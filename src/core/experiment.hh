/**
 * @file
 * Two-phase experiment driver reproducing the paper's methodology
 * (§4): a selection phase that profiles the program (simulating the
 * dynamic predictor when the scheme needs per-branch accuracy),
 * followed by an evaluation phase that simulates the combined
 * static/dynamic predictor.
 */

#ifndef BPSIM_CORE_EXPERIMENT_HH
#define BPSIM_CORE_EXPERIMENT_HH

#include <cstddef>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/combined_predictor.hh"
#include "core/engine.hh"
#include "core/sim_stats.hh"
#include "predictor/context_alias.hh"
#include "predictor/factory.hh"
#include "profile/profile_db.hh"
#include "staticsel/selection.hh"
#include "support/error.hh"
#include "support/observe.hh"
#include "workload/synthetic_program.hh"

namespace bpsim
{

class ReplayBuffer;
class SiteIndex;

/** Full description of one experiment. */
struct ExperimentConfig
{
    /** Dynamic prediction scheme. */
    PredictorKind kind = PredictorKind::Gshare;

    /**
     * Registered predictor name (predictor/registry.hh). When
     * non-empty it overrides kind: the dynamic component is built as
     * registry.find(predictor)->make(sizeBytes), which is how cells
     * address the predictors outside the paper's five-kind enum
     * (tage, perceptron, the extensions). makeDynamic still takes
     * precedence over both. The name joins sizeBytes in the cell's
     * identity (profile-cache key, checkpoint fingerprint, default
     * label) exactly like a kind does.
     */
    std::string predictor;

    /** Dynamic predictor budget in bytes. */
    std::size_t sizeBytes = 8192;

    /** Static selection scheme (None = pure dynamic baseline). */
    StaticScheme scheme = StaticScheme::None;

    /** History treatment of statically predicted branches. */
    ShiftPolicy shift = ShiftPolicy::NoShift;

    /** Selection tunables (cutoff bias, factor, noise floor). */
    SelectionParams selection;

    /** Branches simulated in the selection (profiling) phase. */
    Count profileBranches = 2'000'000;

    /** Branches simulated in the evaluation phase. */
    Count evalBranches = 4'000'000;

    /**
     * Unmeasured warmup branches run before the evaluation window
     * (the profiling phase never warms up: it wants cold-start
     * behaviour, like the paper's phase 1). Warmup work is counted
     * exactly once in ExperimentResult::simulatedBranches, whether
     * the run took the kernel or the virtual path.
     */
    Count evalWarmupBranches = 0;

    /** Input used for profiling ("self-trained" = same as eval). */
    InputSet profileInput = InputSet::Ref;

    /** Input used for the measured run. */
    InputSet evalInput = InputSet::Ref;

    /**
     * Apply the §5.1 merge filter: drop profile entries whose bias
     * shifts more than stabilityThreshold between the profiling input
     * and the evaluation input (requires an extra bias-only profiling
     * pass over the evaluation input).
     */
    bool filterUnstable = false;

    /** Bias-change tolerance of the merge filter. */
    double stabilityThreshold = 0.05;

    /**
     * Optional factory for the dynamic component. When set it
     * overrides kind/sizeBytes, letting matrix cells carry custom
     * predictor constructions (e.g. history-length sweeps) that the
     * kind enum cannot express. Called once per phase.
     */
    std::function<std::unique_ptr<BranchPredictor>()> makeDynamic;

    /**
     * Cache identity of a makeDynamic factory. The runner's
     * profile-phase cache cannot see through a std::function, so
     * cells carrying one are uncacheable unless they also set a key
     * that uniquely names the constructed predictor (e.g.
     * "gshare:h12:8192"). Cells with equal keys must construct
     * behaviourally identical predictors. Ignored when makeDynamic
     * is empty; kind/sizeBytes identify the predictor then.
     */
    std::string dynamicKey;

    /**
     * Optional counter registry the engine reports run-level counters
     * into (see SimOptions::counters). Pure observability: not part
     * of the experiment's identity, ignored by the runner's
     * profile-cache key, and never read on the per-branch path.
     */
    CounterRegistry *counters = nullptr;

    /**
     * Let the devirtualized kernels run their batched SIMD-dispatch
     * variants (see SimOptions::simd). Results are bit-identical
     * either way, so — like counters — this is not part of the
     * experiment's identity and is ignored by the runner's
     * profile-cache key and the checkpoint fingerprint.
     */
    bool simd = true;

    /**
     * Number of contexts in the cell's workload when it is a
     * multi-context scenario (scenario/scenario.hh), 0 for ordinary
     * single-program cells. When positive, the evaluation attaches a
     * per-branch profile and a ContextAliasSink so the result carries
     * per-context statistics and the NxN interference matrix; the
     * evaluation also runs record-at-a-time (SIMD batch variants
     * off), since the dense-profile kernels bypass the tag path the
     * sink observes. Aggregate stats stay bit-identical.
     */
    std::size_t scenarioContexts = 0;

    /**
     * Fail-fast validation: returns a config_invalid Error naming the
     * offending field when the config cannot run (non-power-of-two
     * table budget, zero-length streams, out-of-range tunables).
     * Experiment entry points raise() it; the matrix runner turns it
     * into a failed cell instead of simulating garbage.
     */
    Result<void> validate() const;
};

/**
 * The predictor-identity component shared by the runner's
 * profile-cache key, the profile artifact key, the checkpoint
 * fingerprint and the default cell label: "custom:<dynamicKey>" for
 * keyed makeDynamic cells, "<name>:<sizeBytes>" otherwise (the
 * registered name when config.predictor is set, the paper kind name
 * when not). Empty for keyless makeDynamic cells — such cells are
 * uncacheable and unfingerprintable. Centralized here so a new
 * predictor needs zero identity-site edits.
 */
std::string predictorIdentityOf(const ExperimentConfig &config);

/**
 * Result of the selection phase's profiling run: the pre-filter
 * profile of config.profileInput under the config's dynamic
 * predictor, and the branches simulated to get it. Immutable once
 * built, so one phase can be shared by every cell whose profiling
 * work is identical (the runner's profile cache); the §5.1 merge
 * filter is applied per cell downstream of this.
 */
struct ProfilePhase
{
    ProfileDb profile;
    Count simulatedBranches = 0;
};

/**
 * Run the selection phase's profiling simulation: the config's
 * dynamic predictor over config.profileBranches records of
 * @p profile_stream (reset first), recording per-branch outcome and
 * accuracy counts.
 */
ProfilePhase runProfilePhase(BranchStream &profile_stream,
                             const ExperimentConfig &config);

/** Profiling phase over a materialized trace (devirtualized path). */
ProfilePhase runProfilePhaseReplay(const ReplayBuffer &profile_buffer,
                                   const ExperimentConfig &config,
                                   bool *used_fast_path = nullptr,
                                   bool *used_simd = nullptr);

/** One profiling phase of a fused pass (runProfilePhasesFusedReplay). */
struct FusedProfileOutcome
{
    ProfilePhase phase;

    /** Whether this phase's sim ran a devirtualized kernel. */
    bool usedFastPath = false;

    /** Whether this phase's sim ran the batched SIMD-dispatch
     * kernels (always false when usedFastPath is false). */
    bool usedSimd = false;
};

/**
 * Run the profiling phases of several configs over one shared buffer
 * in a single fused pass (simulateReplayFused). Each outcome is
 * bit-identical to runProfilePhaseReplay() of the matching config;
 * @p sites optionally accelerates the pass (see SiteIndex).
 */
std::vector<FusedProfileOutcome> runProfilePhasesFusedReplay(
    const ReplayBuffer &profile_buffer,
    const std::vector<const ExperimentConfig *> &configs,
    const SiteIndex *sites = nullptr);

/**
 * Evaluation-window statistics of one context of a multi-context
 * scenario. Sums over all contexts reproduce the corresponding
 * SimStats totals exactly (pinned by test_scenario.cc).
 */
struct ContextStats
{
    /** Measured branches owned by the context. */
    Count branches = 0;

    /** Instructions represented by those branches. */
    Count instructions = 0;

    /** Mispredictions (static- and dynamic-predicted). */
    Count mispredictions = 0;

    /** Branches resolved by a static hint. */
    Count staticPredicted = 0;

    /** Table collisions at the context's dynamic lookups. */
    Count collisions = 0;

    /** Mispredictions per thousand instructions. */
    double mispKi() const { return perKilo(mispredictions, instructions); }
};

/** Outcome of one experiment. */
struct ExperimentResult
{
    /** Evaluation-phase statistics of the combined predictor. */
    SimStats stats;

    /** Number of branches given static hints. */
    std::size_t hintCount = 0;

    /** Branches simulated across all phases (profiling, stability
     * filtering, evaluation) — the experiment's total work. */
    Count simulatedBranches = 0;

    /** Per-context statistics; config.scenarioContexts entries for
     * scenario cells, empty otherwise. */
    std::vector<ContextStats> contextStats;

    /** Row-major scenarioContexts^2 interference matrix: cell
     * [victim * n + aggressor] counts the victim context's lookups
     * that collided with state last touched by the aggressor, split
     * constructive/destructive. Empty for non-scenario cells. */
    std::vector<ContextAliasCell> aliasMatrix;
};

/**
 * Run the two-phase experiment on @p program. The program's input
 * set is switched as the config requires; it is left on
 * config.evalInput afterwards.
 */
ExperimentResult runExperiment(SyntheticProgram &program,
                               const ExperimentConfig &config);

/**
 * Stream-based experiment core: @p profile_stream must replay
 * config.profileInput and @p eval_stream config.evalInput; both are
 * reset before each use, so replay-buffer cursors and live programs
 * work alike. The streams must hold at least profileBranches /
 * evalBranches records respectively (and the eval stream at least
 * profileBranches when filterUnstable applies) for results to be
 * identical to the regenerating path.
 */
ExperimentResult runExperimentStreams(BranchStream &profile_stream,
                                      BranchStream &eval_stream,
                                      const ExperimentConfig &config);

/**
 * Selection + evaluation given an already-run profiling phase.
 * @p profile_phase may be null only when config.scheme is None (the
 * baseline needs no profile); it is read, never modified, so a
 * cached phase can serve any number of concurrent callers. Applies
 * the §5.1 merge filter (which re-reads @p eval_stream) and the
 * selection scheme, then evaluates the combined predictor from a
 * cold start. simulatedBranches includes the phase's count, so the
 * result is identical to runExperimentStreams() whether the phase
 * was cached or run fresh.
 */
ExperimentResult runEvaluationStreams(BranchStream &eval_stream,
                                      const ExperimentConfig &config,
                                      const ProfilePhase *profile_phase);

/** Evaluation over a materialized trace (devirtualized path). */
ExperimentResult runEvaluationReplay(const ReplayBuffer &eval_buffer,
                                     const ExperimentConfig &config,
                                     const ProfilePhase *profile_phase,
                                     bool *used_fast_path = nullptr,
                                     bool *used_simd = nullptr);

/**
 * An experiment's evaluation, ready to run: everything up to (but not
 * including) the evaluation simulation — profiling, the §5.1 merge
 * filter, static selection, and construction of the combined
 * predictor. Splitting here lets the fused executor batch the
 * expensive evaluation sims of many prepared cells into one pass.
 */
struct PreparedEvaluation
{
    /** The combined predictor to evaluate. */
    std::unique_ptr<CombinedPredictor> combined;

    /** Number of branches given static hints. */
    std::size_t hintCount = 0;

    /** Branches simulated before evaluation (profiling + filtering). */
    Count preEvalBranches = 0;

    /** Whether pre-evaluation simulation work (a profiling phase run
     * here, if any) took the devirtualized path. */
    bool preEvalFastPath = true;

    /** Whether pre-evaluation simulation work ran the batched
     * SIMD-dispatch kernels (vacuously true when no profiling
     * simulation ran here). */
    bool preEvalSimd = true;

    /**
     * Scenario instrumentation (config.scenarioContexts > 0 only):
     * the evaluation run records its per-branch profile here, and the
     * sink — already attached to the combined predictor's tables —
     * gathers the per-context-pair collision matrix. Both feed
     * finishPreparedEvaluation()'s per-context derivation.
     */
    std::unique_ptr<ProfileDb> evalProfile;
    std::unique_ptr<ContextAliasSink> aliasSink;
};

/**
 * Run everything of runExperimentReplay() up to the evaluation
 * simulation. Uses @p cached_profile when given; otherwise runs the
 * profiling phase from @p profile_buffer (which may be null only when
 * the config needs no profile). Does not validate the config — the
 * experiment entry points and the matrix runner validate upstream.
 */
PreparedEvaluation prepareEvaluationReplay(
    const ReplayBuffer *profile_buffer, const ReplayBuffer &eval_buffer,
    const ExperimentConfig &config, const ProfilePhase *cached_profile);

/** Evaluation-phase SimOptions of @p config (for executing a
 * PreparedEvaluation, fused or otherwise). */
SimOptions evalSimOptions(const ExperimentConfig &config);

/**
 * Evaluation-phase SimOptions of a specific PreparedEvaluation:
 * evalSimOptions(config) plus the scenario instrumentation —
 * attaches @p prepared's eval profile and disables the SIMD batch
 * variants for scenario cells. Use this form whenever the prepared
 * evaluation is at hand (the fused executor does).
 */
SimOptions evalSimOptions(const ExperimentConfig &config,
                          const PreparedEvaluation &prepared);

/**
 * Assemble the ExperimentResult of an executed evaluation:
 * @p eval_stats from simulating prepared.combined under
 * evalSimOptions(config, prepared) over the evaluation buffer.
 * @p eval_buffer is only read for scenario cells (per-context
 * branch/instruction attribution scans the measured window); it may
 * be null otherwise.
 */
ExperimentResult finishPreparedEvaluation(
    const PreparedEvaluation &prepared, const ExperimentConfig &config,
    const SimStats &eval_stats, const ReplayBuffer *eval_buffer = nullptr);

/**
 * Full experiment over materialized traces. Uses @p cached_profile
 * when given; otherwise runs the profiling phase from
 * @p profile_buffer (which may be null only when the config needs no
 * profile). @p used_fast_path reports whether every simulation of
 * the experiment ran through the devirtualized kernels;
 * @p used_simd whether every simulation ran their batched
 * SIMD-dispatch variants.
 */
ExperimentResult runExperimentReplay(const ReplayBuffer *profile_buffer,
                                     const ReplayBuffer &eval_buffer,
                                     const ExperimentConfig &config,
                                     const ProfilePhase *cached_profile
                                         = nullptr,
                                     bool *used_fast_path = nullptr,
                                     bool *used_simd = nullptr);

/**
 * Convenience: pure dynamic baseline of @p kind / @p size_bytes over
 * @p eval_branches branches of @p program under @p input.
 */
SimStats runBaseline(SyntheticProgram &program, PredictorKind kind,
                     std::size_t size_bytes, Count eval_branches,
                     InputSet input = InputSet::Ref);

} // namespace bpsim

#endif // BPSIM_CORE_EXPERIMENT_HH
