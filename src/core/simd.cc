#include "core/simd.hh"

#include <cstdlib>
#include <cstring>

namespace bpsim
{

SimdLevel
detectSimdLevel()
{
#if defined(BPSIM_HAVE_AVX2_KERNELS)
    if (__builtin_cpu_supports("avx2"))
        return SimdLevel::Avx2;
    return SimdLevel::Scalar;
#elif defined(__aarch64__)
    // NEON is baseline on aarch64: the "scalar" translation unit is
    // already NEON-vectorized.
    return SimdLevel::Neon;
#else
    return SimdLevel::Scalar;
#endif
}

SimdLevel
resolveSimdLevel(bool enabled)
{
    // Consulted on every call (no caching): tests set BPSIM_SIMD
    // mid-process to pin the override and fallback behaviour.
    const char *env = std::getenv("BPSIM_SIMD");
    if (env != nullptr) {
        if (std::strcmp(env, "off") == 0)
            return SimdLevel::Off;
        if (std::strcmp(env, "scalar") == 0)
            return SimdLevel::Scalar;
        if (std::strcmp(env, "avx2") == 0) {
            // Forcing a level the hardware (or build) cannot run
            // falls back to the portable batch kernels.
            return detectSimdLevel() == SimdLevel::Avx2
                       ? SimdLevel::Avx2
                       : SimdLevel::Scalar;
        }
        if (std::strcmp(env, "neon") == 0) {
            return detectSimdLevel() == SimdLevel::Neon
                       ? SimdLevel::Neon
                       : SimdLevel::Scalar;
        }
        // Unknown value: ignore the override.
    }
    return enabled ? detectSimdLevel() : SimdLevel::Off;
}

const char *
simdLevelName(SimdLevel level)
{
    switch (level) {
      case SimdLevel::Off:
        return "off";
      case SimdLevel::Scalar:
        return "scalar";
      case SimdLevel::Avx2:
        return "avx2";
      case SimdLevel::Neon:
        return "neon";
    }
    return "off";
}

unsigned
simdWidth(SimdLevel level)
{
    switch (level) {
      case SimdLevel::Avx2:
        return 8;
      case SimdLevel::Neon:
        return 4;
      case SimdLevel::Off:
      case SimdLevel::Scalar:
        break;
    }
    return 1;
}

} // namespace bpsim
