/**
 * @file
 * The combined static/dynamic predictor — the mechanism the paper
 * evaluates.
 *
 * Branches carrying a static hint are predicted by the hint and never
 * touch the dynamic predictor's tables (relieving aliasing); all other
 * branches are predicted and trained dynamically. What the global
 * history register sees for statically predicted branches is governed
 * by a ShiftPolicy, reproducing the paper's Table 4 experiment.
 */

#ifndef BPSIM_CORE_COMBINED_PREDICTOR_HH
#define BPSIM_CORE_COMBINED_PREDICTOR_HH

#include <memory>

#include "predictor/predictor.hh"
#include "staticsel/static_hint.hh"

namespace bpsim
{

/**
 * What statically predicted branches contribute to the dynamic
 * predictor's global history register.
 */
enum class ShiftPolicy
{
    /** Nothing: static branches vanish from the history (the paper's
     * default configuration). */
    NoShift,

    /** Their actual outcome, as the paper's "Shift" columns: keeps
     * the correlation information the ghist register carries. */
    ShiftOutcome,

    /** Their static prediction (an extension: available at fetch time
     * without waiting for resolution). */
    ShiftPrediction,
};

/** Policy name for table output. */
std::string shiftPolicyName(ShiftPolicy policy);

/**
 * Wraps a dynamic predictor with a static hint database. Implements
 * BranchPredictor so the engine drives it like any other predictor.
 */
class CombinedPredictor : public BranchPredictor
{
  public:
    /**
     * @param dynamic the dynamic component (ownership taken)
     * @param hints   static hints; copied
     * @param policy  history treatment of statically predicted
     *                branches
     */
    CombinedPredictor(std::unique_ptr<BranchPredictor> dynamic,
                      HintDb hints,
                      ShiftPolicy policy = ShiftPolicy::NoShift);

    bool predict(Addr pc) override;
    void update(Addr pc, bool taken) override;
    void updateHistory(bool taken) override;
    void reset() override;
    std::size_t sizeBytes() const override;
    std::string name() const override;
    CollisionStats collisionStats() const override;
    void clearCollisionStats() override;
    Count lastPredictCollisions() const override;

    void
    attachAliasSink(ContextAliasSink *sink) override
    {
        dynamic->attachAliasSink(sink);
    }

    /** True when the most recent prediction came from a hint. */
    bool lastWasStatic() const { return staticActive; }

    /** The wrapped dynamic predictor. */
    BranchPredictor &dynamicComponent() { return *dynamic; }

    /** The hint database in use. */
    const HintDb &hintDb() const { return hints; }

    /** The configured shift policy. */
    ShiftPolicy policy() const { return shiftPolicy; }

  private:
    std::unique_ptr<BranchPredictor> dynamic;
    HintDb hints;
    ShiftPolicy shiftPolicy;

    bool staticActive = false;
    bool staticPrediction = false;
};

} // namespace bpsim

#endif // BPSIM_CORE_COMBINED_PREDICTOR_HH
