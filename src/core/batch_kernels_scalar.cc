/**
 * @file
 * Baseline-target instantiation of the batch replay kernels. Compiled
 * with the project's default flags: portable scalar code on x86-64,
 * NEON-autovectorized on aarch64 (NEON is baseline there).
 */

#define BPSIM_BATCH_NS kernels_scalar
#include "core/batch_kernels_impl.hh"
