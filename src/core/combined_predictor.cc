#include "core/combined_predictor.hh"

#include "support/logging.hh"

namespace bpsim
{

std::string
shiftPolicyName(ShiftPolicy policy)
{
    switch (policy) {
      case ShiftPolicy::NoShift:
        return "noshift";
      case ShiftPolicy::ShiftOutcome:
        return "shift";
      case ShiftPolicy::ShiftPrediction:
        return "shiftpred";
    }
    bpsim_panic("unknown ShiftPolicy");
}

CombinedPredictor::CombinedPredictor(
    std::unique_ptr<BranchPredictor> dynamic, HintDb hints,
    ShiftPolicy policy)
    : dynamic(std::move(dynamic)), hints(std::move(hints)),
      shiftPolicy(policy)
{
    bpsim_assert(this->dynamic != nullptr, "null dynamic component");
}

bool
CombinedPredictor::predict(Addr pc)
{
    bool hinted_direction = false;
    if (hints.lookup(pc, hinted_direction)) {
        // Static hit: the dynamic tables are not consulted at all —
        // this is what relieves the aliasing.
        staticActive = true;
        staticPrediction = hinted_direction;
        return staticPrediction;
    }
    staticActive = false;
    return dynamic->predict(pc);
}

void
CombinedPredictor::update(Addr pc, bool taken)
{
    if (staticActive)
        return; // static branches never train the dynamic tables
    dynamic->update(pc, taken);
}

void
CombinedPredictor::updateHistory(bool taken)
{
    if (!staticActive) {
        dynamic->updateHistory(taken);
        return;
    }
    switch (shiftPolicy) {
      case ShiftPolicy::NoShift:
        break;
      case ShiftPolicy::ShiftOutcome:
        dynamic->updateHistory(taken);
        break;
      case ShiftPolicy::ShiftPrediction:
        dynamic->updateHistory(staticPrediction);
        break;
    }
}

void
CombinedPredictor::reset()
{
    dynamic->reset();
    staticActive = false;
    staticPrediction = false;
}

std::size_t
CombinedPredictor::sizeBytes() const
{
    // Hint bits live in the instruction encoding, not predictor RAM.
    return dynamic->sizeBytes();
}

std::string
CombinedPredictor::name() const
{
    return dynamic->name() + "+static";
}

CollisionStats
CombinedPredictor::collisionStats() const
{
    return dynamic->collisionStats();
}

void
CombinedPredictor::clearCollisionStats()
{
    dynamic->clearCollisionStats();
}

Count
CombinedPredictor::lastPredictCollisions() const
{
    return staticActive ? 0 : dynamic->lastPredictCollisions();
}

} // namespace bpsim
