#include "core/runner.hh"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <deque>
#include <mutex>
#include <thread>

#include "support/logging.hh"

namespace bpsim
{

namespace
{

double
secondsSince(std::chrono::steady_clock::time_point start)
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - start)
        .count();
}

} // namespace

unsigned
resolveThreadCount(unsigned requested)
{
    if (requested > 0)
        return requested;
    if (const char *env = std::getenv("BPSIM_THREADS")) {
        char *end = nullptr;
        const unsigned long value = std::strtoul(env, &end, 10);
        if (end == env || *end != '\0' || value == 0)
            bpsim_fatal("BPSIM_THREADS expects a positive integer, "
                        "got '", env, "'");
        return static_cast<unsigned>(value);
    }
    const unsigned hardware = std::thread::hardware_concurrency();
    return hardware > 0 ? hardware : 1;
}

void
addThreadsOption(ArgParser &args)
{
    args.addOption("threads", "0",
                   "worker threads (0 = $BPSIM_THREADS, else hardware "
                   "concurrency)");
}

unsigned
threadsFromArgs(const ArgParser &args)
{
    return resolveThreadCount(
        static_cast<unsigned>(args.getUint("threads")));
}

TaskPool::TaskPool(unsigned threads)
    : workers(resolveThreadCount(threads))
{
}

void
TaskPool::run(std::vector<std::function<void()>> tasks)
{
    if (tasks.empty())
        return;
    const unsigned n = static_cast<unsigned>(
        std::min<std::size_t>(workers, tasks.size()));
    if (n <= 1) {
        for (auto &task : tasks)
            task();
        return;
    }

    // Round-robin deal onto per-worker deques. Each worker drains its
    // own deque from the front and, when empty, steals from the back
    // of the others, so long-running tails redistribute themselves.
    struct WorkerDeque
    {
        std::deque<std::size_t> items;
        std::mutex lock;
    };
    std::vector<WorkerDeque> deques(n);
    for (std::size_t i = 0; i < tasks.size(); ++i)
        deques[i % n].items.push_back(i);

    std::atomic<std::size_t> remaining{tasks.size()};

    const auto worker = [&](unsigned self) {
        for (;;) {
            std::size_t task_index = 0;
            bool found = false;
            {
                std::lock_guard<std::mutex> guard(deques[self].lock);
                if (!deques[self].items.empty()) {
                    task_index = deques[self].items.front();
                    deques[self].items.pop_front();
                    found = true;
                }
            }
            for (unsigned v = 1; v < n && !found; ++v) {
                WorkerDeque &victim = deques[(self + v) % n];
                std::lock_guard<std::mutex> guard(victim.lock);
                if (!victim.items.empty()) {
                    task_index = victim.items.back();
                    victim.items.pop_back();
                    found = true;
                }
            }
            if (!found) {
                // Every queue is empty; wait for in-flight tasks (a
                // thief could still re-populate nothing — tasks never
                // spawn tasks) and exit.
                if (remaining.load(std::memory_order_acquire) == 0)
                    return;
                std::this_thread::yield();
                continue;
            }
            tasks[task_index]();
            remaining.fetch_sub(1, std::memory_order_acq_rel);
        }
    };

    std::vector<std::thread> threads;
    threads.reserve(n - 1);
    for (unsigned t = 1; t < n; ++t)
        threads.emplace_back(worker, t);
    worker(0);
    for (auto &thread : threads)
        thread.join();
}

double
MatrixResult::serialEstimateSeconds() const
{
    double total = materializeSeconds;
    for (const auto &cell : cells)
        total += cell.wallSeconds;
    return total;
}

double
MatrixResult::speedupVsSerialEstimate() const
{
    return wallSeconds > 0.0 ? serialEstimateSeconds() / wallSeconds
                             : 0.0;
}

ExperimentRunner::ExperimentRunner(RunnerOptions options)
    : options(options), taskPool(options.threads)
{
}

std::size_t
ExperimentRunner::addProgram(SyntheticProgram program)
{
    programs.push_back(std::move(program));
    demand.push_back({});
    buffers.emplace_back();
    return programs.size() - 1;
}

const SyntheticProgram &
ExperimentRunner::program(std::size_t index) const
{
    bpsim_assert(index < programs.size(), "program index out of range");
    return programs[index];
}

std::size_t
ExperimentRunner::addCell(std::size_t program_index,
                          const ExperimentConfig &config,
                          std::string label)
{
    bpsim_assert(program_index < programs.size(),
                 "cell references unknown program");
    MatrixCell cell;
    cell.programIndex = program_index;
    cell.config = config;
    if (label.empty()) {
        label = programs[program_index].name() + "/" +
                predictorKindName(config.kind) + ":" +
                std::to_string(config.sizeBytes) + "/" +
                staticSchemeName(config.scheme);
    }
    cell.label = std::move(label);
    noteCellDemand(cell);
    cells.push_back(std::move(cell));
    return cells.size() - 1;
}

const MatrixCell &
ExperimentRunner::cell(std::size_t index) const
{
    bpsim_assert(index < cells.size(), "cell index out of range");
    return cells[index];
}

void
ExperimentRunner::requireBuffer(std::size_t program_index,
                                InputSet input, Count branches)
{
    bpsim_assert(program_index < programs.size(),
                 "buffer demand for unknown program");
    Count &needed =
        demand[program_index][static_cast<unsigned>(input)];
    needed = std::max(needed, branches);
}

void
ExperimentRunner::noteCellDemand(const MatrixCell &cell)
{
    const ExperimentConfig &config = cell.config;
    Count eval_needed = config.evalBranches;
    if (config.scheme != StaticScheme::None) {
        requireBuffer(cell.programIndex, config.profileInput,
                      config.profileBranches);
        if (config.filterUnstable &&
            config.profileInput != config.evalInput) {
            eval_needed =
                std::max(eval_needed, config.profileBranches);
        }
    }
    requireBuffer(cell.programIndex, config.evalInput, eval_needed);
}

void
ExperimentRunner::materialize()
{
    // Collect programs with outstanding demand. One task per program
    // (not per buffer): materialization mutates the program's input
    // state, so a program's buffers must be filled sequentially.
    std::vector<std::size_t> pending;
    for (std::size_t p = 0; p < programs.size(); ++p) {
        for (unsigned input = 0; input < numInputSets; ++input) {
            const Count needed = demand[p][input];
            const ReplayBuffer *existing = buffers[p][input].get();
            if (needed > 0 &&
                (existing == nullptr || existing->size() < needed)) {
                pending.push_back(p);
                break;
            }
        }
    }
    if (pending.empty())
        return;

    const auto start = std::chrono::steady_clock::now();
    taskPool.parallelFor(pending.size(), [&](std::size_t i) {
        const std::size_t p = pending[i];
        for (unsigned input = 0; input < numInputSets; ++input) {
            const Count needed = demand[p][input];
            const ReplayBuffer *existing = buffers[p][input].get();
            if (needed == 0 ||
                (existing != nullptr && existing->size() >= needed))
                continue;
            programs[p].setInput(static_cast<InputSet>(input));
            buffers[p][input] = std::make_unique<ReplayBuffer>(
                ReplayBuffer::materialize(programs[p], needed));
        }
    });
    materializeSeconds += secondsSince(start);
}

const ReplayBuffer &
ExperimentRunner::buffer(std::size_t program_index,
                         InputSet input) const
{
    bpsim_assert(program_index < programs.size(),
                 "buffer query for unknown program");
    const auto &held =
        buffers[program_index][static_cast<unsigned>(input)];
    bpsim_assert(held != nullptr,
                 "buffer not materialized (call materialize())");
    return *held;
}

MatrixResult
ExperimentRunner::run()
{
    const auto start = std::chrono::steady_clock::now();
    materialize();

    MatrixResult result;
    result.cells.resize(cells.size());
    result.threads = taskPool.threadCount();

    const auto run_start = std::chrono::steady_clock::now();
    taskPool.parallelFor(cells.size(), [&](std::size_t i) {
        const MatrixCell &cell = cells[i];
        const ExperimentConfig &config = cell.config;
        const auto cell_start = std::chrono::steady_clock::now();

        // Each worker owns its cursors, predictor and profile; the
        // buffers are shared read-only, so the hot path takes no
        // locks. Cells without a profiling phase never demanded a
        // profile-input buffer, so feed the (unused, but reset)
        // profile stream from the eval buffer.
        const InputSet profile_input =
            config.scheme != StaticScheme::None ? config.profileInput
                                                : config.evalInput;
        ReplayBuffer::Cursor profile_stream =
            buffer(cell.programIndex, profile_input).cursor();
        ReplayBuffer::Cursor eval_stream =
            buffer(cell.programIndex, config.evalInput).cursor();

        CellResult &out = result.cells[i];
        out.result =
            runExperimentStreams(profile_stream, eval_stream, config);
        out.wallSeconds = secondsSince(cell_start);
    });
    result.runSeconds = secondsSince(run_start);
    result.wallSeconds = secondsSince(start);
    result.materializeSeconds = materializeSeconds;

    for (const auto &cell : result.cells)
        result.totalBranches += cell.result.simulatedBranches;
    for (const auto &per_program : buffers) {
        for (const auto &held : per_program) {
            if (held != nullptr)
                result.replayBytes += held->memoryBytes();
        }
    }
    return result;
}

void
writeRunnerJson(const std::string &path, const std::string &bench,
                const ExperimentRunner &runner,
                const MatrixResult &result, double baseline_seconds)
{
    std::FILE *file = std::fopen(path.c_str(), "w");
    if (file == nullptr)
        bpsim_fatal("cannot write '", path, "'");

    std::fprintf(file, "{\n");
    std::fprintf(file, "  \"bench\": \"%s\",\n", bench.c_str());
    std::fprintf(file, "  \"threads\": %u,\n", result.threads);
    std::fprintf(file, "  \"cells\": [\n");
    for (std::size_t i = 0; i < result.cells.size(); ++i) {
        const CellResult &cell = result.cells[i];
        const MatrixCell &meta = runner.cell(i);
        std::fprintf(
            file,
            "    {\"label\": \"%s\", \"program\": \"%s\", "
            "\"misp_ki\": %.6f, \"hints\": %zu, "
            "\"branches\": %llu, \"wall_seconds\": %.6f, "
            "\"branches_per_second\": %.1f}%s\n",
            meta.label.c_str(),
            runner.program(meta.programIndex).name().c_str(),
            cell.result.stats.mispKi(), cell.result.hintCount,
            static_cast<unsigned long long>(
                cell.result.simulatedBranches),
            cell.wallSeconds, cell.branchesPerSecond(),
            i + 1 < result.cells.size() ? "," : "");
    }
    std::fprintf(file, "  ],\n");
    std::fprintf(file, "  \"materialize_seconds\": %.6f,\n",
                 result.materializeSeconds);
    std::fprintf(file, "  \"run_seconds\": %.6f,\n",
                 result.runSeconds);
    std::fprintf(file, "  \"wall_seconds\": %.6f,\n",
                 result.wallSeconds);
    std::fprintf(file, "  \"total_branches\": %llu,\n",
                 static_cast<unsigned long long>(result.totalBranches));
    std::fprintf(
        file, "  \"branches_per_second\": %.1f,\n",
        result.wallSeconds > 0.0
            ? static_cast<double>(result.totalBranches) /
                  result.wallSeconds
            : 0.0);
    std::fprintf(file, "  \"replay_buffer_bytes\": %zu,\n",
                 result.replayBytes);
    std::fprintf(file, "  \"serial_estimate_seconds\": %.6f,\n",
                 result.serialEstimateSeconds());
    if (baseline_seconds > 0.0) {
        std::fprintf(file, "  \"baseline_seconds\": %.6f,\n",
                     baseline_seconds);
        std::fprintf(file, "  \"speedup_vs_baseline\": %.3f,\n",
                     result.wallSeconds > 0.0
                         ? baseline_seconds / result.wallSeconds
                         : 0.0);
    }
    std::fprintf(file, "  \"speedup_vs_serial_estimate\": %.3f\n",
                 result.speedupVsSerialEstimate());
    std::fprintf(file, "}\n");
    std::fclose(file);
}

} // namespace bpsim
