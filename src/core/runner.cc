#include "core/runner.hh"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <deque>
#include <limits>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <utility>

#include "cache/artifact_cache.hh"
#include "core/checkpoint.hh"
#include "core/simd.hh"
#include "support/atomic_file.hh"
#include "support/fault.hh"
#include "support/json.hh"
#include "support/logging.hh"
#include "trace/replay_buffer.hh"

namespace bpsim
{

namespace
{

double
secondsSince(std::chrono::steady_clock::time_point start)
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - start)
        .count();
}

/** Sentinel for "cell has no shared profiling phase". */
constexpr std::size_t noPhase = std::numeric_limits<std::size_t>::max();

/**
 * Worker index of the calling thread within the pool currently
 * executing it; 0 everywhere else. The coordinating thread
 * participates as worker 0, so its default needs no special casing.
 */
thread_local unsigned poolWorkerIndex = 0;

/**
 * Cache identity of a cell's profiling run: everything that affects
 * the ProfilePhase and nothing that doesn't (the selection scheme and
 * its tunables apply downstream, which is what makes the phase
 * shareable across scheme cells). Empty when the phase is uncacheable
 * (a makeDynamic factory with no dynamicKey).
 */
std::string
profileCacheKey(const MatrixCell &cell)
{
    const ExperimentConfig &config = cell.config;
    const std::string identity = predictorIdentityOf(config);
    if (identity.empty())
        return {};
    return std::to_string(cell.programIndex) + "|" +
           std::to_string(
               static_cast<unsigned>(config.profileInput)) +
           "|" + std::to_string(config.profileBranches) + "|" +
           identity;
}

/**
 * Run @p fn up to 1 + @p retries times, retrying only transient
 * failures. Returns the final Error (std::nullopt on success) and
 * reports the attempts made through @p attempts. Non-ErrorException
 * exceptions become internal errors and never retry.
 */
std::optional<Error>
attemptWithRetries(unsigned retries, unsigned &attempts,
                   const std::function<void()> &fn)
{
    for (attempts = 1;; ++attempts) {
        try {
            fn();
            return std::nullopt;
        } catch (const ErrorException &failure) {
            if (!failure.error().transient() || attempts > retries)
                return failure.error();
        } catch (const std::exception &failure) {
            return Error(ErrorCode::Internal,
                         std::string("unexpected exception: ") +
                             failure.what());
        }
    }
}

/** Short input-set name for fused-group labels. */
const char *
inputSetName(InputSet input)
{
    return input == InputSet::Train ? "train" : "ref";
}

/** Comma-joined index list ("3,4,7") for journal payloads. */
std::string
joinIndexList(const std::vector<Count> &values)
{
    std::string out;
    for (std::size_t i = 0; i < values.size(); ++i) {
        if (i > 0)
            out += ",";
        out += std::to_string(values[i]);
    }
    return out;
}

/**
 * One planned fused pass: work items (cell or profile-phase indices)
 * that share a replay buffer, stepped together by one worker.
 */
struct FusedGroupPlan
{
    std::size_t programIndex = 0;
    InputSet input = InputSet::Ref;
    std::vector<std::size_t> members;
};

/**
 * Group @p items by their shared buffer, in first-seen item order so
 * the plan — and with it every result — is independent of the thread
 * count. @p key maps an item to its (program index, input) pair. The
 * group count is small (programs × inputs), so the linear scan beats
 * a map.
 */
template <typename Key>
std::vector<FusedGroupPlan>
groupForFusion(const std::vector<std::size_t> &items, const Key &key)
{
    std::vector<FusedGroupPlan> groups;
    for (const std::size_t item : items) {
        const auto [program, input] = key(item);
        FusedGroupPlan *group = nullptr;
        for (FusedGroupPlan &candidate : groups) {
            if (candidate.programIndex == program &&
                candidate.input == input) {
                group = &candidate;
                break;
            }
        }
        if (group == nullptr) {
            groups.push_back({program, input, {}});
            group = &groups.back();
        }
        group->members.push_back(item);
    }
    return groups;
}

/**
 * Split each group's member list into near-equal contiguous chunks so
 * a sweep with fewer groups than workers still spreads across the
 * pool. Chunking never changes results — each member still steps
 * through its own records — only which worker steps it.
 */
std::vector<FusedGroupPlan>
chunkGroups(std::vector<FusedGroupPlan> groups, unsigned threads)
{
    const std::size_t per_group =
        groups.empty() ? 1
                       : (threads + groups.size() - 1) / groups.size();
    std::vector<FusedGroupPlan> chunks;
    for (FusedGroupPlan &group : groups) {
        const std::size_t parts = std::clamp<std::size_t>(
            per_group, 1, group.members.size());
        const std::size_t base = group.members.size() / parts;
        const std::size_t extra = group.members.size() % parts;
        std::size_t at = 0;
        for (std::size_t c = 0; c < parts; ++c) {
            const std::size_t len = base + (c < extra ? 1 : 0);
            FusedGroupPlan chunk;
            chunk.programIndex = group.programIndex;
            chunk.input = group.input;
            chunk.members.assign(group.members.begin() + at,
                                 group.members.begin() + at + len);
            at += len;
            chunks.push_back(std::move(chunk));
        }
    }
    return chunks;
}

} // namespace

unsigned
resolveThreadCount(unsigned requested)
{
    if (requested > 0) {
        if (requested > maxResolvedThreads) {
            std::fprintf(stderr,
                         "bpsim: warning: %u threads requested; "
                         "clamping to %u\n",
                         requested, maxResolvedThreads);
            return maxResolvedThreads;
        }
        return requested;
    }
    const unsigned hardware = std::thread::hardware_concurrency();
    const unsigned fallback = hardware > 0 ? hardware : 1;
    if (const char *env = std::getenv("BPSIM_THREADS")) {
        char *end = nullptr;
        const unsigned long value = std::strtoul(env, &end, 10);
        // strtoul wraps negative input to a huge value; treat it as
        // garbage like any other unparseable token.
        if (end == env || *end != '\0' || value == 0 ||
            env[0] == '-') {
            // Garbage in the environment degrades to the hardware
            // default with a warning: a bad shell export should not
            // kill a sweep that would otherwise run fine.
            std::fprintf(stderr,
                         "bpsim: warning: BPSIM_THREADS expects a "
                         "positive integer, got '%s'; using %u\n",
                         env, fallback);
            return fallback;
        }
        if (value > maxResolvedThreads) {
            std::fprintf(stderr,
                         "bpsim: warning: BPSIM_THREADS=%lu; "
                         "clamping to %u\n",
                         value, maxResolvedThreads);
            return maxResolvedThreads;
        }
        return static_cast<unsigned>(value);
    }
    return fallback;
}

void
addThreadsOption(ArgParser &args)
{
    args.addOption("threads", "0",
                   "worker threads (0 = $BPSIM_THREADS, else hardware "
                   "concurrency)");
}

unsigned
threadsFromArgs(const ArgParser &args)
{
    return resolveThreadCount(
        static_cast<unsigned>(args.getUint("threads")));
}

TaskPool::TaskPool(unsigned threads)
    : workers(resolveThreadCount(threads))
{
}

unsigned
TaskPool::currentWorkerIndex()
{
    return poolWorkerIndex;
}

void
TaskPool::run(std::vector<std::function<void()>> tasks)
{
    const std::vector<std::exception_ptr> errors =
        runCollect(std::move(tasks));
    // Every task ran (or captured); rethrow the first failure by task
    // index so the escaping exception is thread-count independent.
    for (const std::exception_ptr &error : errors) {
        if (error)
            std::rethrow_exception(error);
    }
}

std::vector<std::exception_ptr>
TaskPool::runCollect(std::vector<std::function<void()>> tasks)
{
    std::vector<std::exception_ptr> errors(tasks.size());
    if (tasks.empty())
        return errors;
    const auto guarded = [&](std::size_t task_index) {
        try {
            tasks[task_index]();
        } catch (...) {
            errors[task_index] = std::current_exception();
        }
    };
    const unsigned n = static_cast<unsigned>(
        std::min<std::size_t>(workers, tasks.size()));
    if (n <= 1) {
        for (std::size_t i = 0; i < tasks.size(); ++i)
            guarded(i);
        return errors;
    }

    // Round-robin deal onto per-worker deques. Each worker drains its
    // own deque from the front and, when empty, steals from the back
    // of the others, so long-running tails redistribute themselves.
    struct WorkerDeque
    {
        std::deque<std::size_t> items;
        std::mutex lock;
    };
    std::vector<WorkerDeque> deques(n);
    for (std::size_t i = 0; i < tasks.size(); ++i)
        deques[i % n].items.push_back(i);

    std::atomic<std::size_t> remaining{tasks.size()};

    const auto worker = [&](unsigned self) {
        poolWorkerIndex = self;
        for (;;) {
            std::size_t task_index = 0;
            bool found = false;
            {
                std::lock_guard<std::mutex> guard(deques[self].lock);
                if (!deques[self].items.empty()) {
                    task_index = deques[self].items.front();
                    deques[self].items.pop_front();
                    found = true;
                }
            }
            for (unsigned v = 1; v < n && !found; ++v) {
                WorkerDeque &victim = deques[(self + v) % n];
                std::lock_guard<std::mutex> guard(victim.lock);
                if (!victim.items.empty()) {
                    task_index = victim.items.back();
                    victim.items.pop_back();
                    found = true;
                }
            }
            if (!found) {
                // Every queue is empty; wait for in-flight tasks (a
                // thief could still re-populate nothing — tasks never
                // spawn tasks) and exit.
                if (remaining.load(std::memory_order_acquire) == 0)
                    return;
                std::this_thread::yield();
                continue;
            }
            guarded(task_index);
            remaining.fetch_sub(1, std::memory_order_acq_rel);
        }
    };

    std::vector<std::thread> threads;
    threads.reserve(n - 1);
    for (unsigned t = 1; t < n; ++t)
        threads.emplace_back(worker, t);
    worker(0);
    for (auto &thread : threads)
        thread.join();
    return errors;
}

double
MatrixResult::serialEstimateSeconds() const
{
    double total = materializeSeconds + profileSeconds;
    for (const auto &cell : cells)
        total += cell.wallSeconds;
    return total;
}

double
MatrixResult::kernelBranchesPerSecond() const
{
    double sim_seconds = profileSeconds;
    for (const auto &cell : cells)
        sim_seconds += cell.wallSeconds;
    return sim_seconds > 0.0
               ? static_cast<double>(actualBranches) / sim_seconds
               : 0.0;
}

double
MatrixResult::speedupVsSerialEstimate() const
{
    return wallSeconds > 0.0 ? serialEstimateSeconds() / wallSeconds
                             : 0.0;
}

Result<std::pair<unsigned, unsigned>>
parseShardSpec(const std::string &spec)
{
    const auto invalid = [&spec] {
        return Result<std::pair<unsigned, unsigned>>(
            Error(ErrorCode::ConfigInvalid,
                  "shard spec must be 1-based i/N with 1 <= i <= N")
                .withContext("got '" + spec + "'"));
    };
    const std::size_t slash = spec.find('/');
    if (slash == std::string::npos || slash == 0 ||
        slash + 1 >= spec.size())
        return invalid();
    const std::string index_text = spec.substr(0, slash);
    const std::string count_text = spec.substr(slash + 1);
    const auto is_digits = [](const std::string &text) {
        return !text.empty() &&
               text.find_first_not_of("0123456789") ==
                   std::string::npos;
    };
    if (!is_digits(index_text) || !is_digits(count_text) ||
        index_text.size() > 9 || count_text.size() > 9)
        return invalid();
    const unsigned long index = std::strtoul(index_text.c_str(),
                                             nullptr, 10);
    const unsigned long count = std::strtoul(count_text.c_str(),
                                             nullptr, 10);
    if (index == 0 || count == 0 || index > count)
        return invalid();
    return Result<std::pair<unsigned, unsigned>>(
        std::pair<unsigned, unsigned>(
            static_cast<unsigned>(index),
            static_cast<unsigned>(count)));
}

ExperimentRunner::ExperimentRunner(RunnerOptions options)
    : options(options), taskPool(options.threads)
{
    if (!this->options.cacheDir.empty())
        cache = std::make_unique<ArtifactCache>(this->options.cacheDir);
}

ExperimentRunner::~ExperimentRunner() = default;

void
ExperimentRunner::validateShardOptions() const
{
    if (options.shardCount == 0 || options.shardIndex == 0 ||
        options.shardIndex > options.shardCount) {
        raise(Error(ErrorCode::ConfigInvalid,
                    "shard index/count must satisfy 1 <= index <= "
                    "count")
                  .withContext("got shard " +
                               std::to_string(options.shardIndex) +
                               "/" +
                               std::to_string(options.shardCount)));
    }
}

const std::string &
ExperimentRunner::fingerprintOf(std::size_t index)
{
    bpsim_assert(index < cells.size(), "fingerprint index out of range");
    if (fingerprintMemo.size() < cells.size())
        fingerprintMemo.resize(cells.size());
    if (!fingerprintMemo[index].has_value()) {
        fingerprintMemo[index] = cellFingerprint(
            *programs[cells[index].programIndex], cells[index].config);
    }
    return *fingerprintMemo[index];
}

bool
ExperimentRunner::cellInShard(std::size_t index)
{
    if (options.shardCount <= 1)
        return true;
    // Unfingerprintable cells (keyless makeDynamic factories) hash
    // their label instead, so every cell lands in exactly one shard
    // and a merged shard set still covers the whole matrix.
    const std::string &fingerprint = fingerprintOf(index);
    const std::string &identity =
        fingerprint.empty() ? cells[index].label : fingerprint;
    return shardOfFingerprint(identity, options.shardCount) ==
           options.shardIndex - 1;
}

std::size_t
ExperimentRunner::addProgram(SyntheticProgram program)
{
    return addWorkload(
        std::make_unique<SyntheticProgram>(std::move(program)));
}

std::size_t
ExperimentRunner::addWorkload(std::unique_ptr<WorkloadSource> workload)
{
    bpsim_assert(workload != nullptr, "null workload registered");
    programs.push_back(std::move(workload));
    demand.push_back({});
    buffers.emplace_back();
    return programs.size() - 1;
}

const WorkloadSource &
ExperimentRunner::program(std::size_t index) const
{
    bpsim_assert(index < programs.size(), "program index out of range");
    return *programs[index];
}

std::size_t
ExperimentRunner::addCell(std::size_t program_index,
                          const ExperimentConfig &config,
                          std::string label)
{
    bpsim_assert(program_index < programs.size(),
                 "cell references unknown program");
    MatrixCell cell;
    cell.programIndex = program_index;
    cell.config = config;
    // Attach the journal's counter registry so the engine's per-run
    // counters (kernel vs virtual path, branch totals) land in the
    // metrics summary. Not part of the cell's identity: the profile
    // cache key ignores it and results are unaffected.
    if (options.journal != nullptr)
        cell.config.counters = &options.journal->counters();
    // The runner-wide --no-simd switch can only narrow a cell's
    // config, never widen it: results are bit-identical either way,
    // so — like counters — this is invisible to the profile-cache
    // key and the checkpoint fingerprint.
    cell.config.simd = cell.config.simd && options.simd;
    if (label.empty()) {
        const std::string identity = predictorIdentityOf(config);
        label = programs[program_index]->name() + "/" +
                (identity.empty()
                     ? predictorKindName(config.kind) + ":" +
                           std::to_string(config.sizeBytes)
                     : identity) +
                "/" + staticSchemeName(config.scheme);
    }
    cell.label = std::move(label);
    // Demands are folded in at materialize() time (not here) so a
    // sharded run only materializes the buffers its own cells touch.
    cells.push_back(std::move(cell));
    return cells.size() - 1;
}

const MatrixCell &
ExperimentRunner::cell(std::size_t index) const
{
    bpsim_assert(index < cells.size(), "cell index out of range");
    return cells[index];
}

void
ExperimentRunner::requireBuffer(std::size_t program_index,
                                InputSet input, Count branches)
{
    bpsim_assert(program_index < programs.size(),
                 "buffer demand for unknown program");
    Count &needed =
        demand[program_index][static_cast<unsigned>(input)];
    needed = std::max(needed, branches);
}

void
ExperimentRunner::noteCellDemand(
    const MatrixCell &cell,
    std::vector<std::array<Count, numInputSets>> &plan) const
{
    const ExperimentConfig &config = cell.config;
    const auto require = [&plan, &cell](InputSet input,
                                        Count branches) {
        Count &needed =
            plan[cell.programIndex][static_cast<unsigned>(input)];
        needed = std::max(needed, branches);
    };
    // Warmup branches come out of the same stream ahead of the
    // measured window, so the buffer must cover both.
    Count eval_needed = config.evalBranches + config.evalWarmupBranches;
    if (config.scheme != StaticScheme::None) {
        require(config.profileInput, config.profileBranches);
        if (config.filterUnstable &&
            config.profileInput != config.evalInput) {
            eval_needed =
                std::max(eval_needed, config.profileBranches);
        }
    }
    require(config.evalInput, eval_needed);
}

void
ExperimentRunner::materialize()
{
    validateShardOptions();
    // The buffer plan: explicit requireBuffer() demands plus the
    // demands of every cell this shard owns. Folding cell demands in
    // here (not at addCell time) is what makes sharding a real
    // materialization win — a shard never generates or maps a buffer
    // only other shards' cells touch.
    auto plan = demand;
    for (std::size_t i = 0; i < cells.size(); ++i) {
        if (cellInShard(i))
            noteCellDemand(cells[i], plan);
    }

    // Collect programs with outstanding demand. One task per program
    // (not per buffer): materialization mutates the program's input
    // state, so a program's buffers must be filled sequentially.
    std::vector<std::size_t> pending;
    for (std::size_t p = 0; p < programs.size(); ++p) {
        for (unsigned input = 0; input < numInputSets; ++input) {
            const Count needed = plan[p][input];
            const ReplayBuffer *existing = buffers[p][input].get();
            if (needed > 0 &&
                (existing == nullptr || existing->size() < needed)) {
                pending.push_back(p);
                break;
            }
        }
    }
    if (pending.empty())
        return;

    obs::RunJournal *journal = options.journal;
    const auto start = std::chrono::steady_clock::now();
    taskPool.parallelFor(pending.size(), [&](std::size_t i) {
        const std::size_t p = pending[i];
        faultPoint(fault_points::materialize, programs[p]->name());
        for (unsigned input = 0; input < numInputSets; ++input) {
            const Count needed = plan[p][input];
            const ReplayBuffer *existing = buffers[p][input].get();
            if (needed == 0 ||
                (existing != nullptr && existing->size() >= needed))
                continue;
            std::string key;
            if (cache != nullptr) {
                key = replayArtifactKey(programs[p]->name(),
                                        programs[p]->seedValue(),
                                        input, needed);
                auto lookup = cache->loadReplay(key);
                if (!lookup.ok()) {
                    // Corrupt artifact: journal it, then regenerate
                    // below — the store overwrites the bad file.
                    std::fprintf(stderr,
                                 "bpsim: warning: corrupt replay "
                                 "artifact: %s\n",
                                 lookup.error().describe().c_str());
                    if (journal != nullptr) {
                        journal->record(
                            obs::EventKind::CacheCorrupt,
                            TaskPool::currentWorkerIndex(),
                            programs[p]->name(),
                            {obs::Field::str("artifact", "replay"),
                             obs::Field::str("key", key)});
                    }
                } else if (lookup.value().hit) {
                    buffers[p][input] = std::make_unique<ReplayBuffer>(
                        std::move(lookup.value().buffer));
                    if (journal != nullptr) {
                        journal->record(
                            obs::EventKind::Cache,
                            TaskPool::currentWorkerIndex(),
                            programs[p]->name(),
                            {obs::Field::str("artifact", "replay"),
                             obs::Field::str("op", "hit"),
                             obs::Field::u64(
                                 "bytes",
                                 buffers[p][input]->memoryBytes())});
                    }
                    continue;
                }
            }
            programs[p]->setInput(static_cast<InputSet>(input));
            buffers[p][input] = std::make_unique<ReplayBuffer>(
                ReplayBuffer::materialize(*programs[p], needed));
            if (cache != nullptr) {
                auto stored =
                    cache->storeReplay(key, *buffers[p][input]);
                if (!stored.ok()) {
                    // A write failure only costs the next process a
                    // regeneration; never fail the run for it.
                    std::fprintf(stderr,
                                 "bpsim: warning: replay artifact "
                                 "store failed: %s\n",
                                 stored.error().describe().c_str());
                } else if (journal != nullptr) {
                    journal->record(
                        obs::EventKind::Cache,
                        TaskPool::currentWorkerIndex(),
                        programs[p]->name(),
                        {obs::Field::str("artifact", "replay"),
                         obs::Field::str("op", "store"),
                         obs::Field::u64(
                             "bytes",
                             buffers[p][input]->memoryBytes())});
                }
            }
        }
    });
    materializeSeconds += secondsSince(start);
}

const ReplayBuffer &
ExperimentRunner::buffer(std::size_t program_index,
                         InputSet input) const
{
    bpsim_assert(program_index < programs.size(),
                 "buffer query for unknown program");
    const auto &held =
        buffers[program_index][static_cast<unsigned>(input)];
    bpsim_assert(held != nullptr,
                 "buffer not materialized (call materialize())");
    return *held;
}

MatrixResult
ExperimentRunner::run()
{
    obs::RunJournal *journal = options.journal;
    TimerRegistry *timers =
        journal != nullptr ? &journal->timers() : nullptr;

    validateShardOptions();

    // Checkpoint binding and resume load come first: an unreadable
    // checkpoint under --resume is a whole-run failure, raised before
    // any simulation work or journal events.
    std::unique_ptr<SweepCheckpoint> checkpoint;
    if (!options.checkpointPath.empty()) {
        checkpoint =
            std::make_unique<SweepCheckpoint>(options.checkpointPath);
    }
    if (options.resume && checkpoint != nullptr) {
        Result<void> loaded = checkpoint->load();
        if (!loaded.ok()) {
            raise(std::move(loaded.error())
                      .withContext("while resuming sweep"));
        }
    }
    std::vector<std::string> fingerprints(cells.size());
    if (checkpoint != nullptr || options.shardCount > 1) {
        for (std::size_t i = 0; i < cells.size(); ++i)
            fingerprints[i] = fingerprintOf(i);
    }

    // Shard membership. Out-of-shard cells keep their result slots
    // (indices stay matrix-stable for benches that print by position)
    // but are excluded from demand, profiling, execution, journal
    // events, checkpointing and aggregation.
    std::vector<char> in_shard(cells.size(), 1);
    if (options.shardCount > 1) {
        for (std::size_t i = 0; i < cells.size(); ++i)
            in_shard[i] = cellInShard(i) ? 1 : 0;
    }

    // Stamp the checkpoint with this run's shard identity. A resumed
    // file carrying a different stamp would silently mix slices of
    // different partitions, so that is rejected up front; the
    // immediate flush gives even a zero-cell shard a header-stamped
    // file for `merge` to verify.
    if (checkpoint != nullptr) {
        ShardStamp stamp;
        stamp.shardIndex = options.shardIndex;
        stamp.shardCount = options.shardCount;
        stamp.matrixCells = cells.size();
        for (std::size_t i = 0; i < cells.size(); ++i) {
            if (in_shard[i] && !fingerprints[i].empty())
                ++stamp.shardCells;
        }
        const std::optional<ShardStamp> existing = checkpoint->shard();
        if (existing.has_value() &&
            (existing->shardIndex != stamp.shardIndex ||
             existing->shardCount != stamp.shardCount ||
             existing->matrixCells != stamp.matrixCells)) {
            raise(Error(ErrorCode::ConfigInvalid,
                        "checkpoint was written by a different "
                        "shard or matrix")
                      .withContext(
                          "file '" + options.checkpointPath +
                          "' is shard " +
                          std::to_string(existing->shardIndex) + "/" +
                          std::to_string(existing->shardCount) +
                          " of " +
                          std::to_string(existing->matrixCells) +
                          " cells; this run is shard " +
                          std::to_string(stamp.shardIndex) + "/" +
                          std::to_string(stamp.shardCount) + " of " +
                          std::to_string(stamp.matrixCells)));
        }
        checkpoint->setShard(stamp);
        const Result<void> flushed = checkpoint->flush();
        if (!flushed.ok()) {
            std::fprintf(stderr,
                         "bpsim: warning: checkpoint header write "
                         "failed: %s\n",
                         flushed.error().describe().c_str());
        }
    }

    // Resolve the dispatch level once up front so the journal and the
    // runner JSON agree on what the engine will pick (the engine
    // re-resolves per simulation, but the inputs — CPU, options,
    // BPSIM_SIMD — are identical).
    const SimdLevel dispatch_level = resolveSimdLevel(options.simd);

    if (journal != nullptr) {
        journal->record(
            obs::EventKind::RunBegin, TaskPool::currentWorkerIndex(),
            journal->runLabel(),
            {obs::Field::u64("threads", taskPool.threadCount()),
             obs::Field::u64("cells", cells.size()),
             obs::Field::str("dispatch",
                             simdLevelName(dispatch_level)),
             obs::Field::u64("simd_width",
                             simdWidth(dispatch_level)),
             obs::Field::u64("shard_index", options.shardIndex),
             obs::Field::u64("shard_count", options.shardCount)});
    }

    const auto start = std::chrono::steady_clock::now();
    {
        if (journal != nullptr)
            journal->record(obs::EventKind::PhaseBegin,
                            TaskPool::currentWorkerIndex(),
                            "materialize");
        ScopedTimer timer(timers, "runner.materialize");
        try {
            materialize();
        } catch (...) {
            // Nothing can run without buffers: close the phase
            // bracket and let the failure escape to the caller.
            if (journal != nullptr) {
                journal->record(obs::EventKind::PhaseEnd,
                                TaskPool::currentWorkerIndex(),
                                "materialize",
                                {obs::Field::f64("seconds", 0.0)});
            }
            throw;
        }
        const double seconds = timer.stop();
        if (journal != nullptr) {
            std::size_t bytes = 0;
            for (const auto &per_program : buffers) {
                for (const auto &held : per_program) {
                    if (held != nullptr)
                        bytes += held->memoryBytes();
                }
            }
            std::vector<obs::Field> fields = {
                obs::Field::f64("seconds", seconds),
                obs::Field::u64("bytes", bytes)};
            if (cache != nullptr) {
                const ArtifactCacheStats stats = cache->stats();
                fields.push_back(obs::Field::u64("cache_replay_hits",
                                                 stats.replayHits));
                fields.push_back(obs::Field::u64(
                    "cache_replay_misses", stats.replayMisses));
                fields.push_back(
                    obs::Field::u64("mmap_bytes", stats.mappedBytes));
            }
            journal->record(obs::EventKind::Materialize,
                            TaskPool::currentWorkerIndex(),
                            "materialize", std::move(fields));
            journal->record(obs::EventKind::PhaseEnd,
                            TaskPool::currentWorkerIndex(),
                            "materialize",
                            {obs::Field::f64("seconds", seconds)});
        }
    }

    MatrixResult result;
    result.cells.resize(cells.size());
    result.threads = taskPool.threadCount();
    result.fused = options.fused;
    result.dispatch = simdLevelName(dispatch_level);
    result.simdLanes = simdWidth(dispatch_level);
    result.shardIndex = options.shardIndex;
    result.shardCount = options.shardCount;

    // Per-cell validation up front: an invalid cell becomes a failed
    // result without executing anything — crucially it also stays
    // out of the profile-phase plan, where its config could not
    // build a predictor. Out-of-shard cells are not validated: they
    // are another process's responsibility, and marking them failed
    // here would double-count the failure across shards.
    std::vector<std::optional<Error>> invalid(cells.size());
    for (std::size_t i = 0; i < cells.size(); ++i) {
        if (!in_shard[i])
            continue;
        Result<void> valid = cells[i].config.validate();
        if (!valid.ok())
            invalid[i] = std::move(valid.error());
    }

    // Cells restored from the checkpoint (copied out: the checkpoint
    // grows concurrently once workers start recording new cells).
    std::vector<std::optional<CheckpointRecord>> restored(cells.size());
    if (options.resume && checkpoint != nullptr) {
        for (std::size_t i = 0; i < cells.size(); ++i) {
            if (!in_shard[i] || invalid[i].has_value())
                continue;
            const CheckpointRecord *record =
                checkpoint->find(fingerprints[i]);
            if (record != nullptr)
                restored[i] = *record;
        }
    }

    const auto run_start = std::chrono::steady_clock::now();

    // Phase A: the unique profiling runs. Distinct cells often need
    // byte-identical profiling simulations (every scheme cell of one
    // program × predictor does); run each unique one once, in
    // first-seen cell order so the task list — and with it every
    // result — is independent of the thread count. The plan (and the
    // cache accounting) covers restored cells too: it is a property
    // of the matrix, so a resumed run reports the same hit/miss
    // counts as an uninterrupted one.
    struct ProfileTask
    {
        std::size_t programIndex;
        InputSet input;
        const ExperimentConfig *config;
    };
    std::vector<ProfileTask> profile_tasks;
    std::vector<std::size_t> cell_phase(cells.size(), noPhase);
    if (options.profileCache) {
        std::unordered_map<std::string, std::size_t> phase_of_key;
        for (std::size_t i = 0; i < cells.size(); ++i) {
            const ExperimentConfig &config = cells[i].config;
            if (!in_shard[i] || invalid[i].has_value())
                continue;
            if (config.scheme == StaticScheme::None)
                continue;
            const std::string key = profileCacheKey(cells[i]);
            if (key.empty())
                continue;
            const auto [it, inserted] =
                phase_of_key.try_emplace(key, profile_tasks.size());
            if (inserted) {
                profile_tasks.push_back({cells[i].programIndex,
                                         config.profileInput,
                                         &config});
            } else {
                ++result.profileCacheHits;
            }
            cell_phase[i] = it->second;
        }
        result.profileCacheMisses = profile_tasks.size();
    }

    // Only phases with at least one pending consumer execute; a
    // phase whose every consumer was restored is skipped (its branch
    // count is recovered from the checkpoint records below).
    std::vector<char> phase_needed(profile_tasks.size(), 0);
    for (std::size_t i = 0; i < cells.size(); ++i) {
        if (cell_phase[i] != noPhase && !restored[i].has_value())
            phase_needed[cell_phase[i]] = 1;
    }
    std::vector<std::size_t> phase_exec;
    for (std::size_t j = 0; j < profile_tasks.size(); ++j) {
        if (phase_needed[j])
            phase_exec.push_back(j);
    }

    std::vector<ProfilePhase> phases(profile_tasks.size());
    std::vector<Count> phase_branches(profile_tasks.size(), 0);
    std::vector<double> phase_walls(profile_tasks.size(), 0.0);
    std::vector<char> phase_kernel(profile_tasks.size(), 0);
    std::vector<char> phase_simd(profile_tasks.size(), 0);
    std::vector<std::optional<Error>> phase_errors(
        profile_tasks.size());
    std::atomic<bool> abortRun{false};
    std::atomic<Count> fused_group_count{0};

    // Cooperative cancellation: polled at the same gates as the
    // fail-fast flag, in both phases. Work not yet started when the
    // token trips is skipped with a Cancelled error; work in flight
    // finishes (and checkpoints) normally.
    const auto cancelled = [&] {
        return options.cancel && options.cancel();
    };

    // Artifact-cache pass over the executable phases: a valid on-disk
    // profile satisfies a phase without simulating anything. Each
    // disk hit still journals a profile_phase event (marked
    // cache="disk") so the events-vs-misses invariant the validator
    // checks holds on warm runs; kernel/simd are vacuously true for a
    // phase nothing simulated, mirroring how restored cells keep
    // their recorded flags. profileCacheMisses deliberately stays the
    // in-memory plan size — the disk hit/miss split is reported
    // separately in the cache counters.
    std::vector<std::string> phase_disk_keys(profile_tasks.size());
    if (cache != nullptr && !phase_exec.empty()) {
        std::vector<std::size_t> still_exec;
        still_exec.reserve(phase_exec.size());
        for (const std::size_t j : phase_exec) {
            const ProfileTask &task = profile_tasks[j];
            const ExperimentConfig &config = *task.config;
            const WorkloadSource &program =
                *programs[task.programIndex];
            const std::string identity = predictorIdentityOf(config);
            phase_disk_keys[j] = profileArtifactKey(
                program.name(), program.seedValue(),
                static_cast<unsigned>(task.input),
                config.profileBranches, identity);
            ScopedTimer timer(timers, "runner.profile_cache_load");
            auto lookup = cache->loadProfile(phase_disk_keys[j]);
            if (!lookup.ok()) {
                std::fprintf(stderr,
                             "bpsim: warning: corrupt profile "
                             "artifact: %s\n",
                             lookup.error().describe().c_str());
                if (journal != nullptr) {
                    journal->record(
                        obs::EventKind::CacheCorrupt,
                        TaskPool::currentWorkerIndex(),
                        program.name(),
                        {obs::Field::str("artifact", "profile"),
                         obs::Field::str("key", phase_disk_keys[j])});
                }
                still_exec.push_back(j);
                continue;
            }
            if (!lookup.value().hit) {
                timer.stop();
                still_exec.push_back(j);
                continue;
            }
            phases[j].profile = std::move(lookup.value().profile);
            phases[j].simulatedBranches =
                lookup.value().simulatedBranches;
            phase_branches[j] = phases[j].simulatedBranches;
            phase_kernel[j] = 1;
            phase_simd[j] = 1;
            phase_walls[j] = timer.stop();
            if (journal != nullptr) {
                journal->record(
                    obs::EventKind::Cache,
                    TaskPool::currentWorkerIndex(), program.name(),
                    {obs::Field::str("artifact", "profile"),
                     obs::Field::str("op", "hit"),
                     obs::Field::u64("branches", phase_branches[j])});
                journal->record(
                    obs::EventKind::ProfilePhase,
                    TaskPool::currentWorkerIndex(), program.name(),
                    {obs::Field::u64("phase", j),
                     obs::Field::f64("seconds", phase_walls[j]),
                     obs::Field::boolean("kernel", true),
                     obs::Field::boolean("simd", true),
                     obs::Field::u64("branches", phase_branches[j]),
                     obs::Field::str("cache", "disk")});
            }
        }
        phase_exec = std::move(still_exec);
    }

    // One lazily built SiteIndex per materialized buffer, shared
    // read-only by every fused pass over that buffer. call_once makes
    // the concurrent chunks of one group race-free; a site index is
    // pure acceleration, so results do not depend on who built it.
    struct SiteSlot
    {
        std::once_flag once;
        std::unique_ptr<SiteIndex> index;
    };
    std::vector<std::array<SiteSlot, numInputSets>> site_slots(
        programs.size());
    const auto siteFor = [&](std::size_t program_index,
                             InputSet input) -> const SiteIndex * {
        SiteSlot &slot =
            site_slots[program_index][static_cast<unsigned>(input)];
        std::call_once(slot.once, [&] {
            ScopedTimer timer(timers, "runner.site_index");
            slot.index = std::make_unique<SiteIndex>(
                SiteIndex::build(buffer(program_index, input)));
        });
        return slot.index.get();
    };
    const auto groupLabel = [&](const FusedGroupPlan &chunk) {
        return programs[chunk.programIndex]->name() + "/" +
               inputSetName(chunk.input);
    };

    // One fused profiling chunk: gate each member through its own
    // abort/fault checks (so an injected fault fails exactly that
    // member and leaves the rest of the group unaffected), then run
    // the survivors' profiling sims in a single pass over the shared
    // buffer.
    const auto runFusedProfileChunk = [&](const FusedGroupPlan
                                              &chunk) {
        const std::string &program_name =
            programs[chunk.programIndex]->name();
        std::vector<std::size_t> live;
        for (const std::size_t j : chunk.members) {
            if (cancelled()) {
                phase_errors[j] =
                    Error(ErrorCode::Cancelled,
                          "skipped: run cancelled before the "
                          "profiling phase started");
                continue;
            }
            if (abortRun.load(std::memory_order_relaxed)) {
                phase_errors[j] = Error(
                    ErrorCode::CellFailed,
                    "skipped: fail-fast after an earlier failure");
                continue;
            }
            unsigned attempts = 0;
            std::optional<Error> failure = attemptWithRetries(
                options.retries, attempts, [&] {
                    faultPoint(fault_points::profilePhase,
                               program_name);
                });
            if (failure.has_value()) {
                phase_errors[j] = std::move(*failure).withContext(
                    "in shared profiling phase (" + program_name +
                    ")");
                if (options.failFast)
                    abortRun.store(true, std::memory_order_relaxed);
                continue;
            }
            live.push_back(j);
        }
        if (live.empty())
            return;

        ScopedTimer timer(timers, "runner.profile_phase");
        std::vector<const ExperimentConfig *> configs;
        configs.reserve(live.size());
        for (const std::size_t j : live)
            configs.push_back(profile_tasks[j].config);
        std::vector<FusedProfileOutcome> outcomes;
        unsigned pass_attempts = 0;
        std::optional<Error> pass_failure = attemptWithRetries(
            options.retries, pass_attempts, [&] {
                outcomes = runProfilePhasesFusedReplay(
                    buffer(chunk.programIndex, chunk.input), configs,
                    siteFor(chunk.programIndex, chunk.input));
            });
        const double wall = timer.stop();
        if (pass_failure.has_value()) {
            for (const std::size_t j : live) {
                Error failure = *pass_failure;
                phase_errors[j] = std::move(failure).withContext(
                    "in shared profiling phase (" + program_name +
                    ")");
            }
            if (options.failFast)
                abortRun.store(true, std::memory_order_relaxed);
            return;
        }

        Count total_branches = 0;
        for (const FusedProfileOutcome &outcome : outcomes)
            total_branches += outcome.phase.simulatedBranches;
        std::vector<Count> member_phases;
        for (std::size_t k = 0; k < live.size(); ++k) {
            const std::size_t j = live[k];
            phases[j] = std::move(outcomes[k].phase);
            phase_branches[j] = phases[j].simulatedBranches;
            phase_kernel[j] = outcomes[k].usedFastPath ? 1 : 0;
            phase_simd[j] = outcomes[k].usedSimd ? 1 : 0;
            // Prorate the pass wall over members by branch share so
            // the serial estimate stays comparable to per-cell runs.
            phase_walls[j] =
                total_branches > 0
                    ? wall * static_cast<double>(phase_branches[j]) /
                          static_cast<double>(total_branches)
                    : wall / static_cast<double>(live.size());
            member_phases.push_back(j);
            if (journal != nullptr) {
                journal->record(
                    obs::EventKind::ProfilePhase,
                    TaskPool::currentWorkerIndex(), program_name,
                    {obs::Field::u64("phase", j),
                     obs::Field::f64("seconds", phase_walls[j]),
                     obs::Field::boolean("kernel",
                                         outcomes[k].usedFastPath),
                     obs::Field::boolean("simd",
                                         outcomes[k].usedSimd),
                     obs::Field::u64("branches",
                                     phase_branches[j])});
            }
        }
        if (journal != nullptr) {
            journal->record(
                obs::EventKind::FusedGroup,
                TaskPool::currentWorkerIndex(), groupLabel(chunk),
                {obs::Field::str("phase", "profile"),
                 obs::Field::u64("members", live.size()),
                 obs::Field::str("cells",
                                 joinIndexList(member_phases)),
                 obs::Field::f64("seconds", wall),
                 obs::Field::u64("branches", total_branches)});
        }
        fused_group_count.fetch_add(1, std::memory_order_relaxed);
    };

    if (journal != nullptr && !phase_exec.empty())
        journal->record(obs::EventKind::PhaseBegin,
                        TaskPool::currentWorkerIndex(), "profile");
    // One standalone profiling phase (the non-fused path).
    const auto runProfilePhaseSolo = [&](std::size_t j) {
        const ProfileTask &task = profile_tasks[j];
        const std::string &program_name =
            programs[task.programIndex]->name();
        if (cancelled()) {
            phase_errors[j] =
                Error(ErrorCode::Cancelled,
                      "skipped: run cancelled before the profiling "
                      "phase started");
            return;
        }
        if (abortRun.load(std::memory_order_relaxed)) {
            phase_errors[j] =
                Error(ErrorCode::CellFailed,
                      "skipped: fail-fast after an earlier failure");
            return;
        }
        ScopedTimer timer(timers, "runner.profile_phase");
        bool fast = false;
        bool simd = false;
        unsigned attempts = 0;
        std::optional<Error> failure = attemptWithRetries(
            options.retries, attempts, [&] {
                faultPoint(fault_points::profilePhase, program_name);
                phases[j] = runProfilePhaseReplay(
                    buffer(task.programIndex, task.input),
                    *task.config, &fast, &simd);
            });
        phase_walls[j] = timer.stop();
        if (failure.has_value()) {
            phase_errors[j] = std::move(*failure).withContext(
                "in shared profiling phase (" + program_name + ")");
            if (options.failFast)
                abortRun.store(true, std::memory_order_relaxed);
            return;
        }
        phase_branches[j] = phases[j].simulatedBranches;
        phase_kernel[j] = fast ? 1 : 0;
        phase_simd[j] = simd ? 1 : 0;
        if (journal != nullptr) {
            journal->record(
                obs::EventKind::ProfilePhase,
                TaskPool::currentWorkerIndex(), program_name,
                {obs::Field::u64("phase", j),
                 obs::Field::f64("seconds", phase_walls[j]),
                 obs::Field::boolean("kernel", fast),
                 obs::Field::boolean("simd", simd),
                 obs::Field::u64("branches",
                                 phases[j].simulatedBranches)});
        }
    };

    if (options.fused) {
        // Fused profiling: group the executable phases by their
        // shared profile buffer and run each chunk's predictors in
        // one pass over it.
        const std::vector<FusedGroupPlan> profile_chunks =
            chunkGroups(groupForFusion(
                            phase_exec,
                            [&](std::size_t j) {
                                return std::pair(
                                    profile_tasks[j].programIndex,
                                    profile_tasks[j].input);
                            }),
                        taskPool.threadCount());
        taskPool.parallelFor(profile_chunks.size(),
                             [&](std::size_t c) {
                                 runFusedProfileChunk(
                                     profile_chunks[c]);
                             });
    } else {
        taskPool.parallelFor(phase_exec.size(), [&](std::size_t k) {
            runProfilePhaseSolo(phase_exec[k]);
        });
    }
    // Persist freshly executed phases so the next process (or the
    // next shard) loads them instead of re-simulating. Store failures
    // only cost a future regeneration.
    if (cache != nullptr) {
        for (const std::size_t j : phase_exec) {
            if (phase_errors[j].has_value() ||
                phase_disk_keys[j].empty())
                continue;
            const Result<void> stored = cache->storeProfile(
                phase_disk_keys[j], phases[j].profile,
                phases[j].simulatedBranches);
            if (!stored.ok()) {
                std::fprintf(stderr,
                             "bpsim: warning: profile artifact "
                             "store failed: %s\n",
                             stored.error().describe().c_str());
            } else if (journal != nullptr) {
                journal->record(
                    obs::EventKind::Cache,
                    TaskPool::currentWorkerIndex(),
                    programs[profile_tasks[j].programIndex]->name(),
                    {obs::Field::str("artifact", "profile"),
                     obs::Field::str("op", "store"),
                     obs::Field::u64("branches",
                                     phase_branches[j])});
            }
        }
    }
    for (const double wall : phase_walls)
        result.profileSeconds += wall;
    if (journal != nullptr && !phase_exec.empty())
        journal->record(obs::EventKind::PhaseEnd,
                        TaskPool::currentWorkerIndex(), "profile",
                        {obs::Field::f64("seconds",
                                         result.profileSeconds)});

    // Phase B plumbing, shared by the per-cell and fused paths so
    // both emit byte-identical journal events and checkpoint records.

    // Progress hook: one call per in-shard cell once its outcome is
    // final (executed, restored or failed). Runs on worker threads.
    const auto notifyCell = [&](std::size_t i) {
        if (options.onCellFinished)
            options.onCellFinished(i, result.cells[i]);
    };

    // Close a cell's journal bracket with a cell_error and set its
    // failure slot; with failFast, wave the rest of the sweep off.
    const auto failCell = [&](std::size_t i, Error error,
                              unsigned attempts) {
        CellResult &out = result.cells[i];
        out.error = std::move(error);
        out.attempts = attempts;
        // Cancellation ends cells without aborting the run: the
        // token is already monotonic, and fail-fast would repaint
        // the remaining cells' errors as cell_failed.
        if (options.failFast &&
            out.error->code() != ErrorCode::Cancelled)
            abortRun.store(true, std::memory_order_relaxed);
        if (journal != nullptr) {
            journal->record(
                obs::EventKind::CellError,
                TaskPool::currentWorkerIndex(), cells[i].label,
                {obs::Field::u64("cell", i),
                 obs::Field::str("code",
                                 errorCodeName(out.error->code())),
                 obs::Field::str("message", out.error->message()),
                 obs::Field::u64("attempts", attempts)});
        }
        notifyCell(i);
    };

    const auto emitCellEnd = [&](std::size_t i) {
        if (journal == nullptr)
            return;
        const CellResult &out = result.cells[i];
        const SimStats &stats = out.result.stats;
        const Count classified = stats.collisions.constructive +
                                 stats.collisions.destructive;
        const Count neutral =
            stats.collisions.collisions > classified
                ? stats.collisions.collisions - classified
                : 0;
        journal->record(
            obs::EventKind::CellEnd,
            TaskPool::currentWorkerIndex(), cells[i].label,
            {obs::Field::u64("cell", i),
             obs::Field::f64("seconds", out.wallSeconds),
             obs::Field::boolean("kernel", out.usedKernel),
             obs::Field::boolean("simd", out.usedSimd),
             obs::Field::boolean("profile_cached",
                                 out.profileCached),
             obs::Field::boolean("restored", out.restored),
             obs::Field::u64("branches", stats.branches),
             obs::Field::u64("simulated_branches",
                             out.result.simulatedBranches),
             obs::Field::u64("instructions", stats.instructions),
             obs::Field::u64("mispredictions",
                             stats.mispredictions),
             obs::Field::f64("misp_ki", stats.mispKi()),
             obs::Field::u64("hints", out.result.hintCount),
             obs::Field::u64("static_predicted",
                             stats.staticPredicted),
             obs::Field::u64("lookups", stats.collisions.lookups),
             obs::Field::u64("collisions",
                             stats.collisions.collisions),
             obs::Field::u64("constructive",
                             stats.collisions.constructive),
             obs::Field::u64("destructive",
                             stats.collisions.destructive),
             obs::Field::u64("neutral", neutral)});

        // Scenario cells add a compact multi-context summary: the
        // cross- vs self-context split of the attributed collisions.
        // The full NxN matrix is runner/bench JSON payload, not a
        // journal event.
        const std::vector<ContextAliasCell> &matrix =
            out.result.aliasMatrix;
        const std::size_t contexts =
            cells[i].config.scenarioContexts;
        if (contexts == 0 ||
            matrix.size() != contexts * contexts)
            return;
        Count cross_collisions = 0;
        Count cross_destructive = 0;
        Count self_collisions = 0;
        Count self_destructive = 0;
        for (std::size_t victim = 0; victim < contexts; ++victim) {
            for (std::size_t aggr = 0; aggr < contexts; ++aggr) {
                const ContextAliasCell &entry =
                    matrix[victim * contexts + aggr];
                if (victim == aggr) {
                    self_collisions += entry.collisions;
                    self_destructive += entry.destructive;
                } else {
                    cross_collisions += entry.collisions;
                    cross_destructive += entry.destructive;
                }
            }
        }
        journal->record(
            obs::EventKind::ScenarioCell,
            TaskPool::currentWorkerIndex(), cells[i].label,
            {obs::Field::u64("cell", i),
             obs::Field::u64("contexts", contexts),
             obs::Field::u64("collisions_cross", cross_collisions),
             obs::Field::u64("destructive_cross", cross_destructive),
             obs::Field::u64("collisions_self", self_collisions),
             obs::Field::u64("destructive_self", self_destructive)});
    };

    // Persist before the journal event: a kill between the two can
    // only lose the cell (re-run on resume), never record it twice.
    // A failed checkpoint write degrades durability, not
    // correctness, so it warns instead of failing the cell.
    const auto writeCheckpoint = [&](std::size_t i) {
        if (checkpoint == nullptr || fingerprints[i].empty())
            return;
        const CellResult &out = result.cells[i];
        try {
            faultPoint(fault_points::checkpointWrite, cells[i].label);
            CheckpointRecord record;
            record.fingerprint = fingerprints[i];
            record.label = cells[i].label;
            record.result = out.result;
            record.usedKernel = out.usedKernel;
            record.usedSimd = out.usedSimd;
            record.phaseBranches =
                out.profileCached ? phase_branches[cell_phase[i]]
                                  : 0;
            const Result<void> recorded =
                checkpoint->record(std::move(record));
            if (!recorded.ok()) {
                std::fprintf(stderr,
                             "bpsim: warning: checkpoint write "
                             "failed for '%s': %s\n",
                             cells[i].label.c_str(),
                             recorded.error().describe().c_str());
            }
        } catch (const ErrorException &write_failure) {
            std::fprintf(stderr,
                         "bpsim: warning: checkpoint write "
                         "failed for '%s': %s\n",
                         cells[i].label.c_str(),
                         write_failure.what());
        }
    };

    // One complete cell (the non-fused path; the fused path reuses
    // it for the no-simulation invalid/restored cases).
    const auto runCell = [&](std::size_t i) {
        const MatrixCell &cell = cells[i];
        const ExperimentConfig &config = cell.config;
        CellResult &out = result.cells[i];
        // Another shard's cell: keep the empty result slot, emit no
        // events — from this process's perspective it does not run.
        if (!in_shard[i]) {
            out.shardSkipped = true;
            return;
        }
        if (journal != nullptr)
            journal->record(obs::EventKind::CellBegin,
                            TaskPool::currentWorkerIndex(), cell.label,
                            {obs::Field::u64("cell", i)});

        if (invalid[i].has_value()) {
            failCell(i, *invalid[i], 0);
            return;
        }

        // Restored from the checkpoint: surface the persisted result
        // without executing. profileCached comes from the matrix's
        // phase plan so cache accounting matches an uninterrupted
        // run; wallSeconds stays 0 (no work was done).
        if (restored[i].has_value()) {
            out.result = restored[i]->result;
            out.usedKernel = restored[i]->usedKernel;
            out.usedSimd = restored[i]->usedSimd;
            out.profileCached = cell_phase[i] != noPhase;
            out.restored = true;
            emitCellEnd(i);
            notifyCell(i);
            return;
        }

        if (cancelled()) {
            failCell(i,
                     Error(ErrorCode::Cancelled,
                           "skipped: run cancelled before the cell "
                           "started"),
                     0);
            return;
        }

        if (abortRun.load(std::memory_order_relaxed)) {
            failCell(
                i,
                Error(ErrorCode::CellFailed,
                      "skipped: fail-fast after an earlier failure"),
                0);
            return;
        }

        const ProfilePhase *cached = nullptr;
        if (cell_phase[i] != noPhase) {
            if (phase_errors[cell_phase[i]].has_value()) {
                // A cancelled phase means the cell never had a
                // chance to run; keep the Cancelled code so callers
                // can tell "not started" from "broken".
                const ErrorCode phase_code =
                    phase_errors[cell_phase[i]]->code();
                failCell(i,
                         Error(phase_code == ErrorCode::Cancelled
                                   ? ErrorCode::Cancelled
                                   : ErrorCode::CellFailed,
                               "shared profiling phase failed")
                             .withContext(
                                 phase_errors[cell_phase[i]]
                                     ->describe()),
                         0);
                return;
            }
            cached = &phases[cell_phase[i]];
        }
        const ReplayBuffer *profile_buffer =
            config.scheme != StaticScheme::None && cached == nullptr
                ? &buffer(cell.programIndex, config.profileInput)
                : nullptr;

        ScopedTimer timer(timers, "runner.cell");
        bool fast = false;
        bool simd = false;
        unsigned attempts = 0;
        ExperimentResult cell_result;
        std::optional<Error> failure = attemptWithRetries(
            options.retries, attempts, [&] {
                faultPoint(fault_points::cell, cell.label);
                cell_result = runExperimentReplay(
                    profile_buffer,
                    buffer(cell.programIndex, config.evalInput),
                    config, cached, &fast, &simd);
            });
        out.wallSeconds = timer.stop();
        if (failure.has_value()) {
            failCell(i,
                     std::move(*failure).withContext(
                         "while running cell " + cell.label),
                     attempts);
            return;
        }
        out.result = cell_result;
        out.attempts = attempts;
        out.profileCached = cached != nullptr;
        out.usedKernel =
            fast && (cached == nullptr || phase_kernel[cell_phase[i]]);
        out.usedSimd =
            simd && (cached == nullptr || phase_simd[cell_phase[i]]);

        writeCheckpoint(i);
        emitCellEnd(i);
        notifyCell(i);
    };

    // One fused evaluation chunk: prepare each member cell (its
    // profiling, merge filter, selection and predictor construction),
    // then step every prepared predictor through the shared eval
    // buffer in one pass and assemble per-cell results. Per-member
    // gates keep failure semantics identical to the per-cell path: an
    // injected fault or failed shared phase takes down exactly that
    // member, and the survivors' results are unaffected.
    const auto runFusedCellChunk = [&](const FusedGroupPlan &chunk) {
        struct LiveCell
        {
            std::size_t index = 0;
            PreparedEvaluation prepared;
            bool cached = false;
            unsigned attempts = 0;
            double prepareSeconds = 0.0;
        };
        std::vector<LiveCell> live;
        for (const std::size_t i : chunk.members) {
            const MatrixCell &cell = cells[i];
            const ExperimentConfig &config = cell.config;
            if (journal != nullptr) {
                journal->record(obs::EventKind::CellBegin,
                                TaskPool::currentWorkerIndex(),
                                cell.label,
                                {obs::Field::u64("cell", i)});
            }
            if (cancelled()) {
                failCell(i,
                         Error(ErrorCode::Cancelled,
                               "skipped: run cancelled before the "
                               "cell started"),
                         0);
                continue;
            }
            if (abortRun.load(std::memory_order_relaxed)) {
                failCell(i,
                         Error(ErrorCode::CellFailed,
                               "skipped: fail-fast after an earlier "
                               "failure"),
                         0);
                continue;
            }
            const ProfilePhase *cached = nullptr;
            if (cell_phase[i] != noPhase) {
                if (phase_errors[cell_phase[i]].has_value()) {
                    const ErrorCode phase_code =
                        phase_errors[cell_phase[i]]->code();
                    failCell(i,
                             Error(phase_code == ErrorCode::Cancelled
                                       ? ErrorCode::Cancelled
                                       : ErrorCode::CellFailed,
                                   "shared profiling phase failed")
                                 .withContext(
                                     phase_errors[cell_phase[i]]
                                         ->describe()),
                             0);
                    continue;
                }
                cached = &phases[cell_phase[i]];
            }
            const ReplayBuffer *profile_buffer =
                config.scheme != StaticScheme::None &&
                        cached == nullptr
                    ? &buffer(cell.programIndex, config.profileInput)
                    : nullptr;

            ScopedTimer timer(timers, "runner.cell");
            LiveCell entry;
            entry.index = i;
            entry.cached = cached != nullptr;
            std::optional<Error> failure = attemptWithRetries(
                options.retries, entry.attempts, [&] {
                    faultPoint(fault_points::cell, cell.label);
                    entry.prepared = prepareEvaluationReplay(
                        profile_buffer,
                        buffer(cell.programIndex, config.evalInput),
                        config, cached);
                });
            entry.prepareSeconds = timer.stop();
            if (failure.has_value()) {
                result.cells[i].wallSeconds = entry.prepareSeconds;
                failCell(i,
                         std::move(*failure).withContext(
                             "while running cell " + cell.label),
                         entry.attempts);
                continue;
            }
            live.push_back(std::move(entry));
        }
        if (live.empty())
            return;

        const ReplayBuffer &eval_buffer =
            buffer(chunk.programIndex, chunk.input);
        std::vector<FusedSim> sims(live.size());
        for (std::size_t k = 0; k < live.size(); ++k) {
            sims[k].predictor = live[k].prepared.combined.get();
            sims[k].options = evalSimOptions(
                cells[live[k].index].config, live[k].prepared);
        }
        ScopedTimer pass_timer(timers, "runner.fused_pass");
        unsigned pass_attempts = 0;
        std::optional<Error> pass_failure = attemptWithRetries(
            options.retries, pass_attempts, [&] {
                simulateReplayFused(
                    sims, eval_buffer,
                    siteFor(chunk.programIndex, chunk.input));
            });
        const double pass_wall = pass_timer.stop();
        if (pass_failure.has_value()) {
            for (const LiveCell &entry : live) {
                result.cells[entry.index].wallSeconds =
                    entry.prepareSeconds;
                Error failure = *pass_failure;
                failCell(entry.index,
                         std::move(failure).withContext(
                             "while running cell " +
                             cells[entry.index].label),
                         entry.attempts + pass_attempts - 1);
            }
            return;
        }

        // Per-record work of each member: measured branches plus its
        // warmup slice of the shared buffer. Used to prorate the
        // pass wall so per-cell timings and the serial estimate stay
        // comparable to per-cell runs.
        double total_records = 0.0;
        std::vector<double> member_records(live.size(), 0.0);
        for (std::size_t k = 0; k < live.size(); ++k) {
            member_records[k] =
                static_cast<double>(sims[k].stats.branches) +
                static_cast<double>(
                    std::min<Count>(sims[k].options.warmupBranches,
                                    eval_buffer.size()));
            total_records += member_records[k];
        }
        std::vector<Count> member_cells;
        std::vector<Count> member_branches;
        std::vector<Count> member_misps;
        Count group_branches = 0;
        for (std::size_t k = 0; k < live.size(); ++k) {
            const std::size_t i = live[k].index;
            CellResult &out = result.cells[i];
            out.result = finishPreparedEvaluation(
                live[k].prepared, cells[i].config, sims[k].stats,
                &eval_buffer);
            out.attempts = live[k].attempts + pass_attempts - 1;
            out.profileCached = live[k].cached;
            const bool fast = live[k].prepared.preEvalFastPath &&
                              sims[k].usedFastPath;
            out.usedKernel =
                fast &&
                (!live[k].cached || phase_kernel[cell_phase[i]]);
            const bool simd = live[k].prepared.preEvalSimd &&
                              sims[k].usedSimd;
            out.usedSimd =
                simd &&
                (!live[k].cached || phase_simd[cell_phase[i]]);
            out.wallSeconds =
                live[k].prepareSeconds +
                (total_records > 0.0
                     ? pass_wall * member_records[k] / total_records
                     : pass_wall /
                           static_cast<double>(live.size()));
            writeCheckpoint(i);
            emitCellEnd(i);
            notifyCell(i);
            member_cells.push_back(i);
            member_branches.push_back(sims[k].stats.branches);
            member_misps.push_back(sims[k].stats.mispredictions);
            group_branches += sims[k].stats.branches;
        }
        if (journal != nullptr) {
            journal->record(
                obs::EventKind::FusedGroup,
                TaskPool::currentWorkerIndex(), groupLabel(chunk),
                {obs::Field::str("phase", "cells"),
                 obs::Field::u64("members", live.size()),
                 obs::Field::str("cells",
                                 joinIndexList(member_cells)),
                 obs::Field::f64("seconds", pass_wall),
                 obs::Field::u64("branches", group_branches),
                 obs::Field::str("branches_per_cell",
                                 joinIndexList(member_branches)),
                 obs::Field::str("mispredictions_per_cell",
                                 joinIndexList(member_misps))});
        }
        fused_group_count.fetch_add(1, std::memory_order_relaxed);
    };

    // Phase B: the cells. Each worker owns its predictor and profile
    // state; buffers and cached phases are shared read-only, so the
    // hot path takes no locks.
    if (journal != nullptr)
        journal->record(obs::EventKind::PhaseBegin,
                        TaskPool::currentWorkerIndex(), "cells");
    if (options.fused) {
        // Invalid and restored cells need no simulation; handle them
        // on the coordinator (via runCell's early paths) so fused
        // chunks hold only real work.
        std::vector<std::size_t> pending;
        for (std::size_t i = 0; i < cells.size(); ++i) {
            if (!in_shard[i] || invalid[i].has_value() ||
                restored[i].has_value())
                runCell(i);
            else
                pending.push_back(i);
        }
        const std::vector<FusedGroupPlan> cell_chunks = chunkGroups(
            groupForFusion(pending,
                           [&](std::size_t i) {
                               return std::pair(
                                   cells[i].programIndex,
                                   cells[i].config.evalInput);
                           }),
            taskPool.threadCount());
        taskPool.parallelFor(cell_chunks.size(), [&](std::size_t c) {
            runFusedCellChunk(cell_chunks[c]);
        });
    } else {
        taskPool.parallelFor(cells.size(), runCell);
    }
    result.fusedGroups =
        fused_group_count.load(std::memory_order_relaxed);
    if (journal != nullptr)
        journal->record(obs::EventKind::PhaseEnd,
                        TaskPool::currentWorkerIndex(), "cells",
                        {obs::Field::f64("seconds",
                                         secondsSince(run_start))});
    result.runSeconds = secondsSince(run_start);
    result.wallSeconds = secondsSince(start);
    result.materializeSeconds = materializeSeconds;

    // A phase skipped because its every consumer was restored never
    // ran; recover its branch count from any restored consumer so
    // the actual-branches accounting matches an uninterrupted run.
    for (std::size_t i = 0; i < result.cells.size(); ++i) {
        if (restored[i].has_value() && cell_phase[i] != noPhase &&
            phase_branches[cell_phase[i]] == 0)
            phase_branches[cell_phase[i]] = restored[i]->phaseBranches;
    }

    for (std::size_t i = 0; i < result.cells.size(); ++i) {
        const CellResult &cell = result.cells[i];
        if (cell.shardSkipped) {
            ++result.shardSkippedCells;
            continue;
        }
        if (!cell.ok()) {
            ++result.failedCells;
            continue;
        }
        if (cell.restored)
            ++result.restoredCells;
        result.totalBranches += cell.result.simulatedBranches;
        // A cached phase's branches appear in every consumer's
        // simulatedBranches; count them once (below) for the actual
        // work done.
        result.actualBranches += cell.result.simulatedBranches;
        if (cell.profileCached)
            result.actualBranches -= phase_branches[cell_phase[i]];
        if (cell.usedKernel)
            ++result.kernelCells;
        if (cell.usedSimd)
            ++result.simdCells;
    }
    for (const Count branches : phase_branches)
        result.actualBranches += branches;
    result.shardCells = cells.size() - result.shardSkippedCells;
    for (const auto &per_program : buffers) {
        for (const auto &held : per_program) {
            if (held != nullptr)
                result.replayBytes += held->memoryBytes();
        }
    }
    if (cache != nullptr) {
        const ArtifactCacheStats stats = cache->stats();
        result.cacheReplayHits = stats.replayHits;
        result.cacheReplayMisses = stats.replayMisses;
        result.cacheProfileHits = stats.profileHits;
        result.cacheProfileMisses = stats.profileMisses;
        result.cacheCorrupt = stats.corrupt;
        result.mappedBytes = stats.mappedBytes;
    }

    if (journal != nullptr) {
        journal->record(
            obs::EventKind::RunEnd, TaskPool::currentWorkerIndex(),
            journal->runLabel(),
            {obs::Field::f64("seconds", result.wallSeconds),
             obs::Field::f64("run_seconds", result.runSeconds),
             obs::Field::u64("cells",
                             result.cells.size() -
                                 result.shardSkippedCells),
             obs::Field::u64("total_branches", result.totalBranches),
             obs::Field::u64("actual_branches",
                             result.actualBranches),
             obs::Field::u64("profile_cache_hits",
                             result.profileCacheHits),
             obs::Field::u64("profile_cache_misses",
                             result.profileCacheMisses),
             obs::Field::u64("kernel_cells", result.kernelCells),
             obs::Field::u64("simd_cells", result.simdCells),
             obs::Field::u64("failed_cells", result.failedCells),
             obs::Field::u64("restored_cells",
                             result.restoredCells),
             obs::Field::boolean("fused", result.fused),
             obs::Field::u64("fused_groups", result.fusedGroups),
             obs::Field::u64("shard_index", result.shardIndex),
             obs::Field::u64("shard_count", result.shardCount),
             obs::Field::u64("shard_cells", result.shardCells),
             obs::Field::u64("shard_skipped",
                             result.shardSkippedCells),
             obs::Field::u64("cache_replay_hits",
                             result.cacheReplayHits),
             obs::Field::u64("cache_replay_misses",
                             result.cacheReplayMisses),
             obs::Field::u64("cache_profile_hits",
                             result.cacheProfileHits),
             obs::Field::u64("cache_profile_misses",
                             result.cacheProfileMisses),
             obs::Field::u64("cache_corrupt", result.cacheCorrupt),
             obs::Field::u64("mmap_bytes", result.mappedBytes)});
    }
    return result;
}

void
writeRunnerJson(const std::string &path, const std::string &bench,
                const ExperimentRunner &runner,
                const MatrixResult &result, double baseline_seconds)
{
    AtomicFile writer(path);
    if (!writer.ok())
        bpsim_fatal("cannot write '", path, "'");
    std::FILE *file = writer.stream();

    std::fprintf(file, "{\n");
    std::fprintf(file, "  \"bench\": \"%s\",\n", bench.c_str());
    std::fprintf(file, "  \"threads\": %u,\n", result.threads);
    std::fprintf(file, "  \"cells\": [\n");
    for (std::size_t i = 0; i < result.cells.size(); ++i) {
        const CellResult &cell = result.cells[i];
        const MatrixCell &meta = runner.cell(i);
        std::fprintf(
            file,
            "    {\"label\": \"%s\", \"program\": \"%s\", "
            "\"misp_ki\": %.6f, \"hints\": %zu, "
            "\"branches\": %llu, \"wall_seconds\": %.6f, "
            "\"branches_per_second\": %.1f, "
            "\"kernel\": %s, \"simd\": %s, \"profile_cached\": %s",
            meta.label.c_str(),
            runner.program(meta.programIndex).name().c_str(),
            cell.result.stats.mispKi(), cell.result.hintCount,
            static_cast<unsigned long long>(
                cell.result.simulatedBranches),
            cell.wallSeconds, cell.branchesPerSecond(),
            cell.usedKernel ? "true" : "false",
            cell.usedSimd ? "true" : "false",
            cell.profileCached ? "true" : "false");
        if (cell.restored)
            std::fprintf(file, ", \"restored\": true");
        if (cell.shardSkipped)
            std::fprintf(file, ", \"shard_skipped\": true");
        // Scenario cells carry the per-context breakdown and the
        // full NxN interference matrix (victim-major order).
        if (meta.config.scenarioContexts > 0 &&
            !cell.result.contextStats.empty()) {
            const std::size_t contexts =
                cell.result.contextStats.size();
            std::fprintf(file,
                         ", \"scenario\": true, \"contexts\": %zu",
                         contexts);
            std::fprintf(file, ", \"context_stats\": [");
            for (std::size_t c = 0; c < contexts; ++c) {
                const ContextStats &ctx =
                    cell.result.contextStats[c];
                std::fprintf(
                    file,
                    "%s{\"context\": %zu, \"branches\": %llu, "
                    "\"instructions\": %llu, "
                    "\"mispredictions\": %llu, \"misp_ki\": %.6f, "
                    "\"static_predicted\": %llu, "
                    "\"collisions\": %llu}",
                    c == 0 ? "" : ", ", c,
                    static_cast<unsigned long long>(ctx.branches),
                    static_cast<unsigned long long>(
                        ctx.instructions),
                    static_cast<unsigned long long>(
                        ctx.mispredictions),
                    ctx.mispKi(),
                    static_cast<unsigned long long>(
                        ctx.staticPredicted),
                    static_cast<unsigned long long>(
                        ctx.collisions));
            }
            std::fprintf(file, "]");
            if (cell.result.aliasMatrix.size() ==
                contexts * contexts) {
                std::fprintf(file, ", \"interference\": [");
                for (std::size_t v = 0; v < contexts; ++v) {
                    for (std::size_t a = 0; a < contexts; ++a) {
                        const ContextAliasCell &pair =
                            cell.result
                                .aliasMatrix[v * contexts + a];
                        std::fprintf(
                            file,
                            "%s{\"victim\": %zu, "
                            "\"aggressor\": %zu, "
                            "\"collisions\": %llu, "
                            "\"constructive\": %llu, "
                            "\"destructive\": %llu}",
                            v == 0 && a == 0 ? "" : ", ", v, a,
                            static_cast<unsigned long long>(
                                pair.collisions),
                            static_cast<unsigned long long>(
                                pair.constructive),
                            static_cast<unsigned long long>(
                                pair.destructive));
                    }
                }
                std::fprintf(file, "]");
            }
        }
        if (!cell.ok()) {
            std::fprintf(
                file,
                ", \"error\": {\"code\": \"%s\", \"message\": %s, "
                "\"attempts\": %u}",
                errorCodeName(cell.error->code()),
                jsonQuote(cell.error->message()).c_str(),
                cell.attempts);
        }
        std::fprintf(file, "}%s\n",
                     i + 1 < result.cells.size() ? "," : "");
    }
    std::fprintf(file, "  ],\n");
    std::fprintf(file, "  \"materialize_seconds\": %.6f,\n",
                 result.materializeSeconds);
    std::fprintf(file, "  \"profile_seconds\": %.6f,\n",
                 result.profileSeconds);
    std::fprintf(file, "  \"profile_cache_hits\": %llu,\n",
                 static_cast<unsigned long long>(
                     result.profileCacheHits));
    std::fprintf(file, "  \"profile_cache_misses\": %llu,\n",
                 static_cast<unsigned long long>(
                     result.profileCacheMisses));
    std::fprintf(file, "  \"kernel_cells\": %llu,\n",
                 static_cast<unsigned long long>(result.kernelCells));
    std::fprintf(file, "  \"simd_cells\": %llu,\n",
                 static_cast<unsigned long long>(result.simdCells));
    std::fprintf(file, "  \"dispatch\": \"%s\",\n",
                 result.dispatch.c_str());
    std::fprintf(file, "  \"simd_width\": %u,\n", result.simdLanes);
    std::fprintf(file, "  \"fused\": %s,\n",
                 result.fused ? "true" : "false");
    std::fprintf(file, "  \"fused_groups\": %llu,\n",
                 static_cast<unsigned long long>(result.fusedGroups));
    std::fprintf(file, "  \"failed_cells\": %llu,\n",
                 static_cast<unsigned long long>(result.failedCells));
    std::fprintf(file, "  \"restored_cells\": %llu,\n",
                 static_cast<unsigned long long>(
                     result.restoredCells));
    std::fprintf(file, "  \"shard_index\": %u,\n", result.shardIndex);
    std::fprintf(file, "  \"shard_count\": %u,\n", result.shardCount);
    std::fprintf(file, "  \"shard_cells\": %llu,\n",
                 static_cast<unsigned long long>(result.shardCells));
    std::fprintf(file, "  \"shard_skipped_cells\": %llu,\n",
                 static_cast<unsigned long long>(
                     result.shardSkippedCells));
    std::fprintf(file, "  \"cache_replay_hits\": %llu,\n",
                 static_cast<unsigned long long>(
                     result.cacheReplayHits));
    std::fprintf(file, "  \"cache_replay_misses\": %llu,\n",
                 static_cast<unsigned long long>(
                     result.cacheReplayMisses));
    std::fprintf(file, "  \"cache_profile_hits\": %llu,\n",
                 static_cast<unsigned long long>(
                     result.cacheProfileHits));
    std::fprintf(file, "  \"cache_profile_misses\": %llu,\n",
                 static_cast<unsigned long long>(
                     result.cacheProfileMisses));
    std::fprintf(file, "  \"cache_corrupt\": %llu,\n",
                 static_cast<unsigned long long>(
                     result.cacheCorrupt));
    std::fprintf(file, "  \"mmap_bytes\": %zu,\n",
                 result.mappedBytes);
    std::fprintf(file, "  \"run_seconds\": %.6f,\n",
                 result.runSeconds);
    std::fprintf(file, "  \"wall_seconds\": %.6f,\n",
                 result.wallSeconds);
    std::fprintf(file, "  \"total_branches\": %llu,\n",
                 static_cast<unsigned long long>(result.totalBranches));
    std::fprintf(file, "  \"actual_branches\": %llu,\n",
                 static_cast<unsigned long long>(
                     result.actualBranches));
    std::fprintf(file, "  \"kernel_branches_per_second\": %.1f,\n",
                 result.kernelBranchesPerSecond());
    std::fprintf(
        file, "  \"branches_per_second\": %.1f,\n",
        result.wallSeconds > 0.0
            ? static_cast<double>(result.totalBranches) /
                  result.wallSeconds
            : 0.0);
    std::fprintf(file, "  \"replay_buffer_bytes\": %zu,\n",
                 result.replayBytes);
    std::fprintf(file, "  \"serial_estimate_seconds\": %.6f,\n",
                 result.serialEstimateSeconds());
    if (baseline_seconds > 0.0) {
        std::fprintf(file, "  \"baseline_seconds\": %.6f,\n",
                     baseline_seconds);
        std::fprintf(file, "  \"speedup_vs_baseline\": %.3f,\n",
                     result.wallSeconds > 0.0
                         ? baseline_seconds / result.wallSeconds
                         : 0.0);
    }
    std::fprintf(file, "  \"speedup_vs_serial_estimate\": %.3f\n",
                 result.speedupVsSerialEstimate());
    std::fprintf(file, "}\n");
    const Result<void> committed = writer.commit();
    if (!committed.ok())
        bpsim_fatal(committed.error().describe());
}

} // namespace bpsim
