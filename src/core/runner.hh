/**
 * @file
 * Parallel experiment-matrix runner over materialized replay buffers.
 *
 * The benches walk a program × predictor × scheme × size matrix whose
 * cells are independent: each owns its predictor, profile and replay
 * cursors, so the matrix is embarrassingly parallel. The runner
 *
 *  1. materializes each program's branch stream once per input set
 *     into a ReplayBuffer (instead of re-running CFG/behaviour
 *     generation for every cell),
 *  2. shards the cells across a work-stealing thread pool, and
 *  3. records per-cell wall time and branches/sec, emitted as JSON so
 *     the perf trajectory is tracked across PRs.
 *
 * Determinism contract: a cell's result is a pure function of its
 * replay buffers and its config — workers share only immutable
 * buffers and write to disjoint result slots — so results are
 * bit-identical to the serial path at any thread count.
 *
 * Fault tolerance: a failing cell no longer takes down the sweep.
 * Worker exceptions are captured per task (never std::terminate), a
 * failed cell becomes a CellResult carrying its Error, transient
 * (resource_exhausted) failures retry up to RunnerOptions::retries
 * times, and an optional JSONL checkpoint persists each finished cell
 * under a deterministic config fingerprint so an interrupted sweep
 * resumes where it died with bit-identical deterministic results.
 */

#ifndef BPSIM_CORE_RUNNER_HH
#define BPSIM_CORE_RUNNER_HH

#include <array>
#include <exception>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "core/experiment.hh"
#include "obs/run_journal.hh"
#include "support/args.hh"
#include "support/error.hh"
#include "trace/replay_buffer.hh"
#include "workload/synthetic_program.hh"
#include "workload/workload_source.hh"

namespace bpsim
{

/**
 * Resolve a worker-thread count: an explicit @p requested value wins,
 * then the BPSIM_THREADS environment variable, then the hardware
 * concurrency (minimum 1). Hardened against garbage: an unparseable
 * or zero BPSIM_THREADS falls back to the hardware count with a
 * stderr warning, and absurd values (> maxResolvedThreads) from
 * either source are clamped with a warning — never fatal, never
 * silently wrong.
 */
unsigned resolveThreadCount(unsigned requested = 0);

/** Upper clamp of resolveThreadCount() (oversubscription guard). */
inline constexpr unsigned maxResolvedThreads = 512;

/** Declare the shared --threads option on @p args. */
void addThreadsOption(ArgParser &args);

/** Read the --threads option declared by addThreadsOption(). */
unsigned threadsFromArgs(const ArgParser &args);

/**
 * A work-stealing pool for coarse independent tasks. Tasks are dealt
 * round-robin onto per-worker deques; a worker drains its own deque
 * from the front and steals from the back of others when idle, so a
 * straggler's queue is relieved by whichever workers finish early.
 */
class TaskPool
{
  public:
    /** @param threads worker count (0 = resolveThreadCount()). */
    explicit TaskPool(unsigned threads = 0);

    unsigned threadCount() const { return workers; }

    /**
     * Run every task to completion; tasks must be independent. A
     * throwing task never terminates the process: its exception is
     * captured, the pool drains every remaining task, and the first
     * captured exception (in task order, so deterministic at any
     * thread count) is rethrown once all workers have joined.
     */
    void run(std::vector<std::function<void()>> tasks);

    /**
     * Exception-safe run(): per-task exception capture into result
     * slots. Slot i holds the exception task i threw (null when it
     * completed); the pool always drains every task and never
     * rethrows. This is the primitive the matrix runner builds
     * per-cell fault isolation on.
     */
    std::vector<std::exception_ptr>
    runCollect(std::vector<std::function<void()>> tasks);

    /**
     * Worker index of the calling thread: its position in the pool
     * currently executing it, or 0 on any thread outside a pool (the
     * coordinating thread doubles as worker 0). Used by the run
     * journal to attribute events to threads.
     */
    static unsigned currentWorkerIndex();

    /** Run fn(0) .. fn(n-1) across the pool; rethrows the first
     * failure (by index) after every iteration ran. */
    template <typename Fn>
    void
    parallelFor(std::size_t n, Fn &&fn)
    {
        std::vector<std::function<void()>> tasks;
        tasks.reserve(n);
        for (std::size_t i = 0; i < n; ++i)
            tasks.push_back([i, &fn] { fn(i); });
        run(std::move(tasks));
    }

    /** Exception-collecting parallelFor (see runCollect()). */
    template <typename Fn>
    std::vector<std::exception_ptr>
    parallelForCollect(std::size_t n, Fn &&fn)
    {
        std::vector<std::function<void()>> tasks;
        tasks.reserve(n);
        for (std::size_t i = 0; i < n; ++i)
            tasks.push_back([i, &fn] { fn(i); });
        return runCollect(std::move(tasks));
    }

  private:
    unsigned workers;
};

struct CellResult;

/** Runner construction options. */
struct RunnerOptions
{
    /** Worker threads (0 = resolveThreadCount()). */
    unsigned threads = 0;

    /**
     * Share profiling phases across cells. The selection phase's
     * profiling run depends only on (program, profile input,
     * predictor construction, profile length) — not on the selection
     * scheme or its tunables — so a matrix sweeping schemes over one
     * predictor re-runs identical simulations once per scheme. With
     * the cache on, each unique profiling run executes once (phase A)
     * and its immutable ProfilePhase is shared read-only by every
     * cell that needs it. Results are bit-identical either way; cells
     * whose makeDynamic factory has no dynamicKey stay uncached.
     */
    bool profileCache = true;

    /**
     * Fused sweep execution. Cells sharing an evaluation buffer
     * (program × eval input) — and profiling phases sharing a profile
     * buffer — are grouped and stepped through the trace in a single
     * pass per group (simulateReplayFused), so one trace walk serves
     * N predictor configurations. Results are bit-identical to the
     * per-cell path in every deterministic field, including under
     * checkpoint/resume, retries and fault injection; only wall-time
     * attribution differs (a cell's share of its group's fused pass
     * is prorated by branches stepped). Groups are chunked across
     * worker threads, so fused mode still scales with threads.
     */
    bool fused = true;

    /**
     * Let the devirtualized kernels run their batched SIMD-dispatch
     * variants (ExperimentConfig::simd). Results are bit-identical
     * either way; the flag exists so benches and the CLI can expose
     * --no-simd for differential runs, and so the resolved dispatch
     * path lands in the journal and runner JSON. The BPSIM_SIMD
     * environment variable further narrows the resolved level at
     * engine dispatch time (off/scalar/avx2/neon).
     */
    bool simd = true;

    /**
     * Optional run journal. When set, run() records the structured
     * event stream (run/phase boundaries, per-profile-phase and
     * per-cell events with timing, path-taken flags and stat
     * snapshots), feeds the journal's timer registry through scoped
     * timers, and attaches its counter registry to every cell's
     * engine runs. Purely additive: results are identical with or
     * without a journal.
     */
    obs::RunJournal *journal = nullptr;

    /**
     * Extra attempts granted to a cell (or shared profiling phase)
     * whose failure is transient (resource_exhausted). Non-transient
     * failures — bad config, internal errors — never retry.
     */
    unsigned retries = 0;

    /**
     * Abort the sweep at the first failed cell: cells not yet started
     * are marked failed ("skipped: fail-fast") without executing.
     * Off, the default, runs every cell and reports all failures.
     */
    bool failFast = false;

    /**
     * JSONL checkpoint path (empty = no checkpointing). Every
     * successfully finished cell is persisted under its deterministic
     * config fingerprint via an atomic rewrite, so a killed sweep
     * loses at most the cells in flight.
     */
    std::string checkpointPath;

    /**
     * Load the checkpoint before running and restore finished cells
     * from it instead of re-executing them. The merged MatrixResult
     * is bit-identical to an uninterrupted run in every deterministic
     * field (stats, hints, branch totals, cache accounting); only
     * wall-time fields differ. Requires checkpointPath.
     */
    bool resume = false;

    /**
     * Directory of the content-addressed artifact cache (empty = no
     * cache). Materialized replay buffers and executed profiling
     * phases are persisted under fingerprint-derived names and mapped
     * back read-only (mmap MAP_SHARED), so concurrent shard processes
     * share one physical copy of each buffer and a warm run
     * materializes and profiles nothing. Results are bit-identical
     * with the cache cold, warm or absent; a corrupt artifact is
     * journalled and regenerated, never fatal.
     */
    std::string cacheDir;

    /**
     * 1-based shard to execute out of shardCount. Cells are
     * partitioned by the FNV-1a hash of their deterministic config
     * fingerprint (shardOfFingerprint), so N cooperating processes
     * given the same matrix and i/N specs execute disjoint,
     * deterministic, roughly balanced slices. Out-of-shard cells are
     * marked CellResult::shardSkipped and consume no work.
     */
    unsigned shardIndex = 1;

    /** Total shards the matrix is split across (1 = no sharding). */
    unsigned shardCount = 1;

    /**
     * Cooperative cancellation token, polled before each cell (and
     * each shared profiling phase) starts. Once it returns true,
     * work not yet started is marked failed with a Cancelled error
     * instead of executing; work already in flight runs to
     * completion and is checkpointed normally, so a cancelled sweep
     * leaves a resumable checkpoint covering everything it finished.
     * Must be thread-safe (workers poll it concurrently) and
     * monotonic (once true, stays true). Null = never cancelled.
     */
    std::function<bool()> cancel;

    /**
     * Progress hook, invoked once per in-shard cell when its outcome
     * is known — executed, restored or failed — with the cell index
     * and its final CellResult. Called from worker threads, possibly
     * concurrently; the callee synchronizes. Null = no hook. Purely
     * observational: results are identical with or without it.
     */
    std::function<void(std::size_t, const CellResult &)>
        onCellFinished;
};

/**
 * Parse a 1-based "i/N" shard spec ("2/4") into {shardIndex,
 * shardCount}. config_invalid on malformed input, zero values, or
 * index > count.
 */
Result<std::pair<unsigned, unsigned>>
parseShardSpec(const std::string &spec);

/** One cell of the experiment matrix. */
struct MatrixCell
{
    /** Index of the program the cell runs on. */
    std::size_t programIndex = 0;

    /** Full experiment description. */
    ExperimentConfig config;

    /** Display label ("program/predictor:bytes/scheme" by default). */
    std::string label;
};

/** Result and timing of one cell. */
struct CellResult
{
    /** The cell's experiment outcome. */
    ExperimentResult result;

    /** Wall time of the cell's own simulation work (excludes any
     * shared profiling phase the cell consumed). */
    double wallSeconds = 0.0;

    /** Every simulation of the cell ran the devirtualized kernels. */
    bool usedKernel = false;

    /** Every simulation of the cell ran the batched SIMD-dispatch
     * kernels (always false when usedKernel is false). */
    bool usedSimd = false;

    /** The cell consumed a shared profiling phase instead of running
     * its own. */
    bool profileCached = false;

    /** The cell was restored from a checkpoint, not executed. */
    bool restored = false;

    /** The cell belongs to another shard and was not executed here
     * (result slot kept so cell indices stay matrix-stable). */
    bool shardSkipped = false;

    /** Execution attempts made (0 for restored/skipped cells, > 1
     * when transient failures were retried). */
    unsigned attempts = 0;

    /** The failure that ended the cell; empty on success. */
    std::optional<Error> error;

    /** Did the cell produce a usable result? */
    bool ok() const { return !error.has_value(); }

    /** Simulated branch throughput of the cell. */
    double
    branchesPerSecond() const
    {
        return wallSeconds > 0.0
                   ? static_cast<double>(result.simulatedBranches) /
                         wallSeconds
                   : 0.0;
    }
};

/** Aggregate outcome of a matrix run. */
struct MatrixResult
{
    /** Per-cell results, in the order cells were added. */
    std::vector<CellResult> cells;

    /** Worker threads used. */
    unsigned threads = 1;

    /** Wall time spent materializing replay buffers. */
    double materializeSeconds = 0.0;

    /** Sum of the individual shared profiling runs' wall times (what
     * they would cost serially). */
    double profileSeconds = 0.0;

    /** Cells served by an already-run profiling phase. */
    Count profileCacheHits = 0;

    /** Unique profiling phases executed for the cache. */
    Count profileCacheMisses = 0;

    /** Cells whose simulations all ran the devirtualized kernels. */
    Count kernelCells = 0;

    /** Cells whose simulations all ran the batched SIMD kernels. */
    Count simdCells = 0;

    /** Cells that ended in an Error (including fail-fast skips). */
    Count failedCells = 0;

    /** Cells restored from the checkpoint instead of executed. */
    Count restoredCells = 0;

    /** The run used the fused sweep executor. */
    bool fused = false;

    /** Resolved kernel dispatch level of the run — simdLevelName()
     * of resolveSimdLevel(RunnerOptions::simd) at run() time: "off",
     * "scalar", "avx2" or "neon". */
    std::string dispatch = "off";

    /** Nominal vector width of the dispatch level in 32-bit lanes
     * (1 for off/scalar). */
    unsigned simdLanes = 1;

    /** Fused passes executed (profiling-phase and cell groups). */
    Count fusedGroups = 0;

    /**
     * Branches actually simulated, counting each shared profiling
     * phase once. totalBranches keeps PR-stable per-cell accounting
     * (a cached phase is counted by every consumer); the difference
     * between the two is the work the profile cache removed.
     */
    Count actualBranches = 0;

    /** Wall time of the parallel section (profiling phases + cells). */
    double runSeconds = 0.0;

    /** End-to-end wall time (materialize + run). */
    double wallSeconds = 0.0;

    /** Branches simulated across all cells. */
    Count totalBranches = 0;

    /** Bytes held by the replay buffers during the run. */
    std::size_t replayBytes = 0;

    /** Replay buffers served from the artifact cache (mmap). */
    Count cacheReplayHits = 0;

    /** Replay buffers generated because the artifact cache had no
     * valid entry (0 on a warm run — the perf contract). */
    Count cacheReplayMisses = 0;

    /** Profiling phases served from the artifact cache. */
    Count cacheProfileHits = 0;

    /** Profiling phases executed because the artifact cache had no
     * valid entry. */
    Count cacheProfileMisses = 0;

    /** Corrupt artifacts detected (and regenerated). */
    Count cacheCorrupt = 0;

    /** Bytes mapped read-only from the artifact cache. */
    std::size_t mappedBytes = 0;

    /** 1-based shard this run executed (1/1 = unsharded). */
    unsigned shardIndex = 1;

    /** Total shards the matrix was split across. */
    unsigned shardCount = 1;

    /** Cells owned (executed, restored or failed) by this shard. */
    Count shardCells = 0;

    /** Cells skipped because they belong to another shard. */
    Count shardSkippedCells = 0;

    /** Sum of per-cell wall times, the shared profiling runs and
     * materialization: what the same work would cost on one thread. */
    double serialEstimateSeconds() const;

    /** Actual branch throughput of the simulation work (excludes
     * materialization). */
    double kernelBranchesPerSecond() const;

    /** Parallel speedup against the one-thread estimate. */
    double speedupVsSerialEstimate() const;
};

/**
 * The experiment-matrix runner. Add programs, then cells referencing
 * them, then run(); buffers demanded by the cells (and by explicit
 * requireBuffer() calls from benches with custom passes) are
 * materialized once and shared read-only by all workers.
 */
class ArtifactCache;

class ExperimentRunner
{
  public:
    explicit ExperimentRunner(RunnerOptions options = {});
    ~ExperimentRunner();

    /** Register @p program; returns its index. */
    std::size_t addProgram(SyntheticProgram program);

    /**
     * Register any workload (a ScenarioWorkload, a custom stream);
     * returns its index. A multi-context scenario registers exactly
     * like a program — one workload, one stream, one buffer per
     * input — so fused grouping, the artifact cache, checkpointing
     * and sharding compose with scenarios structurally.
     */
    std::size_t addWorkload(std::unique_ptr<WorkloadSource> workload);

    /** Registered workload (valid between cells/buffer queries). */
    const WorkloadSource &program(std::size_t index) const;

    std::size_t programCount() const { return programs.size(); }

    /**
     * Add one experiment cell; returns its index (results come back
     * in the same order). An empty label gets the default
     * "program/predictor:bytes/scheme" form.
     */
    std::size_t addCell(std::size_t program_index,
                        const ExperimentConfig &config,
                        std::string label = {});

    const MatrixCell &cell(std::size_t index) const;

    /**
     * Demand a replay buffer of at least @p branches records of
     * @p program_index under @p input, independent of any cell — for
     * benches that run custom passes (profile comparisons, iterative
     * selection) over the shared buffers.
     */
    void requireBuffer(std::size_t program_index, InputSet input,
                       Count branches);

    /**
     * Materialize every demanded buffer (parallel across programs;
     * idempotent — only missing lengths are regenerated). Called by
     * run(); benches using only requireBuffer() call it directly.
     */
    void materialize();

    /** The materialized buffer (materialize() must have run). */
    const ReplayBuffer &buffer(std::size_t program_index,
                               InputSet input) const;

    /**
     * Run all cells across the pool and collect results + timing.
     * Cell failures (invalid configs, exceptions, injected faults)
     * are isolated into their CellResult::error slots — run() itself
     * throws ErrorException only when nothing can proceed at all: a
     * materialization failure or an unreadable resume checkpoint.
     */
    MatrixResult run();

    /** The pool, for benches adding custom parallel passes. */
    TaskPool &pool() { return taskPool; }

    unsigned threadCount() const { return taskPool.threadCount(); }

  private:
    /** Fold one cell's stream demands into @p plan. */
    void noteCellDemand(
        const MatrixCell &cell,
        std::vector<std::array<Count, numInputSets>> &plan) const;

    /** Reject malformed shard options (config_invalid). */
    void validateShardOptions() const;

    /** Memoized cellFingerprint() of cell @p index ("" when the cell
     * is unfingerprintable). */
    const std::string &fingerprintOf(std::size_t index);

    /** Does cell @p index belong to this process's shard?
     * Unfingerprintable cells hash their label so they too land in
     * exactly one shard. */
    bool cellInShard(std::size_t index);

    RunnerOptions options;
    TaskPool taskPool;
    std::vector<std::unique_ptr<WorkloadSource>> programs;
    std::vector<MatrixCell> cells;

    /** Explicit requireBuffer() demands; cell demands are folded in
     * at materialize() time so out-of-shard cells cost nothing. */
    std::vector<std::array<Count, numInputSets>> demand;
    std::vector<std::array<std::unique_ptr<ReplayBuffer>,
                           numInputSets>> buffers;
    std::vector<std::optional<std::string>> fingerprintMemo;
    std::unique_ptr<ArtifactCache> cache;
    double materializeSeconds = 0.0;
};

/**
 * Write a matrix result as the BENCH_runner.json format (see
 * tools/check_bench_json.py for the schema). @p baseline_seconds, when
 * positive, records an externally measured serial-path wall time and
 * yields a speedup_vs_baseline field.
 */
void writeRunnerJson(const std::string &path, const std::string &bench,
                     const ExperimentRunner &runner,
                     const MatrixResult &result,
                     double baseline_seconds = 0.0);

} // namespace bpsim

#endif // BPSIM_CORE_RUNNER_HH
