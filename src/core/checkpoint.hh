/**
 * @file
 * Sweep checkpoint/resume: persist finished matrix cells so an
 * interrupted sweep restarts where it died instead of from zero.
 *
 * Each completed cell is stored as one JSONL record keyed by a
 * deterministic config fingerprint (program identity + every
 * result-affecting config field), so resume matching survives cell
 * reordering, added cells, and label edits. Only deterministic fields
 * are persisted — stats, hint counts, branch totals, the kernel flag —
 * never wall times, so a resumed run's merged result is bit-identical
 * to an uninterrupted one in every deterministic field.
 *
 * Durability: the file is rewritten atomically (temp + rename) on
 * every record, so a crash at any instant leaves either the previous
 * or the new complete checkpoint, never a torn line. Unparseable or
 * wrong-schema lines found on load are skipped, not fatal: a stale
 * checkpoint only costs re-execution.
 */

#ifndef BPSIM_CORE_CHECKPOINT_HH
#define BPSIM_CORE_CHECKPOINT_HH

#include <cstddef>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "core/experiment.hh"
#include "support/error.hh"
#include "workload/workload_source.hh"

namespace bpsim
{

/** Schema tag stamped on every checkpoint line. */
inline constexpr const char *checkpointSchema = "bpsim-checkpoint-v1";

/**
 * Schema tag of the optional shard-identity header line. Written as
 * the first line of any checkpoint produced by a run that declared a
 * shard (including the trivial 1/1 shard), it records which slice of
 * which matrix the file covers so `bpsim_cli merge` can verify a
 * shard set is complete and disjoint. Readers that predate it skip
 * it as an unknown schema — resume compatibility is unaffected.
 */
inline constexpr const char *checkpointHeaderSchema =
    "bpsim-checkpoint-header-v1";

/** Shard identity stamped into a checkpoint's header line. */
struct ShardStamp
{
    /** 1-based shard index. */
    unsigned shardIndex = 1;

    /** Total shards the matrix was split into. */
    unsigned shardCount = 1;

    /** Cells in the whole (unsharded) matrix. */
    Count matrixCells = 0;

    /** Fingerprintable cells owned by this shard — the record count
     * a complete shard checkpoint must reach. */
    Count shardCells = 0;
};

/**
 * The shard (0-based) a fingerprint belongs to in an @p shard_count
 * way split. Pure function of the fingerprint bytes (FNV-1a), so
 * every process computes the same disjoint, deterministic partition
 * and `merge` can verify each record landed in its declared shard.
 */
unsigned shardOfFingerprint(const std::string &fingerprint,
                            unsigned shard_count);

/** One persisted cell: its identity and deterministic outcome. */
struct CheckpointRecord
{
    /** cellFingerprint() of the cell this record restores. */
    std::string fingerprint;

    /** Display label at record time (informational only). */
    std::string label;

    /** The cell's deterministic experiment outcome. */
    ExperimentResult result;

    /** Every simulation of the cell ran the devirtualized kernels. */
    bool usedKernel = false;

    /** Every simulation of the cell ran the batched SIMD-dispatch
     * kernels. Observability only (results are bit-identical across
     * dispatch levels), so it is persisted but — like usedKernel —
     * never part of the fingerprint: a sweep checkpointed under one
     * dispatch level resumes cleanly under another. */
    bool usedSimd = false;

    /**
     * simulatedBranches of the shared profiling phase the cell
     * consumed (0 = ran its own or needed none). Lets a resumed run
     * reconstruct the matrix's actual-branches accounting when a
     * phase's every consumer was restored and the phase never re-ran.
     */
    Count phaseBranches = 0;
};

/**
 * Deterministic identity of one matrix cell: the program's name and
 * seed plus every config field that affects the result. Cells with a
 * makeDynamic factory use the dynamicKey as the predictor identity;
 * with no key the cell is unfingerprintable and returns "" (the
 * runner then runs it unconditionally and never checkpoints it).
 */
std::string cellFingerprint(const WorkloadSource &program,
                            const ExperimentConfig &config);

/**
 * The on-disk checkpoint of one sweep. Thread-safe: the runner's
 * workers record cells concurrently; each record() rewrites the file
 * atomically under a lock.
 */
class SweepCheckpoint
{
  public:
    /** Bind to @p path; reads nothing until load(). */
    explicit SweepCheckpoint(std::string path);

    /**
     * Read existing records from the bound path. A missing file is an
     * empty checkpoint (fresh run), not an error; unparseable and
     * wrong-schema lines are skipped. io_failure only when the file
     * exists but cannot be read.
     */
    Result<void> load();

    /** Record @p record and atomically rewrite the file. */
    Result<void> record(CheckpointRecord record);

    /** Loaded/recorded record for @p fingerprint; null when absent
     * (or when @p fingerprint is empty — unfingerprintable cell). */
    const CheckpointRecord *find(const std::string &fingerprint) const;

    /** Records held (loaded + recorded this run). */
    std::size_t size() const;

    const std::string &path() const { return filePath; }

    /**
     * Declare the shard identity this checkpoint covers; every
     * subsequent rewrite leads with the header line. load() also
     * populates this from an existing header, so a resuming runner
     * can compare the file's stamp against its own shard options
     * before overwriting it.
     */
    void setShard(const ShardStamp &stamp);

    /** The shard stamp (set or loaded); nullopt for plain files. */
    std::optional<ShardStamp> shard() const;

    /**
     * Rewrite the file now (header + records) without adding a
     * record — gives a freshly sharded run a header-stamped file
     * before its first cell completes, so even a zero-cell shard
     * leaves a verifiable checkpoint for merge.
     */
    Result<void> flush();

    /** Copy of all records (merge input; order as stored). */
    std::vector<CheckpointRecord> snapshot() const;

    /** Render one record as its JSONL line (no trailing newline). */
    static std::string renderLine(const CheckpointRecord &record);

  private:
    /** Rewrite the file from records; caller holds the lock. */
    Result<void> rewriteLocked();

    std::string filePath;
    mutable std::mutex lock;
    std::vector<CheckpointRecord> records;
    std::map<std::string, std::size_t> index;
    std::optional<ShardStamp> stamp;
};

/** One input shard's contribution to a merge. */
struct MergeShardInfo
{
    std::string path;
    unsigned shardIndex = 0;
    Count shardCells = 0;
    Count records = 0;
};

/** What a successful merge combined (summary JSON source). */
struct MergeSummary
{
    unsigned shardCount = 0;
    Count matrixCells = 0;
    Count records = 0;
    /** Per-shard provenance, sorted by shard index. */
    std::vector<MergeShardInfo> shards;
};

/**
 * Merge a complete set of shard checkpoints into one plain
 * (header-less) checkpoint at @p output_path, records sorted by
 * fingerprint so the bytes are deterministic. An unsharded run that
 * resumes from the merged file restores every cell, making its
 * result bit-identical in every deterministic field to a run that
 * never sharded.
 *
 * Rejected with config_invalid: an input without a shard header,
 * mismatched shard counts or matrix sizes, duplicate or out-of-range
 * shard indices, a missing shard, an incomplete shard (fewer records
 * than its stamp declares), records filed under the wrong shard, or
 * duplicate fingerprints across inputs. io_failure when an input
 * cannot be read or the output cannot be written.
 */
Result<MergeSummary>
mergeShardCheckpoints(const std::vector<std::string> &shard_paths,
                      const std::string &output_path);

/** Render the "bpsim-merge-v1" summary JSON for a finished merge. */
std::string renderMergeSummaryJson(const MergeSummary &summary,
                                   const std::string &output_path);

} // namespace bpsim

#endif // BPSIM_CORE_CHECKPOINT_HH
