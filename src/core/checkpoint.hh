/**
 * @file
 * Sweep checkpoint/resume: persist finished matrix cells so an
 * interrupted sweep restarts where it died instead of from zero.
 *
 * Each completed cell is stored as one JSONL record keyed by a
 * deterministic config fingerprint (program identity + every
 * result-affecting config field), so resume matching survives cell
 * reordering, added cells, and label edits. Only deterministic fields
 * are persisted — stats, hint counts, branch totals, the kernel flag —
 * never wall times, so a resumed run's merged result is bit-identical
 * to an uninterrupted one in every deterministic field.
 *
 * Durability: the file is rewritten atomically (temp + rename) on
 * every record, so a crash at any instant leaves either the previous
 * or the new complete checkpoint, never a torn line. Unparseable or
 * wrong-schema lines found on load are skipped, not fatal: a stale
 * checkpoint only costs re-execution.
 */

#ifndef BPSIM_CORE_CHECKPOINT_HH
#define BPSIM_CORE_CHECKPOINT_HH

#include <cstddef>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "core/experiment.hh"
#include "support/error.hh"
#include "workload/synthetic_program.hh"

namespace bpsim
{

/** Schema tag stamped on every checkpoint line. */
inline constexpr const char *checkpointSchema = "bpsim-checkpoint-v1";

/** One persisted cell: its identity and deterministic outcome. */
struct CheckpointRecord
{
    /** cellFingerprint() of the cell this record restores. */
    std::string fingerprint;

    /** Display label at record time (informational only). */
    std::string label;

    /** The cell's deterministic experiment outcome. */
    ExperimentResult result;

    /** Every simulation of the cell ran the devirtualized kernels. */
    bool usedKernel = false;

    /** Every simulation of the cell ran the batched SIMD-dispatch
     * kernels. Observability only (results are bit-identical across
     * dispatch levels), so it is persisted but — like usedKernel —
     * never part of the fingerprint: a sweep checkpointed under one
     * dispatch level resumes cleanly under another. */
    bool usedSimd = false;

    /**
     * simulatedBranches of the shared profiling phase the cell
     * consumed (0 = ran its own or needed none). Lets a resumed run
     * reconstruct the matrix's actual-branches accounting when a
     * phase's every consumer was restored and the phase never re-ran.
     */
    Count phaseBranches = 0;
};

/**
 * Deterministic identity of one matrix cell: the program's name and
 * seed plus every config field that affects the result. Cells with a
 * makeDynamic factory use the dynamicKey as the predictor identity;
 * with no key the cell is unfingerprintable and returns "" (the
 * runner then runs it unconditionally and never checkpoints it).
 */
std::string cellFingerprint(const SyntheticProgram &program,
                            const ExperimentConfig &config);

/**
 * The on-disk checkpoint of one sweep. Thread-safe: the runner's
 * workers record cells concurrently; each record() rewrites the file
 * atomically under a lock.
 */
class SweepCheckpoint
{
  public:
    /** Bind to @p path; reads nothing until load(). */
    explicit SweepCheckpoint(std::string path);

    /**
     * Read existing records from the bound path. A missing file is an
     * empty checkpoint (fresh run), not an error; unparseable and
     * wrong-schema lines are skipped. io_failure only when the file
     * exists but cannot be read.
     */
    Result<void> load();

    /** Record @p record and atomically rewrite the file. */
    Result<void> record(CheckpointRecord record);

    /** Loaded/recorded record for @p fingerprint; null when absent
     * (or when @p fingerprint is empty — unfingerprintable cell). */
    const CheckpointRecord *find(const std::string &fingerprint) const;

    /** Records held (loaded + recorded this run). */
    std::size_t size() const;

    const std::string &path() const { return filePath; }

  private:
    /** Render one record as its JSONL line (no trailing newline). */
    static std::string renderLine(const CheckpointRecord &record);

    /** Rewrite the file from records; caller holds the lock. */
    Result<void> rewriteLocked();

    std::string filePath;
    mutable std::mutex lock;
    std::vector<CheckpointRecord> records;
    std::map<std::string, std::size_t> index;
};

} // namespace bpsim

#endif // BPSIM_CORE_CHECKPOINT_HH
