#include "core/checkpoint.hh"

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <sstream>
#include <utility>

#include "core/combined_predictor.hh"
#include "predictor/factory.hh"
#include "support/atomic_file.hh"
#include "support/bits.hh"
#include "support/json.hh"

namespace bpsim
{

namespace
{

/** Deterministic double rendering for fingerprints (%.17g survives a
 * round trip; to_string's fixed six digits would collide tunables). */
std::string
fingerprintDouble(double value)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.17g", value);
    return buf;
}

Count
countField(const JsonValue &line, const char *key)
{
    return static_cast<Count>(line.at(key).asNumber());
}

/** Render the shard header line (no trailing newline). */
std::string
renderHeaderLine(const ShardStamp &stamp)
{
    std::ostringstream os;
    os << "{\"schema\": " << jsonQuote(checkpointHeaderSchema)
       << ", \"shard_index\": " << stamp.shardIndex
       << ", \"shard_count\": " << stamp.shardCount
       << ", \"matrix_cells\": " << stamp.matrixCells
       << ", \"shard_cells\": " << stamp.shardCells << "}";
    return os.str();
}

} // namespace

unsigned
shardOfFingerprint(const std::string &fingerprint,
                   unsigned shard_count)
{
    if (shard_count <= 1)
        return 0;
    return static_cast<unsigned>(fnv1a64(fingerprint) % shard_count);
}

std::string
cellFingerprint(const WorkloadSource &program,
                const ExperimentConfig &config)
{
    const std::string predictor = predictorIdentityOf(config);
    if (predictor.empty())
        return {};

    std::ostringstream os;
    os << "v1|" << program.name() << "|" << program.seedValue() << "|"
       << predictor << "|" << staticSchemeName(config.scheme) << "|"
       << shiftPolicyName(config.shift) << "|"
       << config.profileBranches << "|" << config.evalBranches << "|"
       << config.evalWarmupBranches << "|"
       << static_cast<unsigned>(config.profileInput) << "|"
       << static_cast<unsigned>(config.evalInput) << "|"
       << (config.filterUnstable ? 1 : 0) << ":"
       << fingerprintDouble(config.stabilityThreshold) << "|"
       << fingerprintDouble(config.selection.cutoffBias) << ","
       << fingerprintDouble(config.selection.factor) << ","
       << config.selection.minExecutions << ","
       << fingerprintDouble(config.selection.aliasCutoffBias) << ","
       << fingerprintDouble(config.selection.aliasMinCollisionRate);
    // Scenario cells carry per-context bookkeeping a plain cell
    // lacks, so they never resume from (or shadow) a non-scenario
    // record of the same sweep axes. Plain cells keep the historical
    // suffix-free form: old checkpoints stay resumable.
    if (config.scenarioContexts > 0)
        os << "|ctx" << config.scenarioContexts;
    return os.str();
}

SweepCheckpoint::SweepCheckpoint(std::string path)
    : filePath(std::move(path))
{
}

Result<void>
SweepCheckpoint::load()
{
    std::lock_guard<std::mutex> guard(lock);
    records.clear();
    index.clear();
    stamp.reset();

    std::FILE *file = std::fopen(filePath.c_str(), "rb");
    if (file == nullptr) {
        if (errno == ENOENT)
            return okResult(); // fresh run
        return Error(ErrorCode::IoFailure,
                     "cannot read checkpoint '" + filePath +
                         "': " + std::strerror(errno));
    }
    std::string text;
    char chunk[4096];
    std::size_t got;
    while ((got = std::fread(chunk, 1, sizeof(chunk), file)) > 0)
        text.append(chunk, got);
    const bool read_failed = std::ferror(file) != 0;
    std::fclose(file);
    if (read_failed) {
        return Error(ErrorCode::IoFailure,
                     "error reading checkpoint '" + filePath + "'");
    }

    std::size_t pos = 0;
    while (pos < text.size()) {
        std::size_t end = text.find('\n', pos);
        if (end == std::string::npos)
            end = text.size();
        const std::string line = text.substr(pos, end - pos);
        pos = end + 1;
        if (line.empty())
            continue;
        // A line that does not parse or carries another schema is
        // skipped: the cell it would have restored simply re-runs.
        const Result<JsonValue> parsed =
            JsonValue::tryParse(line, filePath);
        if (!parsed.ok() || !parsed.value().isObject())
            continue;
        const JsonValue &object = parsed.value();
        const JsonValue *schema = object.find("schema");
        if (schema == nullptr || !schema->isString())
            continue;
        if (schema->asString() == checkpointHeaderSchema) {
            // A malformed header is skipped like any bad line; the
            // file then reads as a plain (stamp-less) checkpoint.
            const JsonValue *index_v = object.find("shard_index");
            const JsonValue *count_v = object.find("shard_count");
            const JsonValue *matrix_v = object.find("matrix_cells");
            const JsonValue *cells_v = object.find("shard_cells");
            if (index_v != nullptr && index_v->isNumber() &&
                count_v != nullptr && count_v->isNumber() &&
                matrix_v != nullptr && matrix_v->isNumber() &&
                cells_v != nullptr && cells_v->isNumber()) {
                ShardStamp loaded;
                loaded.shardIndex =
                    static_cast<unsigned>(index_v->asNumber());
                loaded.shardCount =
                    static_cast<unsigned>(count_v->asNumber());
                loaded.matrixCells =
                    static_cast<Count>(matrix_v->asNumber());
                loaded.shardCells =
                    static_cast<Count>(cells_v->asNumber());
                stamp = loaded;
            }
            continue;
        }
        if (schema->asString() != checkpointSchema)
            continue;

        CheckpointRecord record;
        record.fingerprint = object.at("fingerprint").asString();
        record.label = object.at("label").asString();
        SimStats &stats = record.result.stats;
        stats.branches = countField(object, "branches");
        stats.instructions = countField(object, "instructions");
        stats.mispredictions = countField(object, "mispredictions");
        stats.staticPredicted =
            countField(object, "static_predicted");
        stats.staticMispredictions =
            countField(object, "static_mispredictions");
        stats.collisions.lookups = countField(object, "lookups");
        stats.collisions.collisions =
            countField(object, "collisions");
        stats.collisions.constructive =
            countField(object, "constructive");
        stats.collisions.destructive =
            countField(object, "destructive");
        record.result.hintCount = static_cast<std::size_t>(
            object.at("hints").asNumber());
        record.result.simulatedBranches =
            countField(object, "simulated_branches");
        record.usedKernel = object.at("kernel").asBool();
        // Absent in checkpoints written before the batch kernels
        // existed; treat those as "did not run them".
        const JsonValue *simd = object.find("simd");
        record.usedSimd =
            simd != nullptr && simd->isBool() && simd->asBool();
        record.phaseBranches = countField(object, "phase_branches");
        // Optional scenario payload (absent on plain cells and on
        // checkpoints that predate scenarios).
        const JsonValue *contexts = object.find("contexts");
        if (contexts != nullptr && contexts->isArray()) {
            for (const JsonValue &entry : contexts->items()) {
                if (!entry.isArray() || entry.items().size() != 5)
                    continue;
                const std::vector<JsonValue> &v = entry.items();
                ContextStats ctx;
                ctx.branches = static_cast<Count>(v[0].asNumber());
                ctx.instructions =
                    static_cast<Count>(v[1].asNumber());
                ctx.mispredictions =
                    static_cast<Count>(v[2].asNumber());
                ctx.staticPredicted =
                    static_cast<Count>(v[3].asNumber());
                ctx.collisions = static_cast<Count>(v[4].asNumber());
                record.result.contextStats.push_back(ctx);
            }
        }
        const JsonValue *matrix = object.find("alias_matrix");
        if (matrix != nullptr && matrix->isArray()) {
            for (const JsonValue &entry : matrix->items()) {
                if (!entry.isArray() || entry.items().size() != 3)
                    continue;
                const std::vector<JsonValue> &v = entry.items();
                ContextAliasCell cell;
                cell.collisions = static_cast<Count>(v[0].asNumber());
                cell.constructive =
                    static_cast<Count>(v[1].asNumber());
                cell.destructive =
                    static_cast<Count>(v[2].asNumber());
                record.result.aliasMatrix.push_back(cell);
            }
        }

        const auto [it, inserted] =
            index.try_emplace(record.fingerprint, records.size());
        if (inserted)
            records.push_back(std::move(record));
        else
            records[it->second] = std::move(record);
    }
    return okResult();
}

std::string
SweepCheckpoint::renderLine(const CheckpointRecord &record)
{
    const SimStats &stats = record.result.stats;
    std::ostringstream os;
    os << "{\"schema\": " << jsonQuote(checkpointSchema)
       << ", \"fingerprint\": " << jsonQuote(record.fingerprint)
       << ", \"label\": " << jsonQuote(record.label)
       << ", \"branches\": " << stats.branches
       << ", \"instructions\": " << stats.instructions
       << ", \"mispredictions\": " << stats.mispredictions
       << ", \"static_predicted\": " << stats.staticPredicted
       << ", \"static_mispredictions\": "
       << stats.staticMispredictions
       << ", \"lookups\": " << stats.collisions.lookups
       << ", \"collisions\": " << stats.collisions.collisions
       << ", \"constructive\": " << stats.collisions.constructive
       << ", \"destructive\": " << stats.collisions.destructive
       << ", \"hints\": " << record.result.hintCount
       << ", \"simulated_branches\": "
       << record.result.simulatedBranches
       << ", \"kernel\": " << (record.usedKernel ? "true" : "false")
       << ", \"simd\": " << (record.usedSimd ? "true" : "false")
       << ", \"phase_branches\": " << record.phaseBranches;
    // Scenario cells append their per-context stats and interference
    // matrix so a restored cell is bit-identical to an executed one.
    // Plain cells keep the historical line format byte-for-byte.
    if (!record.result.contextStats.empty()) {
        os << ", \"contexts\": [";
        for (std::size_t i = 0;
             i < record.result.contextStats.size(); ++i) {
            const ContextStats &ctx = record.result.contextStats[i];
            os << (i == 0 ? "" : ", ") << "[" << ctx.branches << ", "
               << ctx.instructions << ", " << ctx.mispredictions
               << ", " << ctx.staticPredicted << ", "
               << ctx.collisions << "]";
        }
        os << "]";
    }
    if (!record.result.aliasMatrix.empty()) {
        os << ", \"alias_matrix\": [";
        for (std::size_t i = 0; i < record.result.aliasMatrix.size();
             ++i) {
            const ContextAliasCell &cell =
                record.result.aliasMatrix[i];
            os << (i == 0 ? "" : ", ") << "[" << cell.collisions
               << ", " << cell.constructive << ", "
               << cell.destructive << "]";
        }
        os << "]";
    }
    os << "}";
    return os.str();
}

void
SweepCheckpoint::setShard(const ShardStamp &new_stamp)
{
    std::lock_guard<std::mutex> guard(lock);
    stamp = new_stamp;
}

Result<void>
SweepCheckpoint::flush()
{
    std::lock_guard<std::mutex> guard(lock);
    return rewriteLocked();
}

std::optional<ShardStamp>
SweepCheckpoint::shard() const
{
    std::lock_guard<std::mutex> guard(lock);
    return stamp;
}

std::vector<CheckpointRecord>
SweepCheckpoint::snapshot() const
{
    std::lock_guard<std::mutex> guard(lock);
    return records;
}

Result<void>
SweepCheckpoint::rewriteLocked()
{
    std::string content;
    if (stamp) {
        content += renderHeaderLine(*stamp);
        content += '\n';
    }
    for (const CheckpointRecord &record : records) {
        content += renderLine(record);
        content += '\n';
    }
    Result<void> written = writeFileAtomic(filePath, content);
    if (!written.ok()) {
        return std::move(written.error())
            .withContext("while writing checkpoint");
    }
    return okResult();
}

Result<void>
SweepCheckpoint::record(CheckpointRecord record)
{
    if (record.fingerprint.empty()) {
        return Error(ErrorCode::Internal,
                     "cannot checkpoint an unfingerprintable cell '" +
                         record.label + "'");
    }
    std::lock_guard<std::mutex> guard(lock);
    const auto [it, inserted] =
        index.try_emplace(record.fingerprint, records.size());
    if (inserted)
        records.push_back(std::move(record));
    else
        records[it->second] = std::move(record);
    return rewriteLocked();
}

const CheckpointRecord *
SweepCheckpoint::find(const std::string &fingerprint) const
{
    if (fingerprint.empty())
        return nullptr;
    std::lock_guard<std::mutex> guard(lock);
    const auto it = index.find(fingerprint);
    return it != index.end() ? &records[it->second] : nullptr;
}

std::size_t
SweepCheckpoint::size() const
{
    std::lock_guard<std::mutex> guard(lock);
    return records.size();
}

Result<MergeSummary>
mergeShardCheckpoints(const std::vector<std::string> &shard_paths,
                      const std::string &output_path)
{
    if (shard_paths.empty()) {
        return Error(ErrorCode::ConfigInvalid,
                     "merge needs at least one shard checkpoint");
    }

    MergeSummary summary;
    std::map<std::string, CheckpointRecord> merged;
    std::map<std::string, std::string> owner; // fingerprint -> path
    std::vector<bool> covered;

    for (const std::string &path : shard_paths) {
        SweepCheckpoint shard(path);
        Result<void> loaded = shard.load();
        if (!loaded.ok()) {
            return std::move(loaded.error())
                .withContext("while merging shard '" + path + "'");
        }
        const std::optional<ShardStamp> stamp = shard.shard();
        if (!stamp) {
            return Error(ErrorCode::ConfigInvalid,
                         "'" + path +
                             "' is not a shard checkpoint (no "
                             "shard header line)");
        }
        if (stamp->shardCount == 0 || stamp->shardIndex == 0 ||
            stamp->shardIndex > stamp->shardCount) {
            return Error(ErrorCode::ConfigInvalid,
                         "'" + path + "' declares invalid shard " +
                             std::to_string(stamp->shardIndex) + "/" +
                             std::to_string(stamp->shardCount));
        }
        if (summary.shards.empty()) {
            summary.shardCount = stamp->shardCount;
            summary.matrixCells = stamp->matrixCells;
            covered.assign(stamp->shardCount, false);
        } else if (stamp->shardCount != summary.shardCount) {
            return Error(ErrorCode::ConfigInvalid,
                         "'" + path + "' was sharded " +
                             std::to_string(stamp->shardCount) +
                             " ways but earlier inputs " +
                             std::to_string(summary.shardCount));
        } else if (stamp->matrixCells != summary.matrixCells) {
            return Error(ErrorCode::ConfigInvalid,
                         "'" + path + "' covers a matrix of " +
                             std::to_string(stamp->matrixCells) +
                             " cells but earlier inputs one of " +
                             std::to_string(summary.matrixCells));
        }
        if (covered[stamp->shardIndex - 1]) {
            return Error(ErrorCode::ConfigInvalid,
                         "shard " +
                             std::to_string(stamp->shardIndex) + "/" +
                             std::to_string(stamp->shardCount) +
                             " appears more than once ('" + path +
                             "')");
        }
        covered[stamp->shardIndex - 1] = true;

        std::vector<CheckpointRecord> records = shard.snapshot();
        if (records.size() != stamp->shardCells) {
            return Error(ErrorCode::ConfigInvalid,
                         "'" + path + "' is incomplete: " +
                             std::to_string(records.size()) + " of " +
                             std::to_string(stamp->shardCells) +
                             " cells recorded");
        }
        for (CheckpointRecord &record : records) {
            const unsigned belongs = shardOfFingerprint(
                record.fingerprint, stamp->shardCount);
            if (belongs != stamp->shardIndex - 1) {
                return Error(
                    ErrorCode::ConfigInvalid,
                    "'" + path + "' holds cell '" + record.label +
                        "' that belongs to shard " +
                        std::to_string(belongs + 1) + "/" +
                        std::to_string(stamp->shardCount));
            }
            const auto it = owner.find(record.fingerprint);
            if (it != owner.end()) {
                return Error(ErrorCode::ConfigInvalid,
                             "cell '" + record.label +
                                 "' appears in both '" + it->second +
                                 "' and '" + path + "'");
            }
            owner.emplace(record.fingerprint, path);
            merged.emplace(record.fingerprint, std::move(record));
        }

        MergeShardInfo info;
        info.path = path;
        info.shardIndex = stamp->shardIndex;
        info.shardCells = stamp->shardCells;
        info.records = stamp->shardCells;
        summary.shards.push_back(std::move(info));
    }

    for (unsigned i = 0; i < summary.shardCount; ++i) {
        if (!covered[i]) {
            return Error(ErrorCode::ConfigInvalid,
                         "shard " + std::to_string(i + 1) + "/" +
                             std::to_string(summary.shardCount) +
                             " is missing from the input set");
        }
    }

    std::sort(summary.shards.begin(), summary.shards.end(),
              [](const MergeShardInfo &a, const MergeShardInfo &b) {
                  return a.shardIndex < b.shardIndex;
              });
    summary.records = merged.size();

    // Plain (header-less) output sorted by fingerprint: the bytes
    // are a pure function of the record set, and an unsharded
    // --resume restores from it like any other checkpoint.
    std::string content;
    for (const auto &[fingerprint, record] : merged) {
        content += SweepCheckpoint::renderLine(record);
        content += '\n';
    }
    Result<void> written = writeFileAtomic(output_path, content);
    if (!written.ok()) {
        return std::move(written.error())
            .withContext("while writing merged checkpoint");
    }
    return summary;
}

std::string
renderMergeSummaryJson(const MergeSummary &summary,
                       const std::string &output_path)
{
    std::ostringstream os;
    os << "{\n  \"schema\": \"bpsim-merge-v1\",\n"
       << "  \"output\": " << jsonQuote(output_path) << ",\n"
       << "  \"shard_count\": " << summary.shardCount << ",\n"
       << "  \"matrix_cells\": " << summary.matrixCells << ",\n"
       << "  \"records\": " << summary.records << ",\n"
       << "  \"shards\": [\n";
    for (std::size_t i = 0; i < summary.shards.size(); ++i) {
        const MergeShardInfo &info = summary.shards[i];
        os << "    {\"path\": " << jsonQuote(info.path)
           << ", \"shard_index\": " << info.shardIndex
           << ", \"shard_cells\": " << info.shardCells
           << ", \"records\": " << info.records << "}"
           << (i + 1 < summary.shards.size() ? "," : "") << "\n";
    }
    os << "  ]\n}\n";
    return os.str();
}

} // namespace bpsim
