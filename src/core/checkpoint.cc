#include "core/checkpoint.hh"

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <sstream>
#include <utility>

#include "core/combined_predictor.hh"
#include "predictor/factory.hh"
#include "support/atomic_file.hh"
#include "support/json.hh"

namespace bpsim
{

namespace
{

/** Deterministic double rendering for fingerprints (%.17g survives a
 * round trip; to_string's fixed six digits would collide tunables). */
std::string
fingerprintDouble(double value)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.17g", value);
    return buf;
}

Count
countField(const JsonValue &line, const char *key)
{
    return static_cast<Count>(line.at(key).asNumber());
}

} // namespace

std::string
cellFingerprint(const SyntheticProgram &program,
                const ExperimentConfig &config)
{
    std::string predictor;
    if (config.makeDynamic) {
        if (config.dynamicKey.empty())
            return {};
        predictor = "custom:" + config.dynamicKey;
    } else {
        predictor = predictorKindName(config.kind) + ":" +
                    std::to_string(config.sizeBytes);
    }

    std::ostringstream os;
    os << "v1|" << program.name() << "|" << program.seedValue() << "|"
       << predictor << "|" << staticSchemeName(config.scheme) << "|"
       << shiftPolicyName(config.shift) << "|"
       << config.profileBranches << "|" << config.evalBranches << "|"
       << config.evalWarmupBranches << "|"
       << static_cast<unsigned>(config.profileInput) << "|"
       << static_cast<unsigned>(config.evalInput) << "|"
       << (config.filterUnstable ? 1 : 0) << ":"
       << fingerprintDouble(config.stabilityThreshold) << "|"
       << fingerprintDouble(config.selection.cutoffBias) << ","
       << fingerprintDouble(config.selection.factor) << ","
       << config.selection.minExecutions << ","
       << fingerprintDouble(config.selection.aliasCutoffBias) << ","
       << fingerprintDouble(config.selection.aliasMinCollisionRate);
    return os.str();
}

SweepCheckpoint::SweepCheckpoint(std::string path)
    : filePath(std::move(path))
{
}

Result<void>
SweepCheckpoint::load()
{
    std::lock_guard<std::mutex> guard(lock);
    records.clear();
    index.clear();

    std::FILE *file = std::fopen(filePath.c_str(), "rb");
    if (file == nullptr) {
        if (errno == ENOENT)
            return okResult(); // fresh run
        return Error(ErrorCode::IoFailure,
                     "cannot read checkpoint '" + filePath +
                         "': " + std::strerror(errno));
    }
    std::string text;
    char chunk[4096];
    std::size_t got;
    while ((got = std::fread(chunk, 1, sizeof(chunk), file)) > 0)
        text.append(chunk, got);
    const bool read_failed = std::ferror(file) != 0;
    std::fclose(file);
    if (read_failed) {
        return Error(ErrorCode::IoFailure,
                     "error reading checkpoint '" + filePath + "'");
    }

    std::size_t pos = 0;
    while (pos < text.size()) {
        std::size_t end = text.find('\n', pos);
        if (end == std::string::npos)
            end = text.size();
        const std::string line = text.substr(pos, end - pos);
        pos = end + 1;
        if (line.empty())
            continue;
        // A line that does not parse or carries another schema is
        // skipped: the cell it would have restored simply re-runs.
        const Result<JsonValue> parsed =
            JsonValue::tryParse(line, filePath);
        if (!parsed.ok() || !parsed.value().isObject())
            continue;
        const JsonValue &object = parsed.value();
        const JsonValue *schema = object.find("schema");
        if (schema == nullptr || !schema->isString() ||
            schema->asString() != checkpointSchema)
            continue;

        CheckpointRecord record;
        record.fingerprint = object.at("fingerprint").asString();
        record.label = object.at("label").asString();
        SimStats &stats = record.result.stats;
        stats.branches = countField(object, "branches");
        stats.instructions = countField(object, "instructions");
        stats.mispredictions = countField(object, "mispredictions");
        stats.staticPredicted =
            countField(object, "static_predicted");
        stats.staticMispredictions =
            countField(object, "static_mispredictions");
        stats.collisions.lookups = countField(object, "lookups");
        stats.collisions.collisions =
            countField(object, "collisions");
        stats.collisions.constructive =
            countField(object, "constructive");
        stats.collisions.destructive =
            countField(object, "destructive");
        record.result.hintCount = static_cast<std::size_t>(
            object.at("hints").asNumber());
        record.result.simulatedBranches =
            countField(object, "simulated_branches");
        record.usedKernel = object.at("kernel").asBool();
        // Absent in checkpoints written before the batch kernels
        // existed; treat those as "did not run them".
        const JsonValue *simd = object.find("simd");
        record.usedSimd =
            simd != nullptr && simd->isBool() && simd->asBool();
        record.phaseBranches = countField(object, "phase_branches");

        const auto [it, inserted] =
            index.try_emplace(record.fingerprint, records.size());
        if (inserted)
            records.push_back(std::move(record));
        else
            records[it->second] = std::move(record);
    }
    return okResult();
}

std::string
SweepCheckpoint::renderLine(const CheckpointRecord &record)
{
    const SimStats &stats = record.result.stats;
    std::ostringstream os;
    os << "{\"schema\": " << jsonQuote(checkpointSchema)
       << ", \"fingerprint\": " << jsonQuote(record.fingerprint)
       << ", \"label\": " << jsonQuote(record.label)
       << ", \"branches\": " << stats.branches
       << ", \"instructions\": " << stats.instructions
       << ", \"mispredictions\": " << stats.mispredictions
       << ", \"static_predicted\": " << stats.staticPredicted
       << ", \"static_mispredictions\": "
       << stats.staticMispredictions
       << ", \"lookups\": " << stats.collisions.lookups
       << ", \"collisions\": " << stats.collisions.collisions
       << ", \"constructive\": " << stats.collisions.constructive
       << ", \"destructive\": " << stats.collisions.destructive
       << ", \"hints\": " << record.result.hintCount
       << ", \"simulated_branches\": "
       << record.result.simulatedBranches
       << ", \"kernel\": " << (record.usedKernel ? "true" : "false")
       << ", \"simd\": " << (record.usedSimd ? "true" : "false")
       << ", \"phase_branches\": " << record.phaseBranches << "}";
    return os.str();
}

Result<void>
SweepCheckpoint::rewriteLocked()
{
    std::string content;
    for (const CheckpointRecord &record : records) {
        content += renderLine(record);
        content += '\n';
    }
    Result<void> written = writeFileAtomic(filePath, content);
    if (!written.ok()) {
        return std::move(written.error())
            .withContext("while writing checkpoint");
    }
    return okResult();
}

Result<void>
SweepCheckpoint::record(CheckpointRecord record)
{
    if (record.fingerprint.empty()) {
        return Error(ErrorCode::Internal,
                     "cannot checkpoint an unfingerprintable cell '" +
                         record.label + "'");
    }
    std::lock_guard<std::mutex> guard(lock);
    const auto [it, inserted] =
        index.try_emplace(record.fingerprint, records.size());
    if (inserted)
        records.push_back(std::move(record));
    else
        records[it->second] = std::move(record);
    return rewriteLocked();
}

const CheckpointRecord *
SweepCheckpoint::find(const std::string &fingerprint) const
{
    if (fingerprint.empty())
        return nullptr;
    std::lock_guard<std::mutex> guard(lock);
    const auto it = index.find(fingerprint);
    return it != index.end() ? &records[it->second] : nullptr;
}

std::size_t
SweepCheckpoint::size() const
{
    std::lock_guard<std::mutex> guard(lock);
    return records.size();
}

} // namespace bpsim
