/**
 * @file
 * AVX2-target instantiation of the batch replay kernels (x86-64
 * only; compiled with -mavx2 via a CMake source property). The code
 * is the same portable implementation — the vector speedup comes
 * from the compiler vectorizing the decode/precompute loops with the
 * wider ISA; results are bit-identical to the baseline translation
 * unit by integer semantics.
 *
 * The whole file compiles away when the AVX2 kernels are excluded
 * (non-x86 targets, or -DBPSIM_DISABLE_AVX2=ON defining
 * BPSIM_NO_AVX2_KERNELS), keeping the library buildable with one
 * source list.
 */

#include "core/simd.hh"

#if defined(BPSIM_HAVE_AVX2_KERNELS)

#define BPSIM_BATCH_NS kernels_avx2
#include "core/batch_kernels_impl.hh"

#endif // BPSIM_HAVE_AVX2_KERNELS
