#include "staticsel/selection.hh"

#include "support/logging.hh"

namespace bpsim
{

std::string
staticSchemeName(StaticScheme scheme)
{
    switch (scheme) {
      case StaticScheme::None:
        return "none";
      case StaticScheme::Static95:
        return "static_95";
      case StaticScheme::StaticAcc:
        return "static_acc";
      case StaticScheme::StaticFac:
        return "static_fac";
      case StaticScheme::StaticAlias:
        return "static_alias";
    }
    bpsim_panic("unknown StaticScheme");
}

StaticScheme
staticSchemeFromName(const std::string &name)
{
    if (name == "none")
        return StaticScheme::None;
    if (name == "static_95")
        return StaticScheme::Static95;
    if (name == "static_acc")
        return StaticScheme::StaticAcc;
    if (name == "static_fac")
        return StaticScheme::StaticFac;
    if (name == "static_alias")
        return StaticScheme::StaticAlias;
    bpsim_fatal("unknown static scheme '", name, "'");
}

HintDb
selectStatic95(const ProfileDb &profile, const SelectionParams &params)
{
    HintDb hints;
    for (const auto &[pc, record] : profile.entries()) {
        if (record.executed < params.minExecutions)
            continue;
        if (record.bias() > params.cutoffBias)
            hints.insert(pc, record.majorityTaken());
    }
    return hints;
}

HintDb
selectStaticAcc(const ProfileDb &profile, const SelectionParams &params)
{
    HintDb hints;
    for (const auto &[pc, record] : profile.entries()) {
        if (record.executed < params.minExecutions ||
            record.predicted == 0) {
            continue;
        }
        if (record.bias() > record.accuracy())
            hints.insert(pc, record.majorityTaken());
    }
    return hints;
}

HintDb
selectStaticFac(const ProfileDb &profile, const SelectionParams &params)
{
    HintDb hints;
    for (const auto &[pc, record] : profile.entries()) {
        if (record.executed < params.minExecutions ||
            record.predicted == 0) {
            continue;
        }
        // Expected mispredictions if predicted statically in the
        // majority direction, versus the mispredictions the dynamic
        // predictor actually suffered.
        const double static_misp =
            (1.0 - record.bias()) *
            static_cast<double>(record.executed);
        const double dynamic_misp =
            static_cast<double>(record.predicted - record.correct);
        if (static_misp * params.factor <= dynamic_misp)
            hints.insert(pc, record.majorityTaken());
    }
    return hints;
}

HintDb
selectStaticAlias(const ProfileDb &profile,
                  const SelectionParams &params)
{
    HintDb hints;
    for (const auto &[pc, record] : profile.entries()) {
        if (record.executed < params.minExecutions ||
            record.predicted == 0) {
            continue;
        }
        if (record.bias() > params.aliasCutoffBias &&
            record.collisionRate() >= params.aliasMinCollisionRate) {
            hints.insert(pc, record.majorityTaken());
        }
    }
    return hints;
}

HintDb
selectStatic(StaticScheme scheme, const ProfileDb &profile,
             const SelectionParams &params)
{
    switch (scheme) {
      case StaticScheme::None:
        return HintDb{};
      case StaticScheme::Static95:
        return selectStatic95(profile, params);
      case StaticScheme::StaticAcc:
        return selectStaticAcc(profile, params);
      case StaticScheme::StaticFac:
        return selectStaticFac(profile, params);
      case StaticScheme::StaticAlias:
        return selectStaticAlias(profile, params);
    }
    bpsim_panic("unknown StaticScheme");
}

} // namespace bpsim
