/**
 * @file
 * Static prediction hint database.
 *
 * Models the two hint bits of the paper's §2 (after IA-64): one bit
 * says "use the static prediction for this branch", the other carries
 * the predicted direction. In hardware the bits live in the branch
 * instruction encoding; here they live in a per-program database that
 * the selection phase writes and the evaluation phase reads.
 */

#ifndef BPSIM_STATICSEL_STATIC_HINT_HH
#define BPSIM_STATICSEL_STATIC_HINT_HH

#include <string>
#include <unordered_map>

#include "support/types.hh"

namespace bpsim
{

/** Map from branch PC to its static prediction, if it has one. */
class HintDb
{
  public:
    using Map = std::unordered_map<Addr, bool>;

    /** Mark @p pc statically predicted with direction @p taken. */
    void
    insert(Addr pc, bool taken)
    {
        hints[pc] = taken;
    }

    /** True when @p pc carries a static hint. */
    bool
    contains(Addr pc) const
    {
        return hints.find(pc) != hints.end();
    }

    /**
     * The static prediction of @p pc.
     *
     * @param pc    branch address
     * @param taken set to the hinted direction when present
     * @retval true a hint exists and @p taken is valid
     */
    bool
    lookup(Addr pc, bool &taken) const
    {
        const auto it = hints.find(pc);
        if (it == hints.end())
            return false;
        taken = it->second;
        return true;
    }

    /** Number of statically predicted branches. */
    std::size_t size() const { return hints.size(); }

    /** Whole-map access for iteration. */
    const Map &entries() const { return hints; }

    /** Save as text ("pc direction" lines). */
    void save(const std::string &path) const;

    /** Load a database saved by save(). */
    static HintDb load(const std::string &path);

  private:
    Map hints;
};

} // namespace bpsim

#endif // BPSIM_STATICSEL_STATIC_HINT_HH
