/**
 * @file
 * Profile-directed selection of branches for static prediction — the
 * paper's core contribution (§4).
 *
 * Three schemes:
 *
 *  - Static_95: select every branch whose bias exceeds a cutoff
 *    (default 95%); these easy branches are predicted statically to
 *    free dynamic-table space. Predictor-independent.
 *
 *  - Static_Acc: select every branch whose bias exceeds the accuracy
 *    a specific dynamic predictor achieved on it during a phase-1
 *    simulation; using the dominant direction can then never be worse
 *    for those branches. Predictor-dependent.
 *
 *  - Static_Fac: a single-iteration version of Lindsay's scheme —
 *    select branches whose expected static misprediction count is at
 *    least @c factor times lower than their observed dynamic
 *    misprediction count.
 *
 * Every scheme predicts a selected branch in its profiled majority
 * direction.
 */

#ifndef BPSIM_STATICSEL_SELECTION_HH
#define BPSIM_STATICSEL_SELECTION_HH

#include <string>

#include "profile/profile_db.hh"
#include "staticsel/static_hint.hh"

namespace bpsim
{

/**
 * The static selection schemes evaluated by the paper, plus
 * StaticAlias — the collision-aware selection the paper sketches as
 * future work ("we want to predict only those branches statically
 * that will... reduce destructive collisions").
 */
enum class StaticScheme
{
    None,        ///< pure dynamic prediction
    Static95,    ///< bias cutoff (easy branches)
    StaticAcc,   ///< bias > per-branch dynamic accuracy (hard)
    StaticFac,   ///< misprediction-count factor test
    StaticAlias, ///< biased branches with high collision involvement
};

/** Scheme name for table output ("none", "static_95", ...). */
std::string staticSchemeName(StaticScheme scheme);

/** Parse a scheme name; fatal() on an unknown one. */
StaticScheme staticSchemeFromName(const std::string &name);

/** Tunables for the selection schemes. */
struct SelectionParams
{
    /** Bias cutoff for Static_95. */
    double cutoffBias = 0.95;

    /** Advantage factor for Static_Fac. */
    double factor = 2.0;

    /**
     * Ignore branches executed fewer times than this during the
     * profiling run; their bias estimate is noise.
     */
    Count minExecutions = 16;

    /** StaticAlias: bias floor (matches Static_95 so the alias
     * scheme is a strict refinement: the contested subset). */
    double aliasCutoffBias = 0.95;

    /** StaticAlias: minimum collisions per prediction to qualify. */
    double aliasMinCollisionRate = 0.10;
};

/** Static_95: branches with bias > params.cutoffBias. */
HintDb selectStatic95(const ProfileDb &profile,
                      const SelectionParams &params = {});

/**
 * Static_Acc: branches with bias > measured dynamic accuracy. The
 * profile must carry prediction counts (collected by simulating the
 * target dynamic predictor in phase 1).
 */
HintDb selectStaticAcc(const ProfileDb &profile,
                       const SelectionParams &params = {});

/**
 * Static_Fac: branches whose static mispredictions would be at least
 * params.factor times fewer than their dynamic mispredictions.
 */
HintDb selectStaticFac(const ProfileDb &profile,
                       const SelectionParams &params = {});

/**
 * Static_Alias (future work of the paper, §5): biased branches whose
 * predictor lookups collide often. Removing exactly the contested,
 * easily-predicted branches targets the destructive-aliasing budget
 * directly instead of using bias alone as a proxy. Requires a
 * profile with collision counts (phase-1 simulation records them).
 */
HintDb selectStaticAlias(const ProfileDb &profile,
                         const SelectionParams &params = {});

/** Dispatch on @p scheme (None yields an empty database). */
HintDb selectStatic(StaticScheme scheme, const ProfileDb &profile,
                    const SelectionParams &params = {});

} // namespace bpsim

#endif // BPSIM_STATICSEL_SELECTION_HH
