#include "staticsel/static_hint.hh"

#include <cinttypes>
#include <cstdio>

#include "support/logging.hh"

namespace bpsim
{

void
HintDb::save(const std::string &path) const
{
    std::FILE *out = std::fopen(path.c_str(), "w");
    if (out == nullptr)
        bpsim_fatal("cannot open hint db '", path, "' for writing");
    for (const auto &[pc, taken] : hints)
        std::fprintf(out, "%#" PRIx64 " %c\n", pc, taken ? 'T' : 'N');
    std::fclose(out);
}

HintDb
HintDb::load(const std::string &path)
{
    std::FILE *in = std::fopen(path.c_str(), "r");
    if (in == nullptr)
        bpsim_fatal("cannot open hint db '", path, "'");
    HintDb db;
    std::uint64_t pc;
    char dir;
    while (std::fscanf(in, "%" SCNx64 " %c", &pc, &dir) == 2) {
        if (dir != 'T' && dir != 'N') {
            std::fclose(in);
            bpsim_fatal("bad direction in hint db '", path, "'");
        }
        db.insert(pc, dir == 'T');
    }
    std::fclose(in);
    return db;
}

} // namespace bpsim
