/**
 * @file
 * Run-journal observability layer.
 *
 * A RunJournal records the coarse, structured events of one matrix or
 * CLI run — phase boundaries, profile-cache outcomes, which execution
 * path (devirtualized kernel vs virtual fallback) each cell took,
 * thread assignment, and the final stat snapshot of every cell — and
 * serializes them as JSONL (one event per line) plus an aggregated
 * metrics summary JSON. tools/check_bench_json.py validates both
 * formats (--schema journal / --schema metrics), so every committed
 * or CI-produced record is checked against the event taxonomy and its
 * cross-event invariants.
 *
 * Granularity contract: events are per phase / per cell, never per
 * branch. A fig7-12-sized run emits a few hundred events, so the
 * journal's mutex and timestamping cost is noise (<3% of wall time)
 * next to the millions of simulated branches per cell.
 *
 * Layering: obs sits on support only. Events carry generic typed
 * fields rather than core's SimStats, so the journal can outlive any
 * particular stats struct; core/runner does the SimStats -> fields
 * flattening.
 */

#ifndef BPSIM_OBS_RUN_JOURNAL_HH
#define BPSIM_OBS_RUN_JOURNAL_HH

#include <chrono>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "support/observe.hh"
#include "support/types.hh"

namespace bpsim::obs
{

/**
 * The event taxonomy. Every journal line names one of these; the
 * schema validator rejects anything else.
 */
enum class EventKind
{
    RunBegin,     ///< first event: run label, thread count
    PhaseBegin,   ///< a named run phase opened (materialize/profile/cells)
    PhaseEnd,     ///< the matching phase closed (payload: seconds)
    Materialize,  ///< replay buffers built (seconds, bytes)
    ProfilePhase, ///< one shared profiling run executed
    CellBegin,    ///< a matrix cell started on some worker thread
    CellEnd,      ///< cell finished: timing, path taken, stat snapshot
    CellError,    ///< cell failed: error code, message, attempts
    FusedGroup,   ///< one fused pass executed: membership, timing,
                  ///< per-cell branch/misprediction snapshots
    ScenarioCell, ///< multi-context summary of a scenario cell:
                  ///< context count, cross- vs self-context collision
                  ///< and destructive totals (the full NxN matrix
                  ///< goes to the runner/bench JSON, not the journal)
    Cache,        ///< artifact-cache traffic: a replay buffer or
                  ///< profile phase was served from / stored to the
                  ///< content-addressed cache
    CacheCorrupt, ///< a cache file existed but failed validation and
                  ///< was regenerated (never fatal)
    RunEnd,       ///< last event: aggregate totals

    // Service-mode events (bpsim_serve). Label = request id.
    RequestBegin,    ///< a request was admitted and started executing
    RequestCell,     ///< one cell of a request reached a final outcome
    RequestEnd,      ///< a request finished (ok or structured error)
    RequestRejected, ///< a request was refused at admission (shed,
                     ///< quarantine, malformed, draining)
    ServiceState,    ///< daemon lifecycle: listening / draining /
                     ///< stopped, with queue-depth snapshots
};

/** Wire name of @p kind ("run_begin", "cell_end", ...). */
const char *eventKindName(EventKind kind);

/** One typed key/value payload entry of an event. */
class Field
{
  public:
    enum class Type
    {
        U64,
        F64,
        Bool,
        Str,
    };

    static Field u64(std::string key, Count value);
    static Field f64(std::string key, double value);
    static Field boolean(std::string key, bool value);
    static Field str(std::string key, std::string value);

    const std::string &key() const { return fieldKey; }
    Type type() const { return fieldType; }

    Count u64Value() const { return u64Field; }
    double f64Value() const { return f64Field; }
    bool boolValue() const { return boolField; }
    const std::string &strValue() const { return strField; }

    /** Append `"key": value` (no braces/comma) to @p out. */
    void appendJson(std::string &out) const;

  private:
    std::string fieldKey;
    Type fieldType = Type::U64;
    Count u64Field = 0;
    double f64Field = 0.0;
    bool boolField = false;
    std::string strField;
};

/** One recorded event. */
struct Event
{
    /** Monotonic per-journal sequence number (assigned by record()). */
    Count sequence = 0;

    /** Seconds since the journal's epoch (its construction). */
    double seconds = 0.0;

    /** Worker-thread index the event was recorded from (0 = the
     * coordinating thread / pool worker zero). */
    unsigned thread = 0;

    EventKind kind = EventKind::RunBegin;

    /** Cell label, phase name, or program name — the event's subject. */
    std::string label;

    std::vector<Field> fields;

    /** Payload field lookup (null when absent). */
    const Field *find(const std::string &key) const;

    /** Numeric payload value; 0 when absent or non-numeric. */
    Count u64(const std::string &key) const;
    double f64(const std::string &key) const;
    bool boolean(const std::string &key) const;
};

/** Aggregates computed by RunJournal::summary(). */
struct JournalSummary
{
    Count totalEvents = 0;

    /** Events per taxonomy kind (wire names). */
    std::map<std::string, Count> eventsByKind;

    /** Events per recording thread index. */
    std::map<unsigned, Count> eventsByThread;

    Count cellsBegun = 0;
    Count cellsEnded = 0;

    /** cell_error events: cells whose execution failed. Every
     * cell_begin is closed by exactly one cell_end or cell_error, so
     * cellsBegun == cellsEnded + cellsFailed on a complete journal. */
    Count cellsFailed = 0;

    /** cell_end events restored from a checkpoint (resume) rather
     * than executed in this run. */
    Count cellsRestored = 0;

    Count phaseBegins = 0;
    Count phaseEnds = 0;

    /** Every phase_begin had a later phase_end with the same label
     * and no phase closed more often than it opened. */
    bool phasesBalanced = true;

    /** Sum of profile_phase seconds. */
    double profileSeconds = 0.0;

    /** Sum of cell_end seconds. */
    double cellSeconds = 0.0;

    /** Sum of materialize seconds. */
    double materializeSeconds = 0.0;

    /** run_end wall seconds (0 when the run never ended). */
    double wallSeconds = 0.0;

    /** Cells whose evaluation ran the devirtualized kernels. */
    Count kernelCells = 0;

    /** Cells whose simulations ran the batched SIMD kernels. */
    Count simdCells = 0;

    /** run_begin dispatch level ("off"/"scalar"/"avx2"/"neon";
     * empty when the run_begin event predates the field). */
    std::string dispatch;

    /** run_begin nominal vector width in 32-bit lanes (0 when the
     * run_begin event predates the field). */
    Count simdWidth = 0;

    /** Cells that consumed a shared (cached or fresh) profile phase. */
    Count cachedCells = 0;

    /** fused_group events: fused passes executed by the sweep. */
    Count fusedGroups = 0;

    /** Sum of fused_group member counts (cells + profiling phases
     * that ran inside a fused pass). */
    Count fusedMembers = 0;

    /** Sum of cell_end measured branches. */
    Count branches = 0;

    /** Collision classification totals summed over cell_end events.
     * neutral is the unclassified remainder, so
     * constructive + destructive + neutral == collisions by
     * construction at the emitter — the validator and property suite
     * re-check it. */
    Count collisions = 0;
    Count constructive = 0;
    Count destructive = 0;
    Count neutral = 0;
};

/**
 * Thread-safe structured event log for one run, with an embedded
 * counter registry (fed by the engine) and timer registry (fed by the
 * runner's scoped phase timers), both serialized into the metrics
 * summary.
 */
class RunJournal
{
  public:
    explicit RunJournal(std::string run_label = "run");

    const std::string &runLabel() const { return label; }

    /** Engine/bench counters attached to this run. */
    CounterRegistry &counters() { return counterRegistry; }
    const CounterRegistry &counters() const { return counterRegistry; }

    /** Scoped-timer accumulator attached to this run. */
    TimerRegistry &timers() { return timerRegistry; }
    const TimerRegistry &timers() const { return timerRegistry; }

    /** Seconds since the journal was constructed. */
    double secondsSinceStart() const;

    /**
     * Record one event (thread-safe). @p thread is the recording
     * worker's index; sequence number and timestamp are assigned
     * here, under the journal lock, so sequences are strictly
     * increasing and timestamps monotonic per journal.
     */
    void record(EventKind kind, unsigned thread, std::string label,
                std::vector<Field> fields = {});

    /**
     * record() and return the event's serialized JSONL line. The
     * serialization happens under the journal lock so a subscriber
     * stream sees lines in the same order as the on-disk journal.
     */
    std::string recordAndRender(EventKind kind, unsigned thread,
                                std::string label,
                                std::vector<Field> fields = {});

    /** Number of events recorded so far. */
    Count eventCount() const;

    /** Snapshot copy of the event log, in sequence order. */
    std::vector<Event> events() const;

    /** Aggregate the current event log. */
    JournalSummary summary() const;

    /** Serialize one event as its JSONL line (no trailing newline). */
    static std::string toJsonLine(const Event &event);

    /** Write the event log as JSONL (atomic temp + rename); fatal()
     * if unwritable. */
    void writeJsonl(const std::string &path) const;

    /**
     * Write the aggregated metrics summary (plus counter and timer
     * snapshots) as a single JSON object (atomic temp + rename);
     * fatal() if unwritable.
     */
    void writeMetrics(const std::string &path) const;

    /** Conventional metrics path next to @p journal_path
     * ("x.jsonl" -> "x.metrics.json"). */
    static std::string metricsPathFor(const std::string &journal_path);

  private:
    std::string label;
    std::chrono::steady_clock::time_point epoch;
    CounterRegistry counterRegistry;
    TimerRegistry timerRegistry;

    mutable std::mutex lock;
    std::vector<Event> log;
};

} // namespace bpsim::obs

#endif // BPSIM_OBS_RUN_JOURNAL_HH
