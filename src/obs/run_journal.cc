#include "obs/run_journal.hh"

#include <cstdio>

#include "support/atomic_file.hh"
#include "support/json.hh"
#include "support/logging.hh"

namespace bpsim::obs
{

namespace
{

void
appendF64(std::string &out, double value)
{
    char buf[48];
    std::snprintf(buf, sizeof(buf), "%.6f", value);
    out += buf;
}

void
appendU64(std::string &out, Count value)
{
    out += std::to_string(value);
}

} // namespace

const char *
eventKindName(EventKind kind)
{
    switch (kind) {
      case EventKind::RunBegin:
        return "run_begin";
      case EventKind::PhaseBegin:
        return "phase_begin";
      case EventKind::PhaseEnd:
        return "phase_end";
      case EventKind::Materialize:
        return "materialize";
      case EventKind::ProfilePhase:
        return "profile_phase";
      case EventKind::CellBegin:
        return "cell_begin";
      case EventKind::CellEnd:
        return "cell_end";
      case EventKind::CellError:
        return "cell_error";
      case EventKind::FusedGroup:
        return "fused_group";
      case EventKind::ScenarioCell:
        return "scenario_cell";
      case EventKind::Cache:
        return "cache";
      case EventKind::CacheCorrupt:
        return "cache_corrupt";
      case EventKind::RunEnd:
        return "run_end";
      case EventKind::RequestBegin:
        return "request_begin";
      case EventKind::RequestCell:
        return "request_cell";
      case EventKind::RequestEnd:
        return "request_end";
      case EventKind::RequestRejected:
        return "request_rejected";
      case EventKind::ServiceState:
        return "service_state";
    }
    return "?";
}

Field
Field::u64(std::string key, Count value)
{
    Field field;
    field.fieldKey = std::move(key);
    field.fieldType = Type::U64;
    field.u64Field = value;
    return field;
}

Field
Field::f64(std::string key, double value)
{
    Field field;
    field.fieldKey = std::move(key);
    field.fieldType = Type::F64;
    field.f64Field = value;
    return field;
}

Field
Field::boolean(std::string key, bool value)
{
    Field field;
    field.fieldKey = std::move(key);
    field.fieldType = Type::Bool;
    field.boolField = value;
    return field;
}

Field
Field::str(std::string key, std::string value)
{
    Field field;
    field.fieldKey = std::move(key);
    field.fieldType = Type::Str;
    field.strField = std::move(value);
    return field;
}

void
Field::appendJson(std::string &out) const
{
    out += jsonQuote(fieldKey);
    out += ": ";
    switch (fieldType) {
      case Type::U64:
        appendU64(out, u64Field);
        break;
      case Type::F64:
        appendF64(out, f64Field);
        break;
      case Type::Bool:
        out += boolField ? "true" : "false";
        break;
      case Type::Str:
        out += jsonQuote(strField);
        break;
    }
}

const Field *
Event::find(const std::string &key) const
{
    for (const Field &field : fields) {
        if (field.key() == key)
            return &field;
    }
    return nullptr;
}

Count
Event::u64(const std::string &key) const
{
    const Field *field = find(key);
    return field != nullptr && field->type() == Field::Type::U64
               ? field->u64Value()
               : 0;
}

double
Event::f64(const std::string &key) const
{
    const Field *field = find(key);
    return field != nullptr && field->type() == Field::Type::F64
               ? field->f64Value()
               : 0.0;
}

bool
Event::boolean(const std::string &key) const
{
    const Field *field = find(key);
    return field != nullptr && field->type() == Field::Type::Bool &&
           field->boolValue();
}

RunJournal::RunJournal(std::string run_label)
    : label(std::move(run_label)),
      epoch(std::chrono::steady_clock::now())
{
}

double
RunJournal::secondsSinceStart() const
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - epoch)
        .count();
}

void
RunJournal::record(EventKind kind, unsigned thread, std::string label,
                   std::vector<Field> fields)
{
    Event event;
    event.thread = thread;
    event.kind = kind;
    event.label = std::move(label);
    event.fields = std::move(fields);

    std::lock_guard<std::mutex> guard(lock);
    event.sequence = log.size();
    event.seconds = secondsSinceStart();
    log.push_back(std::move(event));
}

std::string
RunJournal::recordAndRender(EventKind kind, unsigned thread,
                            std::string label,
                            std::vector<Field> fields)
{
    Event event;
    event.thread = thread;
    event.kind = kind;
    event.label = std::move(label);
    event.fields = std::move(fields);

    std::lock_guard<std::mutex> guard(lock);
    event.sequence = log.size();
    event.seconds = secondsSinceStart();
    log.push_back(std::move(event));
    return toJsonLine(log.back());
}

Count
RunJournal::eventCount() const
{
    std::lock_guard<std::mutex> guard(lock);
    return log.size();
}

std::vector<Event>
RunJournal::events() const
{
    std::lock_guard<std::mutex> guard(lock);
    return log;
}

JournalSummary
RunJournal::summary() const
{
    const std::vector<Event> snapshot = events();

    JournalSummary sum;
    sum.totalEvents = snapshot.size();
    std::map<std::string, long long> open_phases;
    for (const Event &event : snapshot) {
        ++sum.eventsByKind[eventKindName(event.kind)];
        ++sum.eventsByThread[event.thread];
        switch (event.kind) {
          case EventKind::PhaseBegin:
            ++sum.phaseBegins;
            ++open_phases[event.label];
            break;
          case EventKind::PhaseEnd:
            ++sum.phaseEnds;
            if (--open_phases[event.label] < 0)
                sum.phasesBalanced = false;
            break;
          case EventKind::Materialize:
            sum.materializeSeconds += event.f64("seconds");
            break;
          case EventKind::ProfilePhase:
            sum.profileSeconds += event.f64("seconds");
            break;
          case EventKind::CellBegin:
            ++sum.cellsBegun;
            break;
          case EventKind::CellError:
            ++sum.cellsFailed;
            break;
          case EventKind::CellEnd:
            ++sum.cellsEnded;
            if (event.boolean("restored"))
                ++sum.cellsRestored;
            sum.cellSeconds += event.f64("seconds");
            sum.branches += event.u64("branches");
            sum.collisions += event.u64("collisions");
            sum.constructive += event.u64("constructive");
            sum.destructive += event.u64("destructive");
            sum.neutral += event.u64("neutral");
            if (event.boolean("kernel"))
                ++sum.kernelCells;
            if (event.boolean("simd"))
                ++sum.simdCells;
            if (event.boolean("profile_cached"))
                ++sum.cachedCells;
            break;
          case EventKind::FusedGroup:
            ++sum.fusedGroups;
            sum.fusedMembers += event.u64("members");
            break;
          case EventKind::Cache:
          case EventKind::CacheCorrupt:
          case EventKind::ScenarioCell:
          case EventKind::RequestBegin:
          case EventKind::RequestCell:
          case EventKind::RequestEnd:
          case EventKind::RequestRejected:
          case EventKind::ServiceState:
            // Counted in eventsByKind; run_end carries the totals.
            break;
          case EventKind::RunEnd:
            sum.wallSeconds = event.f64("seconds");
            break;
          case EventKind::RunBegin:
            if (const Field *field = event.find("dispatch");
                field != nullptr && field->type() == Field::Type::Str)
                sum.dispatch = field->strValue();
            sum.simdWidth = event.u64("simd_width");
            break;
        }
    }
    for (const auto &[name, net] : open_phases) {
        if (net != 0)
            sum.phasesBalanced = false;
    }
    return sum;
}

std::string
RunJournal::toJsonLine(const Event &event)
{
    std::string out = "{\"seq\": ";
    appendU64(out, event.sequence);
    out += ", \"t\": ";
    appendF64(out, event.seconds);
    out += ", \"thread\": ";
    appendU64(out, event.thread);
    out += ", \"event\": ";
    out += jsonQuote(eventKindName(event.kind));
    out += ", \"label\": ";
    out += jsonQuote(event.label);
    for (const Field &field : event.fields) {
        out += ", ";
        field.appendJson(out);
    }
    out += "}";
    return out;
}

void
RunJournal::writeJsonl(const std::string &path) const
{
    AtomicFile writer(path);
    if (!writer.ok())
        bpsim_fatal("cannot write '", path, "'");
    for (const Event &event : events()) {
        const std::string line = toJsonLine(event);
        std::fprintf(writer.stream(), "%s\n", line.c_str());
    }
    const Result<void> committed = writer.commit();
    if (!committed.ok())
        bpsim_fatal(committed.error().describe());
}

void
RunJournal::writeMetrics(const std::string &path) const
{
    const JournalSummary sum = summary();

    AtomicFile writer(path);
    if (!writer.ok())
        bpsim_fatal("cannot write '", path, "'");
    std::FILE *file = writer.stream();

    std::fprintf(file, "{\n");
    std::fprintf(file, "  \"schema\": \"bpsim-metrics-v1\",\n");
    std::fprintf(file, "  \"run\": %s,\n",
                 jsonQuote(label).c_str());
    std::fprintf(file, "  \"total_events\": %llu,\n",
                 static_cast<unsigned long long>(sum.totalEvents));

    std::fprintf(file, "  \"events_by_kind\": {");
    bool first = true;
    for (const auto &[kind, count] : sum.eventsByKind) {
        std::fprintf(file, "%s\n    %s: %llu", first ? "" : ",",
                     jsonQuote(kind).c_str(),
                     static_cast<unsigned long long>(count));
        first = false;
    }
    std::fprintf(file, "\n  },\n");

    std::fprintf(file, "  \"events_by_thread\": {");
    first = true;
    for (const auto &[thread, count] : sum.eventsByThread) {
        std::fprintf(file, "%s\n    \"%u\": %llu", first ? "" : ",",
                     thread,
                     static_cast<unsigned long long>(count));
        first = false;
    }
    std::fprintf(file, "\n  },\n");

    std::fprintf(file, "  \"cells_begun\": %llu,\n",
                 static_cast<unsigned long long>(sum.cellsBegun));
    std::fprintf(file, "  \"cells_ended\": %llu,\n",
                 static_cast<unsigned long long>(sum.cellsEnded));
    std::fprintf(file, "  \"cells_failed\": %llu,\n",
                 static_cast<unsigned long long>(sum.cellsFailed));
    std::fprintf(file, "  \"cells_restored\": %llu,\n",
                 static_cast<unsigned long long>(sum.cellsRestored));
    std::fprintf(file, "  \"phase_begins\": %llu,\n",
                 static_cast<unsigned long long>(sum.phaseBegins));
    std::fprintf(file, "  \"phase_ends\": %llu,\n",
                 static_cast<unsigned long long>(sum.phaseEnds));
    std::fprintf(file, "  \"phases_balanced\": %s,\n",
                 sum.phasesBalanced ? "true" : "false");
    std::fprintf(file, "  \"materialize_seconds\": %.6f,\n",
                 sum.materializeSeconds);
    std::fprintf(file, "  \"profile_seconds\": %.6f,\n",
                 sum.profileSeconds);
    std::fprintf(file, "  \"cell_seconds\": %.6f,\n", sum.cellSeconds);
    std::fprintf(file, "  \"wall_seconds\": %.6f,\n", sum.wallSeconds);
    std::fprintf(file, "  \"kernel_cells\": %llu,\n",
                 static_cast<unsigned long long>(sum.kernelCells));
    std::fprintf(file, "  \"simd_cells\": %llu,\n",
                 static_cast<unsigned long long>(sum.simdCells));
    std::fprintf(file, "  \"dispatch\": %s,\n",
                 jsonQuote(sum.dispatch).c_str());
    std::fprintf(file, "  \"simd_width\": %llu,\n",
                 static_cast<unsigned long long>(sum.simdWidth));
    std::fprintf(file, "  \"cached_cells\": %llu,\n",
                 static_cast<unsigned long long>(sum.cachedCells));
    std::fprintf(file, "  \"fused_groups\": %llu,\n",
                 static_cast<unsigned long long>(sum.fusedGroups));
    std::fprintf(file, "  \"fused_members\": %llu,\n",
                 static_cast<unsigned long long>(sum.fusedMembers));
    std::fprintf(file, "  \"branches\": %llu,\n",
                 static_cast<unsigned long long>(sum.branches));
    std::fprintf(file, "  \"collisions\": %llu,\n",
                 static_cast<unsigned long long>(sum.collisions));
    std::fprintf(file, "  \"constructive\": %llu,\n",
                 static_cast<unsigned long long>(sum.constructive));
    std::fprintf(file, "  \"destructive\": %llu,\n",
                 static_cast<unsigned long long>(sum.destructive));
    std::fprintf(file, "  \"neutral\": %llu,\n",
                 static_cast<unsigned long long>(sum.neutral));

    std::fprintf(file, "  \"counters\": {");
    first = true;
    for (const auto &[name, value] : counterRegistry.snapshot()) {
        std::fprintf(file, "%s\n    %s: %llu", first ? "" : ",",
                     jsonQuote(name).c_str(),
                     static_cast<unsigned long long>(value));
        first = false;
    }
    std::fprintf(file, "\n  },\n");

    std::fprintf(file, "  \"timers\": {");
    first = true;
    for (const auto &[name, stat] : timerRegistry.snapshot()) {
        std::fprintf(file,
                     "%s\n    %s: {\"count\": %llu, "
                     "\"seconds\": %.6f}",
                     first ? "" : ",", jsonQuote(name).c_str(),
                     static_cast<unsigned long long>(stat.count),
                     stat.seconds);
        first = false;
    }
    std::fprintf(file, "\n  }\n");
    std::fprintf(file, "}\n");
    const Result<void> committed = writer.commit();
    if (!committed.ok())
        bpsim_fatal(committed.error().describe());
}

std::string
RunJournal::metricsPathFor(const std::string &journal_path)
{
    const std::string suffix = ".jsonl";
    if (journal_path.size() > suffix.size() &&
        journal_path.compare(journal_path.size() - suffix.size(),
                             suffix.size(), suffix) == 0) {
        return journal_path.substr(0,
                                   journal_path.size() - suffix.size()) +
               ".metrics.json";
    }
    return journal_path + ".metrics.json";
}

} // namespace bpsim::obs
