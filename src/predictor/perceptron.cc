#include "predictor/perceptron.hh"

#include "predictor/registry.hh"

namespace bpsim
{

namespace
{

/** Largest power of two <= @p value (min 2 so index widths stay >= 1). */
std::size_t
floorPow2Entries(std::size_t value)
{
    if (value < 2)
        return 2;
    return std::size_t{1} << floorLog2(value);
}

} // namespace

HashedPerceptron::HashedPerceptron(std::size_t size_bytes)
    : history(64),
      // Jiménez's fitted threshold, with the table count standing in
      // for the history length a monolithic perceptron would use.
      trainingThreshold(2 * static_cast<int>(numTables) + 6)
{
    bpsim_assert(size_bytes >= 16, "perceptron budget too small");
    const std::size_t entries =
        floorPow2Entries(size_bytes / numTables);
    tables.reserve(numTables);
    for (unsigned t = 0; t < numTables; ++t)
        tables.emplace_back(entries, BitCount{8},
                            static_cast<std::uint8_t>(weightBias));
}

bool
HashedPerceptron::predict(Addr pc)
{
    return predictStep<true>(pc);
}

void
HashedPerceptron::update(Addr pc, bool taken)
{
    updateStep<true>(pc, taken);
}

void
HashedPerceptron::updateHistory(bool taken)
{
    historyStep(taken);
}

void
HashedPerceptron::reset()
{
    for (CounterTable &table : tables)
        table.reset();
    history.clear();
    last = LookupState{};
}

std::size_t
HashedPerceptron::sizeBytes() const
{
    std::size_t bytes = 0;
    for (const CounterTable &table : tables)
        bytes += table.sizeBytes();
    return bytes;
}

CollisionStats
HashedPerceptron::collisionStats() const
{
    CollisionStats stats;
    for (const CounterTable &table : tables)
        stats += table.stats();
    return stats;
}

void
HashedPerceptron::clearCollisionStats()
{
    for (CounterTable &table : tables)
        table.clearStats();
}

Count
HashedPerceptron::lastPredictCollisions() const
{
    return pendingStep();
}

int
HashedPerceptron::weightAt(unsigned t, std::size_t idx) const
{
    bpsim_assert(t < numTables, "table out of range");
    return static_cast<int>(tables[t].at(idx).value()) - weightBias;
}

BPSIM_REGISTER_PREDICTOR(
    perceptron,
    PredictorInfo{
        .name = "perceptron",
        .description = "hashed perceptron: 8 weight tables over "
                       "history slices 0..64, threshold training",
        .make =
            [](std::size_t bytes) {
                return std::make_unique<HashedPerceptron>(bytes);
            },
        .paperKind = false,
        .kernelCapable = true,
    })

} // namespace bpsim
