/**
 * @file
 * A table of saturating counters with collision-tag instrumentation.
 */

#ifndef BPSIM_PREDICTOR_COUNTER_TABLE_HH
#define BPSIM_PREDICTOR_COUNTER_TABLE_HH

#include <cstdint>
#include <vector>

#include "support/bits.hh"
#include "support/logging.hh"
#include "support/sat_counter.hh"
#include "support/types.hh"
#include "predictor/context_alias.hh"
#include "predictor/predictor.hh"

namespace bpsim
{

/**
 * Power-of-two sized table of n-bit saturating counters.
 *
 * Storage is structure-of-arrays: one contiguous byte array of raw
 * counter values and one parallel array of measurement tags, so the
 * batch replay kernels can gather and update counters lane-wise. The
 * per-entry SatCounter interface survives as a lightweight proxy
 * (Ref) returned by the accessors, which keeps the predictors' step
 * code unchanged by the layout.
 *
 * Each entry carries a measurement-only tag holding the PC of the
 * last branch that looked the entry up. lookup() reports whether the
 * access collided (tag mismatch); the owning predictor later calls
 * classify() once it knows whether its overall prediction was
 * correct, which buckets the pending collisions of the current
 * prediction round into constructive/destructive.
 *
 * Indexing is by power-of-two mask: accessors take an arbitrary hash
 * and reduce it with `hash & (entries - 1)`, so the per-branch path
 * carries neither a modulo nor a bounds assertion. The collision
 * bookkeeping is a template parameter of the accessors: the
 * devirtualized simulation kernels instantiate `Track = false`
 * variants that compile the tag reads/writes out entirely when a
 * caller opts out of collision measurement.
 */
class CounterTable
{
  public:
    /** Tag value meaning "no branch has used this entry yet". */
    static constexpr Addr invalidTag = ~Addr{0};

    /**
     * Proxy reference to one counter slot in the structure-of-arrays
     * store; mirrors the SatCounter mutation interface.
     */
    class Ref
    {
      public:
        Ref(std::uint8_t &slot, std::uint8_t msb, std::uint8_t max_value)
            : slot(slot), msb(msb), maxVal(max_value)
        {
        }

        /** Prediction carried by the counter (MSB set => taken). */
        bool taken() const { return satCounterTaken(slot, msb); }

        /** Current raw value. */
        std::uint8_t value() const { return slot; }

        /** Branchless train toward the actual outcome. */
        void
        train(bool taken_outcome)
        {
            slot = satCounterTrain(slot, taken_outcome, maxVal);
        }

        /** Reset to an explicit value. */
        void
        set(std::uint8_t value)
        {
            bpsim_assert(value <= maxVal, "value too large");
            slot = value;
        }

      private:
        std::uint8_t &slot;
        std::uint8_t msb;
        std::uint8_t maxVal;
    };

    /** Read-only counterpart of Ref. */
    class ConstRef
    {
      public:
        ConstRef(std::uint8_t slot, std::uint8_t msb) : slot(slot), msb(msb)
        {
        }

        bool taken() const { return satCounterTaken(slot, msb); }
        std::uint8_t value() const { return slot; }

      private:
        std::uint8_t slot;
        std::uint8_t msb;
    };

    /**
     * @param entries      table size; must be a power of two
     * @param counter_bits width of each counter (1..8)
     * @param initial      initial raw counter value
     */
    CounterTable(std::size_t entries, BitCount counter_bits,
                 std::uint8_t initial);

    /** Number of entries. */
    std::size_t entries() const { return counters.size(); }

    /** log2(entries): the index width. */
    BitCount indexBits() const { return idxBits; }

    /** The power-of-two index mask (entries - 1). */
    std::size_t indexMask() const { return idxMask; }

    /** Reduce an arbitrary hash to a valid index. */
    std::size_t
    indexFor(std::uint64_t hash) const
    {
        return static_cast<std::size_t>(hash) & idxMask;
    }

    /** Storage budget in bytes, excluding measurement tags. */
    std::size_t
    sizeBytes() const
    {
        return counters.size() * counterBits / 8;
    }

    /**
     * Access the counter at @p index (reduced by the index mask) for
     * branch @p pc. With @p Track set, records collision statistics
     * and updates the tag; with it clear, the tag bookkeeping is
     * compiled out and the access is a bare masked load.
     */
    template <bool Track = true>
    Ref
    lookup(std::size_t index, Addr pc)
    {
        index &= idxMask;
        if constexpr (Track) {
            ++collisionStats.lookups;
            const Addr tag = tags[index];
            const bool collided = tag != invalidTag && tag != pc;
            collisionStats.collisions += collided;
            pendingCollisions += collided;
            if (collided && aliasSink != nullptr)
                aliasSink->note(pc, tag);
            tags[index] = pc;
        } else {
            (void)pc;
        }
        return Ref(counters[index], msbThreshold, maxVal);
    }

    /** Direct access without instrumentation (for update paths). */
    Ref
    at(std::size_t index)
    {
        bpsim_assert(index < counters.size(), "index out of range");
        return Ref(counters[index], msbThreshold, maxVal);
    }

    ConstRef
    at(std::size_t index) const
    {
        bpsim_assert(index < counters.size(), "index out of range");
        return ConstRef(counters[index], msbThreshold);
    }

    /** Uninstrumented masked access for the hot update path. */
    Ref
    entry(std::size_t index)
    {
        return Ref(counters[index & idxMask], msbThreshold, maxVal);
    }

    /**
     * Attribute the collisions recorded since the last classify()
     * call as constructive (@p correct) or destructive.
     */
    void
    classify(bool correct)
    {
        collisionStats.constructive += correct ? pendingCollisions : 0;
        collisionStats.destructive += correct ? 0 : pendingCollisions;
        pendingCollisions = 0;
        if (aliasSink != nullptr)
            aliasSink->classify(correct);
    }

    /** Reset every counter (and tag) to the power-on state. */
    void reset();

    /** Collision statistics gathered so far. */
    const CollisionStats &stats() const { return collisionStats; }

    /** Collisions recorded since the last classify() call. */
    Count pending() const { return pendingCollisions; }

    /** Zero the collision statistics. */
    void
    clearStats()
    {
        collisionStats = CollisionStats{};
        if (aliasSink != nullptr)
            aliasSink->clear();
    }

    /**
     * Route per-context collision attribution into @p sink (null
     * detaches). Shared by all tables of one predictor; the pooled
     * flush protocol is documented on ContextAliasSink.
     */
    void setAliasSink(ContextAliasSink *sink) { aliasSink = sink; }

    /**
     * @name Raw structure-of-arrays access for the batch kernels
     * The kernels gather counters/tags directly and accumulate
     * collision statistics in registers, flushing into statsRef() at
     * segment boundaries.
     */
    ///@{
    std::uint8_t *counterData() { return counters.data(); }
    Addr *tagData() { return tags.data(); }
    std::uint8_t counterMax() const { return maxVal; }
    std::uint8_t counterMsb() const { return msbThreshold; }
    CollisionStats &statsRef() { return collisionStats; }
    ///@}

  private:
    std::vector<std::uint8_t> counters;
    std::vector<Addr> tags;
    CollisionStats collisionStats;
    ContextAliasSink *aliasSink = nullptr;
    Count pendingCollisions = 0;
    std::size_t idxMask = 0;
    BitCount counterBits;
    BitCount idxBits;
    std::uint8_t initialValue;
    std::uint8_t maxVal;
    std::uint8_t msbThreshold;
};

} // namespace bpsim

#endif // BPSIM_PREDICTOR_COUNTER_TABLE_HH
