/**
 * @file
 * A table of saturating counters with collision-tag instrumentation.
 */

#ifndef BPSIM_PREDICTOR_COUNTER_TABLE_HH
#define BPSIM_PREDICTOR_COUNTER_TABLE_HH

#include <cstdint>
#include <vector>

#include "support/bits.hh"
#include "support/logging.hh"
#include "support/sat_counter.hh"
#include "support/types.hh"
#include "predictor/predictor.hh"

namespace bpsim
{

/**
 * Power-of-two sized table of n-bit saturating counters.
 *
 * Each entry carries a measurement-only tag holding the PC of the
 * last branch that looked the entry up. lookup() reports whether the
 * access collided (tag mismatch); the owning predictor later calls
 * classify() once it knows whether its overall prediction was
 * correct, which buckets the pending collisions of the current
 * prediction round into constructive/destructive.
 *
 * Indexing is by power-of-two mask: accessors take an arbitrary hash
 * and reduce it with `hash & (entries - 1)`, so the per-branch path
 * carries neither a modulo nor a bounds assertion. The collision
 * bookkeeping is a template parameter of the accessors: the
 * devirtualized simulation kernels instantiate `Track = false`
 * variants that compile the tag reads/writes out entirely when a
 * caller opts out of collision measurement.
 */
class CounterTable
{
  public:
    /**
     * @param entries      table size; must be a power of two
     * @param counter_bits width of each counter (1..8)
     * @param initial      initial raw counter value
     */
    CounterTable(std::size_t entries, BitCount counter_bits,
                 std::uint8_t initial);

    /** Number of entries. */
    std::size_t entries() const { return counters.size(); }

    /** log2(entries): the index width. */
    BitCount indexBits() const { return idxBits; }

    /** The power-of-two index mask (entries - 1). */
    std::size_t indexMask() const { return idxMask; }

    /** Reduce an arbitrary hash to a valid index. */
    std::size_t
    indexFor(std::uint64_t hash) const
    {
        return static_cast<std::size_t>(hash) & idxMask;
    }

    /** Storage budget in bytes, excluding measurement tags. */
    std::size_t
    sizeBytes() const
    {
        return counters.size() * counterBits / 8;
    }

    /**
     * Access the counter at @p index (reduced by the index mask) for
     * branch @p pc. With @p Track set, records collision statistics
     * and updates the tag; with it clear, the tag bookkeeping is
     * compiled out and the access is a bare masked load.
     */
    template <bool Track = true>
    SatCounter &
    lookup(std::size_t index, Addr pc)
    {
        index &= idxMask;
        if constexpr (Track) {
            ++collisionStats.lookups;
            const Addr tag = tags[index];
            const bool collided = tag != invalidTag && tag != pc;
            collisionStats.collisions += collided;
            pendingCollisions += collided;
            tags[index] = pc;
        } else {
            (void)pc;
        }
        return counters[index];
    }

    /** Direct access without instrumentation (for update paths). */
    SatCounter &
    at(std::size_t index)
    {
        bpsim_assert(index < counters.size(), "index out of range");
        return counters[index];
    }

    const SatCounter &
    at(std::size_t index) const
    {
        bpsim_assert(index < counters.size(), "index out of range");
        return counters[index];
    }

    /** Uninstrumented masked access for the hot update path. */
    SatCounter &
    entry(std::size_t index)
    {
        return counters[index & idxMask];
    }

    /**
     * Attribute the collisions recorded since the last classify()
     * call as constructive (@p correct) or destructive.
     */
    void
    classify(bool correct)
    {
        collisionStats.constructive += correct ? pendingCollisions : 0;
        collisionStats.destructive += correct ? 0 : pendingCollisions;
        pendingCollisions = 0;
    }

    /** Reset every counter (and tag) to the power-on state. */
    void reset();

    /** Collision statistics gathered so far. */
    const CollisionStats &stats() const { return collisionStats; }

    /** Collisions recorded since the last classify() call. */
    Count pending() const { return pendingCollisions; }

    /** Zero the collision statistics. */
    void clearStats() { collisionStats = CollisionStats{}; }

  private:
    /** Tag value meaning "no branch has used this entry yet". */
    static constexpr Addr invalidTag = ~Addr{0};

    std::vector<SatCounter> counters;
    std::vector<Addr> tags;
    CollisionStats collisionStats;
    Count pendingCollisions = 0;
    std::size_t idxMask = 0;
    BitCount counterBits;
    BitCount idxBits;
    std::uint8_t initialValue;
};

} // namespace bpsim

#endif // BPSIM_PREDICTOR_COUNTER_TABLE_HH
