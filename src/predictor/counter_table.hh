/**
 * @file
 * A table of saturating counters with collision-tag instrumentation.
 */

#ifndef BPSIM_PREDICTOR_COUNTER_TABLE_HH
#define BPSIM_PREDICTOR_COUNTER_TABLE_HH

#include <cstdint>
#include <vector>

#include "support/bits.hh"
#include "support/logging.hh"
#include "support/sat_counter.hh"
#include "support/types.hh"
#include "predictor/predictor.hh"

namespace bpsim
{

/**
 * Power-of-two sized table of n-bit saturating counters.
 *
 * Each entry carries a measurement-only tag holding the PC of the
 * last branch that looked the entry up. lookup() reports whether the
 * access collided (tag mismatch); the owning predictor later calls
 * classify() once it knows whether its overall prediction was
 * correct, which buckets the pending collisions of the current
 * prediction round into constructive/destructive.
 */
class CounterTable
{
  public:
    /**
     * @param entries      table size; must be a power of two
     * @param counter_bits width of each counter (1..8)
     * @param initial      initial raw counter value
     */
    CounterTable(std::size_t entries, BitCount counter_bits,
                 std::uint8_t initial);

    /** Number of entries. */
    std::size_t entries() const { return counters.size(); }

    /** log2(entries): the index width. */
    BitCount indexBits() const { return idxBits; }

    /** Storage budget in bytes, excluding measurement tags. */
    std::size_t
    sizeBytes() const
    {
        return counters.size() * counterBits / 8;
    }

    /**
     * Access the counter at @p index for branch @p pc, recording
     * collision statistics and updating the tag.
     */
    SatCounter &lookup(std::size_t index, Addr pc);

    /** Direct access without instrumentation (for update paths). */
    SatCounter &
    at(std::size_t index)
    {
        bpsim_assert(index < counters.size(), "index out of range");
        return counters[index];
    }

    const SatCounter &
    at(std::size_t index) const
    {
        bpsim_assert(index < counters.size(), "index out of range");
        return counters[index];
    }

    /**
     * Attribute the collisions recorded since the last classify()
     * call as constructive (@p correct) or destructive.
     */
    void classify(bool correct);

    /** Reset every counter (and tag) to the power-on state. */
    void reset();

    /** Collision statistics gathered so far. */
    const CollisionStats &stats() const { return collisionStats; }

    /** Collisions recorded since the last classify() call. */
    Count pending() const { return pendingCollisions; }

    /** Zero the collision statistics. */
    void clearStats() { collisionStats = CollisionStats{}; }

  private:
    std::vector<SatCounter> counters;
    std::vector<Addr> tags;
    CollisionStats collisionStats;
    Count pendingCollisions = 0;
    BitCount counterBits;
    BitCount idxBits;
    std::uint8_t initialValue;
};

} // namespace bpsim

#endif // BPSIM_PREDICTOR_COUNTER_TABLE_HH
