/**
 * @file
 * The classic bimodal branch predictor (Smith 1981, [17] in the
 * paper): a PC-indexed table of 2-bit saturating counters.
 */

#ifndef BPSIM_PREDICTOR_BIMODAL_HH
#define BPSIM_PREDICTOR_BIMODAL_HH

#include <cstddef>

#include "predictor/counter_table.hh"
#include "predictor/predictor.hh"

namespace bpsim
{

/**
 * PC-indexed table of saturating counters. Captures per-branch bias;
 * essentially alias-free beyond ~2 KB on SPEC-sized programs, which
 * is why the paper finds Static_95 useless for it.
 *
 * The inline *Step methods are the non-virtual per-branch protocol
 * used by the devirtualized replay kernels; the virtual interface
 * forwards to them.
 */
class Bimodal : public BranchPredictor
{
  public:
    /**
     * @param size_bytes   hardware budget; must yield a power-of-two
     *                     entry count
     * @param counter_bits counter width (default 2)
     */
    explicit Bimodal(std::size_t size_bytes, BitCount counter_bits = 2);

    bool predict(Addr pc) override;
    void update(Addr pc, bool taken) override;
    void updateHistory(bool taken) override;
    void reset() override;
    std::size_t sizeBytes() const override;
    std::string name() const override { return "bimodal"; }
    CollisionStats collisionStats() const override;
    void clearCollisionStats() override;
    Count lastPredictCollisions() const override;

    void
    attachAliasSink(ContextAliasSink *sink) override
    {
        table.setAliasSink(sink);
    }

    /** Non-virtual predict(). */
    template <bool Track>
    bool
    predictStep(Addr pc)
    {
        lastIndex = table.indexFor(pc / instructionBytes);
        return table.lookup<Track>(lastIndex, pc).taken();
    }

    /** Non-virtual update(). */
    template <bool Track>
    void
    updateStep(Addr pc, bool taken)
    {
        (void)pc;
        auto counter = table.entry(lastIndex);
        if constexpr (Track)
            table.classify(counter.taken() == taken);
        counter.train(taken);
    }

    /** Non-virtual updateHistory(): bimodal keeps no history. */
    void historyStep(bool) {}

    /** Non-virtual lastPredictCollisions(). */
    Count pendingStep() const { return table.pending(); }

  private:
    template <typename> friend struct BatchTraits;

    CounterTable table;
    std::size_t lastIndex = 0;
};

} // namespace bpsim

#endif // BPSIM_PREDICTOR_BIMODAL_HH
