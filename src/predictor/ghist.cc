#include "predictor/ghist.hh"

#include "predictor/table_size.hh"

namespace bpsim
{

Ghist::Ghist(std::size_t size_bytes, BitCount counter_bits)
    : table(entriesForBudget(size_bytes, counter_bits), counter_bits,
            SatCounter::weak(counter_bits, false).value()),
      history(table.indexBits())
{
}

bool
Ghist::predict(Addr pc)
{
    lastIndex = static_cast<std::size_t>(history.value());
    return table.lookup(lastIndex, pc).taken();
}

void
Ghist::update(Addr pc, bool taken)
{
    (void)pc;
    const bool correct = table.at(lastIndex).taken() == taken;
    table.classify(correct);
    table.at(lastIndex).train(taken);
}

void
Ghist::updateHistory(bool taken)
{
    history.push(taken);
}

void
Ghist::reset()
{
    table.reset();
    history.clear();
}

std::size_t
Ghist::sizeBytes() const
{
    return table.sizeBytes();
}

CollisionStats
Ghist::collisionStats() const
{
    return table.stats();
}

void
Ghist::clearCollisionStats()
{
    table.clearStats();
}

Count
Ghist::lastPredictCollisions() const
{
    return table.pending();
}

} // namespace bpsim
