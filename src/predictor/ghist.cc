#include "predictor/ghist.hh"

#include "predictor/registry.hh"

#include "predictor/table_size.hh"

namespace bpsim
{

Ghist::Ghist(std::size_t size_bytes, BitCount counter_bits)
    : table(entriesForBudget(size_bytes, counter_bits), counter_bits,
            SatCounter::weak(counter_bits, false).value()),
      history(table.indexBits())
{
}

bool
Ghist::predict(Addr pc)
{
    return predictStep<true>(pc);
}

void
Ghist::update(Addr pc, bool taken)
{
    updateStep<true>(pc, taken);
}

void
Ghist::updateHistory(bool taken)
{
    historyStep(taken);
}

void
Ghist::reset()
{
    table.reset();
    history.clear();
}

std::size_t
Ghist::sizeBytes() const
{
    return table.sizeBytes();
}

CollisionStats
Ghist::collisionStats() const
{
    return table.stats();
}

void
Ghist::clearCollisionStats()
{
    table.clearStats();
}

Count
Ghist::lastPredictCollisions() const
{
    return pendingStep();
}

BPSIM_REGISTER_PREDICTOR(
    ghist,
    PredictorInfo{
        .name = "ghist",
        .description = "global-history indexed counter table (GAs)",
        .make =
            [](std::size_t bytes) {
                return std::make_unique<Ghist>(bytes);
            },
        .paperKind = true,
        .kernelCapable = true,
        .batchCapable = true,
    })

} // namespace bpsim
