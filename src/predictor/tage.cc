#include "predictor/tage.hh"

#include <algorithm>

#include "predictor/registry.hh"
#include "support/sat_counter.hh"

namespace bpsim
{

namespace
{

/** Largest power of two <= @p value (min 2 so index widths stay >= 1). */
std::size_t
floorPow2Entries(std::size_t value)
{
    if (value < 2)
        return 2;
    return std::size_t{1} << floorLog2(value);
}

/** Per-bank entry cost in bits: prediction + useful + tag. */
constexpr std::size_t bankEntryBits = Tage::predBits + 2 + Tage::tagBits;

} // namespace

Tage::Tage(std::size_t size_bytes, Count age_period)
    : base(floorPow2Entries(size_bytes * 8 / 2 / predBits), predBits,
           SatCounter::weak(predBits, false).value()),
      history(historyLengths.back()), agePeriod(age_period)
{
    bpsim_assert(size_bytes >= 16, "tage budget too small");
    bpsim_assert(age_period > 0, "tage age period must be positive");

    const std::size_t bank_bits = size_bytes * 8 / 2 / numBanks;
    const std::size_t entries =
        floorPow2Entries(bank_bits / bankEntryBits);
    banks.reserve(numBanks);
    for (unsigned b = 0; b < numBanks; ++b) {
        banks.emplace_back(entries,
                           SatCounter::weak(predBits, false).value());
        Bank &bank = banks.back();
        const BitCount hist = historyLengths[b];
        bank.idxFold = FoldedHistory(
            hist, std::min<BitCount>(bank.pred.indexBits(), hist));
        bank.tagFold1 =
            FoldedHistory(hist, std::min<BitCount>(tagBits, hist));
        bank.tagFold2 =
            FoldedHistory(hist, std::min<BitCount>(tagBits - 1, hist));
    }
}

bool
Tage::predict(Addr pc)
{
    return predictStep<true>(pc);
}

void
Tage::update(Addr pc, bool taken)
{
    updateStep<true>(pc, taken);
}

void
Tage::updateHistory(bool taken)
{
    historyStep(taken);
}

void
Tage::reset()
{
    base.reset();
    for (Bank &bank : banks) {
        bank.pred.reset();
        std::fill(bank.tags.begin(), bank.tags.end(), 0);
        std::fill(bank.useful.begin(), bank.useful.end(), 0);
        bank.idxFold.clear();
        bank.tagFold1.clear();
        bank.tagFold2.clear();
    }
    history.clear();
    updatesSinceAging = 0;
    allocations = 0;
    agingEvents = 0;
    last = LookupState{};
}

std::size_t
Tage::sizeBytes() const
{
    std::size_t bits = base.entries() * predBits;
    for (const Bank &bank : banks)
        bits += bank.pred.entries() * bankEntryBits;
    return bits / 8;
}

CollisionStats
Tage::collisionStats() const
{
    CollisionStats stats = base.stats();
    for (const Bank &bank : banks)
        stats += bank.pred.stats();
    return stats;
}

void
Tage::clearCollisionStats()
{
    base.clearStats();
    for (Bank &bank : banks)
        bank.pred.clearStats();
}

Count
Tage::lastPredictCollisions() const
{
    return pendingStep();
}

std::size_t
Tage::bankEntries(unsigned b) const
{
    bpsim_assert(b < numBanks, "bank out of range");
    return banks[b].pred.entries();
}

BitCount
Tage::bankHistoryBits(unsigned b) const
{
    bpsim_assert(b < numBanks, "bank out of range");
    return historyLengths[b];
}

std::size_t
Tage::lastBankIndex(unsigned b) const
{
    bpsim_assert(b < numBanks, "bank out of range");
    return last.idx[b];
}

std::uint8_t
Tage::lastBankTag(unsigned b) const
{
    bpsim_assert(b < numBanks, "bank out of range");
    return last.tag[b];
}

bool
Tage::lastBankHit(unsigned b) const
{
    bpsim_assert(b < numBanks, "bank out of range");
    return last.hit[b];
}

std::uint8_t
Tage::tagAt(unsigned b, std::size_t idx) const
{
    bpsim_assert(b < numBanks, "bank out of range");
    bpsim_assert(idx < banks[b].tags.size(), "index out of range");
    return banks[b].tags[idx];
}

std::uint8_t
Tage::usefulAt(unsigned b, std::size_t idx) const
{
    bpsim_assert(b < numBanks, "bank out of range");
    bpsim_assert(idx < banks[b].useful.size(), "index out of range");
    return banks[b].useful[idx];
}

const FoldedHistory &
Tage::bankIndexFold(unsigned b) const
{
    bpsim_assert(b < numBanks, "bank out of range");
    return banks[b].idxFold;
}

void
Tage::allocate(bool taken)
{
    int victim = -1;
    for (unsigned b = last.provider + 1; b < numBanks; ++b) {
        if (banks[b].useful[last.idx[b]] == 0) {
            victim = static_cast<int>(b);
            break;
        }
    }
    if (victim < 0) {
        // Every candidate is protected: decay them all so a later
        // misprediction can get through.
        for (unsigned b = last.provider + 1; b < numBanks; ++b) {
            std::uint8_t &useful = banks[b].useful[last.idx[b]];
            useful -= useful > 0 ? 1 : 0;
        }
        return;
    }
    Bank &bank = banks[victim];
    const std::size_t idx = last.idx[victim];
    bank.tags[idx] = last.tag[victim];
    bank.useful[idx] = 0;
    bank.pred.entry(idx).set(
        SatCounter::weak(predBits, taken).value());
    ++allocations;
}

void
Tage::ageUseful()
{
    for (Bank &bank : banks) {
        for (std::uint8_t &useful : bank.useful)
            useful >>= 1;
    }
    updatesSinceAging = 0;
    ++agingEvents;
}

BPSIM_REGISTER_PREDICTOR(
    tage,
    PredictorInfo{
        .name = "tage",
        .description = "tagged-geometric: bimodal base + 4 tagged "
                       "banks at history lengths 10/20/40/80",
        .make =
            [](std::size_t bytes) {
                return std::make_unique<Tage>(bytes);
            },
        .paperKind = false,
        .kernelCapable = true,
    })

} // namespace bpsim
