/**
 * @file
 * Alpha 21264-style tournament predictor (extension).
 *
 * The paper comes out of the Alpha Development Group, so the
 * production Alpha predictor is the natural sixth scheme to compare
 * against: a local component (per-branch history table feeding a
 * table of 3-bit counters) and a global component (ghist-indexed
 * 2-bit counters), arbitrated by a ghist-indexed choice table.
 *
 * Sizing keeps the 21264's table ratios (local-history entries =
 * global entries / 4, 10-bit local histories, 3-bit local counters):
 * the canonical 21264 configuration (1K x 10b + 1K x 3b + 4K x 2b +
 * 4K x 2b = 3712 bytes) corresponds to a ~4 KB budget here, and other
 * budgets scale the tables by powers of two.
 */

#ifndef BPSIM_PREDICTOR_TOURNAMENT_HH
#define BPSIM_PREDICTOR_TOURNAMENT_HH

#include <cstddef>
#include <vector>

#include "predictor/counter_table.hh"
#include "predictor/global_history.hh"
#include "predictor/predictor.hh"

namespace bpsim
{

/** Local/global tournament predictor. */
class Tournament : public BranchPredictor
{
  public:
    /** @param size_bytes total budget across all four structures. */
    explicit Tournament(std::size_t size_bytes);

    bool predict(Addr pc) override;
    void update(Addr pc, bool taken) override;
    void updateHistory(bool taken) override;
    void reset() override;
    std::size_t sizeBytes() const override;
    std::string name() const override { return "tournament"; }
    CollisionStats collisionStats() const override;
    void clearCollisionStats() override;
    Count lastPredictCollisions() const override;

    void
    attachAliasSink(ContextAliasSink *sink) override
    {
        localCounters.setAliasSink(sink);
        global.setAliasSink(sink);
        choice.setAliasSink(sink);
    }

    /** Entries in the per-branch local history table. */
    std::size_t localHistoryEntries() const
    {
        return localHistories.size();
    }

    /** Entries in each of the global and choice tables. */
    std::size_t globalEntries() const { return global.entries(); }

  private:
    std::size_t localHistIndex(Addr pc) const;

    /** Bits of local history kept per branch. */
    static constexpr BitCount localHistoryBits = 10;

    std::vector<std::uint16_t> localHistories;
    CounterTable localCounters; ///< 3-bit, indexed by local history
    CounterTable global;        ///< 2-bit, indexed by ghist
    CounterTable choice;        ///< 2-bit, indexed by ghist
    GlobalHistory history;

    // Lookup state latched by predict() for update().
    std::size_t lastLocalHistIdx = 0;
    std::size_t lastLocalIdx = 0;
    std::size_t lastGlobalIdx = 0;
    bool lastLocalPred = false;
    bool lastGlobalPred = false;
    bool lastChoseGlobal = false;
    bool lastPrediction = false;
};

} // namespace bpsim

#endif // BPSIM_PREDICTOR_TOURNAMENT_HH
