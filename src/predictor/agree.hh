/**
 * @file
 * The agree predictor (Sprangle, Chappell, Alsup & Patt, ISCA 1997),
 * discussed in §3 of the paper as the main *dynamic* alternative for
 * converting destructive aliasing into constructive aliasing.
 *
 * Each branch carries a "bias bit" — its predicted steady direction,
 * set the first time the branch executes (the original paper's
 * simplest policy; a compiler could also set it from a profile). The
 * gshare-indexed counter table then predicts whether the branch will
 * *agree* with its bias bit rather than whether it is taken. Two
 * branches sharing a counter usually both agree with their own bias
 * bits, so the shared counter trains in one direction: the collision
 * becomes constructive.
 *
 * Implemented here as an extension for comparison against the
 * paper's static scheme; it is not part of allPredictorKinds() (the
 * paper's five simulated schemes) but is constructible through the
 * factory as "agree".
 */

#ifndef BPSIM_PREDICTOR_AGREE_HH
#define BPSIM_PREDICTOR_AGREE_HH

#include <cstddef>
#include <unordered_map>

#include "predictor/counter_table.hh"
#include "predictor/global_history.hh"
#include "predictor/predictor.hh"

namespace bpsim
{

/** Gshare-indexed agree predictor with first-time bias bits. */
class Agree : public BranchPredictor
{
  public:
    /**
     * @param size_bytes   counter-table budget; the per-branch bias
     *                     bits are architectural state (they ride in
     *                     the instruction/BTB entry, like the paper's
     *                     static hint bits) and are not counted
     * @param counter_bits agree-counter width (default 2)
     */
    explicit Agree(std::size_t size_bytes, BitCount counter_bits = 2);

    bool predict(Addr pc) override;
    void update(Addr pc, bool taken) override;
    void updateHistory(bool taken) override;
    void reset() override;
    std::size_t sizeBytes() const override;
    std::string name() const override { return "agree"; }
    CollisionStats collisionStats() const override;
    void clearCollisionStats() override;
    Count lastPredictCollisions() const override;

    void
    attachAliasSink(ContextAliasSink *sink) override
    {
        table.setAliasSink(sink);
    }

    /** Number of branches with an assigned bias bit. */
    std::size_t biasBitCount() const { return biasBits.size(); }

  private:
    std::size_t index(Addr pc) const;

    CounterTable table;
    GlobalHistory history;
    std::unordered_map<Addr, bool> biasBits;

    std::size_t lastIndex = 0;
    bool lastBias = false;
    bool lastHadBias = false;
};

} // namespace bpsim

#endif // BPSIM_PREDICTOR_AGREE_HH
