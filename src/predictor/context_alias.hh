/**
 * @file
 * Per-context-pair aliasing attribution for shared-predictor
 * scenarios.
 *
 * Multi-context scenarios place each member workload in its own PC
 * space (context c's branches live at `c << contextPcShift`), so a
 * branch address identifies its context for free. A counter table's
 * per-entry tag holds the PC of the entry's previous occupant, which
 * means every detected collision already names both parties: the
 * *victim* is the context doing the lookup, the *aggressor* the
 * context whose branch last wrote the entry. The sink below folds
 * those pairs into an NxN interference matrix with the same
 * constructive/destructive split CollisionStats keeps in aggregate.
 *
 * Flush protocol: tables note() collisions during predict and the
 * first classify() of the update round flushes every pending pair
 * with that round's outcome. All tables of one predictor classify a
 * round with the same correctness bit, so the pooled flush buckets
 * each pair exactly as the owning table's own CollisionStats does;
 * later classify() calls in the same round see an empty pending list
 * and are no-ops. clear() mirrors CounterTable::clearStats() so the
 * warmup boundary resets attribution alongside the aggregate split.
 */

#ifndef BPSIM_PREDICTOR_CONTEXT_ALIAS_HH
#define BPSIM_PREDICTOR_CONTEXT_ALIAS_HH

#include <cstdint>
#include <vector>

#include "support/types.hh"

namespace bpsim
{

/**
 * Bit position of the context id inside a scenario PC. Synthetic
 * program PCs start near 2^32 and advance a few bytes per site, so
 * bits [40, 64) are always zero for a plain program — context 0 keeps
 * its member's PCs byte-identical, which is what makes a one-context
 * scenario bit-identical to the per-cell path.
 */
inline constexpr unsigned contextPcShift = 40;

/** Base address of context @p context's PC space. */
constexpr Addr
contextPcBase(std::size_t context)
{
    return static_cast<Addr>(context) << contextPcShift;
}

/** The context owning @p pc (0 for plain, un-rebased programs). */
constexpr std::size_t
contextOfPc(Addr pc)
{
    return static_cast<std::size_t>(pc >> contextPcShift);
}

/** One (victim, aggressor) cell of the interference matrix. */
struct ContextAliasCell
{
    /** Collisions where the victim looked up an entry the aggressor
     * had tagged. Superset of the classified counts below; the
     * difference is neutral (prediction unaffected). */
    Count collisions = 0;

    /** Collisions followed by a correct prediction. */
    Count constructive = 0;

    /** Collisions followed by a misprediction. */
    Count destructive = 0;
};

/**
 * Pooled per-context-pair collision accounting for one predictor.
 * Attached to every CounterTable of the predictor under evaluation;
 * not thread-safe (each simulation owns its predictor and sink).
 */
class ContextAliasSink
{
  public:
    explicit ContextAliasSink(std::size_t contexts)
        : n(contexts), matrix(contexts * contexts)
    {
        pending.reserve(8);
    }

    std::size_t contexts() const { return n; }

    /** Record a collision: @p pc collided with an entry last tagged
     * by @p tag. Out-of-range contexts are dropped defensively. */
    void
    note(Addr pc, Addr tag)
    {
        const std::size_t victim = contextOfPc(pc);
        const std::size_t aggressor = contextOfPc(tag);
        if (victim >= n || aggressor >= n)
            return;
        const std::size_t cell = victim * n + aggressor;
        ++matrix[cell].collisions;
        pending.push_back(static_cast<std::uint32_t>(cell));
    }

    /** Bucket every pending collision by this round's outcome. */
    void
    classify(bool correct)
    {
        for (const std::uint32_t cell : pending) {
            if (correct)
                ++matrix[cell].constructive;
            else
                ++matrix[cell].destructive;
        }
        pending.clear();
    }

    /** Zero all counts (warmup boundary, predictor reset). */
    void
    clear()
    {
        for (ContextAliasCell &cell : matrix)
            cell = ContextAliasCell{};
        pending.clear();
    }

    /** Cell for (@p victim, @p aggressor); no bounds check. */
    const ContextAliasCell &
    cell(std::size_t victim, std::size_t aggressor) const
    {
        return matrix[victim * n + aggressor];
    }

    /** Row-major (victim-major) NxN matrix. */
    const std::vector<ContextAliasCell> &cells() const
    {
        return matrix;
    }

  private:
    std::size_t n;
    std::vector<ContextAliasCell> matrix;

    /** Collisions noted since the last classify (cell indices). */
    std::vector<std::uint32_t> pending;
};

} // namespace bpsim

#endif // BPSIM_PREDICTOR_CONTEXT_ALIAS_HH
