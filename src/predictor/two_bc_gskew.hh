/**
 * @file
 * The 2bcgskew predictor (Seznec & Michaud [2]).
 *
 * Structure per the paper's §2 description: a bimodal bank (BIM) that
 * is both a stand-alone component and a vote in the e-gskew component;
 * two gshare-style banks (G0, G1) with skewed indexing functions; the
 * e-gskew prediction is the majority of {BIM, G0, G1}; a gshare-
 * indexed meta bank chooses between the bimodal prediction and the
 * majority vote. Partial update policy:
 *
 *  - on a bad overall prediction all three voting banks train;
 *  - on a correct one only the banks that participated in the correct
 *    prediction train;
 *  - the meta bank trains only when the two components disagree,
 *    toward whichever was correct.
 */

#ifndef BPSIM_PREDICTOR_TWO_BC_GSKEW_HH
#define BPSIM_PREDICTOR_TWO_BC_GSKEW_HH

#include <cstddef>

#include "predictor/counter_table.hh"
#include "predictor/global_history.hh"
#include "predictor/predictor.hh"
#include "support/bits.hh"
#include "support/skew.hh"

namespace bpsim
{

/**
 * 2bcgskew hybrid predictor; four equal banks of 2-bit counters.
 *
 * The inline *Step methods are the non-virtual per-branch protocol
 * used by the devirtualized replay kernels; the virtual interface
 * forwards to them.
 */
class TwoBcGskew : public BranchPredictor
{
  public:
    /**
     * @param size_bytes   total budget across the four banks
     * @param hist_g0      history bits for bank G0 (0 = auto: half
     *                     the bank index width)
     * @param hist_g1      history bits for bank G1 (0 = auto: the
     *                     bank index width)
     * @param hist_meta    history bits for the meta bank (0 = auto:
     *                     half the bank index width)
     *
     * The auto defaults implement the paper's "best history lengths
     * per size" selection: a short-history and a long-history skewed
     * bank; the ablation bench sweeps these.
     */
    explicit TwoBcGskew(std::size_t size_bytes, BitCount hist_g0 = 0,
                        BitCount hist_g1 = 0, BitCount hist_meta = 0);

    bool predict(Addr pc) override;
    void update(Addr pc, bool taken) override;
    void updateHistory(bool taken) override;
    void reset() override;
    std::size_t sizeBytes() const override;
    std::string name() const override { return "2bcgskew"; }
    CollisionStats collisionStats() const override;
    void clearCollisionStats() override;
    Count lastPredictCollisions() const override;

    void
    attachAliasSink(ContextAliasSink *sink) override
    {
        bim.setAliasSink(sink);
        g0.setAliasSink(sink);
        g1.setAliasSink(sink);
        meta.setAliasSink(sink);
    }

    /** Configured history lengths (G0, G1, meta). */
    BitCount histG0Bits() const { return histG0; }
    BitCount histG1Bits() const { return histG1; }
    BitCount histMetaBits() const { return histMeta; }

    /** Non-virtual predict(). */
    template <bool Track>
    bool
    predictStep(Addr pc)
    {
        last.bimIdx = bimIndex(pc);
        last.g0Idx = skewedIndex(0, pc, histG0);
        last.g1Idx = skewedIndex(1, pc, histG1);
        last.metaIdx = metaIndex(pc);

        last.bimPred = bim.lookup<Track>(last.bimIdx, pc).taken();
        last.g0Pred = g0.lookup<Track>(last.g0Idx, pc).taken();
        last.g1Pred = g1.lookup<Track>(last.g1Idx, pc).taken();

        const int votes = (last.bimPred ? 1 : 0) +
                          (last.g0Pred ? 1 : 0) +
                          (last.g1Pred ? 1 : 0);
        last.majority = votes >= 2;

        last.useMajority = meta.lookup<Track>(last.metaIdx, pc).taken();
        last.finalPred = last.useMajority ? last.majority : last.bimPred;
        return last.finalPred;
    }

    /** Non-virtual update(): the paper's partial-update policy. */
    template <bool Track>
    void
    updateStep(Addr pc, bool taken)
    {
        (void)pc;
        const bool correct = last.finalPred == taken;

        if constexpr (Track) {
            bim.classify(correct);
            g0.classify(correct);
            g1.classify(correct);
            meta.classify(correct);
        }

        if (!correct) {
            // Bad overall prediction: retrain all three voting banks.
            bim.entry(last.bimIdx).train(taken);
            g0.entry(last.g0Idx).train(taken);
            g1.entry(last.g1Idx).train(taken);
        } else if (last.useMajority) {
            // Correct via the majority vote: strengthen only the
            // banks that voted with the (correct) majority.
            if (last.bimPred == taken)
                bim.entry(last.bimIdx).train(taken);
            if (last.g0Pred == taken)
                g0.entry(last.g0Idx).train(taken);
            if (last.g1Pred == taken)
                g1.entry(last.g1Idx).train(taken);
        } else {
            // Correct via the bimodal component alone.
            bim.entry(last.bimIdx).train(taken);
        }

        // Meta trains only when the components disagree, toward
        // whichever was correct.
        if (last.majority != last.bimPred)
            meta.entry(last.metaIdx).train(last.majority == taken);
    }

    /** Non-virtual updateHistory(). */
    void historyStep(bool taken) { history.push(taken); }

    /** Non-virtual lastPredictCollisions(). */
    Count
    pendingStep() const
    {
        return bim.pending() + g0.pending() + g1.pending() +
               meta.pending();
    }

  private:
    template <typename> friend struct BatchTraits;

    std::size_t
    bimIndex(Addr pc) const
    {
        return bim.indexFor(pc / instructionBytes);
    }

    std::size_t
    skewedIndex(unsigned bank, Addr pc, BitCount hist_bits) const
    {
        const BitCount bits = g0.indexBits();
        const std::uint64_t v1 = foldBits(pc / instructionBytes, bits);
        const std::uint64_t v2 =
            foldBits(history.recent(hist_bits), bits);
        return static_cast<std::size_t>(skewIndex(bank, v1, v2, bits));
    }

    std::size_t
    metaIndex(Addr pc) const
    {
        const BitCount bits = meta.indexBits();
        const std::uint64_t v1 = foldBits(pc / instructionBytes, bits);
        const std::uint64_t v2 = foldBits(history.recent(histMeta), bits);
        return meta.indexFor(v1 ^ v2);
    }

    CounterTable bim;
    CounterTable g0;
    CounterTable g1;
    CounterTable meta;
    GlobalHistory history;

    BitCount histG0;
    BitCount histG1;
    BitCount histMeta;

    // Lookup state latched by predict() for update().
    struct LookupState
    {
        std::size_t bimIdx = 0;
        std::size_t g0Idx = 0;
        std::size_t g1Idx = 0;
        std::size_t metaIdx = 0;
        bool bimPred = false;
        bool g0Pred = false;
        bool g1Pred = false;
        bool majority = false;
        bool useMajority = false;
        bool finalPred = false;
    } last;
};

} // namespace bpsim

#endif // BPSIM_PREDICTOR_TWO_BC_GSKEW_HH
