/**
 * @file
 * The 2bcgskew predictor (Seznec & Michaud [2]).
 *
 * Structure per the paper's §2 description: a bimodal bank (BIM) that
 * is both a stand-alone component and a vote in the e-gskew component;
 * two gshare-style banks (G0, G1) with skewed indexing functions; the
 * e-gskew prediction is the majority of {BIM, G0, G1}; a gshare-
 * indexed meta bank chooses between the bimodal prediction and the
 * majority vote. Partial update policy:
 *
 *  - on a bad overall prediction all three voting banks train;
 *  - on a correct one only the banks that participated in the correct
 *    prediction train;
 *  - the meta bank trains only when the two components disagree,
 *    toward whichever was correct.
 */

#ifndef BPSIM_PREDICTOR_TWO_BC_GSKEW_HH
#define BPSIM_PREDICTOR_TWO_BC_GSKEW_HH

#include <cstddef>

#include "predictor/counter_table.hh"
#include "predictor/global_history.hh"
#include "predictor/predictor.hh"

namespace bpsim
{

/** 2bcgskew hybrid predictor; four equal banks of 2-bit counters. */
class TwoBcGskew : public BranchPredictor
{
  public:
    /**
     * @param size_bytes   total budget across the four banks
     * @param hist_g0      history bits for bank G0 (0 = auto: half
     *                     the bank index width)
     * @param hist_g1      history bits for bank G1 (0 = auto: the
     *                     bank index width)
     * @param hist_meta    history bits for the meta bank (0 = auto:
     *                     half the bank index width)
     *
     * The auto defaults implement the paper's "best history lengths
     * per size" selection: a short-history and a long-history skewed
     * bank; the ablation bench sweeps these.
     */
    explicit TwoBcGskew(std::size_t size_bytes, BitCount hist_g0 = 0,
                        BitCount hist_g1 = 0, BitCount hist_meta = 0);

    bool predict(Addr pc) override;
    void update(Addr pc, bool taken) override;
    void updateHistory(bool taken) override;
    void reset() override;
    std::size_t sizeBytes() const override;
    std::string name() const override { return "2bcgskew"; }
    CollisionStats collisionStats() const override;
    void clearCollisionStats() override;
    Count lastPredictCollisions() const override;

    /** Configured history lengths (G0, G1, meta). */
    BitCount histG0Bits() const { return histG0; }
    BitCount histG1Bits() const { return histG1; }
    BitCount histMetaBits() const { return histMeta; }

  private:
    std::size_t bimIndex(Addr pc) const;
    std::size_t skewedIndex(unsigned bank, Addr pc,
                            BitCount hist_bits) const;
    std::size_t metaIndex(Addr pc) const;

    CounterTable bim;
    CounterTable g0;
    CounterTable g1;
    CounterTable meta;
    GlobalHistory history;

    BitCount histG0;
    BitCount histG1;
    BitCount histMeta;

    // Lookup state latched by predict() for update().
    struct LookupState
    {
        std::size_t bimIdx = 0;
        std::size_t g0Idx = 0;
        std::size_t g1Idx = 0;
        std::size_t metaIdx = 0;
        bool bimPred = false;
        bool g0Pred = false;
        bool g1Pred = false;
        bool majority = false;
        bool useMajority = false;
        bool finalPred = false;
    } last;
};

} // namespace bpsim

#endif // BPSIM_PREDICTOR_TWO_BC_GSKEW_HH
