/**
 * @file
 * Construction of predictors by kind or by "name:bytes" spec string.
 */

#ifndef BPSIM_PREDICTOR_FACTORY_HH
#define BPSIM_PREDICTOR_FACTORY_HH

#include <memory>
#include <string>
#include <typeinfo>
#include <vector>

#include "predictor/bimodal.hh"
#include "predictor/bimode.hh"
#include "predictor/ghist.hh"
#include "predictor/gshare.hh"
#include "predictor/predictor.hh"
#include "predictor/two_bc_gskew.hh"

namespace bpsim
{

/** The five dynamic prediction schemes simulated in the paper. */
enum class PredictorKind
{
    Bimodal,
    Ghist,
    Gshare,
    BiMode,
    TwoBcGskew,
};

/** All kinds in the paper's Figures 7-12 order. */
const std::vector<PredictorKind> &allPredictorKinds();

/** Scheme name as used in the paper ("bimodal", "ghist", ...). */
std::string predictorKindName(PredictorKind kind);

/** Parse a scheme name; fatal() on an unknown one. */
PredictorKind predictorKindFromName(const std::string &name);

/** Build a predictor of @p kind with a @p size_bytes budget. */
std::unique_ptr<BranchPredictor> makePredictor(PredictorKind kind,
                                               std::size_t size_bytes);

/**
 * Build from a spec string "name:bytes", e.g. "gshare:16384".
 * A bare name defaults to 8 KB.
 */
std::unique_ptr<BranchPredictor> makePredictor(const std::string &spec);

/**
 * Dispatch on the concrete type of @p predictor: invoke @p visitor
 * with a reference to the predictor as its exact concrete class, for
 * each of the paper's five simulated schemes. This is the single
 * type-resolution point of the devirtualized replay kernels (see
 * core/engine simulateReplay): one typeid comparison per simulation
 * run instead of three virtual calls per branch.
 *
 * Matching is on the exact dynamic type, not an is-a relationship,
 * because a subclass could override the virtual protocol in ways the
 * base class's inline *Step methods would silently bypass.
 *
 * @return true if the concrete type was one of the five kinds and the
 *         visitor ran; false (visitor untouched) for anything else,
 *         e.g. the extension predictors or a custom makeDynamic
 *         factory, which then take the virtual fallback path.
 */
template <typename Visitor>
bool
visitPredictor(BranchPredictor &predictor, Visitor &&visitor)
{
    const std::type_info &type = typeid(predictor);
    if (type == typeid(Bimodal)) {
        visitor(static_cast<Bimodal &>(predictor));
    } else if (type == typeid(Ghist)) {
        visitor(static_cast<Ghist &>(predictor));
    } else if (type == typeid(Gshare)) {
        visitor(static_cast<Gshare &>(predictor));
    } else if (type == typeid(BiMode)) {
        visitor(static_cast<BiMode &>(predictor));
    } else if (type == typeid(TwoBcGskew)) {
        visitor(static_cast<TwoBcGskew &>(predictor));
    } else {
        return false;
    }
    return true;
}

} // namespace bpsim

#endif // BPSIM_PREDICTOR_FACTORY_HH
