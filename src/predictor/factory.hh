/**
 * @file
 * Construction of predictors by kind, name or "name:bytes" spec, and
 * the devirtualized-kernel dispatch list.
 *
 * Construction is backed by the self-registering PredictorRegistry
 * (registry.hh): every predictor's .cc registers its own recipe, so
 * the name-based factory, the CLI listing and the golden suite never
 * enumerate predictors by hand. The PredictorKind enum survives for
 * the paper's five simulated schemes, which the figure benches
 * address positionally.
 */

#ifndef BPSIM_PREDICTOR_FACTORY_HH
#define BPSIM_PREDICTOR_FACTORY_HH

#include <memory>
#include <string>
#include <typeinfo>
#include <vector>

#include "predictor/bimodal.hh"
#include "predictor/bimode.hh"
#include "predictor/ghist.hh"
#include "predictor/gshare.hh"
#include "predictor/perceptron.hh"
#include "predictor/predictor.hh"
#include "predictor/tage.hh"
#include "predictor/two_bc_gskew.hh"

namespace bpsim
{

/** The five dynamic prediction schemes simulated in the paper. */
enum class PredictorKind
{
    Bimodal,
    Ghist,
    Gshare,
    BiMode,
    TwoBcGskew,
};

/** All kinds in the paper's Figures 7-12 order. */
const std::vector<PredictorKind> &allPredictorKinds();

/** Scheme name as used in the paper ("bimodal", "ghist", ...). */
std::string predictorKindName(PredictorKind kind);

/**
 * Parse a paper-scheme name; raises a config_invalid ErrorException
 * listing the registered names on an unknown one.
 */
PredictorKind predictorKindFromName(const std::string &name);

/** Build a predictor of @p kind with a @p size_bytes budget. */
std::unique_ptr<BranchPredictor> makePredictor(PredictorKind kind,
                                               std::size_t size_bytes);

/**
 * Build from a spec string "name:bytes", e.g. "gshare:16384", for
 * any registered predictor. A bare name uses the registration's
 * default budget. Unknown names and malformed sizes raise
 * config_invalid ErrorExceptions; the unknown-name message lists the
 * registered predictors.
 */
std::unique_ptr<BranchPredictor> makePredictor(const std::string &spec);

/**
 * The concrete predictor types the devirtualized replay kernels
 * dispatch to. A type listed here flows through visitPredictor into
 * the per-cell replay kernels and the fused gang kernels with zero
 * further edits; the batched SIMD kernels additionally require a
 * BatchTraits/hasBatchKernels specialization (core/batch_kernels.hh)
 * and otherwise fall back to the record-at-a-time reference kernels.
 */
#define BPSIM_KERNEL_PREDICTORS(X)                                     \
    X(Bimodal)                                                         \
    X(Ghist)                                                           \
    X(Gshare)                                                          \
    X(BiMode)                                                          \
    X(TwoBcGskew)                                                      \
    X(Tage)                                                            \
    X(HashedPerceptron)

/**
 * Dispatch on the concrete type of @p predictor: invoke @p visitor
 * with a reference to the predictor as its exact concrete class, for
 * each type in BPSIM_KERNEL_PREDICTORS. This is the single
 * type-resolution point of the devirtualized replay kernels (see
 * core/engine simulateReplay): one typeid comparison per simulation
 * run instead of three virtual calls per branch.
 *
 * Matching is on the exact dynamic type, not an is-a relationship,
 * because a subclass could override the virtual protocol in ways the
 * base class's inline *Step methods would silently bypass.
 *
 * @return true if the concrete type was listed and the visitor ran;
 *         false (visitor untouched) for anything else, e.g. the
 *         extension predictors or a custom makeDynamic factory,
 *         which then take the virtual fallback path.
 */
template <typename Visitor>
bool
visitPredictor(BranchPredictor &predictor, Visitor &&visitor)
{
    const std::type_info &type = typeid(predictor);
#define BPSIM_VISIT_PREDICTOR(P)                                       \
    if (type == typeid(P)) {                                           \
        visitor(static_cast<P &>(predictor));                          \
        return true;                                                   \
    }
    BPSIM_KERNEL_PREDICTORS(BPSIM_VISIT_PREDICTOR)
#undef BPSIM_VISIT_PREDICTOR
    return false;
}

} // namespace bpsim

#endif // BPSIM_PREDICTOR_FACTORY_HH
