/**
 * @file
 * Construction of predictors by kind or by "name:bytes" spec string.
 */

#ifndef BPSIM_PREDICTOR_FACTORY_HH
#define BPSIM_PREDICTOR_FACTORY_HH

#include <memory>
#include <string>
#include <vector>

#include "predictor/predictor.hh"

namespace bpsim
{

/** The five dynamic prediction schemes simulated in the paper. */
enum class PredictorKind
{
    Bimodal,
    Ghist,
    Gshare,
    BiMode,
    TwoBcGskew,
};

/** All kinds in the paper's Figures 7-12 order. */
const std::vector<PredictorKind> &allPredictorKinds();

/** Scheme name as used in the paper ("bimodal", "ghist", ...). */
std::string predictorKindName(PredictorKind kind);

/** Parse a scheme name; fatal() on an unknown one. */
PredictorKind predictorKindFromName(const std::string &name);

/** Build a predictor of @p kind with a @p size_bytes budget. */
std::unique_ptr<BranchPredictor> makePredictor(PredictorKind kind,
                                               std::size_t size_bytes);

/**
 * Build from a spec string "name:bytes", e.g. "gshare:16384".
 * A bare name defaults to 8 KB.
 */
std::unique_ptr<BranchPredictor> makePredictor(const std::string &spec);

} // namespace bpsim

#endif // BPSIM_PREDICTOR_FACTORY_HH
