#include "predictor/tournament.hh"

#include "predictor/registry.hh"

#include "support/bits.hh"
#include "support/logging.hh"

namespace bpsim
{

namespace
{

/**
 * Largest power-of-two global/choice entry count M whose full
 * configuration (M/4 local histories of 10 bits, 1024 3-bit local
 * counters, M 2-bit global + M 2-bit choice counters) fits the byte
 * budget.
 */
std::size_t
globalEntriesForBudget(std::size_t size_bytes)
{
    bpsim_assert(size_bytes >= 512, "tournament budget too small");
    const std::size_t budget_bits = size_bytes * 8;
    std::size_t entries = 64;
    for (;;) {
        const std::size_t next = entries * 2;
        const std::size_t bits =
            (next / 4) * 10 + 1024 * 3 + next * 2 + next * 2;
        if (bits > budget_bits)
            return entries;
        entries = next;
    }
}

} // namespace

Tournament::Tournament(std::size_t size_bytes)
    : localHistories(globalEntriesForBudget(size_bytes) / 4, 0),
      localCounters(1024, 3, SatCounter::weak(3, false).value()),
      global(globalEntriesForBudget(size_bytes), 2,
             SatCounter::weak(2, false).value()),
      choice(global.entries(), 2, SatCounter::weak(2, true).value()),
      history(global.indexBits())
{
}

std::size_t
Tournament::localHistIndex(Addr pc) const
{
    return static_cast<std::size_t>((pc / instructionBytes) &
                                    (localHistories.size() - 1));
}

bool
Tournament::predict(Addr pc)
{
    lastLocalHistIdx = localHistIndex(pc);
    lastLocalIdx = localHistories[lastLocalHistIdx] &
                   mask(localCounters.indexBits());
    lastGlobalIdx = static_cast<std::size_t>(history.value());

    lastLocalPred = localCounters.lookup(lastLocalIdx, pc).taken();
    lastGlobalPred = global.lookup(lastGlobalIdx, pc).taken();
    lastChoseGlobal = choice.lookup(lastGlobalIdx, pc).taken();
    lastPrediction = lastChoseGlobal ? lastGlobalPred : lastLocalPred;
    return lastPrediction;
}

void
Tournament::update(Addr pc, bool taken)
{
    (void)pc;
    const bool correct = lastPrediction == taken;
    localCounters.classify(correct);
    global.classify(correct);
    choice.classify(correct);

    // Both components always train (21264 policy).
    localCounters.at(lastLocalIdx).train(taken);
    global.at(lastGlobalIdx).train(taken);

    // The choice trains only when the components disagree, toward
    // whichever was right.
    if (lastLocalPred != lastGlobalPred)
        choice.at(lastGlobalIdx).train(lastGlobalPred == taken);

    // Per-branch local history advances with the outcome.
    localHistories[lastLocalHistIdx] = static_cast<std::uint16_t>(
        ((localHistories[lastLocalHistIdx] << 1) | (taken ? 1 : 0)) &
        mask(localHistoryBits));
}

void
Tournament::updateHistory(bool taken)
{
    history.push(taken);
}

void
Tournament::reset()
{
    std::fill(localHistories.begin(), localHistories.end(), 0);
    localCounters.reset();
    global.reset();
    choice.reset();
    history.clear();
}

std::size_t
Tournament::sizeBytes() const
{
    const std::size_t bits = localHistories.size() * localHistoryBits +
                             localCounters.entries() * 3 +
                             global.entries() * 2 +
                             choice.entries() * 2;
    return bits / 8;
}

CollisionStats
Tournament::collisionStats() const
{
    CollisionStats stats;
    stats += localCounters.stats();
    stats += global.stats();
    stats += choice.stats();
    return stats;
}

void
Tournament::clearCollisionStats()
{
    localCounters.clearStats();
    global.clearStats();
    choice.clearStats();
}

Count
Tournament::lastPredictCollisions() const
{
    return localCounters.pending() + global.pending() +
           choice.pending();
}

BPSIM_REGISTER_PREDICTOR(
    tournament,
    PredictorInfo{
        .name = "tournament",
        .description = "local/global tournament with choice table",
        .make =
            [](std::size_t bytes) {
                return std::make_unique<Tournament>(bytes);
            },
        .paperKind = false,
        .kernelCapable = false,
    })

} // namespace bpsim
