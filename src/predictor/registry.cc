#include "predictor/registry.hh"

#include <algorithm>
#include <cstdlib>

#include "support/logging.hh"

namespace bpsim
{

PredictorRegistry &
PredictorRegistry::instance()
{
    static PredictorRegistry registry;
    return registry;
}

void
PredictorRegistry::add(PredictorInfo info)
{
    bpsim_assert(!info.name.empty(), "predictor registered without a name");
    bpsim_assert(static_cast<bool>(info.make),
                 "predictor '", info.name, "' registered without make()");
    bpsim_assert(find(info.name) == nullptr,
                 "predictor '", info.name, "' registered twice");
    if (info.goldenFile.empty())
        info.goldenFile = info.name;
    entries.push_back(std::move(info));
}

const PredictorInfo *
PredictorRegistry::find(const std::string &name) const
{
    for (const PredictorInfo &info : entries) {
        if (info.name == name)
            return &info;
    }
    return nullptr;
}

std::vector<const PredictorInfo *>
PredictorRegistry::all() const
{
    std::vector<const PredictorInfo *> sorted;
    sorted.reserve(entries.size());
    for (const PredictorInfo &info : entries)
        sorted.push_back(&info);
    std::sort(sorted.begin(), sorted.end(),
              [](const PredictorInfo *a, const PredictorInfo *b) {
                  return a->name < b->name;
              });
    return sorted;
}

std::vector<std::string>
PredictorRegistry::names() const
{
    std::vector<std::string> result;
    result.reserve(entries.size());
    for (const PredictorInfo *info : all())
        result.push_back(info->name);
    return result;
}

std::string
PredictorRegistry::namesJoined() const
{
    std::string joined;
    for (const std::string &name : names()) {
        if (!joined.empty())
            joined += ", ";
        joined += name;
    }
    return joined;
}

Result<ParsedPredictorSpec>
parsePredictorSpec(const std::string &spec)
{
    const auto colon = spec.find(':');
    const std::string name = spec.substr(0, colon);

    const PredictorInfo *info = PredictorRegistry::instance().find(name);
    if (info == nullptr) {
        return Error(ErrorCode::ConfigInvalid,
                     "unknown predictor '" + name + "' (registered: " +
                         PredictorRegistry::instance().namesJoined() +
                         ")");
    }

    std::size_t bytes = info->defaultBytes;
    if (colon != std::string::npos) {
        const std::string size_str = spec.substr(colon + 1);
        char *end = nullptr;
        bytes = std::strtoull(size_str.c_str(), &end, 10);
        if (size_str.empty() || end == nullptr || *end != '\0' ||
            bytes == 0) {
            return Error(ErrorCode::ConfigInvalid,
                         "bad predictor size in spec '" + spec + "'");
        }
    }
    return ParsedPredictorSpec{info, bytes};
}

// Force-link anchors: one per registration translation unit, so the
// archive members carrying the registration statics are always pulled
// into any binary that links the registry (see BPSIM_REGISTER_PREDICTOR).
// This list is the single place that grows per predictor.
const void *bpsimPredictorAnchor_bimodal();
const void *bpsimPredictorAnchor_ghist();
const void *bpsimPredictorAnchor_gshare();
const void *bpsimPredictorAnchor_bimode();
const void *bpsimPredictorAnchor_twobcgskew();
const void *bpsimPredictorAnchor_agree();
const void *bpsimPredictorAnchor_tournament();
const void *bpsimPredictorAnchor_gselect();
const void *bpsimPredictorAnchor_yags();
const void *bpsimPredictorAnchor_ideal();
const void *bpsimPredictorAnchor_tage();
const void *bpsimPredictorAnchor_perceptron();

namespace
{

[[maybe_unused]] const void *const predictorAnchors[] = {
    bpsimPredictorAnchor_bimodal(),    bpsimPredictorAnchor_ghist(),
    bpsimPredictorAnchor_gshare(),     bpsimPredictorAnchor_bimode(),
    bpsimPredictorAnchor_twobcgskew(), bpsimPredictorAnchor_agree(),
    bpsimPredictorAnchor_tournament(), bpsimPredictorAnchor_gselect(),
    bpsimPredictorAnchor_yags(),       bpsimPredictorAnchor_ideal(),
    bpsimPredictorAnchor_tage(),       bpsimPredictorAnchor_perceptron(),
};

} // namespace

} // namespace bpsim
