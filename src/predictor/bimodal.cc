#include "predictor/bimodal.hh"

#include "support/bits.hh"
#include "predictor/table_size.hh"

namespace bpsim
{

Bimodal::Bimodal(std::size_t size_bytes, BitCount counter_bits)
    : table(entriesForBudget(size_bytes, counter_bits), counter_bits,
            SatCounter::weak(counter_bits, false).value())
{
}

std::size_t
Bimodal::index(Addr pc) const
{
    return (pc / instructionBytes) & mask(table.indexBits());
}

bool
Bimodal::predict(Addr pc)
{
    lastIndex = index(pc);
    return table.lookup(lastIndex, pc).taken();
}

void
Bimodal::update(Addr pc, bool taken)
{
    (void)pc;
    const bool correct = table.at(lastIndex).taken() == taken;
    table.classify(correct);
    table.at(lastIndex).train(taken);
}

void
Bimodal::updateHistory(bool)
{
    // Bimodal keeps no global history.
}

void
Bimodal::reset()
{
    table.reset();
}

std::size_t
Bimodal::sizeBytes() const
{
    return table.sizeBytes();
}

CollisionStats
Bimodal::collisionStats() const
{
    return table.stats();
}

void
Bimodal::clearCollisionStats()
{
    table.clearStats();
}

Count
Bimodal::lastPredictCollisions() const
{
    return table.pending();
}

} // namespace bpsim
