#include "predictor/bimodal.hh"

#include "predictor/registry.hh"

#include "predictor/table_size.hh"

namespace bpsim
{

Bimodal::Bimodal(std::size_t size_bytes, BitCount counter_bits)
    : table(entriesForBudget(size_bytes, counter_bits), counter_bits,
            SatCounter::weak(counter_bits, false).value())
{
}

bool
Bimodal::predict(Addr pc)
{
    return predictStep<true>(pc);
}

void
Bimodal::update(Addr pc, bool taken)
{
    updateStep<true>(pc, taken);
}

void
Bimodal::updateHistory(bool)
{
    // Bimodal keeps no global history.
}

void
Bimodal::reset()
{
    table.reset();
}

std::size_t
Bimodal::sizeBytes() const
{
    return table.sizeBytes();
}

CollisionStats
Bimodal::collisionStats() const
{
    return table.stats();
}

void
Bimodal::clearCollisionStats()
{
    table.clearStats();
}

Count
Bimodal::lastPredictCollisions() const
{
    return pendingStep();
}

BPSIM_REGISTER_PREDICTOR(
    bimodal,
    PredictorInfo{
        .name = "bimodal",
        .description = "per-branch PC-indexed counters (paper baseline)",
        .make =
            [](std::size_t bytes) {
                return std::make_unique<Bimodal>(bytes);
            },
        .paperKind = true,
        .kernelCapable = true,
        .batchCapable = true,
    })

} // namespace bpsim
