#include "predictor/gselect.hh"

#include "predictor/registry.hh"

#include "support/bits.hh"
#include "predictor/table_size.hh"

namespace bpsim
{

Gselect::Gselect(std::size_t size_bytes, BitCount history_bits,
                 BitCount counter_bits)
    : table(entriesForBudget(size_bytes, counter_bits), counter_bits,
            SatCounter::weak(counter_bits, false).value()),
      history(history_bits == 0
                  ? std::max(1u, table.indexBits() / 2)
                  : history_bits)
{
    bpsim_assert(history.width() < table.indexBits(),
                 "gselect history leaves no address bits");
}

std::size_t
Gselect::index(Addr pc) const
{
    return static_cast<std::size_t>(
        hashPcHistoryConcat(pc / instructionBytes, history.value(),
                            history.width(), table.indexBits()));
}

bool
Gselect::predict(Addr pc)
{
    lastIndex = index(pc);
    return table.lookup(lastIndex, pc).taken();
}

void
Gselect::update(Addr pc, bool taken)
{
    (void)pc;
    const bool correct = table.at(lastIndex).taken() == taken;
    table.classify(correct);
    table.at(lastIndex).train(taken);
}

void
Gselect::updateHistory(bool taken)
{
    history.push(taken);
}

void
Gselect::reset()
{
    table.reset();
    history.clear();
}

std::size_t
Gselect::sizeBytes() const
{
    return table.sizeBytes();
}

CollisionStats
Gselect::collisionStats() const
{
    return table.stats();
}

void
Gselect::clearCollisionStats()
{
    table.clearStats();
}

Count
Gselect::lastPredictCollisions() const
{
    return table.pending();
}

BPSIM_REGISTER_PREDICTOR(
    gselect,
    PredictorInfo{
        .name = "gselect",
        .description = "PC and history concatenated index (extension)",
        .make =
            [](std::size_t bytes) {
                return std::make_unique<Gselect>(bytes);
            },
        .paperKind = false,
        .kernelCapable = false,
    })

} // namespace bpsim
