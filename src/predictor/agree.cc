#include "predictor/agree.hh"

#include "predictor/registry.hh"

#include "support/bits.hh"
#include "predictor/table_size.hh"

namespace bpsim
{

Agree::Agree(std::size_t size_bytes, BitCount counter_bits)
    : table(entriesForBudget(size_bytes, counter_bits), counter_bits,
            // Power-on state: strongly "agree".
            static_cast<std::uint8_t>((1u << counter_bits) - 1)),
      history(table.indexBits())
{
}

std::size_t
Agree::index(Addr pc) const
{
    return static_cast<std::size_t>(hashPcHistoryXor(
        pc / instructionBytes, history.value(), table.indexBits()));
}

bool
Agree::predict(Addr pc)
{
    lastIndex = index(pc);
    const bool agree = table.lookup(lastIndex, pc).taken();

    const auto it = biasBits.find(pc);
    lastHadBias = it != biasBits.end();
    // Before the first execution assigns a bias bit, fall back to
    // backward-taken-style static default: predict not-taken.
    lastBias = lastHadBias ? it->second : false;
    return agree ? lastBias : !lastBias;
}

void
Agree::update(Addr pc, bool taken)
{
    if (!lastHadBias) {
        // First execution: latch the bias bit to the first outcome.
        biasBits.emplace(pc, taken);
        lastBias = taken;
    }
    const bool prediction_correct =
        (table.at(lastIndex).taken() ? lastBias : !lastBias) == taken;
    table.classify(prediction_correct);
    // Train toward "did the branch agree with its bias bit".
    table.at(lastIndex).train(taken == lastBias);
}

void
Agree::updateHistory(bool taken)
{
    history.push(taken);
}

void
Agree::reset()
{
    table.reset();
    history.clear();
    biasBits.clear();
}

std::size_t
Agree::sizeBytes() const
{
    return table.sizeBytes();
}

CollisionStats
Agree::collisionStats() const
{
    return table.stats();
}

void
Agree::clearCollisionStats()
{
    table.clearStats();
}

Count
Agree::lastPredictCollisions() const
{
    return table.pending();
}

BPSIM_REGISTER_PREDICTOR(
    agree,
    PredictorInfo{
        .name = "agree",
        .description = "agree predictor over a gshare table (extension)",
        .make =
            [](std::size_t bytes) {
                return std::make_unique<Agree>(bytes);
            },
        .paperKind = false,
        .kernelCapable = false,
    })

} // namespace bpsim
