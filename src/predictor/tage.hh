/**
 * @file
 * TAGE-style tagged-geometric predictor (Seznec & Michaud's PPM-like
 * layout; exemplar constants per SNIPPETS.md §3).
 *
 * A bimodal base table backs four partially tagged banks indexed by
 * geometrically growing history lengths (10/20/40/80). Each bank
 * entry carries a 3-bit prediction counter, an 8-bit tag and a 2-bit
 * useful counter. The prediction provider is the longest-history bank
 * whose tag matches, falling back to the base; the alternate
 * prediction is the next-longest match. On a misprediction a new
 * entry is allocated in a longer bank whose useful counter is zero
 * (decaying the useful counters of the candidates when none is free),
 * and useful counters age periodically so stale entries can be
 * reclaimed — the tag+useful mechanism is TAGE's own answer to the
 * destructive aliasing this paper attacks with static hints, which is
 * exactly why the scheme matrix gets re-run over it.
 */

#ifndef BPSIM_PREDICTOR_TAGE_HH
#define BPSIM_PREDICTOR_TAGE_HH

#include <array>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "predictor/counter_table.hh"
#include "predictor/long_history.hh"
#include "predictor/predictor.hh"
#include "support/bits.hh"

namespace bpsim
{

/**
 * Tagged-geometric predictor. The inline *Step methods are the
 * non-virtual per-branch protocol used by the devirtualized replay
 * kernels; the virtual interface forwards to them.
 */
class Tage : public BranchPredictor
{
  public:
    /** Tagged banks backing the bimodal base. */
    static constexpr unsigned numBanks = 4;

    /** Geometric history lengths, shortest bank first. */
    static constexpr std::array<BitCount, numBanks> historyLengths = {
        10, 20, 40, 80};

    /** Tag width per bank entry. */
    static constexpr BitCount tagBits = 8;

    /** Prediction counter widths (SNIPPETS.md §3: PRED_MAX 7). */
    static constexpr BitCount predBits = 3;

    /** Useful-counter width (saturates at 3). */
    static constexpr std::uint8_t usefulMax = 3;

    /**
     * @param size_bytes hardware budget, split evenly between the
     *                   base table and the tagged banks
     * @param age_period updates between useful-counter aging passes
     *                   (halving); tests shrink it to make aging
     *                   observable
     */
    explicit Tage(std::size_t size_bytes,
                  Count age_period = Count{1} << 18);

    bool predict(Addr pc) override;
    void update(Addr pc, bool taken) override;
    void updateHistory(bool taken) override;
    void reset() override;
    std::size_t sizeBytes() const override;
    std::string name() const override { return "tage"; }
    CollisionStats collisionStats() const override;
    void clearCollisionStats() override;
    Count lastPredictCollisions() const override;

    void
    attachAliasSink(ContextAliasSink *sink) override
    {
        base.setAliasSink(sink);
        for (Bank &bank : banks)
            bank.pred.setAliasSink(sink);
    }

    /** Non-virtual predict(); see class comment. */
    template <bool Track>
    bool
    predictStep(Addr pc)
    {
        const std::uint64_t pc_index = pc / instructionBytes;
        last.baseIdx = base.indexFor(pc_index);
        last.basePred = base.lookup<Track>(last.baseIdx, pc).taken();

        last.provider = -1;
        last.altPred = last.basePred;
        for (unsigned b = 0; b < numBanks; ++b) {
            Bank &bank = banks[b];
            last.idx[b] = bankIndex(b, pc_index);
            last.tag[b] = bankTag(b, pc_index);
            last.hit[b] = bank.tags[last.idx[b]] == last.tag[b];
            last.pred[b] =
                bank.pred.lookup<Track>(last.idx[b], pc).taken();
        }
        for (int b = numBanks - 1; b >= 0; --b) {
            if (last.hit[b]) {
                last.provider = b;
                break;
            }
        }
        if (last.provider >= 0) {
            for (int b = last.provider - 1; b >= 0; --b) {
                if (last.hit[b]) {
                    last.altPred = last.pred[b];
                    break;
                }
            }
            last.finalPred = last.pred[last.provider];
        } else {
            last.finalPred = last.basePred;
        }
        return last.finalPred;
    }

    /** Non-virtual update(): provider training, useful-bit update,
     * allocation-on-misprediction, periodic aging. */
    template <bool Track>
    void
    updateStep(Addr pc, bool taken)
    {
        (void)pc;
        const bool correct = last.finalPred == taken;

        if constexpr (Track) {
            base.classify(correct);
            for (Bank &bank : banks)
                bank.pred.classify(correct);
        }

        if (last.provider >= 0) {
            Bank &provider = banks[last.provider];
            const std::size_t idx = last.idx[last.provider];

            // The useful counter tracks "provider beat the alternate":
            // it only moves when they disagreed, toward whichever was
            // right.
            if (last.pred[last.provider] != last.altPred) {
                std::uint8_t &useful = provider.useful[idx];
                if (last.pred[last.provider] == taken)
                    useful += useful < usefulMax ? 1 : 0;
                else
                    useful -= useful > 0 ? 1 : 0;
            }
            provider.pred.entry(idx).train(taken);
        } else {
            base.entry(last.baseIdx).train(taken);
        }

        // Allocate a longer-history entry on a misprediction (the
        // only time allocation happens — pinned by test_tagged.cc).
        if (!correct && last.provider < static_cast<int>(numBanks) - 1)
            allocate(taken);

        if (++updatesSinceAging >= agePeriod)
            ageUseful();
    }

    /** Non-virtual updateHistory(): shift the long history and
     * advance every folded image of it. */
    void
    historyStep(bool taken)
    {
        std::array<bool, numBanks> out_bits;
        for (unsigned b = 0; b < numBanks; ++b)
            out_bits[b] = history.bit(historyLengths[b] - 1);
        history.push(taken);
        for (unsigned b = 0; b < numBanks; ++b) {
            Bank &bank = banks[b];
            bank.idxFold.update(taken, out_bits[b]);
            bank.tagFold1.update(taken, out_bits[b]);
            bank.tagFold2.update(taken, out_bits[b]);
        }
    }

    /** Non-virtual lastPredictCollisions(). */
    Count
    pendingStep() const
    {
        Count pending = base.pending();
        for (const Bank &bank : banks)
            pending += bank.pred.pending();
        return pending;
    }

    /**
     * @name Introspection for the property tests
     */
    ///@{
    /** Base-table entries. */
    std::size_t baseEntries() const { return base.entries(); }

    /** Entries in tagged bank @p b. */
    std::size_t bankEntries(unsigned b) const;

    /** History length of bank @p b. */
    BitCount bankHistoryBits(unsigned b) const;

    /** Provider bank of the last predict (-1 = bimodal base). */
    int lastProvider() const { return last.provider; }

    /** Index/tag/hit latched for bank @p b by the last predict. */
    std::size_t lastBankIndex(unsigned b) const;
    std::uint8_t lastBankTag(unsigned b) const;
    bool lastBankHit(unsigned b) const;

    /** Stored tag / useful counter of bank @p b, entry @p idx. */
    std::uint8_t tagAt(unsigned b, std::size_t idx) const;
    std::uint8_t usefulAt(unsigned b, std::size_t idx) const;

    /** Entries allocated / aging passes run so far. */
    Count allocationCount() const { return allocations; }
    Count agingPasses() const { return agingEvents; }

    /** The incremental index fold of bank @p b (round-trip tests
     * compare it against FoldedHistory::recompute). */
    const FoldedHistory &bankIndexFold(unsigned b) const;

    /** The long history register (for fold round-trip tests). */
    const LongHistory &longHistory() const { return history; }
    ///@}

  private:
    struct Bank
    {
        CounterTable pred;
        std::vector<std::uint8_t> tags;
        std::vector<std::uint8_t> useful;
        FoldedHistory idxFold;
        FoldedHistory tagFold1;
        FoldedHistory tagFold2;

        Bank(std::size_t entries, std::uint8_t initial)
            : pred(entries, predBits, initial), tags(entries, 0),
              useful(entries, 0)
        {
        }
    };

    std::size_t
    bankIndex(unsigned b, std::uint64_t pc_index) const
    {
        const Bank &bank = banks[b];
        return bank.pred.indexFor(
            foldBits(pc_index, bank.pred.indexBits()) ^
            bank.idxFold.value());
    }

    std::uint8_t
    bankTag(unsigned b, std::uint64_t pc_index) const
    {
        const Bank &bank = banks[b];
        return static_cast<std::uint8_t>(
            (foldBits(pc_index, tagBits) ^ bank.tagFold1.value() ^
             (bank.tagFold2.value() << 1)) &
            mask(tagBits));
    }

    /** Steal an entry in a bank longer than the provider: the first
     * candidate with a zero useful counter gets it (initialized to
     * the weak counter of the outcome); when every candidate is
     * protected, their useful counters decay instead. */
    void allocate(bool taken);

    /** Halve every useful counter (periodic aging). */
    void ageUseful();

    CounterTable base;
    std::vector<Bank> banks;
    LongHistory history;

    Count agePeriod;
    Count updatesSinceAging = 0;
    Count allocations = 0;
    Count agingEvents = 0;

    // Lookup state latched by predict() for update().
    struct LookupState
    {
        std::size_t baseIdx = 0;
        std::array<std::size_t, numBanks> idx{};
        std::array<std::uint8_t, numBanks> tag{};
        std::array<bool, numBanks> hit{};
        std::array<bool, numBanks> pred{};
        bool basePred = false;
        bool altPred = false;
        bool finalPred = false;
        int provider = -1;
    } last;
};

} // namespace bpsim

#endif // BPSIM_PREDICTOR_TAGE_HH
