/**
 * @file
 * The 'ghist' (GAg) predictor: a counter table indexed purely by the
 * global branch-history register.
 */

#ifndef BPSIM_PREDICTOR_GHIST_HH
#define BPSIM_PREDICTOR_GHIST_HH

#include <cstddef>

#include "predictor/counter_table.hh"
#include "predictor/global_history.hh"
#include "predictor/predictor.hh"

namespace bpsim
{

/**
 * Pure global-history predictor (GAg in Yeh & Patt's taxonomy).
 * Captures branch correlation but aliases heavily: every branch at a
 * given history shares one counter, which makes it the predictor that
 * benefits most from statically removing biased branches.
 *
 * The inline *Step methods are the non-virtual per-branch protocol
 * used by the devirtualized replay kernels; the virtual interface
 * forwards to them.
 */
class Ghist : public BranchPredictor
{
  public:
    /**
     * @param size_bytes   hardware budget
     * @param counter_bits counter width (default 2)
     */
    explicit Ghist(std::size_t size_bytes, BitCount counter_bits = 2);

    bool predict(Addr pc) override;
    void update(Addr pc, bool taken) override;
    void updateHistory(bool taken) override;
    void reset() override;
    std::size_t sizeBytes() const override;
    std::string name() const override { return "ghist"; }
    CollisionStats collisionStats() const override;
    void clearCollisionStats() override;
    Count lastPredictCollisions() const override;

    void
    attachAliasSink(ContextAliasSink *sink) override
    {
        table.setAliasSink(sink);
    }

    /** History length in use (== index width). */
    BitCount historyBits() const { return table.indexBits(); }

    /** Non-virtual predict(). */
    template <bool Track>
    bool
    predictStep(Addr pc)
    {
        lastIndex = table.indexFor(history.value());
        return table.lookup<Track>(lastIndex, pc).taken();
    }

    /** Non-virtual update(). */
    template <bool Track>
    void
    updateStep(Addr pc, bool taken)
    {
        (void)pc;
        auto counter = table.entry(lastIndex);
        if constexpr (Track)
            table.classify(counter.taken() == taken);
        counter.train(taken);
    }

    /** Non-virtual updateHistory(). */
    void historyStep(bool taken) { history.push(taken); }

    /** Non-virtual lastPredictCollisions(). */
    Count pendingStep() const { return table.pending(); }

  private:
    template <typename> friend struct BatchTraits;

    CounterTable table;
    GlobalHistory history;
    std::size_t lastIndex = 0;
};

} // namespace bpsim

#endif // BPSIM_PREDICTOR_GHIST_HH
