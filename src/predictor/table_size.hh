/**
 * @file
 * Shared helper translating a byte budget into a counter-table entry
 * count.
 */

#ifndef BPSIM_PREDICTOR_TABLE_SIZE_HH
#define BPSIM_PREDICTOR_TABLE_SIZE_HH

#include <cstddef>

#include "support/bits.hh"
#include "support/logging.hh"
#include "support/types.hh"

namespace bpsim
{

/**
 * Entries of @p counter_bits-wide counters that fit a budget of
 * @p size_bytes bytes; fatal unless the result is a power of two.
 */
inline std::size_t
entriesForBudget(std::size_t size_bytes, BitCount counter_bits)
{
    if (size_bytes == 0)
        bpsim_fatal("zero-size predictor table");
    const std::size_t entries = size_bytes * 8 / counter_bits;
    if (entries == 0 || !isPowerOfTwo(entries)) {
        bpsim_fatal("size ", size_bytes, " bytes with ", counter_bits,
                    "-bit counters does not give a power-of-two table");
    }
    return entries;
}

} // namespace bpsim

#endif // BPSIM_PREDICTOR_TABLE_SIZE_HH
