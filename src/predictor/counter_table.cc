#include "predictor/counter_table.hh"

#include <algorithm>

namespace bpsim
{

CounterTable::CounterTable(std::size_t entries, BitCount counter_bits,
                           std::uint8_t initial)
    : counterBits(counter_bits), initialValue(initial),
      maxVal(static_cast<std::uint8_t>((1u << counter_bits) - 1)),
      msbThreshold(static_cast<std::uint8_t>(1u << (counter_bits - 1)))
{
    bpsim_assert(entries > 0 && isPowerOfTwo(entries),
                 "table entries (", entries, ") must be a power of two");
    bpsim_assert(counter_bits >= 1 && counter_bits <= 8,
                 "bad counter width");
    bpsim_assert(initial <= maxVal, "initial value too large");
    counters.assign(entries, initial);
    tags.assign(entries, invalidTag);
    idxBits = floorLog2(entries);
    idxMask = entries - 1;
}

void
CounterTable::reset()
{
    std::fill(counters.begin(), counters.end(), initialValue);
    std::fill(tags.begin(), tags.end(), invalidTag);
    pendingCollisions = 0;
}

} // namespace bpsim
