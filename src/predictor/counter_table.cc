#include "predictor/counter_table.hh"

namespace bpsim
{

namespace
{

/** Tag value meaning "no branch has used this entry yet". */
constexpr Addr invalidTag = ~Addr{0};

} // namespace

CounterTable::CounterTable(std::size_t entries, BitCount counter_bits,
                           std::uint8_t initial)
    : counterBits(counter_bits), initialValue(initial)
{
    bpsim_assert(entries > 0 && isPowerOfTwo(entries),
                 "table entries (", entries, ") must be a power of two");
    bpsim_assert(counter_bits >= 1 && counter_bits <= 8,
                 "bad counter width");
    counters.assign(entries, SatCounter(counter_bits, initial));
    tags.assign(entries, invalidTag);
    idxBits = floorLog2(entries);
}

SatCounter &
CounterTable::lookup(std::size_t index, Addr pc)
{
    bpsim_assert(index < counters.size(), "index out of range");
    ++collisionStats.lookups;
    if (tags[index] != invalidTag && tags[index] != pc) {
        ++collisionStats.collisions;
        ++pendingCollisions;
    }
    tags[index] = pc;
    return counters[index];
}

void
CounterTable::classify(bool correct)
{
    if (correct)
        collisionStats.constructive += pendingCollisions;
    else
        collisionStats.destructive += pendingCollisions;
    pendingCollisions = 0;
}

void
CounterTable::reset()
{
    for (auto &counter : counters)
        counter.set(initialValue);
    std::fill(tags.begin(), tags.end(), invalidTag);
    pendingCollisions = 0;
}

} // namespace bpsim
