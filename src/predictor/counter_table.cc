#include "predictor/counter_table.hh"

#include <algorithm>

namespace bpsim
{

CounterTable::CounterTable(std::size_t entries, BitCount counter_bits,
                           std::uint8_t initial)
    : counterBits(counter_bits), initialValue(initial)
{
    bpsim_assert(entries > 0 && isPowerOfTwo(entries),
                 "table entries (", entries, ") must be a power of two");
    bpsim_assert(counter_bits >= 1 && counter_bits <= 8,
                 "bad counter width");
    counters.assign(entries, SatCounter(counter_bits, initial));
    tags.assign(entries, invalidTag);
    idxBits = floorLog2(entries);
    idxMask = entries - 1;
}

void
CounterTable::reset()
{
    for (auto &counter : counters)
        counter.set(initialValue);
    std::fill(tags.begin(), tags.end(), invalidTag);
    pendingCollisions = 0;
}

} // namespace bpsim
