/**
 * @file
 * The bi-mode predictor (Lee, Chen & Mudge [9]): two gshare direction
 * tables steered by a bimodal choice table.
 */

#ifndef BPSIM_PREDICTOR_BIMODE_HH
#define BPSIM_PREDICTOR_BIMODE_HH

#include <cstddef>

#include "predictor/counter_table.hh"
#include "predictor/global_history.hh"
#include "predictor/predictor.hh"
#include "support/bits.hh"

namespace bpsim
{

/**
 * Bi-mode hybrid. The PC-indexed choice table routes mostly-taken
 * branches to one gshare-indexed direction table and mostly-not-taken
 * branches to the other, so branches of opposite bias cannot destroy
 * each other's counters. Partial update policy as in the paper:
 * only the selected direction table trains, and the choice table
 * trains unless it disagreed with the outcome while the selected
 * direction table was nonetheless correct.
 *
 * Budget split: half the counters form the choice table, a quarter
 * each the two direction tables. The direction tables use as many
 * history bits as their index requires (the paper's §2 convention for
 * its bi-mode simulations).
 *
 * The inline *Step methods are the non-virtual per-branch protocol
 * used by the devirtualized replay kernels; the virtual interface
 * forwards to them.
 */
class BiMode : public BranchPredictor
{
  public:
    /** @param size_bytes total hardware budget across all tables. */
    explicit BiMode(std::size_t size_bytes, BitCount counter_bits = 2);

    bool predict(Addr pc) override;
    void update(Addr pc, bool taken) override;
    void updateHistory(bool taken) override;
    void reset() override;
    std::size_t sizeBytes() const override;
    std::string name() const override { return "bimode"; }
    CollisionStats collisionStats() const override;
    void clearCollisionStats() override;
    Count lastPredictCollisions() const override;

    void
    attachAliasSink(ContextAliasSink *sink) override
    {
        choice.setAliasSink(sink);
        takenTable.setAliasSink(sink);
        notTakenTable.setAliasSink(sink);
    }

    /** Non-virtual predict(). */
    template <bool Track>
    bool
    predictStep(Addr pc)
    {
        lastChoiceIndex = choice.indexFor(pc / instructionBytes);
        lastDirectionIndex = directionIndex(pc);

        lastChoseTaken =
            choice.lookup<Track>(lastChoiceIndex, pc).taken();
        CounterTable &direction =
            lastChoseTaken ? takenTable : notTakenTable;
        lastPrediction =
            direction.lookup<Track>(lastDirectionIndex, pc).taken();
        return lastPrediction;
    }

    /** Non-virtual update(): the paper's partial-update policy. */
    template <bool Track>
    void
    updateStep(Addr pc, bool taken)
    {
        (void)pc;
        const bool correct = lastPrediction == taken;

        CounterTable &selected =
            lastChoseTaken ? takenTable : notTakenTable;

        if constexpr (Track) {
            CounterTable &unselected =
                lastChoseTaken ? notTakenTable : takenTable;
            selected.classify(correct);
            unselected.classify(correct);
            choice.classify(correct);
        }

        // Partial update: only the selected direction table trains.
        selected.entry(lastDirectionIndex).train(taken);

        // Choice trains toward the outcome except when it opposed the
        // outcome but the selected direction table still got it right.
        const bool choice_opposes = lastChoseTaken != taken;
        if (!(choice_opposes && correct))
            choice.entry(lastChoiceIndex).train(taken);
    }

    /** Non-virtual updateHistory(). */
    void historyStep(bool taken) { history.push(taken); }

    /** Non-virtual lastPredictCollisions(). */
    Count
    pendingStep() const
    {
        return choice.pending() + takenTable.pending() +
               notTakenTable.pending();
    }

  private:
    template <typename> friend struct BatchTraits;

    std::size_t
    directionIndex(Addr pc) const
    {
        return static_cast<std::size_t>(
            hashPcHistoryXor(pc / instructionBytes, history.value(),
                             takenTable.indexBits()));
    }

    CounterTable choice;
    CounterTable takenTable;
    CounterTable notTakenTable;
    GlobalHistory history;

    // Lookup state latched by predict() for update().
    std::size_t lastChoiceIndex = 0;
    std::size_t lastDirectionIndex = 0;
    bool lastChoseTaken = false;
    bool lastPrediction = false;
};

} // namespace bpsim

#endif // BPSIM_PREDICTOR_BIMODE_HH
