/**
 * @file
 * The bi-mode predictor (Lee, Chen & Mudge [9]): two gshare direction
 * tables steered by a bimodal choice table.
 */

#ifndef BPSIM_PREDICTOR_BIMODE_HH
#define BPSIM_PREDICTOR_BIMODE_HH

#include <cstddef>

#include "predictor/counter_table.hh"
#include "predictor/global_history.hh"
#include "predictor/predictor.hh"

namespace bpsim
{

/**
 * Bi-mode hybrid. The PC-indexed choice table routes mostly-taken
 * branches to one gshare-indexed direction table and mostly-not-taken
 * branches to the other, so branches of opposite bias cannot destroy
 * each other's counters. Partial update policy as in the paper:
 * only the selected direction table trains, and the choice table
 * trains unless it disagreed with the outcome while the selected
 * direction table was nonetheless correct.
 *
 * Budget split: half the counters form the choice table, a quarter
 * each the two direction tables. The direction tables use as many
 * history bits as their index requires (the paper's §2 convention for
 * its bi-mode simulations).
 */
class BiMode : public BranchPredictor
{
  public:
    /** @param size_bytes total hardware budget across all tables. */
    explicit BiMode(std::size_t size_bytes, BitCount counter_bits = 2);

    bool predict(Addr pc) override;
    void update(Addr pc, bool taken) override;
    void updateHistory(bool taken) override;
    void reset() override;
    std::size_t sizeBytes() const override;
    std::string name() const override { return "bimode"; }
    CollisionStats collisionStats() const override;
    void clearCollisionStats() override;
    Count lastPredictCollisions() const override;

  private:
    std::size_t directionIndex(Addr pc) const;

    CounterTable choice;
    CounterTable takenTable;
    CounterTable notTakenTable;
    GlobalHistory history;

    // Lookup state latched by predict() for update().
    std::size_t lastChoiceIndex = 0;
    std::size_t lastDirectionIndex = 0;
    bool lastChoseTaken = false;
    bool lastPrediction = false;
};

} // namespace bpsim

#endif // BPSIM_PREDICTOR_BIMODE_HH
