/**
 * @file
 * The gshare predictor (McFarling [7]): counter table indexed by the
 * XOR of the branch address and the global history.
 */

#ifndef BPSIM_PREDICTOR_GSHARE_HH
#define BPSIM_PREDICTOR_GSHARE_HH

#include <cstddef>

#include "predictor/counter_table.hh"
#include "predictor/global_history.hh"
#include "predictor/predictor.hh"
#include "support/bits.hh"

namespace bpsim
{

/**
 * Address-xor-history indexed predictor. The base dynamic predictor
 * of the paper's Figures 1-6 sweep.
 *
 * The per-branch protocol is implemented by the inline *Step methods
 * below; the virtual BranchPredictor interface forwards to them, and
 * the devirtualized replay kernels (core/engine simulateReplay) call
 * them directly so the measured loop contains no indirect calls.
 */
class Gshare : public BranchPredictor
{
  public:
    /**
     * @param size_bytes   hardware budget
     * @param history_bits global history length; 0 = match the index
     *                     width (the classic configuration)
     * @param counter_bits counter width (default 2)
     */
    explicit Gshare(std::size_t size_bytes, BitCount history_bits = 0,
                    BitCount counter_bits = 2);

    bool predict(Addr pc) override;
    void update(Addr pc, bool taken) override;
    void updateHistory(bool taken) override;
    void reset() override;
    std::size_t sizeBytes() const override;
    std::string name() const override { return "gshare"; }
    CollisionStats collisionStats() const override;
    void clearCollisionStats() override;
    Count lastPredictCollisions() const override;

    void
    attachAliasSink(ContextAliasSink *sink) override
    {
        table.setAliasSink(sink);
    }

    /** History length in use. */
    BitCount historyBits() const { return history.width(); }

    /** Non-virtual predict(); see class comment. */
    template <bool Track>
    bool
    predictStep(Addr pc)
    {
        lastIndex = index(pc);
        return table.lookup<Track>(lastIndex, pc).taken();
    }

    /** Non-virtual update(); see class comment. */
    template <bool Track>
    void
    updateStep(Addr pc, bool taken)
    {
        (void)pc;
        auto counter = table.entry(lastIndex);
        if constexpr (Track)
            table.classify(counter.taken() == taken);
        counter.train(taken);
    }

    /** Non-virtual updateHistory(). */
    void historyStep(bool taken) { history.push(taken); }

    /** Non-virtual lastPredictCollisions(). */
    Count pendingStep() const { return table.pending(); }

  private:
    template <typename> friend struct BatchTraits;

    std::size_t
    index(Addr pc) const
    {
        return static_cast<std::size_t>(hashPcHistoryXor(
            pc / instructionBytes, history.value(), table.indexBits()));
    }

    CounterTable table;
    GlobalHistory history;
    std::size_t lastIndex = 0;
};

} // namespace bpsim

#endif // BPSIM_PREDICTOR_GSHARE_HH
