#include "predictor/bimode.hh"

#include "support/bits.hh"
#include "predictor/table_size.hh"

namespace bpsim
{

BiMode::BiMode(std::size_t size_bytes, BitCount counter_bits)
    : choice(entriesForBudget(size_bytes / 2, counter_bits),
             counter_bits, SatCounter::weak(counter_bits, true).value()),
      takenTable(entriesForBudget(size_bytes / 4, counter_bits),
                 counter_bits,
                 SatCounter::weak(counter_bits, true).value()),
      notTakenTable(entriesForBudget(size_bytes / 4, counter_bits),
                    counter_bits,
                    SatCounter::weak(counter_bits, false).value()),
      history(takenTable.indexBits())
{
    bpsim_assert(size_bytes >= 4, "bi-mode budget too small");
}

std::size_t
BiMode::directionIndex(Addr pc) const
{
    const BitCount bits = takenTable.indexBits();
    const std::uint64_t addr_bits =
        foldBits(pc / instructionBytes, bits);
    return static_cast<std::size_t>((addr_bits ^ history.value()) &
                                    mask(bits));
}

bool
BiMode::predict(Addr pc)
{
    lastChoiceIndex = static_cast<std::size_t>(
        (pc / instructionBytes) & mask(choice.indexBits()));
    lastDirectionIndex = directionIndex(pc);

    lastChoseTaken = choice.lookup(lastChoiceIndex, pc).taken();
    CounterTable &direction =
        lastChoseTaken ? takenTable : notTakenTable;
    lastPrediction = direction.lookup(lastDirectionIndex, pc).taken();
    return lastPrediction;
}

void
BiMode::update(Addr pc, bool taken)
{
    (void)pc;
    const bool correct = lastPrediction == taken;

    CounterTable &selected = lastChoseTaken ? takenTable : notTakenTable;
    CounterTable &unselected =
        lastChoseTaken ? notTakenTable : takenTable;

    selected.classify(correct);
    unselected.classify(correct);
    choice.classify(correct);

    // Partial update: only the selected direction table trains.
    selected.at(lastDirectionIndex).train(taken);

    // Choice trains toward the outcome except when it opposed the
    // outcome but the selected direction table still got it right.
    const bool choice_opposes = lastChoseTaken != taken;
    if (!(choice_opposes && correct))
        choice.at(lastChoiceIndex).train(taken);
}

void
BiMode::updateHistory(bool taken)
{
    history.push(taken);
}

void
BiMode::reset()
{
    choice.reset();
    takenTable.reset();
    notTakenTable.reset();
    history.clear();
}

std::size_t
BiMode::sizeBytes() const
{
    return choice.sizeBytes() + takenTable.sizeBytes() +
           notTakenTable.sizeBytes();
}

CollisionStats
BiMode::collisionStats() const
{
    CollisionStats stats;
    stats += choice.stats();
    stats += takenTable.stats();
    stats += notTakenTable.stats();
    return stats;
}

void
BiMode::clearCollisionStats()
{
    choice.clearStats();
    takenTable.clearStats();
    notTakenTable.clearStats();
}

Count
BiMode::lastPredictCollisions() const
{
    return choice.pending() + takenTable.pending() + notTakenTable.pending();
}

} // namespace bpsim
