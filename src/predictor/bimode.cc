#include "predictor/bimode.hh"

#include "predictor/registry.hh"

#include "predictor/table_size.hh"

namespace bpsim
{

BiMode::BiMode(std::size_t size_bytes, BitCount counter_bits)
    : choice(entriesForBudget(size_bytes / 2, counter_bits),
             counter_bits, SatCounter::weak(counter_bits, true).value()),
      takenTable(entriesForBudget(size_bytes / 4, counter_bits),
                 counter_bits,
                 SatCounter::weak(counter_bits, true).value()),
      notTakenTable(entriesForBudget(size_bytes / 4, counter_bits),
                    counter_bits,
                    SatCounter::weak(counter_bits, false).value()),
      history(takenTable.indexBits())
{
    bpsim_assert(size_bytes >= 4, "bi-mode budget too small");
}

bool
BiMode::predict(Addr pc)
{
    return predictStep<true>(pc);
}

void
BiMode::update(Addr pc, bool taken)
{
    updateStep<true>(pc, taken);
}

void
BiMode::updateHistory(bool taken)
{
    historyStep(taken);
}

void
BiMode::reset()
{
    choice.reset();
    takenTable.reset();
    notTakenTable.reset();
    history.clear();
}

std::size_t
BiMode::sizeBytes() const
{
    return choice.sizeBytes() + takenTable.sizeBytes() +
           notTakenTable.sizeBytes();
}

CollisionStats
BiMode::collisionStats() const
{
    CollisionStats stats;
    stats += choice.stats();
    stats += takenTable.stats();
    stats += notTakenTable.stats();
    return stats;
}

void
BiMode::clearCollisionStats()
{
    choice.clearStats();
    takenTable.clearStats();
    notTakenTable.clearStats();
}

Count
BiMode::lastPredictCollisions() const
{
    return pendingStep();
}

BPSIM_REGISTER_PREDICTOR(
    bimode,
    PredictorInfo{
        .name = "bimode",
        .description = "direction tables plus choice predictor (Lee et al.)",
        .make =
            [](std::size_t bytes) {
                return std::make_unique<BiMode>(bytes);
            },
        .paperKind = true,
        .kernelCapable = true,
        .batchCapable = true,
    })

} // namespace bpsim
