/**
 * @file
 * Self-registering predictor registry.
 *
 * Every concrete predictor registers a PredictorInfo from its own
 * translation unit (BPSIM_REGISTER_PREDICTOR at the bottom of its
 * .cc file). The factory, the CLI listing, the golden suite and the
 * benches all enumerate this registry instead of hand-maintained
 * name lists, so adding a predictor means: write the class, register
 * it, and (if the devirtualized kernels should handle it) add one
 * line to BPSIM_KERNEL_PREDICTORS in factory.hh. Nothing else —
 * runner identity strings, checkpoint fingerprints, profile-cache
 * keys and the golden suite derive from the registered name.
 */

#ifndef BPSIM_PREDICTOR_REGISTRY_HH
#define BPSIM_PREDICTOR_REGISTRY_HH

#include <cstddef>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "predictor/predictor.hh"
#include "support/error.hh"

namespace bpsim
{

/** One registered predictor construction recipe. */
struct PredictorInfo
{
    /** Spec name ("gshare", "tage", ...). */
    std::string name;

    /** One-line description for `bpsim_cli list` and docs. */
    std::string description;

    /** Build an instance with a byte budget. */
    std::function<std::unique_ptr<BranchPredictor>(std::size_t)> make;

    /** One of the paper's five simulated schemes (PredictorKind). */
    bool paperKind = false;

    /**
     * The devirtualized replay kernels dispatch on this concrete
     * type (it is listed in BPSIM_KERNEL_PREDICTORS); false means
     * simulation takes the virtual fallback path.
     */
    bool kernelCapable = false;

    /**
     * The SIMD batch-replay kernels cover this concrete type (it is
     * listed in BPSIM_BATCH_PREDICTORS); false means batched
     * evaluation falls back to the record-at-a-time kernel.
     */
    bool batchCapable = false;

    /** Byte budget used when a spec gives the bare name. */
    std::size_t defaultBytes = 8192;

    /**
     * Golden-file stem under tests/golden/ (defaults to the
     * registered name; "ideal" pins as "ideal_gshare").
     */
    std::string goldenFile;
};

/**
 * The global name -> recipe table. Populated at static-initialization
 * time by the registration objects each predictor .cc defines;
 * construct-on-first-use so registration order across translation
 * units cannot race the table's own construction.
 */
class PredictorRegistry
{
  public:
    static PredictorRegistry &instance();

    /** Register @p info; duplicate names are a simulator bug. */
    void add(PredictorInfo info);

    /** Recipe for @p name; null when unregistered. */
    const PredictorInfo *find(const std::string &name) const;

    /** Every recipe, sorted by name (deterministic across link
     * orders; static-init registration order is not). */
    std::vector<const PredictorInfo *> all() const;

    /** All registered names, sorted. */
    std::vector<std::string> names() const;

    /** "agree, bimodal, ..." for error messages and usage text. */
    std::string namesJoined() const;

  private:
    PredictorRegistry() = default;

    std::vector<PredictorInfo> entries;
};

/** A parsed "name[:bytes]" spec resolved against the registry. */
struct ParsedPredictorSpec
{
    const PredictorInfo *info = nullptr;
    std::size_t bytes = 0;
};

/**
 * Parse a "name:bytes" spec (bare name = the recipe's defaultBytes)
 * and resolve the name. Unknown names and malformed sizes come back
 * as config_invalid Errors; the unknown-name message lists every
 * registered predictor.
 */
Result<ParsedPredictorSpec>
parsePredictorSpec(const std::string &spec);

/** Registration hook: constructed at static init by the macro below. */
struct PredictorRegistration
{
    explicit PredictorRegistration(PredictorInfo info)
    {
        PredictorRegistry::instance().add(std::move(info));
    }
};

/**
 * Register a predictor from its .cc file. @p ident is a C identifier
 * (usually the name), @p ... a PredictorInfo expression. The anchor
 * function exists so registry.cc can reference one symbol per
 * registration TU: static-archive linkers drop object files nothing
 * references, and a TU whose only export is a registration static is
 * exactly such a file once the factory stops naming constructors.
 * Registrations are expected to designate only the fields they need
 * (the rest have defaults), so the aggregate-initializer warning is
 * suppressed here rather than at every call site.
 */
#define BPSIM_REGISTER_PREDICTOR(ident, ...)                           \
    namespace                                                          \
    {                                                                  \
    _Pragma("GCC diagnostic push")                                     \
    _Pragma("GCC diagnostic ignored \"-Wmissing-field-initializers\"") \
    const PredictorRegistration bpsimRegistration_##ident{             \
        __VA_ARGS__};                                                  \
    _Pragma("GCC diagnostic pop")                                      \
    }                                                                  \
    const void *bpsimPredictorAnchor_##ident()                         \
    {                                                                  \
        return &bpsimRegistration_##ident;                             \
    }

} // namespace bpsim

#endif // BPSIM_PREDICTOR_REGISTRY_HH
