#include "predictor/ideal_gshare.hh"

#include "predictor/registry.hh"

#include "support/bits.hh"
#include "support/logging.hh"

namespace bpsim
{

IdealGshare::IdealGshare(BitCount history_bits) : history(history_bits)
{
    bpsim_assert(history_bits >= 1 && history_bits <= 48,
                 "bad ideal-gshare history length");
}

std::uint64_t
IdealGshare::key(Addr pc) const
{
    // Exact pair key: mixed PC in the high bits, history in the low
    // bits. No two (pc, history) pairs collide.
    return (mix64(pc) << history.width()) | history.value();
}

bool
IdealGshare::predict(Addr pc)
{
    lastKey = key(pc);
    const auto it = counters.find(lastKey);
    if (it == counters.end())
        return false; // cold: weakly not-taken convention
    return it->second.taken();
}

void
IdealGshare::update(Addr pc, bool taken)
{
    (void)pc;
    auto [it, inserted] =
        counters.try_emplace(lastKey, SatCounter::weak(2, false));
    it->second.train(taken);
}

void
IdealGshare::updateHistory(bool taken)
{
    history.push(taken);
}

void
IdealGshare::reset()
{
    counters.clear();
    history.clear();
}

BPSIM_REGISTER_PREDICTOR(
    ideal,
    PredictorInfo{
        .name = "ideal",
        .description = "conflict-free gshare bound; ignores byte budget",
        .make =
            [](std::size_t) {
                return std::make_unique<IdealGshare>();
            },
        .paperKind = false,
        .kernelCapable = false,
        .goldenFile = "ideal_gshare",
    })

} // namespace bpsim
