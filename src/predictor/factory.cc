#include "predictor/factory.hh"

#include <cstdlib>

#include "support/logging.hh"
#include "predictor/agree.hh"
#include "predictor/bimodal.hh"
#include "predictor/bimode.hh"
#include "predictor/ghist.hh"
#include "predictor/gselect.hh"
#include "predictor/ideal_gshare.hh"
#include "predictor/gshare.hh"
#include "predictor/tournament.hh"
#include "predictor/two_bc_gskew.hh"
#include "predictor/yags.hh"

namespace bpsim
{

const std::vector<PredictorKind> &
allPredictorKinds()
{
    static const std::vector<PredictorKind> kinds = {
        PredictorKind::Bimodal, PredictorKind::Ghist,
        PredictorKind::Gshare,  PredictorKind::BiMode,
        PredictorKind::TwoBcGskew,
    };
    return kinds;
}

std::string
predictorKindName(PredictorKind kind)
{
    switch (kind) {
      case PredictorKind::Bimodal:
        return "bimodal";
      case PredictorKind::Ghist:
        return "ghist";
      case PredictorKind::Gshare:
        return "gshare";
      case PredictorKind::BiMode:
        return "bimode";
      case PredictorKind::TwoBcGskew:
        return "2bcgskew";
    }
    bpsim_panic("unknown PredictorKind");
}

PredictorKind
predictorKindFromName(const std::string &name)
{
    for (const auto kind : allPredictorKinds()) {
        if (predictorKindName(kind) == name)
            return kind;
    }
    bpsim_fatal("unknown predictor '", name,
                "' (expected bimodal/ghist/gshare/bimode/2bcgskew)");
}

std::unique_ptr<BranchPredictor>
makePredictor(PredictorKind kind, std::size_t size_bytes)
{
    switch (kind) {
      case PredictorKind::Bimodal:
        return std::make_unique<Bimodal>(size_bytes);
      case PredictorKind::Ghist:
        return std::make_unique<Ghist>(size_bytes);
      case PredictorKind::Gshare:
        return std::make_unique<Gshare>(size_bytes);
      case PredictorKind::BiMode:
        return std::make_unique<BiMode>(size_bytes);
      case PredictorKind::TwoBcGskew:
        return std::make_unique<TwoBcGskew>(size_bytes);
    }
    bpsim_panic("unknown PredictorKind");
}

std::unique_ptr<BranchPredictor>
makePredictor(const std::string &spec)
{
    const auto colon = spec.find(':');
    const std::string name = spec.substr(0, colon);
    std::size_t bytes = 8192;
    if (colon != std::string::npos) {
        const std::string size_str = spec.substr(colon + 1);
        char *end = nullptr;
        bytes = std::strtoull(size_str.c_str(), &end, 10);
        if (end == nullptr || *end != '\0' || bytes == 0)
            bpsim_fatal("bad predictor size in spec '", spec, "'");
    }
    // Extension predictors reachable by name only (not part of the
    // paper's five simulated schemes).
    if (name == "agree")
        return std::make_unique<Agree>(bytes);
    if (name == "tournament")
        return std::make_unique<Tournament>(bytes);
    if (name == "gselect")
        return std::make_unique<Gselect>(bytes);
    if (name == "yags")
        return std::make_unique<Yags>(bytes);
    if (name == "ideal")
        return std::make_unique<IdealGshare>();
    return makePredictor(predictorKindFromName(name), bytes);
}

} // namespace bpsim
