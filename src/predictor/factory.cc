#include "predictor/factory.hh"

#include "predictor/registry.hh"
#include "support/error.hh"
#include "support/logging.hh"

namespace bpsim
{

const std::vector<PredictorKind> &
allPredictorKinds()
{
    static const std::vector<PredictorKind> kinds = {
        PredictorKind::Bimodal, PredictorKind::Ghist,
        PredictorKind::Gshare,  PredictorKind::BiMode,
        PredictorKind::TwoBcGskew,
    };
    return kinds;
}

std::string
predictorKindName(PredictorKind kind)
{
    switch (kind) {
      case PredictorKind::Bimodal:
        return "bimodal";
      case PredictorKind::Ghist:
        return "ghist";
      case PredictorKind::Gshare:
        return "gshare";
      case PredictorKind::BiMode:
        return "bimode";
      case PredictorKind::TwoBcGskew:
        return "2bcgskew";
    }
    bpsim_panic("unknown PredictorKind");
}

PredictorKind
predictorKindFromName(const std::string &name)
{
    for (const auto kind : allPredictorKinds()) {
        if (predictorKindName(kind) == name)
            return kind;
    }
    raise(Error(ErrorCode::ConfigInvalid,
                "unknown paper predictor '" + name +
                    "' (paper schemes: bimodal, ghist, gshare, "
                    "bimode, 2bcgskew; registered: " +
                    PredictorRegistry::instance().namesJoined() + ")"));
}

std::unique_ptr<BranchPredictor>
makePredictor(PredictorKind kind, std::size_t size_bytes)
{
    const PredictorInfo *info =
        PredictorRegistry::instance().find(predictorKindName(kind));
    bpsim_assert(info != nullptr,
                 "paper predictor kind not registered");
    return info->make(size_bytes);
}

std::unique_ptr<BranchPredictor>
makePredictor(const std::string &spec)
{
    const Result<ParsedPredictorSpec> parsed = parsePredictorSpec(spec);
    if (!parsed.ok())
        raise(parsed.error());
    return parsed.value().info->make(parsed.value().bytes);
}

} // namespace bpsim
