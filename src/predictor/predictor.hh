/**
 * @file
 * Abstract dynamic branch predictor interface and collision statistics.
 *
 * The engine drives every predictor through a strict per-branch
 * protocol: predict(pc), then update(pc, outcome), then
 * updateHistory(outcome). History update is a separate step because
 * the paper's combined static/dynamic scheme needs to control whether
 * the outcomes of statically predicted branches are shifted into the
 * global history register (its Table 4 experiment).
 */

#ifndef BPSIM_PREDICTOR_PREDICTOR_HH
#define BPSIM_PREDICTOR_PREDICTOR_HH

#include <cstddef>
#include <string>

#include "support/types.hh"

namespace bpsim
{

/**
 * Access shim the batch replay kernels use to reach a predictor's
 * tables and latched state (specialized per concrete predictor in
 * core/batch_kernels.hh; each predictor befriends it).
 */
template <typename Predictor> struct BatchTraits;

class ContextAliasSink;

/**
 * Aliasing statistics, maintained exactly as §5 of the paper defines:
 * a per-counter tag holds the PC of the last branch to use the
 * counter; a lookup under a different PC counts one collision, which
 * is classified constructive when the overall prediction for that
 * branch was nonetheless correct, destructive otherwise.
 */
struct CollisionStats
{
    /** Table lookups performed (one per table per prediction). */
    Count lookups = 0;

    /** Lookups whose tag held a different branch's PC. */
    Count collisions = 0;

    /** Collisions where the final prediction was still correct. */
    Count constructive = 0;

    /** Collisions where the final prediction was wrong. */
    Count destructive = 0;

    CollisionStats &
    operator+=(const CollisionStats &other)
    {
        lookups += other.lookups;
        collisions += other.collisions;
        constructive += other.constructive;
        destructive += other.destructive;
        return *this;
    }
};

/** Abstract dynamic conditional-branch predictor. */
class BranchPredictor
{
  public:
    virtual ~BranchPredictor() = default;

    /**
     * Predict the branch at @p pc. Also latches the lookup state
     * (indices, component predictions) consumed by the following
     * update() call; predict/update calls must strictly alternate
     * per branch, which trace-driven simulation guarantees.
     *
     * @retval true predicted taken
     */
    virtual bool predict(Addr pc) = 0;

    /**
     * Train the predictor with the actual @p taken outcome of the
     * branch last passed to predict(). Does NOT shift the global
     * history register.
     */
    virtual void update(Addr pc, bool taken) = 0;

    /**
     * Shift @p taken into the global history register (no-op for
     * predictors without one). Called by the engine for dynamically
     * predicted branches, and optionally for statically predicted
     * ones depending on the shift policy.
     */
    virtual void updateHistory(bool taken) = 0;

    /** Clear all tables and history to the power-on state. */
    virtual void reset() = 0;

    /** Hardware budget in bytes (counter bits only; tags are
     * measurement instrumentation and are not counted). */
    virtual std::size_t sizeBytes() const = 0;

    /** Short scheme name, e.g. "gshare". */
    virtual std::string name() const = 0;

    /** Aggregated collision statistics over all component tables. */
    virtual CollisionStats collisionStats() const = 0;

    /** Zero the collision statistics (tables keep their contents). */
    virtual void clearCollisionStats() = 0;

    /**
     * Collisions observed by the most recent predict() call (valid
     * between predict() and update()). Lets the engine attribute
     * aliasing to individual branches — the input to the
     * collision-aware selection scheme the paper sketches as future
     * work.
     */
    virtual Count lastPredictCollisions() const { return 0; }

    /**
     * Route per-context-pair collision attribution into @p sink
     * (null detaches). Implementations forward the sink to every
     * component CounterTable; predictors without tagged counter
     * tables ignore it, reporting no attribution. Only meaningful
     * under tracked (record-at-a-time) simulation — the runner
     * disables batch kernels for scenario cells.
     */
    virtual void attachAliasSink(ContextAliasSink *sink)
    {
        (void)sink;
    }
};

} // namespace bpsim

#endif // BPSIM_PREDICTOR_PREDICTOR_HH
