/**
 * @file
 * Long global-history register and folded-history (CSR) companions
 * for tagged-geometric predictors.
 *
 * GlobalHistory tops out at 64 outcomes; TAGE-style predictors index
 * their longest table with 80+ bits. LongHistory extends the shift
 * register to 128 bits, and FoldedHistory maintains the circular
 * shift register (CSR) fold of a length-L window down to a table's
 * index or tag width in O(1) per branch instead of re-XORing L bits.
 */

#ifndef BPSIM_PREDICTOR_LONG_HISTORY_HH
#define BPSIM_PREDICTOR_LONG_HISTORY_HH

#include <array>
#include <cstdint>

#include "support/bits.hh"
#include "support/logging.hh"
#include "support/types.hh"

namespace bpsim
{

/**
 * Shift register of up to 128 recent branch outcomes, LSB (bit 0)
 * = most recent, matching GlobalHistory's convention.
 */
class LongHistory
{
  public:
    /** @param bits number of outcomes retained (1..128). */
    explicit LongHistory(BitCount bits) : numBits(bits)
    {
        bpsim_assert(bits >= 1 && bits <= 128, "bad history width");
    }

    /** Shift in one outcome. */
    void
    push(bool taken)
    {
        const std::uint64_t carry = words[0] >> 63;
        words[0] = (words[0] << 1) | (taken ? 1 : 0);
        words[1] = (words[1] << 1) | carry;
        if (numBits <= 64)
            words[0] &= mask(numBits);
        else
            words[1] &= mask(numBits - 64);
    }

    /** The outcome @p pos branches ago (0 = most recent). */
    bool
    bit(BitCount pos) const
    {
        bpsim_assert(pos < numBits, "history bit out of range");
        if (pos < 64)
            return ((words[0] >> pos) & 1) != 0;
        return ((words[1] >> (pos - 64)) & 1) != 0;
    }

    /** Register width in bits. */
    BitCount width() const { return numBits; }

    /** Clear to the power-on (all not-taken) state. */
    void clear() { words = {0, 0}; }

  private:
    std::array<std::uint64_t, 2> words{};
    BitCount numBits;
};

/**
 * Circular-shift-register fold of the most recent @p origLen history
 * bits down to @p compLen bits, maintained incrementally.
 *
 * Invariant (the property tests pin it): after any sequence of
 * updates, value() equals the from-scratch fold
 * XOR over j in [0, origLen) of h[j] << (j % compLen),
 * where h[j] is the outcome j branches ago. update() must be called
 * once per history push with the incoming bit and the bit that falls
 * out of the length-origLen window (h[origLen-1] *before* the push).
 */
class FoldedHistory
{
  public:
    FoldedHistory() = default;

    FoldedHistory(BitCount orig_len, BitCount comp_len)
        : origLen(orig_len), compLen(comp_len),
          outPoint(orig_len % comp_len)
    {
        bpsim_assert(comp_len >= 1 && comp_len < 64,
                     "bad folded width");
        bpsim_assert(orig_len >= comp_len,
                     "fold wider than its window");
    }

    /**
     * Advance by one branch: @p in_bit enters the window, @p out_bit
     * (the oldest bit of the window before this push) leaves it.
     */
    void
    update(bool in_bit, bool out_bit)
    {
        comp = (comp << 1) | (in_bit ? 1 : 0);
        comp ^= (out_bit ? std::uint64_t{1} : 0) << outPoint;
        comp ^= comp >> compLen;
        comp &= mask(compLen);
    }

    /** The folded value (compLen bits). */
    std::uint64_t value() const { return comp; }

    /** Window / folded widths. */
    BitCount windowBits() const { return origLen; }
    BitCount foldedBits() const { return compLen; }

    /** Reset to the all-not-taken state. */
    void clear() { comp = 0; }

    /**
     * From-scratch fold of @p history's length-origLen window; the
     * value an incrementally maintained fold must equal (used by the
     * property tests and by reset-state sanity checks).
     */
    std::uint64_t
    recompute(const LongHistory &history) const
    {
        std::uint64_t folded = 0;
        for (BitCount j = 0; j < origLen; ++j) {
            if (history.bit(j))
                folded ^= std::uint64_t{1} << (j % compLen);
        }
        return folded;
    }

  private:
    std::uint64_t comp = 0;
    BitCount origLen = 0;
    BitCount compLen = 1;
    BitCount outPoint = 0;
};

} // namespace bpsim

#endif // BPSIM_PREDICTOR_LONG_HISTORY_HH
