/**
 * @file
 * The YAGS predictor (Eden & Mudge, MICRO 1998) — extension.
 *
 * Yet Another Global Scheme attacks destructive aliasing from the
 * opposite direction to the paper's static hints: a PC-indexed
 * bimodal choice table captures each branch's bias, and two small
 * *tagged* direction caches (one consulted for bias-taken branches,
 * one for bias-not-taken) store only the exceptions — the
 * (pc, history) cases where a branch deviates from its bias. Tags
 * mean an exception entry is used only by the branch that created
 * it, so biased branches stop destroying each other's state.
 *
 * Included alongside agree/bi-mode so the library covers the full
 * family of dynamic anti-aliasing schemes the paper positions itself
 * against.
 */

#ifndef BPSIM_PREDICTOR_YAGS_HH
#define BPSIM_PREDICTOR_YAGS_HH

#include <cstddef>
#include <vector>

#include "predictor/counter_table.hh"
#include "predictor/global_history.hh"
#include "predictor/predictor.hh"

namespace bpsim
{

/** YAGS: bimodal choice plus tagged exception caches. */
class Yags : public BranchPredictor
{
  public:
    /**
     * @param size_bytes total budget; half goes to the choice table,
     *                   a quarter to each exception cache (whose
     *                   entries carry @p tag_bits of partial tag next
     *                   to a 2-bit counter)
     * @param tag_bits   partial tag width (default 6, as in the
     *                   original paper's evaluation)
     */
    explicit Yags(std::size_t size_bytes, BitCount tag_bits = 6);

    bool predict(Addr pc) override;
    void update(Addr pc, bool taken) override;
    void updateHistory(bool taken) override;
    void reset() override;
    std::size_t sizeBytes() const override;
    std::string name() const override { return "yags"; }
    CollisionStats collisionStats() const override;
    void clearCollisionStats() override;
    Count lastPredictCollisions() const override;

    void
    attachAliasSink(ContextAliasSink *sink) override
    {
        choice.setAliasSink(sink);
    }

    /** Entries in each exception cache. */
    std::size_t cacheEntries() const { return takenCache.size(); }

  private:
    /** One tagged exception entry. */
    struct CacheEntry
    {
        SatCounter counter{2, 1};
        std::uint16_t tag = 0;
        bool valid = false;
    };

    std::size_t choiceIndex(Addr pc) const;
    std::size_t cacheIndex(Addr pc) const;
    std::uint16_t tagOf(Addr pc) const;

    CounterTable choice;
    std::vector<CacheEntry> takenCache;
    std::vector<CacheEntry> notTakenCache;
    GlobalHistory history;
    BitCount tagBits;
    BitCount cacheIndexBits;

    // Lookup state latched by predict() for update().
    std::size_t lastChoiceIdx = 0;
    std::size_t lastCacheIdx = 0;
    bool lastChoiceTaken = false;
    bool lastCacheHit = false;
    bool lastPrediction = false;
};

} // namespace bpsim

#endif // BPSIM_PREDICTOR_YAGS_HH
