/**
 * @file
 * The global branch-history ("ghist") register.
 */

#ifndef BPSIM_PREDICTOR_GLOBAL_HISTORY_HH
#define BPSIM_PREDICTOR_GLOBAL_HISTORY_HH

#include <cstdint>

#include "support/bits.hh"
#include "support/logging.hh"
#include "support/types.hh"

namespace bpsim
{

/**
 * Shift register of recent branch outcomes, LSB = most recent.
 * Tracks up to 64 outcomes; consumers slice off what they need.
 */
class GlobalHistory
{
  public:
    /** @param bits number of outcomes retained (1..64). */
    explicit GlobalHistory(BitCount bits = 64) : numBits(bits)
    {
        bpsim_assert(bits >= 1 && bits <= 64, "bad history width");
    }

    /** Shift in one outcome. */
    void
    push(bool taken)
    {
        bits = ((bits << 1) | (taken ? 1 : 0)) & mask(numBits);
    }

    /** The full register value. */
    std::uint64_t value() const { return bits; }

    /** The @p n most recent outcomes (n <= width). */
    std::uint64_t
    recent(BitCount n) const
    {
        bpsim_assert(n <= numBits, "slice wider than register");
        return bits & mask(n);
    }

    /** Register width in bits. */
    BitCount width() const { return numBits; }

    /** Clear to the power-on (all not-taken) state. */
    void clear() { bits = 0; }

    /**
     * Restore the register to an explicit value. Used by the batch
     * replay kernels, which evolve the history in a register and sync
     * it back at segment boundaries.
     */
    void set(std::uint64_t value) { bits = value & mask(numBits); }

  private:
    std::uint64_t bits = 0;
    BitCount numBits;
};

} // namespace bpsim

#endif // BPSIM_PREDICTOR_GLOBAL_HISTORY_HH
