#include "predictor/yags.hh"

#include "predictor/registry.hh"

#include "support/bits.hh"
#include "support/logging.hh"
#include "predictor/table_size.hh"

namespace bpsim
{

namespace
{

/**
 * Exception-cache entries for a byte budget: each entry costs
 * (2 + tag_bits) bits; round down to a power of two.
 */
std::size_t
cacheEntriesForBudget(std::size_t size_bytes, BitCount tag_bits)
{
    bpsim_assert(size_bytes >= 16, "YAGS cache budget too small");
    const std::size_t budget_bits = size_bytes * 8;
    const std::size_t per_entry = 2 + tag_bits;
    std::size_t entries = 1;
    while (entries * 2 * per_entry <= budget_bits)
        entries *= 2;
    return entries;
}

} // namespace

Yags::Yags(std::size_t size_bytes, BitCount tag_bits)
    : choice(entriesForBudget(size_bytes / 2, 2), 2,
             SatCounter::weak(2, false).value()),
      takenCache(cacheEntriesForBudget(size_bytes / 4, tag_bits)),
      notTakenCache(takenCache.size()),
      history(floorLog2(takenCache.size())),
      tagBits(tag_bits),
      cacheIndexBits(floorLog2(takenCache.size()))
{
    bpsim_assert(tag_bits >= 1 && tag_bits <= 16, "bad tag width");
}

std::size_t
Yags::choiceIndex(Addr pc) const
{
    return static_cast<std::size_t>((pc / instructionBytes) &
                                    mask(choice.indexBits()));
}

std::size_t
Yags::cacheIndex(Addr pc) const
{
    // Gshare-style index into the exception caches.
    const std::uint64_t addr =
        foldBits(pc / instructionBytes, cacheIndexBits);
    return static_cast<std::size_t>((addr ^ history.value()) &
                                    mask(cacheIndexBits));
}

std::uint16_t
Yags::tagOf(Addr pc) const
{
    return static_cast<std::uint16_t>((pc / instructionBytes) &
                                      mask(tagBits));
}

bool
Yags::predict(Addr pc)
{
    lastChoiceIdx = choiceIndex(pc);
    lastCacheIdx = cacheIndex(pc);
    lastChoiceTaken = choice.lookup(lastChoiceIdx, pc).taken();

    // The cache consulted is the one holding exceptions to the
    // choice's direction.
    const auto &cache = lastChoiceTaken ? notTakenCache : takenCache;
    const CacheEntry &entry = cache[lastCacheIdx];
    lastCacheHit = entry.valid && entry.tag == tagOf(pc);

    lastPrediction =
        lastCacheHit ? entry.counter.taken() : lastChoiceTaken;
    return lastPrediction;
}

void
Yags::update(Addr pc, bool taken)
{
    const bool correct = lastPrediction == taken;
    choice.classify(correct);

    auto &cache = lastChoiceTaken ? notTakenCache : takenCache;
    CacheEntry &entry = cache[lastCacheIdx];

    if (lastCacheHit) {
        entry.counter.train(taken);
    } else if (taken != lastChoiceTaken) {
        // A new exception: allocate (replacing whatever was there).
        entry.valid = true;
        entry.tag = tagOf(pc);
        entry.counter = SatCounter::weak(2, taken);
    }

    // The choice table trains like bimodal, except it is not updated
    // when it disagrees with the outcome but the final (cache-served)
    // prediction was correct — the exception is doing its job, and
    // flipping the choice would orphan it.
    const bool choice_opposes = lastChoiceTaken != taken;
    if (!(choice_opposes && correct))
        choice.at(lastChoiceIdx).train(taken);
}

void
Yags::updateHistory(bool taken)
{
    history.push(taken);
}

void
Yags::reset()
{
    choice.reset();
    takenCache.assign(takenCache.size(), CacheEntry{});
    notTakenCache.assign(notTakenCache.size(), CacheEntry{});
    history.clear();
}

std::size_t
Yags::sizeBytes() const
{
    const std::size_t cache_bits =
        (takenCache.size() + notTakenCache.size()) * (2 + tagBits);
    return choice.sizeBytes() + cache_bits / 8;
}

CollisionStats
Yags::collisionStats() const
{
    // Only the (untagged) choice table can alias; the exception
    // caches are tagged by construction.
    return choice.stats();
}

void
Yags::clearCollisionStats()
{
    choice.clearStats();
}

Count
Yags::lastPredictCollisions() const
{
    return choice.pending();
}

BPSIM_REGISTER_PREDICTOR(
    yags,
    PredictorInfo{
        .name = "yags",
        .description = "tagged exception caches over a choice table",
        .make =
            [](std::size_t bytes) {
                return std::make_unique<Yags>(bytes);
            },
        .paperKind = false,
        .kernelCapable = false,
    })

} // namespace bpsim
