/**
 * @file
 * The gselect predictor (extension): McFarling's concatenation
 * variant, where the table index is formed from low branch-address
 * bits concatenated with recent global history instead of gshare's
 * XOR. Included because it brackets gshare in the classic design
 * space and makes the indexing-scheme dimension of the aliasing
 * problem (Sprangle's technique #2) directly measurable.
 */

#ifndef BPSIM_PREDICTOR_GSELECT_HH
#define BPSIM_PREDICTOR_GSELECT_HH

#include <cstddef>

#include "predictor/counter_table.hh"
#include "predictor/global_history.hh"
#include "predictor/predictor.hh"

namespace bpsim
{

/** Address++history concatenation-indexed predictor. */
class Gselect : public BranchPredictor
{
  public:
    /**
     * @param size_bytes   hardware budget
     * @param history_bits history bits in the index (0 = half the
     *                     index width, the classic balanced split)
     * @param counter_bits counter width (default 2)
     */
    explicit Gselect(std::size_t size_bytes, BitCount history_bits = 0,
                     BitCount counter_bits = 2);

    bool predict(Addr pc) override;
    void update(Addr pc, bool taken) override;
    void updateHistory(bool taken) override;
    void reset() override;
    std::size_t sizeBytes() const override;
    std::string name() const override { return "gselect"; }
    CollisionStats collisionStats() const override;
    void clearCollisionStats() override;
    Count lastPredictCollisions() const override;

    void
    attachAliasSink(ContextAliasSink *sink) override
    {
        table.setAliasSink(sink);
    }

    /** History bits participating in the index. */
    BitCount historyBits() const { return history.width(); }

  private:
    std::size_t index(Addr pc) const;

    CounterTable table;
    GlobalHistory history;
    std::size_t lastIndex = 0;
};

} // namespace bpsim

#endif // BPSIM_PREDICTOR_GSELECT_HH
