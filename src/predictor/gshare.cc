#include "predictor/gshare.hh"

#include "predictor/registry.hh"

#include "predictor/table_size.hh"

namespace bpsim
{

Gshare::Gshare(std::size_t size_bytes, BitCount history_bits,
               BitCount counter_bits)
    : table(entriesForBudget(size_bytes, counter_bits), counter_bits,
            SatCounter::weak(counter_bits, false).value()),
      history(history_bits == 0 ? table.indexBits() : history_bits)
{
    bpsim_assert(history.width() <= table.indexBits(),
                 "gshare history longer than index");
}

bool
Gshare::predict(Addr pc)
{
    return predictStep<true>(pc);
}

void
Gshare::update(Addr pc, bool taken)
{
    updateStep<true>(pc, taken);
}

void
Gshare::updateHistory(bool taken)
{
    historyStep(taken);
}

void
Gshare::reset()
{
    table.reset();
    history.clear();
}

std::size_t
Gshare::sizeBytes() const
{
    return table.sizeBytes();
}

CollisionStats
Gshare::collisionStats() const
{
    return table.stats();
}

void
Gshare::clearCollisionStats()
{
    table.clearStats();
}

Count
Gshare::lastPredictCollisions() const
{
    return pendingStep();
}

BPSIM_REGISTER_PREDICTOR(
    gshare,
    PredictorInfo{
        .name = "gshare",
        .description = "PC xor global-history indexed counters (McFarling)",
        .make =
            [](std::size_t bytes) {
                return std::make_unique<Gshare>(bytes);
            },
        .paperKind = true,
        .kernelCapable = true,
        .batchCapable = true,
    })

} // namespace bpsim
