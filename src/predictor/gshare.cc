#include "predictor/gshare.hh"

#include "support/bits.hh"
#include "predictor/table_size.hh"

namespace bpsim
{

Gshare::Gshare(std::size_t size_bytes, BitCount history_bits,
               BitCount counter_bits)
    : table(entriesForBudget(size_bytes, counter_bits), counter_bits,
            SatCounter::weak(counter_bits, false).value()),
      history(history_bits == 0 ? table.indexBits() : history_bits)
{
    bpsim_assert(history.width() <= table.indexBits(),
                 "gshare history longer than index");
}

std::size_t
Gshare::index(Addr pc) const
{
    const std::uint64_t addr_bits =
        foldBits(pc / instructionBytes, table.indexBits());
    return static_cast<std::size_t>(
        (addr_bits ^ history.value()) & mask(table.indexBits()));
}

bool
Gshare::predict(Addr pc)
{
    lastIndex = index(pc);
    return table.lookup(lastIndex, pc).taken();
}

void
Gshare::update(Addr pc, bool taken)
{
    (void)pc;
    const bool correct = table.at(lastIndex).taken() == taken;
    table.classify(correct);
    table.at(lastIndex).train(taken);
}

void
Gshare::updateHistory(bool taken)
{
    history.push(taken);
}

void
Gshare::reset()
{
    table.reset();
    history.clear();
}

std::size_t
Gshare::sizeBytes() const
{
    return table.sizeBytes();
}

CollisionStats
Gshare::collisionStats() const
{
    return table.stats();
}

void
Gshare::clearCollisionStats()
{
    table.clearStats();
}

Count
Gshare::lastPredictCollisions() const
{
    return table.pending();
}

} // namespace bpsim
