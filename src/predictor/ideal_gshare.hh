/**
 * @file
 * Interference-free gshare (extension): an unbounded table keyed by
 * the exact (pc, history) pair, so no two branches ever share a
 * counter. Not implementable hardware — a measurement instrument.
 *
 * Comparing a real gshare against IdealGshare at the same history
 * length isolates exactly the quantity the paper is about: the
 * misprediction cost of aliasing. The aliasing_loss bench uses it to
 * report how much of that cost each static scheme recovers.
 */

#ifndef BPSIM_PREDICTOR_IDEAL_GSHARE_HH
#define BPSIM_PREDICTOR_IDEAL_GSHARE_HH

#include <cstddef>
#include <unordered_map>

#include "predictor/global_history.hh"
#include "predictor/predictor.hh"
#include "support/sat_counter.hh"

namespace bpsim
{

/** Unbounded, alias-free gshare-equivalent predictor. */
class IdealGshare : public BranchPredictor
{
  public:
    /** @param history_bits global history length (default 13, the
     * length a 4 KB gshare would use). */
    explicit IdealGshare(BitCount history_bits = 13);

    bool predict(Addr pc) override;
    void update(Addr pc, bool taken) override;
    void updateHistory(bool taken) override;
    void reset() override;

    /** Unbounded storage: reported as 0 (not a hardware design). */
    std::size_t sizeBytes() const override { return 0; }

    std::string name() const override { return "ideal-gshare"; }

    /** Alias-free by construction: always empty statistics. */
    CollisionStats collisionStats() const override { return {}; }
    void clearCollisionStats() override {}

    /** Distinct (pc, history) pairs ever observed. */
    std::size_t tableEntries() const { return counters.size(); }

  private:
    std::uint64_t key(Addr pc) const;

    std::unordered_map<std::uint64_t, SatCounter> counters;
    GlobalHistory history;
    std::uint64_t lastKey = 0;
};

} // namespace bpsim

#endif // BPSIM_PREDICTOR_IDEAL_GSHARE_HH
