#include "predictor/two_bc_gskew.hh"

#include "predictor/registry.hh"

#include <algorithm>

#include "predictor/table_size.hh"

namespace bpsim
{

namespace
{

constexpr BitCount counterBits = 2;

BitCount
autoHistory(BitCount requested, BitCount fallback)
{
    return requested == 0 ? fallback : requested;
}

} // namespace

TwoBcGskew::TwoBcGskew(std::size_t size_bytes, BitCount hist_g0,
                       BitCount hist_g1, BitCount hist_meta)
    : bim(entriesForBudget(size_bytes / 4, counterBits), counterBits,
          SatCounter::weak(counterBits, false).value()),
      g0(bim.entries(), counterBits,
         SatCounter::weak(counterBits, false).value()),
      g1(bim.entries(), counterBits,
         SatCounter::weak(counterBits, false).value()),
      meta(bim.entries(), counterBits,
           SatCounter::weak(counterBits, true).value()),
      history(64),
      histG0(autoHistory(hist_g0, std::max(1u, bim.indexBits() / 2))),
      histG1(autoHistory(hist_g1, bim.indexBits())),
      histMeta(autoHistory(hist_meta, std::max(1u, bim.indexBits() / 2)))
{
    bpsim_assert(size_bytes >= 4, "2bcgskew budget too small");
    bpsim_assert(histG0 <= 64 && histG1 <= 64 && histMeta <= 64,
                 "history too long");
}

bool
TwoBcGskew::predict(Addr pc)
{
    return predictStep<true>(pc);
}

void
TwoBcGskew::update(Addr pc, bool taken)
{
    updateStep<true>(pc, taken);
}

void
TwoBcGskew::updateHistory(bool taken)
{
    historyStep(taken);
}

void
TwoBcGskew::reset()
{
    bim.reset();
    g0.reset();
    g1.reset();
    meta.reset();
    history.clear();
}

std::size_t
TwoBcGskew::sizeBytes() const
{
    return bim.sizeBytes() + g0.sizeBytes() + g1.sizeBytes() +
           meta.sizeBytes();
}

CollisionStats
TwoBcGskew::collisionStats() const
{
    CollisionStats stats;
    stats += bim.stats();
    stats += g0.stats();
    stats += g1.stats();
    stats += meta.stats();
    return stats;
}

void
TwoBcGskew::clearCollisionStats()
{
    bim.clearStats();
    g0.clearStats();
    g1.clearStats();
    meta.clearStats();
}

Count
TwoBcGskew::lastPredictCollisions() const
{
    return pendingStep();
}

BPSIM_REGISTER_PREDICTOR(
    twobcgskew,
    PredictorInfo{
        .name = "2bcgskew",
        .description = "skewed majority-vote hybrid (Seznec & Michaud)",
        .make =
            [](std::size_t bytes) {
                return std::make_unique<TwoBcGskew>(bytes);
            },
        .paperKind = true,
        .kernelCapable = true,
        .batchCapable = true,
    })

} // namespace bpsim
