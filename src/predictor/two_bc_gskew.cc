#include "predictor/two_bc_gskew.hh"

#include "support/bits.hh"
#include "support/skew.hh"
#include "predictor/table_size.hh"

namespace bpsim
{

namespace
{

constexpr BitCount counterBits = 2;

BitCount
autoHistory(BitCount requested, BitCount fallback)
{
    return requested == 0 ? fallback : requested;
}

} // namespace

TwoBcGskew::TwoBcGskew(std::size_t size_bytes, BitCount hist_g0,
                       BitCount hist_g1, BitCount hist_meta)
    : bim(entriesForBudget(size_bytes / 4, counterBits), counterBits,
          SatCounter::weak(counterBits, false).value()),
      g0(bim.entries(), counterBits,
         SatCounter::weak(counterBits, false).value()),
      g1(bim.entries(), counterBits,
         SatCounter::weak(counterBits, false).value()),
      meta(bim.entries(), counterBits,
           SatCounter::weak(counterBits, true).value()),
      history(64),
      histG0(autoHistory(hist_g0, std::max(1u, bim.indexBits() / 2))),
      histG1(autoHistory(hist_g1, bim.indexBits())),
      histMeta(autoHistory(hist_meta, std::max(1u, bim.indexBits() / 2)))
{
    bpsim_assert(size_bytes >= 4, "2bcgskew budget too small");
    bpsim_assert(histG0 <= 64 && histG1 <= 64 && histMeta <= 64,
                 "history too long");
}

std::size_t
TwoBcGskew::bimIndex(Addr pc) const
{
    return static_cast<std::size_t>((pc / instructionBytes) &
                                    mask(bim.indexBits()));
}

std::size_t
TwoBcGskew::skewedIndex(unsigned bank, Addr pc, BitCount hist_bits) const
{
    const BitCount bits = g0.indexBits();
    const std::uint64_t v1 = foldBits(pc / instructionBytes, bits);
    const std::uint64_t v2 = foldBits(history.recent(hist_bits), bits);
    return static_cast<std::size_t>(skewIndex(bank, v1, v2, bits));
}

std::size_t
TwoBcGskew::metaIndex(Addr pc) const
{
    const BitCount bits = meta.indexBits();
    const std::uint64_t v1 = foldBits(pc / instructionBytes, bits);
    const std::uint64_t v2 = foldBits(history.recent(histMeta), bits);
    return static_cast<std::size_t>((v1 ^ v2) & mask(bits));
}

bool
TwoBcGskew::predict(Addr pc)
{
    last.bimIdx = bimIndex(pc);
    last.g0Idx = skewedIndex(0, pc, histG0);
    last.g1Idx = skewedIndex(1, pc, histG1);
    last.metaIdx = metaIndex(pc);

    last.bimPred = bim.lookup(last.bimIdx, pc).taken();
    last.g0Pred = g0.lookup(last.g0Idx, pc).taken();
    last.g1Pred = g1.lookup(last.g1Idx, pc).taken();

    const int votes = (last.bimPred ? 1 : 0) + (last.g0Pred ? 1 : 0) +
                      (last.g1Pred ? 1 : 0);
    last.majority = votes >= 2;

    last.useMajority = meta.lookup(last.metaIdx, pc).taken();
    last.finalPred = last.useMajority ? last.majority : last.bimPred;
    return last.finalPred;
}

void
TwoBcGskew::update(Addr pc, bool taken)
{
    (void)pc;
    const bool correct = last.finalPred == taken;

    bim.classify(correct);
    g0.classify(correct);
    g1.classify(correct);
    meta.classify(correct);

    if (!correct) {
        // Bad overall prediction: retrain all three voting banks.
        bim.at(last.bimIdx).train(taken);
        g0.at(last.g0Idx).train(taken);
        g1.at(last.g1Idx).train(taken);
    } else if (last.useMajority) {
        // Correct via the majority vote: strengthen only the banks
        // that voted with the (correct) majority.
        if (last.bimPred == taken)
            bim.at(last.bimIdx).train(taken);
        if (last.g0Pred == taken)
            g0.at(last.g0Idx).train(taken);
        if (last.g1Pred == taken)
            g1.at(last.g1Idx).train(taken);
    } else {
        // Correct via the bimodal component alone.
        bim.at(last.bimIdx).train(taken);
    }

    // Meta trains only when the components disagree, toward whichever
    // was correct.
    if (last.majority != last.bimPred)
        meta.at(last.metaIdx).train(last.majority == taken);
}

void
TwoBcGskew::updateHistory(bool taken)
{
    history.push(taken);
}

void
TwoBcGskew::reset()
{
    bim.reset();
    g0.reset();
    g1.reset();
    meta.reset();
    history.clear();
}

std::size_t
TwoBcGskew::sizeBytes() const
{
    return bim.sizeBytes() + g0.sizeBytes() + g1.sizeBytes() +
           meta.sizeBytes();
}

CollisionStats
TwoBcGskew::collisionStats() const
{
    CollisionStats stats;
    stats += bim.stats();
    stats += g0.stats();
    stats += g1.stats();
    stats += meta.stats();
    return stats;
}

void
TwoBcGskew::clearCollisionStats()
{
    bim.clearStats();
    g0.clearStats();
    g1.clearStats();
    meta.clearStats();
}

Count
TwoBcGskew::lastPredictCollisions() const
{
    return bim.pending() + g0.pending() + g1.pending() + meta.pending();
}

} // namespace bpsim
