/**
 * @file
 * Hashed perceptron predictor (Jiménez & Lin's perceptron with
 * Tarjan & Skadron's hashed-weight organization).
 *
 * Eight weight tables, each indexed by a hash of the branch address
 * and a different-length slice of the global history (0..64 bits;
 * length 0 is the bias table). The prediction is the sign of the sum
 * of the selected weights; training adjusts every selected weight by
 * +/-1 toward the outcome when the prediction was wrong or the sum's
 * magnitude was below the training threshold.
 *
 * Weights live in 8-bit CounterTables using a biased representation
 * (stored value - 128 = signed weight), so the existing
 * structure-of-arrays storage and §5 collision instrumentation apply
 * unchanged: a tag mismatch on a weight lookup is exactly the
 * cross-branch weight sharing whose constructive/destructive split
 * the experiment reports.
 */

#ifndef BPSIM_PREDICTOR_PERCEPTRON_HH
#define BPSIM_PREDICTOR_PERCEPTRON_HH

#include <array>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "predictor/counter_table.hh"
#include "predictor/global_history.hh"
#include "predictor/predictor.hh"
#include "support/bits.hh"

namespace bpsim
{

/**
 * Hashed perceptron. The inline *Step methods are the non-virtual
 * per-branch protocol used by the devirtualized replay kernels; the
 * virtual interface forwards to them.
 */
class HashedPerceptron : public BranchPredictor
{
  public:
    /** Weight tables (one history-slice feature each). */
    static constexpr unsigned numTables = 8;

    /** History bits feeding each table's index hash. */
    static constexpr std::array<BitCount, numTables> featureBits = {
        0, 2, 4, 8, 16, 32, 48, 64};

    /** Stored weight value representing zero (bias encoding). */
    static constexpr int weightBias = 128;

    /** @param size_bytes hardware budget (one byte per weight). */
    explicit HashedPerceptron(std::size_t size_bytes);

    bool predict(Addr pc) override;
    void update(Addr pc, bool taken) override;
    void updateHistory(bool taken) override;
    void reset() override;
    std::size_t sizeBytes() const override;
    std::string name() const override { return "perceptron"; }
    CollisionStats collisionStats() const override;
    void clearCollisionStats() override;
    Count lastPredictCollisions() const override;

    void
    attachAliasSink(ContextAliasSink *sink) override
    {
        for (CounterTable &table : tables)
            table.setAliasSink(sink);
    }

    /** Non-virtual predict(): sign of the selected-weight sum. */
    template <bool Track>
    bool
    predictStep(Addr pc)
    {
        const std::uint64_t pc_index = pc / instructionBytes;
        int sum = 0;
        for (unsigned t = 0; t < numTables; ++t) {
            last.idx[t] = tableIndex(t, pc_index);
            sum += static_cast<int>(
                       tables[t].lookup<Track>(last.idx[t], pc).value()) -
                   weightBias;
        }
        last.sum = sum;
        last.finalPred = sum >= 0;
        return last.finalPred;
    }

    /** Non-virtual update(): perceptron training rule. */
    template <bool Track>
    void
    updateStep(Addr pc, bool taken)
    {
        (void)pc;
        const bool correct = last.finalPred == taken;

        if constexpr (Track) {
            for (CounterTable &table : tables)
                table.classify(correct);
        }

        const int magnitude = last.sum < 0 ? -last.sum : last.sum;
        if (!correct || magnitude <= trainingThreshold) {
            for (unsigned t = 0; t < numTables; ++t)
                tables[t].entry(last.idx[t]).train(taken);
        }
    }

    /** Non-virtual updateHistory(). */
    void historyStep(bool taken) { history.push(taken); }

    /** Non-virtual lastPredictCollisions(). */
    Count
    pendingStep() const
    {
        Count pending = 0;
        for (const CounterTable &table : tables)
            pending += table.pending();
        return pending;
    }

    /**
     * @name Introspection for the property tests
     */
    ///@{
    /** Entries per weight table. */
    std::size_t tableEntries() const { return tables[0].entries(); }

    /** Training threshold theta. */
    int threshold() const { return trainingThreshold; }

    /** Weight sum latched by the last predict. */
    int lastSum() const { return last.sum; }

    /** Signed weight of table @p t, entry @p idx. */
    int weightAt(unsigned t, std::size_t idx) const;
    ///@}

  private:
    std::size_t
    tableIndex(unsigned t, std::uint64_t pc_index) const
    {
        const BitCount bits = tables[t].indexBits();
        const std::uint64_t hist =
            foldBits(history.recent(featureBits[t]), bits);
        // mix64 of the table number decorrelates tables that share a
        // history slice width with their neighbors (t = 0 keeps the
        // plain PC index so the bias table is a true per-branch bias).
        const std::uint64_t salt =
            t == 0 ? 0 : foldBits(mix64(t), bits);
        return tables[t].indexFor(foldBits(pc_index, bits) ^ hist ^
                                  salt);
    }

    std::vector<CounterTable> tables;
    GlobalHistory history;
    int trainingThreshold;

    // Lookup state latched by predict() for update().
    struct LookupState
    {
        std::array<std::size_t, numTables> idx{};
        int sum = 0;
        bool finalPred = false;
    } last;
};

} // namespace bpsim

#endif // BPSIM_PREDICTOR_PERCEPTRON_HH
