/**
 * @file
 * Per-static-branch profile record.
 */

#ifndef BPSIM_PROFILE_BRANCH_PROFILE_HH
#define BPSIM_PROFILE_BRANCH_PROFILE_HH

#include "support/types.hh"

namespace bpsim
{

/**
 * Execution statistics of one static branch, as a profiling run (the
 * paper's Atom instrumentation, our simulation engine) collects them:
 * outcome counts, and optionally the accuracy a specific dynamic
 * predictor achieved on the branch (the input to Static_Acc).
 */
struct BranchProfile
{
    /** Times the branch executed. */
    Count executed = 0;

    /** Times it was taken. */
    Count taken = 0;

    /** Dynamic-predictor predictions observed for this branch. */
    Count predicted = 0;

    /** How many of those predictions were correct. */
    Count correct = 0;

    /** Predictor-table collisions observed at this branch's lookups. */
    Count collisions = 0;

    /** Fraction of executions that were taken (0 when never run). */
    double
    takenRate() const
    {
        return executed == 0
                   ? 0.0
                   : static_cast<double>(taken) /
                         static_cast<double>(executed);
    }

    /**
     * The paper's bias: max(taken-bias, not-taken-bias), in [0.5, 1]
     * for any executed branch.
     */
    double
    bias() const
    {
        const double t = takenRate();
        return t >= 0.5 ? t : 1.0 - t;
    }

    /** Majority direction (true = taken). */
    bool majorityTaken() const { return 2 * taken >= executed; }

    /** Per-branch dynamic prediction accuracy (0 when unmeasured). */
    double
    accuracy() const
    {
        return predicted == 0
                   ? 0.0
                   : static_cast<double>(correct) /
                         static_cast<double>(predicted);
    }

    /** Collisions per dynamic prediction (0 when unmeasured). */
    double
    collisionRate() const
    {
        return predicted == 0
                   ? 0.0
                   : static_cast<double>(collisions) /
                         static_cast<double>(predicted);
    }

    /** Accumulate another run's counts (Spike-style profile merge). */
    BranchProfile &
    operator+=(const BranchProfile &other)
    {
        executed += other.executed;
        taken += other.taken;
        predicted += other.predicted;
        correct += other.correct;
        collisions += other.collisions;
        return *this;
    }
};

} // namespace bpsim

#endif // BPSIM_PROFILE_BRANCH_PROFILE_HH
