#include "profile/repository.hh"

#include <algorithm>
#include <filesystem>

#include "support/logging.hh"

namespace bpsim
{

namespace fs = std::filesystem;

ProfileRepository::ProfileRepository(std::string directory)
    : directory(std::move(directory))
{
    std::error_code ec;
    fs::create_directories(this->directory, ec);
    if (ec) {
        bpsim_fatal("cannot create profile repository '",
                    this->directory, "': ", ec.message());
    }
}

std::string
ProfileRepository::runPath(const std::string &program,
                           unsigned run) const
{
    return directory + "/" + program + ".run" + std::to_string(run) +
           ".profile";
}

unsigned
ProfileRepository::runCount(const std::string &program) const
{
    unsigned runs = 0;
    while (fs::exists(runPath(program, runs)))
        ++runs;
    return runs;
}

unsigned
ProfileRepository::addRun(const std::string &program,
                          const ProfileDb &profile)
{
    const unsigned run = runCount(program);
    profile.save(runPath(program, run));
    return run;
}

ProfileDb
ProfileRepository::loadRun(const std::string &program,
                           unsigned run) const
{
    if (!fs::exists(runPath(program, run)))
        bpsim_fatal("no run ", run, " for program '", program,
                    "' in '", directory, "'");
    return ProfileDb::load(runPath(program, run));
}

ProfileDb
ProfileRepository::merged(const std::string &program) const
{
    ProfileDb merged_db;
    const unsigned runs = runCount(program);
    for (unsigned run = 0; run < runs; ++run)
        merged_db.mergeAdd(loadRun(program, run));
    return merged_db;
}

ProfileDb
ProfileRepository::stableMerged(const std::string &program,
                                double max_bias_spread) const
{
    const unsigned runs = runCount(program);
    std::vector<ProfileDb> run_dbs;
    run_dbs.reserve(runs);
    for (unsigned run = 0; run < runs; ++run)
        run_dbs.push_back(loadRun(program, run));

    ProfileDb merged_db;
    for (const auto &db : run_dbs)
        merged_db.mergeAdd(db);

    // Filter: keep a branch only if its per-run taken rates stay
    // within max_bias_spread of each other.
    ProfileDb stable;
    for (const auto &[pc, total] : merged_db.entries()) {
        double lo = 1.0;
        double hi = 0.0;
        bool executed_somewhere = false;
        for (const auto &db : run_dbs) {
            const BranchProfile *record = db.find(pc);
            if (record == nullptr || record->executed == 0)
                continue;
            executed_somewhere = true;
            lo = std::min(lo, record->takenRate());
            hi = std::max(hi, record->takenRate());
        }
        if (executed_somewhere && hi - lo <= max_bias_spread)
            stable.setEntry(pc, total);
    }
    return stable;
}

} // namespace bpsim
