/**
 * @file
 * Profile database: per-branch statistics for a whole program run,
 * with the merge and filtering operations of the paper's §5.1 (the
 * Spike profile-database workflow).
 */

#ifndef BPSIM_PROFILE_PROFILE_DB_HH
#define BPSIM_PROFILE_PROFILE_DB_HH

#include <string>
#include <unordered_map>

#include "profile/branch_profile.hh"
#include "support/types.hh"
#include "trace/branch_stream.hh"

namespace bpsim
{

/** Map from branch PC to its profile record. */
class ProfileDb
{
  public:
    using Map = std::unordered_map<Addr, BranchProfile>;

    /** Record one executed outcome. */
    void
    recordOutcome(Addr pc, bool taken)
    {
        auto &profile = profiles[pc];
        ++profile.executed;
        if (taken)
            ++profile.taken;
    }

    /** Record one dynamic prediction for the branch. */
    void
    recordPrediction(Addr pc, bool correct)
    {
        auto &profile = profiles[pc];
        ++profile.predicted;
        if (correct)
            ++profile.correct;
    }

    /** Attribute @p n predictor-table collisions to the branch. */
    void
    recordCollisions(Addr pc, Count n)
    {
        profiles[pc].collisions += n;
    }

    /**
     * Accumulate pre-aggregated counts for one branch. Equivalent to
     * replaying the individual record*() calls the counts summarise;
     * the fused replay kernels use this to flush their dense per-site
     * accumulators.
     */
    void
    addCounts(Addr pc, const BranchProfile &delta)
    {
        profiles[pc] += delta;
    }

    /** Profile of @p pc, or null if the branch never executed. */
    const BranchProfile *find(Addr pc) const;

    /** Number of distinct static branches seen. */
    std::size_t size() const { return profiles.size(); }

    /** Total dynamic branch executions recorded. */
    Count totalExecuted() const;

    /** Dynamic executions attributable to branches above @p bias. */
    Count executedAboveBias(double bias) const;

    /** Whole-map access for iteration. */
    const Map &entries() const { return profiles; }

    /** Insert or overwrite the record of one branch. */
    void
    setEntry(Addr pc, const BranchProfile &profile)
    {
        profiles[pc] = profile;
    }

    /** Accumulate another database's counts into this one. */
    void mergeAdd(const ProfileDb &other);

    /** Save as text ("pc executed taken predicted correct" lines). */
    void save(const std::string &path) const;

    /** Load a database saved by save(). */
    static ProfileDb load(const std::string &path);

    /**
     * Collect a bias-only profile by running @p stream for at most
     * @p max_branches records.
     */
    static ProfileDb collect(BranchStream &stream, Count max_branches);

  private:
    Map profiles;
};

/**
 * Train-vs-ref drift statistics (the paper's Table 5). "Static"
 * percentages weigh every branch equally; "dynamic" percentages weigh
 * branches by their execution count under the reference input.
 */
struct CrossInputStats
{
    double seenWithTrainStatic = 0.0;
    double seenWithTrainDynamic = 0.0;
    double majorityFlipStatic = 0.0;
    double majorityFlipDynamic = 0.0;
    double biasChangeUnder5Static = 0.0;
    double biasChangeUnder5Dynamic = 0.0;
    double biasChangeOver50Static = 0.0;
    double biasChangeOver50Dynamic = 0.0;
};

/** Compare a train profile against a ref profile (Table 5). */
CrossInputStats compareProfiles(const ProfileDb &train,
                                const ProfileDb &ref);

/**
 * The §5.1 merge filter: keep only the train-profile entries of
 * branches whose bias changed by at most @p max_bias_change between
 * the two profiles (and which appear in both). Static selection run
 * on the result avoids branches whose behaviour is input-dependent.
 */
ProfileDb stableSubset(const ProfileDb &train, const ProfileDb &ref,
                       double max_bias_change);

} // namespace bpsim

#endif // BPSIM_PROFILE_PROFILE_DB_HH
