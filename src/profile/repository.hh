/**
 * @file
 * On-disk profile repository modelling the Spike workflow of §5.1:
 * every instrumented run of a program appends its profile to the
 * program's database, and the optimizer later reads either the raw
 * merged profile or a *stable* subset that drops branches whose bias
 * moves too much across runs (the paper's proposed fix for the
 * cross-training hazard).
 */

#ifndef BPSIM_PROFILE_REPOSITORY_HH
#define BPSIM_PROFILE_REPOSITORY_HH

#include <string>
#include <vector>

#include "profile/profile_db.hh"

namespace bpsim
{

/** Directory-backed store of per-program, per-run profiles. */
class ProfileRepository
{
  public:
    /** Open (creating if needed) the repository at @p directory. */
    explicit ProfileRepository(std::string directory);

    /** Append one run's profile for @p program; returns run index. */
    unsigned addRun(const std::string &program,
                    const ProfileDb &profile);

    /** Number of stored runs for @p program. */
    unsigned runCount(const std::string &program) const;

    /** Load one stored run (0-based). */
    ProfileDb loadRun(const std::string &program, unsigned run) const;

    /**
     * All runs merged by summed counts — the profile a Spike-style
     * optimizer would consume when it trusts every run equally.
     */
    ProfileDb merged(const std::string &program) const;

    /**
     * Merge restricted to branches whose taken-rate varies by at most
     * @p max_bias_spread across all runs that executed them (and
     * which appear in every run that could have executed them is NOT
     * required — coverage holes are fine, instability is not). This
     * is the §5.1 anomaly filter generalised from two runs to many.
     */
    ProfileDb stableMerged(const std::string &program,
                           double max_bias_spread) const;

  private:
    std::string runPath(const std::string &program,
                        unsigned run) const;

    std::string directory;
};

} // namespace bpsim

#endif // BPSIM_PROFILE_REPOSITORY_HH
