#include "profile/profile_db.hh"

#include <cinttypes>
#include <cmath>
#include <cstdio>

#include "support/logging.hh"
#include "support/stats.hh"

namespace bpsim
{

const BranchProfile *
ProfileDb::find(Addr pc) const
{
    const auto it = profiles.find(pc);
    return it == profiles.end() ? nullptr : &it->second;
}

Count
ProfileDb::totalExecuted() const
{
    Count total = 0;
    for (const auto &[pc, profile] : profiles)
        total += profile.executed;
    return total;
}

Count
ProfileDb::executedAboveBias(double bias) const
{
    Count total = 0;
    for (const auto &[pc, profile] : profiles) {
        if (profile.bias() > bias)
            total += profile.executed;
    }
    return total;
}

void
ProfileDb::mergeAdd(const ProfileDb &other)
{
    for (const auto &[pc, profile] : other.profiles)
        profiles[pc] += profile;
}

void
ProfileDb::save(const std::string &path) const
{
    std::FILE *out = std::fopen(path.c_str(), "w");
    if (out == nullptr)
        bpsim_fatal("cannot open profile '", path, "' for writing");
    for (const auto &[pc, profile] : profiles) {
        std::fprintf(out,
                     "%#" PRIx64 " %" PRIu64 " %" PRIu64 " %" PRIu64
                     " %" PRIu64 " %" PRIu64 "\n",
                     pc, profile.executed, profile.taken,
                     profile.predicted, profile.correct,
                     profile.collisions);
    }
    std::fclose(out);
}

ProfileDb
ProfileDb::load(const std::string &path)
{
    std::FILE *in = std::fopen(path.c_str(), "r");
    if (in == nullptr)
        bpsim_fatal("cannot open profile '", path, "'");
    ProfileDb db;
    std::uint64_t pc;
    BranchProfile profile;
    while (std::fscanf(in,
                       "%" SCNx64 " %" SCNu64 " %" SCNu64 " %" SCNu64
                       " %" SCNu64 " %" SCNu64,
                       &pc, &profile.executed, &profile.taken,
                       &profile.predicted, &profile.correct,
                       &profile.collisions) == 6) {
        db.profiles[pc] = profile;
    }
    std::fclose(in);
    return db;
}

ProfileDb
ProfileDb::collect(BranchStream &stream, Count max_branches)
{
    ProfileDb db;
    BranchRecord record;
    for (Count i = 0; i < max_branches && stream.next(record); ++i)
        db.recordOutcome(record.pc, record.taken);
    return db;
}

CrossInputStats
compareProfiles(const ProfileDb &train, const ProfileDb &ref)
{
    CrossInputStats stats;

    Count ref_static = 0;
    Count ref_dynamic = 0;
    Count seen_static = 0;
    Count seen_dynamic = 0;
    Count flip_static = 0;
    Count flip_dynamic = 0;
    Count under5_static = 0;
    Count under5_dynamic = 0;
    Count over50_static = 0;
    Count over50_dynamic = 0;

    for (const auto &[pc, ref_profile] : ref.entries()) {
        if (ref_profile.executed == 0)
            continue;
        ++ref_static;
        ref_dynamic += ref_profile.executed;

        const BranchProfile *train_profile = train.find(pc);
        if (train_profile == nullptr || train_profile->executed == 0)
            continue;
        ++seen_static;
        seen_dynamic += ref_profile.executed;

        if (train_profile->majorityTaken() !=
            ref_profile.majorityTaken()) {
            ++flip_static;
            flip_dynamic += ref_profile.executed;
        }

        // Bias change measured on the taken-rate axis so direction
        // reversals register as large changes.
        const double change = std::fabs(train_profile->takenRate() -
                                        ref_profile.takenRate());
        if (change < 0.05) {
            ++under5_static;
            under5_dynamic += ref_profile.executed;
        }
        if (change > 0.50) {
            ++over50_static;
            over50_dynamic += ref_profile.executed;
        }
    }

    stats.seenWithTrainStatic = percent(seen_static, ref_static);
    stats.seenWithTrainDynamic = percent(seen_dynamic, ref_dynamic);
    stats.majorityFlipStatic = percent(flip_static, seen_static);
    stats.majorityFlipDynamic = percent(flip_dynamic, seen_dynamic);
    stats.biasChangeUnder5Static = percent(under5_static, seen_static);
    stats.biasChangeUnder5Dynamic =
        percent(under5_dynamic, seen_dynamic);
    stats.biasChangeOver50Static = percent(over50_static, seen_static);
    stats.biasChangeOver50Dynamic =
        percent(over50_dynamic, seen_dynamic);
    return stats;
}

ProfileDb
stableSubset(const ProfileDb &train, const ProfileDb &ref,
             double max_bias_change)
{
    ProfileDb result;
    for (const auto &[pc, train_profile] : train.entries()) {
        const BranchProfile *ref_profile = ref.find(pc);
        if (ref_profile == nullptr || ref_profile->executed == 0)
            continue;
        const double change = std::fabs(train_profile.takenRate() -
                                        ref_profile->takenRate());
        if (change <= max_bias_change)
            result.setEntry(pc, train_profile);
    }
    return result;
}

} // namespace bpsim
