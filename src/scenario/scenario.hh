/**
 * @file
 * Multi-context scenarios: several synthetic programs interleaved
 * into one branch stream that feeds a *shared* predictor, modelling
 * the aliasing pressure of SMT cores, context switching and
 * many-tenant servers.
 *
 * Each member program runs in its own PC space (context k's
 * addresses are offset by k << contextPcShift, see
 * predictor/context_alias.hh), so the shared predictor tables see
 * genuinely distinct branches while every per-branch statistic can
 * be attributed back to its context by inspecting the PC. A
 * scenario with one member emits the member's records byte-for-byte
 * unchanged (context 0 has offset 0), which pins the degenerate
 * case to the per-cell path bit-for-bit.
 */

#ifndef BPSIM_SCENARIO_SCENARIO_HH
#define BPSIM_SCENARIO_SCENARIO_HH

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "predictor/context_alias.hh"
#include "support/random.hh"
#include "workload/synthetic_program.hh"
#include "workload/workload_source.hh"

namespace bpsim
{

/** How member programs share the machine. */
enum class ScenarioKind
{
    /** SMT-style fine-grained interleave: one branch per context,
     * round-robin. Maximum interleaving pressure. */
    Smt,

    /** OS context switching: each context runs a quantum of branches
     * before the next one is scheduled, round-robin. */
    ContextSwitch,

    /** Server traffic: request-sized bursts whose owning context is
     * drawn from a Zipfian popularity distribution — a few hot
     * tenants and a long tail, as in "millions of users" services. */
    Server,
};

/** Scenario name for labels/CLI ("smt", "ctxsw", "server"). */
std::string scenarioKindName(ScenarioKind kind);

/** Parse a scenarioKindName() string; fails on unknown names. */
Result<ScenarioKind> parseScenarioKind(const std::string &text);

/** Interleaving parameters; defaults model a plausible server. */
struct ScenarioSpec
{
    ScenarioKind kind = ScenarioKind::Smt;

    /** Branches per scheduling quantum (ContextSwitch only). */
    Count quantum = 20'000;

    /** Zipf exponent of the tenant popularity skew (Server only). */
    double zipfExponent = 1.2;

    /** Branches per request burst (Server only). */
    Count requestLength = 512;

    /** Seed of the Server arrival process. */
    std::uint64_t seed = 0xC0117;
};

/**
 * A WorkloadSource interleaving member programs per a ScenarioSpec.
 *
 * The scenario presents itself to the runner as one program: its
 * name encodes the spec and the member list, and its seed hashes the
 * arrival seed with every member seed, so checkpoint fingerprints,
 * artifact-cache keys and fused grouping all distinguish scenarios
 * exactly when their streams differ.
 */
class ScenarioWorkload : public WorkloadSource
{
  public:
    /** @param members interleaved programs, context id = position. */
    ScenarioWorkload(ScenarioSpec spec,
                     std::vector<SyntheticProgram> members);

    ScenarioWorkload(ScenarioWorkload &&) = default;
    ScenarioWorkload &operator=(ScenarioWorkload &&) = default;

    bool next(BranchRecord &record) override;
    void reset() override;
    void setInput(InputSet input) override;
    InputSet input() const override;
    const std::string &name() const override { return scenarioName; }
    std::uint64_t seedValue() const override { return seedHash; }

    /** Number of member contexts. */
    std::size_t contexts() const { return members.size(); }

    /** Member program of context @p ctx. */
    const SyntheticProgram &
    member(std::size_t ctx) const
    {
        return members[ctx];
    }

    /** The interleaving parameters. */
    const ScenarioSpec &spec() const { return scenarioSpec; }

  private:
    /** Advance the schedule to the context owning the next record. */
    std::size_t scheduleNext();

    ScenarioSpec scenarioSpec;
    std::vector<SyntheticProgram> members;
    std::string scenarioName;
    std::uint64_t seedHash;

    // Interleave state, reset() restores all of it.
    std::size_t currentCtx = 0;
    Count sliceLeft = 0;
    Rng arrivalRng;
    std::unique_ptr<Rng::Zipf> popularity;
};

} // namespace bpsim

#endif // BPSIM_SCENARIO_SCENARIO_HH
