#include "scenario/scenario.hh"

#include <algorithm>
#include <cstdio>

#include "support/bits.hh"

namespace bpsim
{

std::string
scenarioKindName(ScenarioKind kind)
{
    switch (kind) {
      case ScenarioKind::Smt:
        return "smt";
      case ScenarioKind::ContextSwitch:
        return "ctxsw";
      case ScenarioKind::Server:
        return "server";
    }
    return "unknown";
}

Result<ScenarioKind>
parseScenarioKind(const std::string &text)
{
    if (text == "smt")
        return ScenarioKind::Smt;
    if (text == "ctxsw")
        return ScenarioKind::ContextSwitch;
    if (text == "server")
        return ScenarioKind::Server;
    return Error(ErrorCode::ConfigInvalid,
                 "unknown scenario kind '" + text +
                     "' (expected smt, ctxsw or server)");
}

namespace
{

/** "%g"-rendered double for the scenario name (no trailing zeros). */
std::string
compactDouble(double value)
{
    char buffer[32];
    std::snprintf(buffer, sizeof(buffer), "%g", value);
    return buffer;
}

/**
 * Scenario identity string: every stream-affecting parameter, so the
 * name (label/cache component) and the seed hash distinguish two
 * scenarios exactly when their interleaved streams can differ. No
 * '/' or whitespace: the name must survive as the program field of a
 * canonical cell label.
 */
std::string
scenarioTitle(const ScenarioSpec &spec,
              const std::vector<SyntheticProgram> &members)
{
    std::string title = scenarioKindName(spec.kind);
    switch (spec.kind) {
      case ScenarioKind::Smt:
        break;
      case ScenarioKind::ContextSwitch:
        title += ":q" + std::to_string(spec.quantum);
        break;
      case ScenarioKind::Server:
        title += ":z" + compactDouble(spec.zipfExponent) + ":r" +
                 std::to_string(spec.requestLength) + ":s" +
                 std::to_string(spec.seed);
        break;
    }
    title += "{";
    for (std::size_t i = 0; i < members.size(); ++i) {
        if (i > 0)
            title += ",";
        title += members[i].name();
    }
    title += "}";
    return title;
}

} // namespace

ScenarioWorkload::ScenarioWorkload(ScenarioSpec spec,
                                   std::vector<SyntheticProgram> member_programs)
    : scenarioSpec(spec), members(std::move(member_programs)),
      arrivalRng(spec.seed)
{
    // A zero quantum or request length would never advance past the
    // schedule decision; clamp rather than underflow.
    scenarioSpec.quantum = std::max<Count>(Count{1}, scenarioSpec.quantum);
    scenarioSpec.requestLength =
        std::max<Count>(Count{1}, scenarioSpec.requestLength);

    scenarioName = scenarioTitle(scenarioSpec, members);

    std::string identity = scenarioName;
    for (const SyntheticProgram &member : members)
        identity += "|" + std::to_string(member.seedValue());
    seedHash = fnv1a64(identity);

    if (!members.empty())
        popularity = std::make_unique<Rng::Zipf>(
            members.size(), scenarioSpec.zipfExponent);

    reset();
}

std::size_t
ScenarioWorkload::scheduleNext()
{
    switch (scenarioSpec.kind) {
      case ScenarioKind::Smt: {
        const std::size_t ctx = currentCtx;
        currentCtx = (currentCtx + 1) % members.size();
        return ctx;
      }
      case ScenarioKind::ContextSwitch:
        if (sliceLeft == 0) {
            currentCtx = (currentCtx + 1) % members.size();
            sliceLeft = scenarioSpec.quantum;
        }
        --sliceLeft;
        return currentCtx;
      case ScenarioKind::Server:
        if (sliceLeft == 0) {
            currentCtx = popularity->sample(arrivalRng);
            sliceLeft = scenarioSpec.requestLength;
        }
        --sliceLeft;
        return currentCtx;
    }
    return 0;
}

bool
ScenarioWorkload::next(BranchRecord &record)
{
    if (members.empty())
        return false;
    const std::size_t ctx = scheduleNext();
    if (!members[ctx].next(record))
        return false;
    record.pc += contextPcBase(ctx);
    return true;
}

void
ScenarioWorkload::reset()
{
    for (SyntheticProgram &member : members)
        member.reset();
    currentCtx = 0;
    // ContextSwitch starts mid-quantum on context 0 (scheduleNext
    // only advances when the slice runs out); Server draws its first
    // request owner on the first record.
    sliceLeft =
        scenarioSpec.kind == ScenarioKind::ContextSwitch
            ? scenarioSpec.quantum
            : Count{0};
    arrivalRng = Rng(scenarioSpec.seed);
}

void
ScenarioWorkload::setInput(InputSet input)
{
    for (SyntheticProgram &member : members)
        member.setInput(input);
    reset();
}

InputSet
ScenarioWorkload::input() const
{
    return members.empty() ? InputSet::Ref : members.front().input();
}

} // namespace bpsim
