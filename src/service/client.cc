#include "service/client.hh"

#include <cerrno>
#include <cstring>
#include <utility>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

namespace bpsim::service
{

ServiceClient::~ServiceClient()
{
    close();
}

ServiceClient::ServiceClient(ServiceClient &&other) noexcept
    : fd(std::exchange(other.fd, -1)),
      buffer(std::move(other.buffer))
{
}

ServiceClient &
ServiceClient::operator=(ServiceClient &&other) noexcept
{
    if (this != &other) {
        close();
        fd = std::exchange(other.fd, -1);
        buffer = std::move(other.buffer);
    }
    return *this;
}

void
ServiceClient::close()
{
    if (fd >= 0) {
        ::close(fd);
        fd = -1;
    }
    buffer.clear();
}

Result<ServiceClient>
ServiceClient::connect(const std::string &socket_path)
{
    ServiceClient client;
    client.fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (client.fd < 0) {
        return Error(ErrorCode::IoFailure,
                     std::string("cannot create socket: ") +
                         std::strerror(errno));
    }
    sockaddr_un address{};
    address.sun_family = AF_UNIX;
    if (socket_path.size() >= sizeof(address.sun_path)) {
        return Error(ErrorCode::ConfigInvalid,
                     "socket path '" + socket_path +
                         "' is too long for a unix socket");
    }
    std::strncpy(address.sun_path, socket_path.c_str(),
                 sizeof(address.sun_path) - 1);
    int rc;
    do {
        rc = ::connect(client.fd,
                       reinterpret_cast<sockaddr *>(&address),
                       sizeof(address));
    } while (rc != 0 && errno == EINTR);
    if (rc != 0) {
        return Error(ErrorCode::IoFailure,
                     "cannot connect to '" + socket_path +
                         "': " + std::strerror(errno));
    }
    return client;
}

Result<void>
ServiceClient::sendLine(const std::string &line)
{
    const std::string framed = line + "\n";
    std::size_t sent = 0;
    while (sent < framed.size()) {
        const ssize_t got =
            ::send(fd, framed.data() + sent, framed.size() - sent,
                   MSG_NOSIGNAL);
        if (got < 0) {
            if (errno == EINTR)
                continue;
            return Error(ErrorCode::IoFailure,
                         std::string("send failed: ") +
                             std::strerror(errno));
        }
        sent += static_cast<std::size_t>(got);
    }
    return okResult();
}

Result<std::string>
ServiceClient::readLine()
{
    while (true) {
        const std::size_t newline = buffer.find('\n');
        if (newline != std::string::npos) {
            std::string line = buffer.substr(0, newline);
            buffer.erase(0, newline + 1);
            return line;
        }
        char chunk[4096];
        const ssize_t got = ::recv(fd, chunk, sizeof(chunk), 0);
        if (got == 0) {
            return Error(ErrorCode::IoFailure,
                         "connection closed by the daemon");
        }
        if (got < 0) {
            if (errno == EINTR)
                continue;
            return Error(ErrorCode::IoFailure,
                         std::string("recv failed: ") +
                             std::strerror(errno));
        }
        buffer.append(chunk, static_cast<std::size_t>(got));
    }
}

Result<ServiceResponse>
ServiceClient::call(const ServiceRequest &request)
{
    Result<void> sent = sendLine(renderRequest(request));
    if (!sent.ok())
        return std::move(sent.error());
    Result<std::string> line = readLine();
    if (!line.ok())
        return std::move(line.error());
    return parseResponse(line.value());
}

} // namespace bpsim::service
