/**
 * @file
 * Wire protocol of the bpsim service: newline-delimited JSON over a
 * Unix domain socket.
 *
 * Every request is one "bpsim-request-v1" line and every reply one
 * "bpsim-response-v1" line, so any client that can speak JSONL can
 * drive the daemon (the repo ships ServiceClient and the `bpsim_cli
 * client` subcommand; CI drives it from python).
 *
 * The parser is the daemon's trust boundary: everything arriving on
 * the socket is untrusted, so every lookup that is fatal() in the CLI
 * (program/scheme/shift names) has a Result-returning counterpart
 * here and malformed input becomes a structured config_invalid
 * response, never a daemon crash.
 *
 * A sweep request's cells reuse the checkpoint machinery verbatim:
 * compileSweep() derives the same ExperimentConfig, canonical label
 * and cellFingerprint() a `bpsim_cli sweep` of the same parameters
 * would, the response's cells are CheckpointRecord lines, and the
 * request fingerprint (FNV-1a over the ordered cell fingerprints) is
 * the idempotency key the daemon caches responses under.
 */

#ifndef BPSIM_SERVICE_PROTOCOL_HH
#define BPSIM_SERVICE_PROTOCOL_HH

#include <cstddef>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/checkpoint.hh"
#include "core/experiment.hh"
#include "scenario/scenario.hh"
#include "support/error.hh"
#include "workload/specint.hh"
#include "workload/synthetic_program.hh"

namespace bpsim::service
{

/** Schema tags stamped on every protocol line. */
inline constexpr const char *requestSchema = "bpsim-request-v1";
inline constexpr const char *responseSchema = "bpsim-response-v1";

/** Operations a request can name. */
enum class RequestKind
{
    Run,       ///< one simulation (a single-size sweep)
    Sweep,     ///< a size sweep over one predictor/scheme
    Status,    ///< daemon state snapshot (never queued)
    Cancel,    ///< cancel a queued or in-flight request by id
    Shutdown,  ///< begin a graceful drain, then exit
    Subscribe, ///< stream journal events until the daemon drains
};

/** Wire name of @p kind ("run", "sweep", ...). */
const char *requestKindName(RequestKind kind);

/** Parse a wire op name; config_invalid on an unknown one. */
Result<RequestKind> requestKindFromName(const std::string &name);

/**
 * Sweep parameters, mirroring `bpsim_cli sweep`'s options field for
 * field so the daemon and the CLI derive identical experiment
 * configs (the differential tests depend on it).
 */
struct SweepSpec
{
    std::string program = "gcc";
    std::string input = "ref";
    Count seed = 2000;
    std::string predictor = "gshare";
    std::vector<std::size_t> sizes;
    std::string scheme = "none";
    std::string shift = "noshift";
    Count evalBranches = 2'000'000;
    Count warmupBranches = 0;
    Count profileBranches = 1'000'000;
    /** Empty = self-trained (profile the eval input). */
    std::string profileInput;
    double cutoff = 0.95;
    bool filterUnstable = false;

    /** Multi-context scenario kind ("smt"/"ctxsw"/"server"); empty =
     * plain single-program cell. */
    std::string scenario;

    /** Member program names when scenario is set (context id =
     * position; each member is built with this spec's input and
     * seed, like `program` is for a plain cell). */
    std::vector<std::string> programs;

    /** Context-switch quantum in branches (scenario "ctxsw"). */
    Count quantum = 20'000;

    /** Zipf exponent of the tenant skew (scenario "server"). */
    double zipf = 1.2;
};

/** One parsed request line. */
struct ServiceRequest
{
    /** Client-chosen correlation id, echoed in the response. */
    std::string id;

    RequestKind kind = RequestKind::Status;

    /** Soft deadline in milliseconds (0 = none). Counted from
     * admission; an expired request is cancelled cooperatively and
     * answered with deadline_exceeded, its finished cells already
     * checkpointed. */
    Count deadlineMs = 0;

    /** Fault-injection spec ("point:nth[:code[:times]]") armed for
     * this request only. Rejected unless the daemon was started with
     * fault injection allowed (test/CI servers only). */
    std::string faultSpec;

    /** Cancel: the id of the request to cancel. */
    std::string targetId;

    /** Run/Sweep payload. */
    SweepSpec sweep;
};

/** One failed cell in a response. */
struct CellFailure
{
    std::string label;
    std::string code;
    std::string message;
};

/** One parsed response line. */
struct ServiceResponse
{
    std::string id;

    bool ok = true;

    /** The failure that ended the request (when !ok). */
    std::optional<Error> failure;

    /** Load-shed hint: retry no sooner than this (0 = no hint). */
    Count retryAfterMs = 0;

    /** The request's idempotency fingerprint (run/sweep only). */
    std::string fingerprint;

    /** Finished cells as checkpoint records, in matrix order. A
     * deadline-cancelled request reports the cells it completed. */
    std::vector<CheckpointRecord> cells;

    /** Cells that failed (excluding cancellation skips). */
    std::vector<CellFailure> cellErrors;

    /** Cells executed fresh this request. */
    Count executed = 0;

    /** Cells restored from the request's checkpoint (cache hits). */
    Count restored = 0;

    /** Cells that failed or were skipped by cancellation. */
    Count failed = 0;

    /** Status payload. */
    std::string state;
    Count queueDepth = 0;
    Count queueLimit = 0;
    Count active = 0;
    Count completed = 0;
    Count rejected = 0;
    Count quarantined = 0;
};

/** Render @p request as its JSONL line (no trailing newline). */
std::string renderRequest(const ServiceRequest &request);

/** Render @p response as its JSONL line (no trailing newline). */
std::string renderResponse(const ServiceResponse &response);

/** Parse one request line; config_invalid on anything malformed. */
Result<ServiceRequest> parseRequest(const std::string &line);

/** Parse one response line; config_invalid on anything malformed. */
Result<ServiceResponse> parseResponse(const std::string &line);

/** Non-fatal counterparts of the CLI's name lookups. */
Result<SpecProgram> parseProgramName(const std::string &name);
Result<InputSet> parseInputName(const std::string &name);
Result<StaticScheme> parseSchemeName(const std::string &name);
Result<ShiftPolicy> parseShiftName(const std::string &name);

/** A validated sweep, ready to hand to the matrix runner. */
struct CompiledSweep
{
    /** The workload the cells run on: a SyntheticProgram for plain
     * sweeps, a ScenarioWorkload when the spec names a scenario.
     * Always non-null after a successful compileSweep(). */
    std::unique_ptr<WorkloadSource> program;

    /** One config per requested size, in request order. */
    std::vector<ExperimentConfig> configs;

    /** Canonical "program/predictor:bytes/scheme" labels. */
    std::vector<std::string> labels;

    /** cellFingerprint() of each cell, in the same order. */
    std::vector<std::string> fingerprints;

    /** Idempotency key: FNV-1a over the ordered cell fingerprints. */
    std::string requestFingerprint;
};

/**
 * Validate @p spec and compile it into runnable cells. Derives
 * exactly what `bpsim_cli sweep` would from the same parameters —
 * same program construction, same ExperimentConfig fields, same
 * labels — so daemon results are bit-identical to batch results.
 * config_invalid on unknown names, empty sizes, or a config that
 * fails ExperimentConfig::validate().
 */
Result<CompiledSweep> compileSweep(const SweepSpec &spec);

} // namespace bpsim::service

#endif // BPSIM_SERVICE_PROTOCOL_HH
