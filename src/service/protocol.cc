#include "service/protocol.hh"

#include <cstdio>
#include <sstream>

#include "predictor/registry.hh"
#include "support/bits.hh"
#include "support/json.hh"

namespace bpsim::service
{

namespace
{

/**
 * Tolerant field extraction over one untrusted JSON object: absent
 * optional fields keep the caller's default, the first type mismatch
 * or missing required field is remembered, and done() reports it as
 * a config_invalid Result. JsonValue's own accessors are fatal() on
 * mismatch — fine for files we generate, unacceptable for socket
 * input — so everything socket-borne goes through this reader.
 */
class ObjectReader
{
  public:
    ObjectReader(const JsonValue &object, std::string where)
        : object(object), where(std::move(where))
    {
    }

    void
    str(const char *key, std::string &out, bool required = false)
    {
        const JsonValue *value = object.find(key);
        if (value == nullptr) {
            if (required)
                fail(std::string("missing field '") + key + "'");
            return;
        }
        if (!value->isString()) {
            fail(std::string("field '") + key + "' must be a string");
            return;
        }
        out = value->asString();
    }

    void
    count(const char *key, Count &out, bool required = false)
    {
        const JsonValue *value = object.find(key);
        if (value == nullptr) {
            if (required)
                fail(std::string("missing field '") + key + "'");
            return;
        }
        if (!value->isNumber() || value->asNumber() < 0) {
            fail(std::string("field '") + key +
                 "' must be a non-negative number");
            return;
        }
        out = static_cast<Count>(value->asNumber());
    }

    void
    size(const char *key, std::size_t &out, bool required = false)
    {
        Count value = out;
        count(key, value, required);
        out = static_cast<std::size_t>(value);
    }

    void
    number(const char *key, double &out)
    {
        const JsonValue *value = object.find(key);
        if (value == nullptr)
            return;
        if (!value->isNumber()) {
            fail(std::string("field '") + key + "' must be a number");
            return;
        }
        out = value->asNumber();
    }

    void
    boolean(const char *key, bool &out)
    {
        const JsonValue *value = object.find(key);
        if (value == nullptr)
            return;
        if (!value->isBool()) {
            fail(std::string("field '") + key + "' must be a bool");
            return;
        }
        out = value->asBool();
    }

    void
    fail(const std::string &what)
    {
        if (!problem) {
            problem = Error(ErrorCode::ConfigInvalid,
                            where + ": " + what);
        }
    }

    Result<void>
    done() const
    {
        if (problem)
            return *problem;
        return okResult();
    }

  private:
    const JsonValue &object;
    std::string where;
    std::optional<Error> problem;
};

Result<ErrorCode>
errorCodeFromName(const std::string &name)
{
    for (const ErrorCode code :
         {ErrorCode::ConfigInvalid, ErrorCode::IoFailure,
          ErrorCode::ResourceExhausted, ErrorCode::CellFailed,
          ErrorCode::Internal, ErrorCode::Cancelled,
          ErrorCode::DeadlineExceeded}) {
        if (name == errorCodeName(code))
            return code;
    }
    return Error(ErrorCode::ConfigInvalid,
                 "unknown error code '" + name + "'");
}

/** Round-trip-safe double rendering (%.17g). */
std::string
renderDouble(double value)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.17g", value);
    return buf;
}

/** 16-hex-digit rendering of an FNV-1a hash. */
std::string
hashHex(std::uint64_t hash)
{
    char buf[17];
    std::snprintf(buf, sizeof(buf), "%016llx",
                  static_cast<unsigned long long>(hash));
    return buf;
}

/** Parse one response cell: the CheckpointRecord wire fields. */
Result<CheckpointRecord>
parseRecordObject(const JsonValue &object, std::size_t index)
{
    if (!object.isObject()) {
        return Error(ErrorCode::ConfigInvalid,
                     "response cell " + std::to_string(index) +
                         " is not an object");
    }
    CheckpointRecord record;
    ObjectReader reader(object,
                        "response cell " + std::to_string(index));
    reader.str("fingerprint", record.fingerprint, true);
    reader.str("label", record.label, true);
    SimStats &stats = record.result.stats;
    reader.count("branches", stats.branches, true);
    reader.count("instructions", stats.instructions, true);
    reader.count("mispredictions", stats.mispredictions, true);
    reader.count("static_predicted", stats.staticPredicted, true);
    reader.count("static_mispredictions", stats.staticMispredictions,
                 true);
    reader.count("lookups", stats.collisions.lookups, true);
    reader.count("collisions", stats.collisions.collisions, true);
    reader.count("constructive", stats.collisions.constructive, true);
    reader.count("destructive", stats.collisions.destructive, true);
    reader.size("hints", record.result.hintCount, true);
    reader.count("simulated_branches", record.result.simulatedBranches,
                 true);
    reader.boolean("kernel", record.usedKernel);
    reader.boolean("simd", record.usedSimd);
    reader.count("phase_branches", record.phaseBranches);
    Result<void> parsed = reader.done();
    if (!parsed.ok())
        return std::move(parsed.error());
    // Optional scenario payload (per-context stats + NxN matrix),
    // same compact-array form the checkpoint file uses.
    if (const JsonValue *contexts = object.find("contexts");
        contexts != nullptr && contexts->isArray()) {
        for (const JsonValue &entry : contexts->items()) {
            if (!entry.isArray() || entry.items().size() != 5)
                continue;
            const std::vector<JsonValue> &v = entry.items();
            bool numeric = true;
            for (const JsonValue &element : v)
                numeric = numeric && element.isNumber();
            if (!numeric)
                continue;
            ContextStats ctx;
            ctx.branches = static_cast<Count>(v[0].asNumber());
            ctx.instructions = static_cast<Count>(v[1].asNumber());
            ctx.mispredictions = static_cast<Count>(v[2].asNumber());
            ctx.staticPredicted = static_cast<Count>(v[3].asNumber());
            ctx.collisions = static_cast<Count>(v[4].asNumber());
            record.result.contextStats.push_back(ctx);
        }
    }
    if (const JsonValue *matrix = object.find("alias_matrix");
        matrix != nullptr && matrix->isArray()) {
        for (const JsonValue &entry : matrix->items()) {
            if (!entry.isArray() || entry.items().size() != 3)
                continue;
            const std::vector<JsonValue> &v = entry.items();
            bool numeric = true;
            for (const JsonValue &element : v)
                numeric = numeric && element.isNumber();
            if (!numeric)
                continue;
            ContextAliasCell cell;
            cell.collisions = static_cast<Count>(v[0].asNumber());
            cell.constructive = static_cast<Count>(v[1].asNumber());
            cell.destructive = static_cast<Count>(v[2].asNumber());
            record.result.aliasMatrix.push_back(cell);
        }
    }
    return record;
}

void
appendErrorJson(std::ostringstream &os, const Error &error)
{
    os << "{\"code\": " << jsonQuote(errorCodeName(error.code()))
       << ", \"message\": " << jsonQuote(error.message())
       << ", \"context\": [";
    for (std::size_t i = 0; i < error.context().size(); ++i) {
        os << (i > 0 ? ", " : "") << jsonQuote(error.context()[i]);
    }
    os << "]}";
}

} // namespace

const char *
requestKindName(RequestKind kind)
{
    switch (kind) {
      case RequestKind::Run:
        return "run";
      case RequestKind::Sweep:
        return "sweep";
      case RequestKind::Status:
        return "status";
      case RequestKind::Cancel:
        return "cancel";
      case RequestKind::Shutdown:
        return "shutdown";
      case RequestKind::Subscribe:
        return "subscribe";
    }
    return "?";
}

Result<RequestKind>
requestKindFromName(const std::string &name)
{
    for (const RequestKind kind :
         {RequestKind::Run, RequestKind::Sweep, RequestKind::Status,
          RequestKind::Cancel, RequestKind::Shutdown,
          RequestKind::Subscribe}) {
        if (name == requestKindName(kind))
            return kind;
    }
    return Error(ErrorCode::ConfigInvalid,
                 "unknown op '" + name +
                     "' (expected run/sweep/status/cancel/"
                     "shutdown/subscribe)");
}

Result<SpecProgram>
parseProgramName(const std::string &name)
{
    for (const SpecProgram program : allSpecPrograms()) {
        if (name == specProgramName(program))
            return program;
    }
    return Error(ErrorCode::ConfigInvalid,
                 "unknown program '" + name +
                     "' (expected go/gcc/perl/m88ksim/compress/"
                     "ijpeg)");
}

Result<InputSet>
parseInputName(const std::string &name)
{
    if (name == "ref")
        return InputSet::Ref;
    if (name == "train")
        return InputSet::Train;
    return Error(ErrorCode::ConfigInvalid,
                 "unknown input set '" + name +
                     "' (expected train or ref)");
}

Result<StaticScheme>
parseSchemeName(const std::string &name)
{
    for (const StaticScheme scheme :
         {StaticScheme::None, StaticScheme::Static95,
          StaticScheme::StaticAcc, StaticScheme::StaticFac,
          StaticScheme::StaticAlias}) {
        if (name == staticSchemeName(scheme))
            return scheme;
    }
    return Error(ErrorCode::ConfigInvalid,
                 "unknown scheme '" + name +
                     "' (expected none/static_95/static_acc/"
                     "static_fac/static_alias)");
}

Result<ShiftPolicy>
parseShiftName(const std::string &name)
{
    if (name == "noshift")
        return ShiftPolicy::NoShift;
    if (name == "shift")
        return ShiftPolicy::ShiftOutcome;
    if (name == "shiftpred")
        return ShiftPolicy::ShiftPrediction;
    return Error(ErrorCode::ConfigInvalid,
                 "unknown shift policy '" + name +
                     "' (expected noshift/shift/shiftpred)");
}

std::string
renderRequest(const ServiceRequest &request)
{
    std::ostringstream os;
    os << "{\"schema\": " << jsonQuote(requestSchema)
       << ", \"id\": " << jsonQuote(request.id)
       << ", \"op\": " << jsonQuote(requestKindName(request.kind));
    if (request.deadlineMs > 0)
        os << ", \"deadline_ms\": " << request.deadlineMs;
    if (!request.faultSpec.empty())
        os << ", \"fault\": " << jsonQuote(request.faultSpec);
    if (!request.targetId.empty())
        os << ", \"target\": " << jsonQuote(request.targetId);
    if (request.kind == RequestKind::Run ||
        request.kind == RequestKind::Sweep) {
        const SweepSpec &sweep = request.sweep;
        os << ", \"sweep\": {\"program\": " << jsonQuote(sweep.program)
           << ", \"input\": " << jsonQuote(sweep.input)
           << ", \"seed\": " << sweep.seed
           << ", \"predictor\": " << jsonQuote(sweep.predictor)
           << ", \"sizes\": [";
        for (std::size_t i = 0; i < sweep.sizes.size(); ++i)
            os << (i > 0 ? ", " : "") << sweep.sizes[i];
        os << "], \"scheme\": " << jsonQuote(sweep.scheme)
           << ", \"shift\": " << jsonQuote(sweep.shift)
           << ", \"eval_branches\": " << sweep.evalBranches
           << ", \"warmup_branches\": " << sweep.warmupBranches
           << ", \"profile_branches\": " << sweep.profileBranches
           << ", \"profile_input\": " << jsonQuote(sweep.profileInput)
           << ", \"cutoff\": " << renderDouble(sweep.cutoff)
           << ", \"filter_unstable\": "
           << (sweep.filterUnstable ? "true" : "false");
        if (!sweep.scenario.empty()) {
            os << ", \"scenario\": " << jsonQuote(sweep.scenario)
               << ", \"programs\": [";
            for (std::size_t i = 0; i < sweep.programs.size(); ++i) {
                os << (i > 0 ? ", " : "")
                   << jsonQuote(sweep.programs[i]);
            }
            os << "], \"quantum\": " << sweep.quantum
               << ", \"zipf\": " << renderDouble(sweep.zipf);
        }
        os << "}";
    }
    os << "}";
    return os.str();
}

std::string
renderResponse(const ServiceResponse &response)
{
    std::ostringstream os;
    os << "{\"schema\": " << jsonQuote(responseSchema)
       << ", \"id\": " << jsonQuote(response.id)
       << ", \"ok\": " << (response.ok ? "true" : "false");
    if (response.failure) {
        os << ", \"error\": ";
        appendErrorJson(os, *response.failure);
    }
    if (response.retryAfterMs > 0)
        os << ", \"retry_after_ms\": " << response.retryAfterMs;
    if (!response.fingerprint.empty()) {
        os << ", \"fingerprint\": " << jsonQuote(response.fingerprint)
           << ", \"executed\": " << response.executed
           << ", \"restored\": " << response.restored
           << ", \"failed\": " << response.failed << ", \"cells\": [";
        for (std::size_t i = 0; i < response.cells.size(); ++i) {
            os << (i > 0 ? ", " : "")
               << SweepCheckpoint::renderLine(response.cells[i]);
        }
        os << "], \"cell_errors\": [";
        for (std::size_t i = 0; i < response.cellErrors.size(); ++i) {
            const CellFailure &failure = response.cellErrors[i];
            os << (i > 0 ? ", " : "")
               << "{\"label\": " << jsonQuote(failure.label)
               << ", \"code\": " << jsonQuote(failure.code)
               << ", \"message\": " << jsonQuote(failure.message)
               << "}";
        }
        os << "]";
    }
    if (!response.state.empty()) {
        os << ", \"state\": " << jsonQuote(response.state)
           << ", \"queue_depth\": " << response.queueDepth
           << ", \"queue_limit\": " << response.queueLimit
           << ", \"active\": " << response.active
           << ", \"completed\": " << response.completed
           << ", \"rejected\": " << response.rejected
           << ", \"quarantined\": " << response.quarantined;
    }
    os << "}";
    return os.str();
}

Result<ServiceRequest>
parseRequest(const std::string &line)
{
    Result<JsonValue> parsed = JsonValue::tryParse(line, "request");
    if (!parsed.ok()) {
        return Error(ErrorCode::ConfigInvalid,
                     "request is not valid JSON")
            .withContext(parsed.error().message());
    }
    const JsonValue &object = parsed.value();
    if (!object.isObject()) {
        return Error(ErrorCode::ConfigInvalid,
                     "request must be a JSON object");
    }

    ServiceRequest request;
    std::string schema;
    std::string op;
    ObjectReader reader(object, "request");
    reader.str("schema", schema, true);
    reader.str("id", request.id, true);
    reader.str("op", op, true);
    reader.count("deadline_ms", request.deadlineMs);
    reader.str("fault", request.faultSpec);
    reader.str("target", request.targetId);
    Result<void> fields = reader.done();
    if (!fields.ok())
        return std::move(fields.error());
    if (schema != requestSchema) {
        return Error(ErrorCode::ConfigInvalid,
                     "request schema '" + schema + "' is not '" +
                         requestSchema + "'");
    }
    if (request.id.empty()) {
        return Error(ErrorCode::ConfigInvalid,
                     "request id must be non-empty");
    }

    Result<RequestKind> kind = requestKindFromName(op);
    if (!kind.ok())
        return std::move(kind.error());
    request.kind = kind.value();

    if (request.kind == RequestKind::Cancel &&
        request.targetId.empty()) {
        return Error(ErrorCode::ConfigInvalid,
                     "cancel needs a 'target' request id");
    }

    if (request.kind == RequestKind::Run ||
        request.kind == RequestKind::Sweep) {
        const JsonValue *sweep = object.find("sweep");
        if (sweep == nullptr || !sweep->isObject()) {
            return Error(ErrorCode::ConfigInvalid,
                         "run/sweep needs a 'sweep' object");
        }
        SweepSpec &spec = request.sweep;
        ObjectReader sweep_reader(*sweep, "sweep");
        sweep_reader.str("program", spec.program);
        sweep_reader.str("input", spec.input);
        sweep_reader.count("seed", spec.seed);
        sweep_reader.str("predictor", spec.predictor);
        sweep_reader.str("scheme", spec.scheme);
        sweep_reader.str("shift", spec.shift);
        sweep_reader.count("eval_branches", spec.evalBranches);
        sweep_reader.count("warmup_branches", spec.warmupBranches);
        sweep_reader.count("profile_branches", spec.profileBranches);
        sweep_reader.str("profile_input", spec.profileInput);
        sweep_reader.number("cutoff", spec.cutoff);
        sweep_reader.boolean("filter_unstable", spec.filterUnstable);
        sweep_reader.str("scenario", spec.scenario);
        sweep_reader.count("quantum", spec.quantum);
        sweep_reader.number("zipf", spec.zipf);
        Result<void> sweep_fields = sweep_reader.done();
        if (!sweep_fields.ok())
            return std::move(sweep_fields.error());
        if (const JsonValue *members = sweep->find("programs");
            members != nullptr) {
            if (!members->isArray()) {
                return Error(ErrorCode::ConfigInvalid,
                             "sweep 'programs' must be an array of "
                             "program names");
            }
            for (const JsonValue &member : members->items()) {
                if (!member.isString()) {
                    return Error(ErrorCode::ConfigInvalid,
                                 "sweep 'programs' must be an array "
                                 "of program names");
                }
                spec.programs.push_back(member.asString());
            }
        }

        const JsonValue *sizes = sweep->find("sizes");
        if (sizes == nullptr || !sizes->isArray() ||
            sizes->items().empty()) {
            return Error(ErrorCode::ConfigInvalid,
                         "sweep 'sizes' must be a non-empty array "
                         "of positive byte counts");
        }
        for (const JsonValue &size : sizes->items()) {
            if (!size.isNumber() || size.asNumber() <= 0) {
                return Error(ErrorCode::ConfigInvalid,
                             "sweep 'sizes' must be a non-empty "
                             "array of positive byte counts");
            }
            spec.sizes.push_back(
                static_cast<std::size_t>(size.asNumber()));
        }
        if (request.kind == RequestKind::Run &&
            spec.sizes.size() != 1) {
            return Error(ErrorCode::ConfigInvalid,
                         "run takes exactly one size (use sweep "
                         "for several)");
        }
    }
    return request;
}

Result<ServiceResponse>
parseResponse(const std::string &line)
{
    Result<JsonValue> parsed = JsonValue::tryParse(line, "response");
    if (!parsed.ok()) {
        return Error(ErrorCode::ConfigInvalid,
                     "response is not valid JSON")
            .withContext(parsed.error().message());
    }
    const JsonValue &object = parsed.value();
    if (!object.isObject()) {
        return Error(ErrorCode::ConfigInvalid,
                     "response must be a JSON object");
    }

    ServiceResponse response;
    std::string schema;
    ObjectReader reader(object, "response");
    reader.str("schema", schema, true);
    reader.str("id", response.id, true);
    reader.boolean("ok", response.ok);
    reader.count("retry_after_ms", response.retryAfterMs);
    reader.str("fingerprint", response.fingerprint);
    reader.count("executed", response.executed);
    reader.count("restored", response.restored);
    reader.count("failed", response.failed);
    reader.str("state", response.state);
    reader.count("queue_depth", response.queueDepth);
    reader.count("queue_limit", response.queueLimit);
    reader.count("active", response.active);
    reader.count("completed", response.completed);
    reader.count("rejected", response.rejected);
    reader.count("quarantined", response.quarantined);
    Result<void> fields = reader.done();
    if (!fields.ok())
        return std::move(fields.error());
    if (schema != responseSchema) {
        return Error(ErrorCode::ConfigInvalid,
                     "response schema '" + schema + "' is not '" +
                         responseSchema + "'");
    }

    if (const JsonValue *error = object.find("error");
        error != nullptr) {
        if (!error->isObject()) {
            return Error(ErrorCode::ConfigInvalid,
                         "response 'error' must be an object");
        }
        std::string code_name;
        std::string message;
        ObjectReader error_reader(*error, "response error");
        error_reader.str("code", code_name, true);
        error_reader.str("message", message, true);
        Result<void> error_fields = error_reader.done();
        if (!error_fields.ok())
            return std::move(error_fields.error());
        Result<ErrorCode> code = errorCodeFromName(code_name);
        if (!code.ok())
            return std::move(code.error());
        Error failure(code.value(), message);
        if (const JsonValue *context = error->find("context");
            context != nullptr && context->isArray()) {
            for (const JsonValue &note : context->items()) {
                if (note.isString())
                    failure.withContext(note.asString());
            }
        }
        response.failure = std::move(failure);
    }

    if (const JsonValue *cells = object.find("cells");
        cells != nullptr && cells->isArray()) {
        for (std::size_t i = 0; i < cells->items().size(); ++i) {
            Result<CheckpointRecord> record =
                parseRecordObject(cells->items()[i], i);
            if (!record.ok())
                return std::move(record.error());
            response.cells.push_back(std::move(record.value()));
        }
    }
    if (const JsonValue *errors = object.find("cell_errors");
        errors != nullptr && errors->isArray()) {
        for (const JsonValue &entry : errors->items()) {
            if (!entry.isObject()) {
                return Error(ErrorCode::ConfigInvalid,
                             "response cell_errors entries must be "
                             "objects");
            }
            CellFailure failure;
            ObjectReader entry_reader(entry, "response cell_error");
            entry_reader.str("label", failure.label, true);
            entry_reader.str("code", failure.code, true);
            entry_reader.str("message", failure.message, true);
            Result<void> entry_fields = entry_reader.done();
            if (!entry_fields.ok())
                return std::move(entry_fields.error());
            response.cellErrors.push_back(std::move(failure));
        }
    }
    return response;
}

Result<CompiledSweep>
compileSweep(const SweepSpec &spec)
{
    Result<SpecProgram> program = parseProgramName(spec.program);
    if (!program.ok())
        return std::move(program.error());
    Result<InputSet> input = parseInputName(spec.input);
    if (!input.ok())
        return std::move(input.error());
    Result<StaticScheme> scheme = parseSchemeName(spec.scheme);
    if (!scheme.ok())
        return std::move(scheme.error());
    Result<ShiftPolicy> shift = parseShiftName(spec.shift);
    if (!shift.ok())
        return std::move(shift.error());
    Result<ParsedPredictorSpec> predictor =
        parsePredictorSpec(spec.predictor);
    if (!predictor.ok())
        return std::move(predictor.error());
    InputSet profile_input = input.value();
    if (!spec.profileInput.empty()) {
        Result<InputSet> parsed = parseInputName(spec.profileInput);
        if (!parsed.ok())
            return std::move(parsed.error());
        profile_input = parsed.value();
    }
    if (spec.sizes.empty()) {
        return Error(ErrorCode::ConfigInvalid,
                     "sweep needs at least one size");
    }

    CompiledSweep compiled;
    std::size_t scenario_contexts = 0;
    if (!spec.scenario.empty()) {
        Result<ScenarioKind> kind = parseScenarioKind(spec.scenario);
        if (!kind.ok())
            return std::move(kind.error());
        if (spec.programs.empty()) {
            return Error(ErrorCode::ConfigInvalid,
                         "scenario sweeps need a non-empty "
                         "'programs' member list");
        }
        std::vector<SyntheticProgram> members;
        for (const std::string &name : spec.programs) {
            Result<SpecProgram> member = parseProgramName(name);
            if (!member.ok())
                return std::move(member.error());
            members.push_back(makeSpecProgram(
                member.value(), input.value(), spec.seed));
        }
        ScenarioSpec scenario_spec;
        scenario_spec.kind = kind.value();
        scenario_spec.quantum = spec.quantum;
        scenario_spec.zipfExponent = spec.zipf;
        scenario_contexts = members.size();
        compiled.program = std::make_unique<ScenarioWorkload>(
            scenario_spec, std::move(members));
    } else {
        compiled.program = std::make_unique<SyntheticProgram>(
            makeSpecProgram(program.value(), input.value(),
                            spec.seed));
    }

    std::string joined = "svc1";
    for (const std::size_t bytes : spec.sizes) {
        ExperimentConfig config;
        config.predictor = predictor.value().info->name;
        config.sizeBytes = bytes;
        config.scheme = scheme.value();
        config.shift = shift.value();
        config.evalBranches = spec.evalBranches;
        config.evalWarmupBranches = spec.warmupBranches;
        config.profileBranches = spec.profileBranches;
        config.selection.cutoffBias = spec.cutoff;
        config.evalInput = input.value();
        config.profileInput = profile_input;
        config.filterUnstable = spec.filterUnstable;
        config.scenarioContexts = scenario_contexts;

        const std::string label = compiled.program->name() + "/" +
                                  config.predictor + ":" +
                                  std::to_string(bytes) + "/" +
                                  spec.scheme;
        Result<void> valid = config.validate();
        if (!valid.ok()) {
            return std::move(valid.error())
                .withContext("while compiling cell '" + label + "'");
        }
        const std::string fingerprint =
            cellFingerprint(*compiled.program, config);
        joined += "|";
        joined += fingerprint;
        compiled.configs.push_back(std::move(config));
        compiled.labels.push_back(label);
        compiled.fingerprints.push_back(fingerprint);
    }
    compiled.requestFingerprint = hashHex(fnv1a64(joined));
    return compiled;
}

} // namespace bpsim::service
