/**
 * @file
 * Minimal client for the bpsim service: connect to the daemon's
 * Unix socket, send request lines, read response lines. Used by the
 * `bpsim_cli client` subcommand and the service tests; everything
 * returns structured Results so a dead or draining daemon is an
 * error value, never a crash.
 */

#ifndef BPSIM_SERVICE_CLIENT_HH
#define BPSIM_SERVICE_CLIENT_HH

#include <string>

#include "service/protocol.hh"
#include "support/error.hh"

namespace bpsim::service
{

/** One connection to a ServiceServer. Move-only (owns the fd). */
class ServiceClient
{
  public:
    ServiceClient() = default;
    ~ServiceClient();

    ServiceClient(ServiceClient &&other) noexcept;
    ServiceClient &operator=(ServiceClient &&other) noexcept;
    ServiceClient(const ServiceClient &) = delete;
    ServiceClient &operator=(const ServiceClient &) = delete;

    /** Connect to the daemon at @p socket_path. */
    static Result<ServiceClient> connect(
        const std::string &socket_path);

    bool connected() const { return fd >= 0; }

    /** Send one line (newline appended). */
    Result<void> sendLine(const std::string &line);

    /** Read one line (newline stripped); io_failure on EOF. */
    Result<std::string> readLine();

    /** Round trip: render @p request, send, read + parse the
     * response. */
    Result<ServiceResponse> call(const ServiceRequest &request);

    void close();

  private:
    int fd = -1;
    std::string buffer;
};

} // namespace bpsim::service

#endif // BPSIM_SERVICE_CLIENT_HH
