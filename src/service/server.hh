/**
 * @file
 * The bpsim service daemon core: a long-lived experiment server over
 * a Unix domain socket.
 *
 * Clients submit run/sweep requests as JSONL (see protocol.hh); the
 * server executes them on the matrix runner and persists every
 * request's finished cells in a per-fingerprint checkpoint under its
 * state directory. That checkpoint doubles as an idempotent response
 * cache: re-submitting a completed request restores every cell
 * (bit-identical deterministic fields) without re-simulating, and a
 * request interrupted by a deadline, a cancel, a crash or a restart
 * resumes from exactly the cells it had finished.
 *
 * Robustness model:
 *
 *  - Bounded admission: at most queueLimit requests wait for the
 *    executor; excess submissions are shed immediately with
 *    resource_exhausted and a retry-after hint instead of growing an
 *    unbounded backlog.
 *  - Deadlines: a request's deadline is armed at admission. Expiry
 *    cancels cooperatively — cells not yet started are skipped, the
 *    cell in flight finishes and is checkpointed — and still-queued
 *    requests that expire are answered without running at all.
 *  - Isolation: one request's failure (poisoned config, injected
 *    fault) becomes its own structured error response; the daemon
 *    and concurrent requests are unaffected. Requests execute one at
 *    a time on the executor thread, so a per-request fault-injection
 *    arming can never leak into a neighbour.
 *  - Quarantine: a fingerprint whose requests keep failing
 *    (quarantineThreshold consecutive cell_failed/internal outcomes)
 *    is rejected at admission with config_invalid until a success
 *    clears it; the list persists across restarts.
 *  - Graceful drain: SIGTERM (via drainFd()) stops admission,
 *    finishes and checkpoints the request in flight, answers queued
 *    requests with resource_exhausted, flushes the journal, closes
 *    subscribers and removes the socket.
 *
 * Every request's lifecycle is journalled (request_begin /
 * request_cell / request_end / request_rejected / service_state) and
 * streamed live to subscribe-op connections.
 */

#ifndef BPSIM_SERVICE_SERVER_HH
#define BPSIM_SERVICE_SERVER_HH

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "obs/run_journal.hh"
#include "service/protocol.hh"
#include "support/error.hh"

namespace bpsim::service
{

/** Daemon construction options. */
struct ServiceOptions
{
    /** Unix-domain socket path to listen on. */
    std::string socketPath;

    /** Directory holding request checkpoints and the quarantine
     * list; created if absent. */
    std::string stateDir;

    /** Runner worker threads per request (0 = resolve from the
     * environment/hardware, like the CLI). */
    unsigned threads = 1;

    /** Admitted-but-not-yet-executing requests allowed before
     * load-shedding kicks in. */
    std::size_t queueLimit = 8;

    /** Consecutive failing requests that quarantine a fingerprint. */
    unsigned quarantineThreshold = 3;

    /** Honor per-request fault-injection specs (test/CI servers
     * only); off, a request carrying one is rejected. */
    bool allowFaultInjection = false;

    /** Write the service journal (JSONL + metrics) here on drain
     * (empty = keep it in memory only). */
    std::string journalPath;

    /** Suggested client back-off when a request is shed (ms). */
    Count retryAfterMs = 250;

    /** Test-only: run on the executor thread as each request starts
     * executing (before its deadline check). Tests block in it to
     * hold the executor busy, making queue-full and queued-deadline
     * scenarios deterministic instead of timing-dependent. */
    std::function<void()> onExecuteBegin;
};

/** Daemon counters (status responses and tests). */
struct ServiceStats
{
    Count completed = 0;
    Count failed = 0;
    Count rejected = 0;
    Count cancelled = 0;
    Count expired = 0;
    Count quarantinedNow = 0;
};

/**
 * The daemon. start() binds the socket and spawns the accept and
 * executor threads; requestDrain() (or one byte written to
 * drainFd(), the only async-signal-safe trigger) begins a graceful
 * drain; waitUntilStopped() joins everything.
 */
class ServiceServer
{
  public:
    explicit ServiceServer(ServiceOptions options);
    ~ServiceServer();

    ServiceServer(const ServiceServer &) = delete;
    ServiceServer &operator=(const ServiceServer &) = delete;

    /** Bind, listen and spawn the service threads. io_failure when
     * the socket or state directory cannot be set up. */
    Result<void> start();

    /**
     * Write end of the drain pipe: writing one byte starts a
     * graceful drain. This is the signal-handler hook — write(2) is
     * async-signal-safe, none of the rest of the server is.
     */
    int drainFd() const { return drainPipe[1]; }

    /** Begin a graceful drain from normal (non-signal) code. */
    void requestDrain();

    /** Has a drain been requested? */
    bool draining() const
    {
        return drainRequested.load(std::memory_order_acquire);
    }

    /** Block until the drain finished and every thread joined. */
    void waitUntilStopped();

    /** Counter snapshot. */
    ServiceStats stats() const;

    /** The journal (tests inspect it after a drain). */
    const obs::RunJournal &journal() const { return serviceJournal; }

  private:
    /** One admitted run/sweep request waiting for / under execution. */
    struct Job
    {
        ServiceRequest request;
        CompiledSweep compiled;
        std::chrono::steady_clock::time_point deadline{};
        bool hasDeadline = false;

        std::atomic<bool> cancelRequested{false};

        std::mutex lock;
        std::condition_variable cv;
        bool done = false;
        ServiceResponse response;
    };

    void acceptLoop();
    void executorLoop();
    void handleConnection(int fd);

    /** Serve one request line; returns false when the connection
     * loop should stop. @p fd_handed_off is set when the fd now
     * belongs to the subscriber broadcast list (do not close it). */
    bool handleLine(int fd, const std::string &line,
                    bool &fd_handed_off);

    /** Admission: validate, fingerprint, shed, quarantine-check and
     * enqueue; blocks until the job completes and returns its
     * response. */
    ServiceResponse admitAndWait(ServiceRequest request);

    /** Execute one job on the executor thread. */
    void executeJob(const std::shared_ptr<Job> &job);

    ServiceResponse statusResponse(const std::string &id);
    ServiceResponse cancelResponse(const ServiceRequest &request);

    /** Journal an event and broadcast its line to subscribers. */
    void publish(obs::EventKind kind, const std::string &label,
                 std::vector<obs::Field> fields);

    void loadQuarantine();
    void persistQuarantine();

    /** Checkpoint path of a request fingerprint. */
    std::string checkpointPathFor(const std::string &fingerprint) const;

    void closeListenerAndUnlink();

    ServiceOptions options;

    int listenFd = -1;
    int drainPipe[2] = {-1, -1};
    std::atomic<bool> drainRequested{false};
    std::atomic<bool> started{false};

    std::thread acceptThread;
    std::thread executorThread;

    mutable std::mutex stateLock;
    std::condition_variable queueCv;
    std::deque<std::shared_ptr<Job>> queue;
    std::shared_ptr<Job> active;
    std::map<std::string, std::shared_ptr<Job>> jobsById;
    std::map<std::string, unsigned> quarantineStrikes;
    std::vector<std::thread> connectionThreads;
    std::vector<int> connectionFds;
    std::vector<int> subscriberFds;
    ServiceStats counters;

    obs::RunJournal serviceJournal;
};

} // namespace bpsim::service

#endif // BPSIM_SERVICE_SERVER_HH
