#include "service/server.hh"

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <filesystem>
#include <sstream>
#include <utility>

#include <fcntl.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "core/runner.hh"
#include "support/fault.hh"
#include "support/atomic_file.hh"

namespace bpsim::service
{

namespace
{

/** EINTR-retrying full send of @p text (MSG_NOSIGNAL: a client that
 * hung up must produce EPIPE, not kill the daemon). */
bool
sendAll(int fd, const std::string &text)
{
    std::size_t sent = 0;
    while (sent < text.size()) {
        const ssize_t got = ::send(fd, text.data() + sent,
                                   text.size() - sent, MSG_NOSIGNAL);
        if (got < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        sent += static_cast<std::size_t>(got);
    }
    return true;
}

bool
sendLine(int fd, const std::string &line)
{
    return sendAll(fd, line + "\n");
}

/** Pull one newline-terminated line out of @p buffer, recv()ing more
 * as needed; false on EOF or a socket error. */
bool
readLineFd(int fd, std::string &buffer, std::string &line)
{
    while (true) {
        const std::size_t newline = buffer.find('\n');
        if (newline != std::string::npos) {
            line = buffer.substr(0, newline);
            buffer.erase(0, newline + 1);
            return true;
        }
        char chunk[4096];
        const ssize_t got = ::recv(fd, chunk, sizeof(chunk), 0);
        if (got == 0)
            return false;
        if (got < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        buffer.append(chunk, static_cast<std::size_t>(got));
    }
}

ServiceResponse
errorResponse(const std::string &id, Error error)
{
    ServiceResponse response;
    response.id = id;
    response.ok = false;
    response.failure = std::move(error);
    return response;
}

} // namespace

ServiceServer::ServiceServer(ServiceOptions service_options)
    : options(std::move(service_options)),
      serviceJournal("bpsim_serve")
{
}

ServiceServer::~ServiceServer()
{
    if (started.load(std::memory_order_acquire)) {
        requestDrain();
        waitUntilStopped();
    }
    if (drainPipe[0] >= 0)
        ::close(drainPipe[0]);
    if (drainPipe[1] >= 0)
        ::close(drainPipe[1]);
}

std::string
ServiceServer::checkpointPathFor(const std::string &fingerprint) const
{
    return options.stateDir + "/req-" + fingerprint + ".jsonl";
}

void
ServiceServer::loadQuarantine()
{
    std::FILE *file =
        std::fopen((options.stateDir + "/quarantine.txt").c_str(),
                   "rb");
    if (file == nullptr)
        return;
    char line[256];
    while (std::fgets(line, sizeof(line), file) != nullptr) {
        unsigned strikes = 0;
        char fingerprint[128];
        if (std::sscanf(line, "%u %127s", &strikes, fingerprint) == 2)
            quarantineStrikes[fingerprint] = strikes;
    }
    std::fclose(file);
}

void
ServiceServer::persistQuarantine()
{
    std::string content;
    for (const auto &[fingerprint, strikes] : quarantineStrikes) {
        content += std::to_string(strikes) + " " + fingerprint + "\n";
    }
    // Best effort: losing the quarantine list only means relearning
    // it; it must never take a request down.
    (void)writeFileAtomic(options.stateDir + "/quarantine.txt",
                          content);
}

Result<void>
ServiceServer::start()
{
    std::error_code ec;
    std::filesystem::create_directories(options.stateDir, ec);
    if (ec) {
        return Error(ErrorCode::IoFailure,
                     "cannot create state directory '" +
                         options.stateDir + "': " + ec.message());
    }
    loadQuarantine();

    if (::pipe(drainPipe) != 0) {
        return Error(ErrorCode::IoFailure,
                     std::string("cannot create drain pipe: ") +
                         std::strerror(errno));
    }

    listenFd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (listenFd < 0) {
        return Error(ErrorCode::IoFailure,
                     std::string("cannot create socket: ") +
                         std::strerror(errno));
    }
    sockaddr_un address{};
    address.sun_family = AF_UNIX;
    if (options.socketPath.size() >= sizeof(address.sun_path)) {
        ::close(listenFd);
        listenFd = -1;
        return Error(ErrorCode::ConfigInvalid,
                     "socket path '" + options.socketPath +
                         "' is too long for a unix socket");
    }
    std::strncpy(address.sun_path, options.socketPath.c_str(),
                 sizeof(address.sun_path) - 1);
    ::unlink(options.socketPath.c_str()); // stale socket from a crash
    if (::bind(listenFd, reinterpret_cast<sockaddr *>(&address),
               sizeof(address)) != 0 ||
        ::listen(listenFd, 16) != 0) {
        const std::string reason = std::strerror(errno);
        ::close(listenFd);
        listenFd = -1;
        return Error(ErrorCode::IoFailure,
                     "cannot listen on '" + options.socketPath +
                         "': " + reason);
    }

    started.store(true, std::memory_order_release);
    publish(obs::EventKind::ServiceState, "listening",
            {obs::Field::u64("queue_limit", options.queueLimit),
             obs::Field::u64("quarantine_threshold",
                             options.quarantineThreshold)});
    acceptThread = std::thread([this] { acceptLoop(); });
    executorThread = std::thread([this] { executorLoop(); });
    return okResult();
}

void
ServiceServer::requestDrain()
{
    const char byte = 'd';
    ssize_t rc;
    do {
        rc = ::write(drainPipe[1], &byte, 1);
    } while (rc < 0 && errno == EINTR);
}

void
ServiceServer::closeListenerAndUnlink()
{
    if (listenFd >= 0) {
        ::close(listenFd);
        listenFd = -1;
    }
    ::unlink(options.socketPath.c_str());
}

void
ServiceServer::acceptLoop()
{
    while (true) {
        pollfd fds[2];
        fds[0].fd = listenFd;
        fds[0].events = POLLIN;
        fds[1].fd = drainPipe[0];
        fds[1].events = POLLIN;
        const int ready = ::poll(fds, 2, -1);
        if (ready < 0) {
            if (errno == EINTR)
                continue;
            break;
        }
        if (fds[1].revents != 0) {
            char sink[16];
            (void)!::read(drainPipe[0], sink, sizeof(sink));
            break;
        }
        if (fds[0].revents == 0)
            continue;
        const int fd = ::accept(listenFd, nullptr, nullptr);
        if (fd < 0)
            continue;
        std::lock_guard<std::mutex> guard(stateLock);
        connectionFds.push_back(fd);
        connectionThreads.emplace_back(
            [this, fd] { handleConnection(fd); });
    }

    // Drain: stop admitting, let the executor finish the in-flight
    // request and answer the queue, then tear the socket down.
    drainRequested.store(true, std::memory_order_release);
    closeListenerAndUnlink();
    publish(obs::EventKind::ServiceState, "draining", {});
    queueCv.notify_all();
}

void
ServiceServer::executorLoop()
{
    while (true) {
        std::shared_ptr<Job> job;
        {
            std::unique_lock<std::mutex> guard(stateLock);
            queueCv.wait(guard, [this] {
                return !queue.empty() ||
                       drainRequested.load(std::memory_order_acquire);
            });
            const bool draining_now =
                drainRequested.load(std::memory_order_acquire);
            if (queue.empty()) {
                if (draining_now)
                    break;
                continue;
            }
            if (draining_now) {
                // The request in flight at drain time (if any) has
                // already been popped; everything still queued is
                // answered without running.
                job = queue.front();
                queue.pop_front();
                ++counters.rejected;
            } else {
                job = queue.front();
                queue.pop_front();
                active = job;
            }
        }

        if (drainRequested.load(std::memory_order_acquire)) {
            publish(obs::EventKind::RequestRejected, job->request.id,
                    {obs::Field::str("reason", "draining")});
            ServiceResponse response = errorResponse(
                job->request.id,
                Error(ErrorCode::ResourceExhausted,
                      "daemon is draining; resubmit to the next "
                      "instance"));
            response.retryAfterMs = options.retryAfterMs;
            std::lock_guard<std::mutex> job_guard(job->lock);
            job->response = std::move(response);
            job->done = true;
            job->cv.notify_all();
            continue;
        }

        executeJob(job);
        {
            std::lock_guard<std::mutex> guard(stateLock);
            active.reset();
        }
    }
    publish(obs::EventKind::ServiceState, "stopped", {});
}

void
ServiceServer::executeJob(const std::shared_ptr<Job> &job)
{
    const std::string &id = job->request.id;
    const std::string &fingerprint =
        job->compiled.requestFingerprint;
    ServiceResponse response;
    response.id = id;
    response.fingerprint = fingerprint;

    if (options.onExecuteBegin)
        options.onExecuteBegin();

    const auto deadline_expired = [&] {
        return job->hasDeadline &&
               std::chrono::steady_clock::now() >= job->deadline;
    };

    publish(obs::EventKind::RequestBegin, id,
            {obs::Field::str("fingerprint", fingerprint),
             obs::Field::str("op",
                             requestKindName(job->request.kind)),
             obs::Field::u64("cells", job->compiled.configs.size()),
             obs::Field::u64("deadline_ms",
                             job->request.deadlineMs)});

    bool armed_fault = false;
    std::string outcome;
    try {
        faultPoint(fault_points::serviceExecute, id);

        if (deadline_expired()) {
            // Expired while queued: answer without running. The
            // request's checkpoint (if any) is untouched, so a
            // resubmission still resumes.
            raise(Error(ErrorCode::DeadlineExceeded,
                        "deadline expired before execution started"));
        }

        if (!job->request.faultSpec.empty()) {
            Result<void> armed =
                FaultInjector::instance().armFromSpec(
                    job->request.faultSpec);
            if (!armed.ok()) {
                raise(std::move(armed.error())
                          .withContext("while arming request fault "
                                       "spec"));
            }
            armed_fault = true;
        }

        RunnerOptions runner_options;
        runner_options.threads = options.threads;
        runner_options.checkpointPath =
            checkpointPathFor(fingerprint);
        runner_options.resume = true;
        runner_options.cancel = [job, this] {
            return job->cancelRequested.load(
                       std::memory_order_acquire) ||
                   (job->hasDeadline &&
                    std::chrono::steady_clock::now() >=
                        job->deadline);
        };
        runner_options.onCellFinished =
            [this, &id](std::size_t index, const CellResult &cell) {
                std::vector<obs::Field> fields{
                    obs::Field::u64("cell", index),
                    obs::Field::boolean("ok", cell.ok()),
                    obs::Field::boolean("restored", cell.restored)};
                if (cell.error) {
                    fields.push_back(obs::Field::str(
                        "code", errorCodeName(cell.error->code())));
                }
                publish(obs::EventKind::RequestCell, id,
                        std::move(fields));
            };

        ExperimentRunner runner(runner_options);
        const std::size_t program_index =
            runner.addWorkload(std::move(job->compiled.program));
        for (std::size_t i = 0; i < job->compiled.configs.size();
             ++i) {
            runner.addCell(program_index, job->compiled.configs[i],
                           job->compiled.labels[i]);
        }
        const MatrixResult matrix = runner.run();
        if (armed_fault) {
            FaultInjector::instance().disarm();
            armed_fault = false;
        }

        Count cancelled_skips = 0;
        for (std::size_t i = 0; i < matrix.cells.size(); ++i) {
            const CellResult &cell = matrix.cells[i];
            if (cell.restored) {
                ++response.restored;
            } else if (cell.ok()) {
                ++response.executed;
            } else {
                ++response.failed;
                if (cell.error->code() == ErrorCode::Cancelled ||
                    cell.error->code() ==
                        ErrorCode::DeadlineExceeded) {
                    ++cancelled_skips;
                } else {
                    response.cellErrors.push_back(
                        {job->compiled.labels[i],
                         errorCodeName(cell.error->code()),
                         cell.error->describe()});
                }
            }
        }

        // The response's cells are read back from the request's
        // checkpoint, so what the client gets is exactly what a
        // resumed or merged run would restore — including the
        // partial set a deadline or cancel left behind.
        SweepCheckpoint checkpoint(checkpointPathFor(fingerprint));
        (void)checkpoint.load();
        for (const std::string &cell_fp :
             job->compiled.fingerprints) {
            if (const CheckpointRecord *record =
                    checkpoint.find(cell_fp)) {
                response.cells.push_back(*record);
            }
        }

        if (!response.cellErrors.empty()) {
            response.ok = false;
            response.failure =
                Error(ErrorCode::CellFailed,
                      std::to_string(response.cellErrors.size()) +
                          " of " +
                          std::to_string(matrix.cells.size()) +
                          " cells failed");
            outcome = "cell_failed";
        } else if (cancelled_skips > 0) {
            response.ok = false;
            const bool was_cancel = job->cancelRequested.load(
                std::memory_order_acquire);
            response.failure = Error(
                was_cancel ? ErrorCode::Cancelled
                           : ErrorCode::DeadlineExceeded,
                (was_cancel ? std::string("request cancelled: ")
                            : std::string("deadline expired: ")) +
                    std::to_string(cancelled_skips) +
                    " cells skipped; finished cells are "
                    "checkpointed and a resubmission resumes from "
                    "them");
            outcome = errorCodeName(response.failure->code());
        } else {
            outcome = "ok";
        }
    } catch (const ErrorException &failure) {
        response = errorResponse(id, failure.error());
        response.fingerprint = fingerprint;
        outcome = errorCodeName(failure.error().code());
    } catch (const std::exception &failure) {
        response = errorResponse(
            id, Error(ErrorCode::Internal,
                      std::string("unexpected exception: ") +
                          failure.what()));
        response.fingerprint = fingerprint;
        outcome = "internal";
    }
    if (armed_fault)
        FaultInjector::instance().disarm();

    // Quarantine bookkeeping: hard failures (cell_failed/internal)
    // strike the fingerprint; a clean success clears it.
    bool quarantined_now = false;
    {
        std::lock_guard<std::mutex> guard(stateLock);
        if (outcome == "ok") {
            ++counters.completed;
            if (quarantineStrikes.erase(fingerprint) > 0)
                persistQuarantine();
        } else {
            ++counters.failed;
            if (outcome == "cancelled")
                ++counters.cancelled;
            else if (outcome == "deadline_exceeded")
                ++counters.expired;
            if (outcome == "cell_failed" || outcome == "internal") {
                const unsigned strikes =
                    ++quarantineStrikes[fingerprint];
                quarantined_now =
                    strikes >= options.quarantineThreshold;
                persistQuarantine();
            }
        }
    }

    std::vector<obs::Field> end_fields{
        obs::Field::str("outcome", outcome),
        obs::Field::str("fingerprint", fingerprint),
        obs::Field::u64("executed", response.executed),
        obs::Field::u64("restored", response.restored),
        obs::Field::u64("failed", response.failed)};
    if (quarantined_now)
        end_fields.push_back(obs::Field::boolean("quarantined", true));
    publish(obs::EventKind::RequestEnd, id, std::move(end_fields));

    std::lock_guard<std::mutex> job_guard(job->lock);
    job->response = std::move(response);
    job->done = true;
    job->cv.notify_all();
}

ServiceResponse
ServiceServer::admitAndWait(ServiceRequest request)
{
    const std::string id = request.id;
    try {
        faultPoint(fault_points::serviceAdmit, id);
    } catch (const ErrorException &failure) {
        return errorResponse(id, failure.error());
    }

    if (!request.faultSpec.empty() &&
        !options.allowFaultInjection) {
        return errorResponse(
            id, Error(ErrorCode::ConfigInvalid,
                      "this daemon does not accept per-request "
                      "fault specs (start it with "
                      "--allow-fault-inject)"));
    }

    Result<CompiledSweep> compiled = compileSweep(request.sweep);
    if (!compiled.ok()) {
        return errorResponse(id, std::move(compiled.error()));
    }
    const std::string fingerprint =
        compiled.value().requestFingerprint;

    auto job = std::make_shared<Job>();
    job->request = std::move(request);
    job->compiled = std::move(compiled.value());
    if (job->request.deadlineMs > 0) {
        job->hasDeadline = true;
        job->deadline =
            std::chrono::steady_clock::now() +
            std::chrono::milliseconds(job->request.deadlineMs);
    }

    std::string reject_reason;
    std::optional<ServiceResponse> rejected;
    {
        std::lock_guard<std::mutex> guard(stateLock);
        if (drainRequested.load(std::memory_order_acquire)) {
            reject_reason = "draining";
            ServiceResponse response = errorResponse(
                id, Error(ErrorCode::ResourceExhausted,
                          "daemon is draining; resubmit to the "
                          "next instance"));
            response.retryAfterMs = options.retryAfterMs;
            ++counters.rejected;
            rejected = std::move(response);
        } else if (const auto strikes =
                       quarantineStrikes.find(fingerprint);
                   strikes != quarantineStrikes.end() &&
                   strikes->second >= options.quarantineThreshold) {
            reject_reason = "quarantined";
            ++counters.rejected;
            rejected = errorResponse(
                id,
                Error(ErrorCode::ConfigInvalid,
                      "fingerprint " + fingerprint +
                          " is quarantined after " +
                          std::to_string(strikes->second) +
                          " failing requests")
                    .withContext("a successful request clears the "
                                 "quarantine"));
        } else if (jobsById.count(id) != 0) {
            reject_reason = "duplicate_id";
            ++counters.rejected;
            rejected = errorResponse(
                id, Error(ErrorCode::ConfigInvalid,
                          "request id '" + id +
                              "' is already queued or running"));
        } else if (queue.size() >= options.queueLimit) {
            reject_reason = "queue_full";
            ServiceResponse response = errorResponse(
                id,
                Error(ErrorCode::ResourceExhausted,
                      "admission queue is full (" +
                          std::to_string(options.queueLimit) +
                          " requests waiting)")
                    .withContext("retry after the hinted backoff"));
            response.retryAfterMs = options.retryAfterMs;
            ++counters.rejected;
            rejected = std::move(response);
        } else {
            queue.push_back(job);
            jobsById[id] = job;
        }
    }
    if (rejected) {
        publish(obs::EventKind::RequestRejected, id,
                {obs::Field::str("reason", reject_reason),
                 obs::Field::str("fingerprint", fingerprint)});
        return std::move(*rejected);
    }
    queueCv.notify_all();

    ServiceResponse response;
    {
        std::unique_lock<std::mutex> job_guard(job->lock);
        job->cv.wait(job_guard, [&job] { return job->done; });
        response = std::move(job->response);
    }
    {
        std::lock_guard<std::mutex> guard(stateLock);
        jobsById.erase(id);
    }
    return response;
}

ServiceResponse
ServiceServer::statusResponse(const std::string &id)
{
    ServiceResponse response;
    response.id = id;
    std::lock_guard<std::mutex> guard(stateLock);
    response.state =
        drainRequested.load(std::memory_order_acquire) ? "draining"
                                                       : "listening";
    response.queueDepth = queue.size();
    response.queueLimit = options.queueLimit;
    response.active = active != nullptr ? 1 : 0;
    response.completed = counters.completed;
    response.rejected = counters.rejected;
    for (const auto &[fingerprint, strikes] : quarantineStrikes) {
        if (strikes >= options.quarantineThreshold)
            ++response.quarantined;
    }
    return response;
}

ServiceResponse
ServiceServer::cancelResponse(const ServiceRequest &request)
{
    std::shared_ptr<Job> target;
    {
        std::lock_guard<std::mutex> guard(stateLock);
        const auto it = jobsById.find(request.targetId);
        if (it != jobsById.end())
            target = it->second;
    }
    if (target == nullptr) {
        return errorResponse(
            request.id,
            Error(ErrorCode::ConfigInvalid,
                  "no queued or running request has id '" +
                      request.targetId + "'"));
    }
    target->cancelRequested.store(true, std::memory_order_release);
    queueCv.notify_all();
    ServiceResponse response;
    response.id = request.id;
    return response;
}

bool
ServiceServer::handleLine(int fd, const std::string &line,
                          bool &fd_handed_off)
{
    Result<ServiceRequest> parsed = parseRequest(line);
    if (!parsed.ok()) {
        {
            std::lock_guard<std::mutex> guard(stateLock);
            ++counters.rejected;
        }
        publish(obs::EventKind::RequestRejected, "",
                {obs::Field::str("reason", "malformed")});
        sendLine(fd,
                 renderResponse(errorResponse(
                     "", std::move(parsed.error())
                             .withContext("while parsing request"))));
        return true;
    }
    ServiceRequest request = std::move(parsed.value());

    switch (request.kind) {
      case RequestKind::Status:
        return sendLine(fd,
                        renderResponse(statusResponse(request.id)));
      case RequestKind::Cancel:
        return sendLine(fd,
                        renderResponse(cancelResponse(request)));
      case RequestKind::Shutdown: {
        ServiceResponse response;
        response.id = request.id;
        sendLine(fd, renderResponse(response));
        requestDrain();
        return false;
      }
      case RequestKind::Subscribe: {
        ServiceResponse response;
        response.id = request.id;
        if (!sendLine(fd, renderResponse(response)))
            return false;
        std::lock_guard<std::mutex> guard(stateLock);
        subscriberFds.push_back(fd);
        fd_handed_off = true; // broadcast list owns it now
        return false;
      }
      case RequestKind::Run:
      case RequestKind::Sweep:
        return sendLine(
            fd, renderResponse(admitAndWait(std::move(request))));
    }
    return true;
}

void
ServiceServer::handleConnection(int fd)
{
    std::string buffer;
    std::string line;
    bool fd_handed_off = false;
    while (readLineFd(fd, buffer, line)) {
        if (line.empty())
            continue;
        if (!handleLine(fd, line, fd_handed_off))
            break;
    }
    std::lock_guard<std::mutex> guard(stateLock);
    connectionFds.erase(std::remove(connectionFds.begin(),
                                    connectionFds.end(), fd),
                        connectionFds.end());
    if (!fd_handed_off)
        ::close(fd);
}

void
ServiceServer::publish(obs::EventKind kind, const std::string &label,
                       std::vector<obs::Field> fields)
{
    const std::string line = serviceJournal.recordAndRender(
        kind, 0, label, std::move(fields));
    std::lock_guard<std::mutex> guard(stateLock);
    for (auto it = subscriberFds.begin();
         it != subscriberFds.end();) {
        if (sendLine(*it, line)) {
            ++it;
        } else {
            ::close(*it);
            it = subscriberFds.erase(it);
        }
    }
}

ServiceStats
ServiceServer::stats() const
{
    std::lock_guard<std::mutex> guard(stateLock);
    ServiceStats snapshot = counters;
    for (const auto &[fingerprint, strikes] : quarantineStrikes) {
        if (strikes >= options.quarantineThreshold)
            ++snapshot.quarantinedNow;
    }
    return snapshot;
}

void
ServiceServer::waitUntilStopped()
{
    if (!started.load(std::memory_order_acquire))
        return;
    if (acceptThread.joinable())
        acceptThread.join();
    if (executorThread.joinable())
        executorThread.join();

    // Unblock connection threads still parked in recv() and close
    // the subscriber streams; then collect every handler.
    std::vector<std::thread> handlers;
    {
        std::lock_guard<std::mutex> guard(stateLock);
        for (const int fd : connectionFds)
            ::shutdown(fd, SHUT_RDWR);
        for (const int fd : subscriberFds)
            ::close(fd);
        subscriberFds.clear();
        handlers.swap(connectionThreads);
    }
    for (std::thread &handler : handlers) {
        if (handler.joinable())
            handler.join();
    }

    if (!options.journalPath.empty()) {
        serviceJournal.writeJsonl(options.journalPath);
        serviceJournal.writeMetrics(
            obs::RunJournal::metricsPathFor(options.journalPath));
    }
    started.store(false, std::memory_order_release);
}

} // namespace bpsim::service
