#include "trace/replay_buffer.hh"

#include "support/logging.hh"

namespace bpsim
{

ReplayBuffer
ReplayBuffer::materialize(BranchStream &source, Count limit)
{
    ReplayBuffer buffer;
    buffer.pcs.reserve(limit);
    buffer.gapTaken.reserve(limit);

    source.reset();
    BranchRecord record;
    for (Count i = 0; i < limit && source.next(record); ++i) {
        bpsim_assert((record.instGap & takenBit) == 0,
                     "instruction gap exceeds 31 bits");
        buffer.pcs.push_back(record.pc);
        buffer.gapTaken.push_back(record.instGap |
                                  (record.taken ? takenBit : 0));
        buffer.instructions += record.instGap;
    }
    return buffer;
}

} // namespace bpsim
