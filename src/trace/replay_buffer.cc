#include "trace/replay_buffer.hh"

#include <unordered_map>

#include "support/logging.hh"

namespace bpsim
{

ReplayBuffer
ReplayBuffer::materialize(BranchStream &source, Count limit)
{
    ReplayBuffer buffer;
    buffer.pcs.reserve(limit);
    buffer.gapTaken.reserve(limit);

    source.reset();
    BranchRecord record;
    for (Count i = 0; i < limit && source.next(record); ++i) {
        bpsim_assert((record.instGap & takenBit) == 0,
                     "instruction gap exceeds 31 bits");
        buffer.pcs.push_back(record.pc);
        buffer.gapTaken.push_back(record.instGap |
                                  (record.taken ? takenBit : 0));
        buffer.instructions += record.instGap;
    }
    return buffer;
}

ReplayBuffer
ReplayBuffer::fromColumns(const Addr *pc_column,
                          const std::uint32_t *packed_column,
                          Count records, Count instruction_count,
                          std::shared_ptr<const void> backing)
{
    bpsim_assert(records == 0 ||
                     (pc_column != nullptr && packed_column != nullptr),
                 "null replay columns");
    ReplayBuffer buffer;
    // A zero-record view still needs a non-null marker so mapped()
    // and the accessors pick the view mode consistently; point at a
    // static dummy when the caller passed nothing.
    static const Addr emptyPc = 0;
    static const std::uint32_t emptyPacked = 0;
    buffer.viewPcs = pc_column != nullptr ? pc_column : &emptyPc;
    buffer.viewPacked =
        packed_column != nullptr ? packed_column : &emptyPacked;
    buffer.viewSize = records;
    buffer.instructions = instruction_count;
    buffer.backing = std::move(backing);
    return buffer;
}

SiteIndex
SiteIndex::build(const ReplayBuffer &buffer)
{
    SiteIndex index;
    const Count n = buffer.size();
    index.siteOf.resize(n);

    const Addr *pcs = buffer.pcData();
    std::unordered_map<Addr, std::uint32_t> ids;
    for (Count i = 0; i < n; ++i) {
        const auto [it, inserted] = ids.try_emplace(
            pcs[i], static_cast<std::uint32_t>(index.pcs.size()));
        if (inserted)
            index.pcs.push_back(pcs[i]);
        index.siteOf[i] = it->second;
    }
    return index;
}

} // namespace bpsim
