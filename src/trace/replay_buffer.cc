#include "trace/replay_buffer.hh"

#include <unordered_map>

#include "support/logging.hh"

namespace bpsim
{

ReplayBuffer
ReplayBuffer::materialize(BranchStream &source, Count limit)
{
    ReplayBuffer buffer;
    buffer.pcs.reserve(limit);
    buffer.gapTaken.reserve(limit);

    source.reset();
    BranchRecord record;
    for (Count i = 0; i < limit && source.next(record); ++i) {
        bpsim_assert((record.instGap & takenBit) == 0,
                     "instruction gap exceeds 31 bits");
        buffer.pcs.push_back(record.pc);
        buffer.gapTaken.push_back(record.instGap |
                                  (record.taken ? takenBit : 0));
        buffer.instructions += record.instGap;
    }
    return buffer;
}

SiteIndex
SiteIndex::build(const ReplayBuffer &buffer)
{
    SiteIndex index;
    const Count n = buffer.size();
    index.siteOf.resize(n);

    const Addr *pcs = buffer.pcData();
    std::unordered_map<Addr, std::uint32_t> ids;
    for (Count i = 0; i < n; ++i) {
        const auto [it, inserted] = ids.try_emplace(
            pcs[i], static_cast<std::uint32_t>(index.pcs.size()));
        if (inserted)
            index.pcs.push_back(pcs[i]);
        index.siteOf[i] = it->second;
    }
    return index;
}

} // namespace bpsim
