#include "trace/trace_io.hh"

#include <cinttypes>
#include <cstring>

#include "support/logging.hh"

namespace bpsim
{

namespace
{

constexpr char traceMagic[4] = {'B', 'P', 'T', '1'};

std::uint64_t
zigzagEncode(std::int64_t value)
{
    return (static_cast<std::uint64_t>(value) << 1) ^
           static_cast<std::uint64_t>(value >> 63);
}

std::int64_t
zigzagDecode(std::uint64_t value)
{
    return static_cast<std::int64_t>(value >> 1) ^
           -static_cast<std::int64_t>(value & 1);
}

} // namespace

TraceWriter::TraceWriter(const std::string &path)
{
    file = std::fopen(path.c_str(), "wb");
    if (file == nullptr)
        bpsim_fatal("cannot open trace file '", path, "' for writing");
    if (std::fwrite(traceMagic, 1, sizeof(traceMagic), file) !=
        sizeof(traceMagic)) {
        bpsim_fatal("cannot write trace header to '", path, "'");
    }
}

TraceWriter::~TraceWriter()
{
    close();
}

void
TraceWriter::putVarint(std::uint64_t value)
{
    unsigned char buf[10];
    int len = 0;
    do {
        unsigned char byte = value & 0x7f;
        value >>= 7;
        if (value != 0)
            byte |= 0x80;
        buf[len++] = byte;
    } while (value != 0);
    if (std::fwrite(buf, 1, static_cast<std::size_t>(len), file) !=
        static_cast<std::size_t>(len)) {
        bpsim_fatal("short write to trace file");
    }
}

void
TraceWriter::write(const BranchRecord &record)
{
    bpsim_assert(file != nullptr, "write to closed TraceWriter");
    bpsim_assert(record.instGap >= 1, "instGap must be >= 1");
    const std::int64_t delta =
        static_cast<std::int64_t>(record.pc) -
        static_cast<std::int64_t>(lastPc);
    putVarint(zigzagEncode(delta));
    putVarint((static_cast<std::uint64_t>(record.instGap) << 1) |
              (record.taken ? 1 : 0));
    lastPc = record.pc;
    ++written;
}

Count
TraceWriter::writeAll(BranchStream &source)
{
    BranchRecord record;
    Count n = 0;
    while (source.next(record)) {
        write(record);
        ++n;
    }
    return n;
}

void
TraceWriter::close()
{
    if (file != nullptr) {
        std::fclose(file);
        file = nullptr;
    }
}

TraceReader::TraceReader(const std::string &path) : path(path)
{
    file = std::fopen(path.c_str(), "rb");
    if (file == nullptr)
        bpsim_fatal("cannot open trace file '", path, "'");
    readHeader();
}

TraceReader::~TraceReader()
{
    if (file != nullptr)
        std::fclose(file);
}

void
TraceReader::readHeader()
{
    char magic[4];
    if (std::fread(magic, 1, sizeof(magic), file) != sizeof(magic) ||
        std::memcmp(magic, traceMagic, sizeof(magic)) != 0) {
        bpsim_fatal("'", path, "' is not a bpsim trace file");
    }
}

bool
TraceReader::getVarint(std::uint64_t &value)
{
    value = 0;
    int shift = 0;
    for (;;) {
        const int c = std::fgetc(file);
        if (c == EOF) {
            if (shift != 0)
                bpsim_fatal("truncated varint in '", path, "'");
            return false;
        }
        value |= static_cast<std::uint64_t>(c & 0x7f) << shift;
        if ((c & 0x80) == 0)
            return true;
        shift += 7;
        if (shift >= 64)
            bpsim_fatal("overlong varint in '", path, "'");
    }
}

bool
TraceReader::next(BranchRecord &record)
{
    std::uint64_t delta_bits;
    if (!getVarint(delta_bits))
        return false;
    std::uint64_t gap_bits;
    if (!getVarint(gap_bits))
        bpsim_fatal("trace '", path, "' ends mid-record");
    const std::int64_t delta = zigzagDecode(delta_bits);
    lastPc = static_cast<Addr>(static_cast<std::int64_t>(lastPc) + delta);
    record.pc = lastPc;
    record.taken = (gap_bits & 1) != 0;
    record.instGap = static_cast<std::uint32_t>(gap_bits >> 1);
    if (record.instGap == 0)
        bpsim_fatal("zero instruction gap in '", path, "'");
    return true;
}

void
TraceReader::reset()
{
    std::rewind(file);
    readHeader();
    lastPc = 0;
}

void
writeTextTrace(BranchStream &source, const std::string &path)
{
    std::FILE *out = std::fopen(path.c_str(), "w");
    if (out == nullptr)
        bpsim_fatal("cannot open '", path, "' for writing");
    BranchRecord record;
    while (source.next(record)) {
        std::fprintf(out, "%#" PRIx64 " %c %" PRIu32 "\n", record.pc,
                     record.taken ? 'T' : 'N', record.instGap);
    }
    std::fclose(out);
}

MemoryTrace
readTextTrace(const std::string &path)
{
    std::FILE *in = std::fopen(path.c_str(), "r");
    if (in == nullptr)
        bpsim_fatal("cannot open '", path, "'");
    MemoryTrace trace;
    std::uint64_t pc;
    char dir;
    std::uint32_t gap;
    int line = 0;
    while (std::fscanf(in, "%" SCNx64 " %c %" SCNu32, &pc, &dir, &gap) ==
           3) {
        ++line;
        if (dir != 'T' && dir != 'N') {
            std::fclose(in);
            bpsim_fatal("bad direction at line ", line, " of '", path,
                        "'");
        }
        trace.append({pc, dir == 'T', gap});
    }
    std::fclose(in);
    return trace;
}

} // namespace bpsim
