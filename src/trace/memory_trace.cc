#include "trace/memory_trace.hh"

namespace bpsim
{

MemoryTrace
MemoryTrace::capture(BranchStream &source)
{
    MemoryTrace trace;
    BranchRecord record;
    while (source.next(record))
        trace.append(record);
    return trace;
}

MemoryTrace
MemoryTrace::capture(BranchStream &source, Count limit)
{
    MemoryTrace trace;
    BranchRecord record;
    for (Count i = 0; i < limit && source.next(record); ++i)
        trace.append(record);
    return trace;
}

bool
MemoryTrace::next(BranchRecord &record)
{
    if (cursor >= records.size())
        return false;
    record = records[cursor++];
    return true;
}

Count
MemoryTrace::instructionCount() const
{
    Count total = 0;
    for (const auto &record : records)
        total += record.instGap;
    return total;
}

} // namespace bpsim
