/**
 * @file
 * In-memory branch trace: a recordable, replayable BranchStream.
 */

#ifndef BPSIM_TRACE_MEMORY_TRACE_HH
#define BPSIM_TRACE_MEMORY_TRACE_HH

#include <cstddef>
#include <vector>

#include "trace/branch_stream.hh"

namespace bpsim
{

/** A trace held entirely in memory; useful for tests and capture. */
class MemoryTrace : public BranchStream
{
  public:
    MemoryTrace() = default;

    /** Build from an existing record vector. */
    explicit MemoryTrace(std::vector<BranchRecord> records)
        : records(std::move(records))
    {}

    /** Append one record to the end of the trace. */
    void
    append(const BranchRecord &record)
    {
        records.push_back(record);
    }

    /** Capture every record of @p source (which is drained). */
    static MemoryTrace capture(BranchStream &source);

    /** Capture at most @p limit records of @p source. */
    static MemoryTrace capture(BranchStream &source, Count limit);

    bool next(BranchRecord &record) override;
    void reset() override { cursor = 0; }

    /** Number of records stored. */
    std::size_t size() const { return records.size(); }

    /** Direct access for tests and analysis passes. */
    const std::vector<BranchRecord> &data() const { return records; }

    /** Total dynamic instruction count (sum of gaps). */
    Count instructionCount() const;

  private:
    std::vector<BranchRecord> records;
    std::size_t cursor = 0;
};

} // namespace bpsim

#endif // BPSIM_TRACE_MEMORY_TRACE_HH
