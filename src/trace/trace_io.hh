/**
 * @file
 * Binary on-disk trace format and a bounded-prefix stream adapter.
 *
 * Records are delta-encoded: each record stores a zigzag varint of the
 * PC delta from the previous record and a varint packing the
 * instruction gap with the outcome bit. Typical traces compress to
 * ~2 bytes per branch, which keeps multi-million-branch traces cheap.
 */

#ifndef BPSIM_TRACE_TRACE_IO_HH
#define BPSIM_TRACE_TRACE_IO_HH

#include <cstdio>
#include <memory>
#include <string>

#include "trace/branch_stream.hh"
#include "trace/memory_trace.hh"

namespace bpsim
{

/** Streaming writer for the binary trace format. */
class TraceWriter
{
  public:
    /** Open @p path for writing; fatal() on failure. */
    explicit TraceWriter(const std::string &path);
    ~TraceWriter();

    TraceWriter(const TraceWriter &) = delete;
    TraceWriter &operator=(const TraceWriter &) = delete;

    /** Append one record. */
    void write(const BranchRecord &record);

    /** Drain @p source into the file; returns records written. */
    Count writeAll(BranchStream &source);

    /** Flush and close; implied by destruction. */
    void close();

    /** Records written so far. */
    Count count() const { return written; }

  private:
    void putVarint(std::uint64_t value);

    std::FILE *file = nullptr;
    Addr lastPc = 0;
    Count written = 0;
};

/** Streaming reader; a BranchStream over a trace file. */
class TraceReader : public BranchStream
{
  public:
    /** Open @p path; fatal() on missing file or bad magic. */
    explicit TraceReader(const std::string &path);
    ~TraceReader() override;

    TraceReader(const TraceReader &) = delete;
    TraceReader &operator=(const TraceReader &) = delete;

    bool next(BranchRecord &record) override;
    void reset() override;

  private:
    bool getVarint(std::uint64_t &value);
    void readHeader();

    std::FILE *file = nullptr;
    std::string path;
    Addr lastPc = 0;
};

/**
 * Adapter exposing at most @p limit records of an underlying stream;
 * used to run bounded simulations over unbounded synthetic workloads.
 */
class BoundedStream : public BranchStream
{
  public:
    BoundedStream(BranchStream &inner, Count limit)
        : inner(inner), limit(limit)
    {}

    bool
    next(BranchRecord &record) override
    {
        if (produced >= limit || !inner.next(record))
            return false;
        ++produced;
        return true;
    }

    void
    reset() override
    {
        inner.reset();
        produced = 0;
    }

  private:
    BranchStream &inner;
    Count limit;
    Count produced = 0;
};

/** Dump a stream as human-readable text ("pc taken gap" lines). */
void writeTextTrace(BranchStream &source, const std::string &path);

/** Parse a text trace produced by writeTextTrace(). */
MemoryTrace readTextTrace(const std::string &path);

} // namespace bpsim

#endif // BPSIM_TRACE_TRACE_IO_HH
