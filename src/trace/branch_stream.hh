/**
 * @file
 * Abstract source of dynamic branch records.
 *
 * Both stored traces and live synthetic workloads implement this
 * interface, so the simulation engine and the profiling passes are
 * agnostic about where branches come from (the Atom-instrumented
 * binaries of the paper are replaced by these streams).
 */

#ifndef BPSIM_TRACE_BRANCH_STREAM_HH
#define BPSIM_TRACE_BRANCH_STREAM_HH

#include "trace/branch_record.hh"

namespace bpsim
{

/** A resettable, forward-only stream of branch records. */
class BranchStream
{
  public:
    virtual ~BranchStream() = default;

    /**
     * Produce the next record.
     *
     * @param record filled in on success
     * @retval true a record was produced
     * @retval false the stream is exhausted
     */
    virtual bool next(BranchRecord &record) = 0;

    /** Rewind to the beginning; the same records replay identically. */
    virtual void reset() = 0;
};

} // namespace bpsim

#endif // BPSIM_TRACE_BRANCH_STREAM_HH
