/**
 * @file
 * The unit of work every predictor consumes: one dynamic conditional
 * branch execution.
 */

#ifndef BPSIM_TRACE_BRANCH_RECORD_HH
#define BPSIM_TRACE_BRANCH_RECORD_HH

#include <cstdint>

#include "support/types.hh"

namespace bpsim
{

/**
 * One executed conditional branch.
 *
 * @c instGap is the number of instructions retired since the previous
 * record, *including* this branch itself; summing the gaps of a trace
 * therefore yields the program's dynamic instruction count, which the
 * paper's MISP/KI metric is normalised by.
 */
struct BranchRecord
{
    /** Address of the branch instruction. */
    Addr pc = 0;

    /** Actual outcome: true when the branch was taken. */
    bool taken = false;

    /** Instructions retired since the previous record (>= 1). */
    std::uint32_t instGap = 1;

    bool
    operator==(const BranchRecord &other) const
    {
        return pc == other.pc && taken == other.taken &&
               instGap == other.instGap;
    }
};

} // namespace bpsim

#endif // BPSIM_TRACE_BRANCH_RECORD_HH
