/**
 * @file
 * Materialized branch trace optimised for repeated replay.
 *
 * A ReplayBuffer captures a stream's records once into flat,
 * cache-friendly storage (structure-of-arrays: the PC column plus a
 * packed gap/outcome column, 12 bytes per branch) and hands out any
 * number of independent read cursors over it. Experiment matrices
 * that simulate N predictor configurations over the same program
 * replay the buffer N times instead of re-running CFG walking and
 * behaviour evaluation N times, and concurrent cursors make the
 * buffer shareable across worker threads without locking.
 */

#ifndef BPSIM_TRACE_REPLAY_BUFFER_HH
#define BPSIM_TRACE_REPLAY_BUFFER_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "trace/branch_stream.hh"

namespace bpsim
{

/** An immutable, replayable capture of a branch stream's prefix. */
class ReplayBuffer
{
  public:
    ReplayBuffer() = default;

    /**
     * Capture at most @p limit records of @p source, resetting it
     * first so the buffer replays exactly what a fresh run of the
     * source would produce. Instruction gaps must fit in 31 bits
     * (the taken flag shares their word).
     */
    static ReplayBuffer materialize(BranchStream &source, Count limit);

    /**
     * Wrap externally owned columns (an artifact-cache mmap) without
     * copying. The buffer only views @p pc_column / @p packed_column;
     * @p backing keeps the memory alive for as long as any copy of
     * the buffer exists (copies share it), so the mapping's lifetime
     * follows ordinary value semantics. The columns must use the same
     * encoding materialize() produces.
     */
    static ReplayBuffer
    fromColumns(const Addr *pc_column,
                const std::uint32_t *packed_column, Count records,
                Count instruction_count,
                std::shared_ptr<const void> backing);

    /** Records stored. */
    Count size() const { return viewPcs ? viewSize : pcs.size(); }

    bool empty() const { return size() == 0; }

    /** True when the buffer views external (mapped) storage. */
    bool mapped() const { return viewPcs != nullptr; }

    /** Total dynamic instruction count (sum of gaps). */
    Count instructionCount() const { return instructions; }

    /**
     * Bytes of record storage the replay reads (the replay memory
     * cost). For a mapped buffer these are shared page-cache bytes,
     * not private allocations.
     */
    std::size_t memoryBytes() const { return size() * bytesPerBranch; }

    /** Storage cost per branch in bytes (PC column + gap/taken word). */
    static constexpr std::size_t bytesPerBranch =
        sizeof(Addr) + sizeof(std::uint32_t);

    /** Fill @p record with record @p index (no bounds check). */
    void
    get(Count index, BranchRecord &record) const
    {
        record.pc = pcData()[index];
        const std::uint32_t packed = packedData()[index];
        record.taken = (packed & takenBit) != 0;
        record.instGap = packed & ~takenBit;
    }

    /**
     * A forward cursor over the buffer; implements BranchStream so
     * the engine replays it like any other trace. Cursors are cheap
     * value types: every simulation (and every worker thread) takes
     * its own, so the shared buffer is read concurrently with no
     * synchronisation.
     */
    class Cursor : public BranchStream
    {
      public:
        explicit Cursor(const ReplayBuffer &buffer) : buf(&buffer) {}

        bool
        next(BranchRecord &record) override
        {
            if (pos >= buf->size())
                return false;
            buf->get(pos, record);
            ++pos;
            return true;
        }

        void reset() override { pos = 0; }

      private:
        const ReplayBuffer *buf;
        Count pos = 0;
    };

    /** A fresh cursor positioned at the first record. */
    Cursor cursor() const { return Cursor(*this); }

    /** Bit of a packed gap/taken word holding the outcome flag. */
    static constexpr std::uint32_t packedTakenBit = 0x8000'0000u;

    /**
     * Raw column access for block-iterating consumers (the engine's
     * devirtualized replay kernels). pcData()[i] pairs with
     * packedData()[i]: taken = packed & packedTakenBit, instruction
     * gap = packed & ~packedTakenBit — the same decode get() applies.
     */
    const Addr *
    pcData() const
    {
        return viewPcs ? viewPcs : pcs.data();
    }

    const std::uint32_t *
    packedData() const
    {
        return viewPacked ? viewPacked : gapTaken.data();
    }

  private:
    static constexpr std::uint32_t takenBit = packedTakenBit;

    // Owned storage (materialize()): the vectors hold the columns and
    // the view pointers stay null. Mapped storage (fromColumns()):
    // the view pointers reference external memory kept alive by
    // `backing`, and the vectors stay empty. Accessors branch on the
    // mode once per call; the hot replay kernels fetch pcData() /
    // packedData() a single time per pass, so the branch never sits
    // in an inner loop.
    std::vector<Addr> pcs;
    std::vector<std::uint32_t> gapTaken;
    Count instructions = 0;

    const Addr *viewPcs = nullptr;
    const std::uint32_t *viewPacked = nullptr;
    Count viewSize = 0;
    std::shared_ptr<const void> backing;
};

/**
 * Dense enumeration of a buffer's distinct branch sites (static
 * branches). Site ids are assigned in first-occurrence order, so
 * siteData()[i] maps record i to a small integer < siteCount() and
 * sitePc() inverts the mapping.
 *
 * Built once per buffer and shared read-only, a site index lets
 * consumers that would otherwise hash the PC column per record — the
 * fused sweep executor's static-hint lookups and per-branch profile
 * accumulation — replace the hash with an L1-resident array load.
 * The index is pure acceleration: it carries no information beyond
 * the PC column itself, so results never depend on it.
 */
class SiteIndex
{
  public:
    SiteIndex() = default;

    /** Enumerate the sites of @p buffer (one pass over its records). */
    static SiteIndex build(const ReplayBuffer &buffer);

    /** Distinct branch sites seen. */
    std::uint32_t
    siteCount() const
    {
        return static_cast<std::uint32_t>(pcs.size());
    }

    /** Per-record site ids, parallel to the buffer's columns. */
    const std::uint32_t *siteData() const { return siteOf.data(); }

    /** The PC of @p site (no bounds check). */
    Addr sitePc(std::uint32_t site) const { return pcs[site]; }

    /** Records the index covers (the buffer's size at build time). */
    Count size() const { return siteOf.size(); }

    /** Bytes held by the index. */
    std::size_t
    memoryBytes() const
    {
        return siteOf.size() * sizeof(std::uint32_t) +
               pcs.size() * sizeof(Addr);
    }

  private:
    std::vector<std::uint32_t> siteOf;
    std::vector<Addr> pcs;
};

} // namespace bpsim

#endif // BPSIM_TRACE_REPLAY_BUFFER_HH
