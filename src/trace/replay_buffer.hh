/**
 * @file
 * Materialized branch trace optimised for repeated replay.
 *
 * A ReplayBuffer captures a stream's records once into flat,
 * cache-friendly storage (structure-of-arrays: the PC column plus a
 * packed gap/outcome column, 12 bytes per branch) and hands out any
 * number of independent read cursors over it. Experiment matrices
 * that simulate N predictor configurations over the same program
 * replay the buffer N times instead of re-running CFG walking and
 * behaviour evaluation N times, and concurrent cursors make the
 * buffer shareable across worker threads without locking.
 */

#ifndef BPSIM_TRACE_REPLAY_BUFFER_HH
#define BPSIM_TRACE_REPLAY_BUFFER_HH

#include <cstdint>
#include <vector>

#include "trace/branch_stream.hh"

namespace bpsim
{

/** An immutable, replayable capture of a branch stream's prefix. */
class ReplayBuffer
{
  public:
    ReplayBuffer() = default;

    /**
     * Capture at most @p limit records of @p source, resetting it
     * first so the buffer replays exactly what a fresh run of the
     * source would produce. Instruction gaps must fit in 31 bits
     * (the taken flag shares their word).
     */
    static ReplayBuffer materialize(BranchStream &source, Count limit);

    /** Records stored. */
    Count size() const { return pcs.size(); }

    bool empty() const { return pcs.empty(); }

    /** Total dynamic instruction count (sum of gaps). */
    Count instructionCount() const { return instructions; }

    /** Bytes of record storage held (the replay memory cost). */
    std::size_t
    memoryBytes() const
    {
        return pcs.size() * sizeof(Addr) +
               gapTaken.size() * sizeof(std::uint32_t);
    }

    /** Storage cost per branch in bytes (PC column + gap/taken word). */
    static constexpr std::size_t bytesPerBranch =
        sizeof(Addr) + sizeof(std::uint32_t);

    /** Fill @p record with record @p index (no bounds check). */
    void
    get(Count index, BranchRecord &record) const
    {
        record.pc = pcs[index];
        const std::uint32_t packed = gapTaken[index];
        record.taken = (packed & takenBit) != 0;
        record.instGap = packed & ~takenBit;
    }

    /**
     * A forward cursor over the buffer; implements BranchStream so
     * the engine replays it like any other trace. Cursors are cheap
     * value types: every simulation (and every worker thread) takes
     * its own, so the shared buffer is read concurrently with no
     * synchronisation.
     */
    class Cursor : public BranchStream
    {
      public:
        explicit Cursor(const ReplayBuffer &buffer) : buf(&buffer) {}

        bool
        next(BranchRecord &record) override
        {
            if (pos >= buf->size())
                return false;
            buf->get(pos, record);
            ++pos;
            return true;
        }

        void reset() override { pos = 0; }

      private:
        const ReplayBuffer *buf;
        Count pos = 0;
    };

    /** A fresh cursor positioned at the first record. */
    Cursor cursor() const { return Cursor(*this); }

    /** Bit of a packed gap/taken word holding the outcome flag. */
    static constexpr std::uint32_t packedTakenBit = 0x8000'0000u;

    /**
     * Raw column access for block-iterating consumers (the engine's
     * devirtualized replay kernels). pcData()[i] pairs with
     * packedData()[i]: taken = packed & packedTakenBit, instruction
     * gap = packed & ~packedTakenBit — the same decode get() applies.
     */
    const Addr *pcData() const { return pcs.data(); }

    const std::uint32_t *packedData() const { return gapTaken.data(); }

  private:
    static constexpr std::uint32_t takenBit = packedTakenBit;

    std::vector<Addr> pcs;
    std::vector<std::uint32_t> gapTaken;
    Count instructions = 0;
};

} // namespace bpsim

#endif // BPSIM_TRACE_REPLAY_BUFFER_HH
