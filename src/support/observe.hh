/**
 * @file
 * Lightweight observability primitives: named counter registries and
 * scoped wall-clock timers.
 *
 * Both are designed for coarse-grained instrumentation — once per
 * simulation run, phase, or matrix cell, never per branch — so a
 * mutex-protected map is plenty and the hot simulation loops stay
 * untouched. The run journal (src/obs/) embeds one of each and
 * serializes their snapshots into its metrics summary.
 */

#ifndef BPSIM_SUPPORT_OBSERVE_HH
#define BPSIM_SUPPORT_OBSERVE_HH

#include <atomic>
#include <chrono>
#include <map>
#include <mutex>
#include <string>

#include "support/types.hh"

namespace bpsim
{

/** Named monotonic counters, thread-safe for coarse events. */
class CounterRegistry
{
  public:
    /** Add @p delta to counter @p name (created at zero). */
    void add(const std::string &name, Count delta = 1);

    /** Current value of @p name (0 when never touched). */
    Count value(const std::string &name) const;

    /** Copy of all counters, sorted by name. */
    std::map<std::string, Count> snapshot() const;

  private:
    mutable std::mutex lock;
    std::map<std::string, Count> counters;
};

/** Accumulated invocations and wall time of one named scope. */
struct TimerStat
{
    Count count = 0;
    double seconds = 0.0;
};

/**
 * Accumulates ScopedTimer measurements by name and tracks how many
 * timers are currently open — openCount() returning to zero is the
 * "every timer that started also stopped" nesting invariant the
 * property suite asserts.
 */
class TimerRegistry
{
  public:
    /** Fold @p seconds into scope @p name. */
    void add(const std::string &name, double seconds);

    /** ScopedTimers currently running against this registry. */
    Count openCount() const
    {
        return open.load(std::memory_order_acquire);
    }

    /** Copy of all timer stats, sorted by name. */
    std::map<std::string, TimerStat> snapshot() const;

  private:
    friend class ScopedTimer;

    std::atomic<Count> open{0};
    mutable std::mutex lock;
    std::map<std::string, TimerStat> stats;
};

/**
 * RAII wall-clock timer: measures from construction to stop() (or
 * destruction) and records into a TimerRegistry. A null registry
 * still measures (stop() returns the elapsed seconds) but records
 * nowhere, so call sites can use one timer as both their measurement
 * and their observability hook without branching.
 */
class ScopedTimer
{
  public:
    ScopedTimer(TimerRegistry *registry, std::string name);

    ScopedTimer(const ScopedTimer &) = delete;
    ScopedTimer &operator=(const ScopedTimer &) = delete;

    ~ScopedTimer() { stop(); }

    /**
     * Stop the timer and record; idempotent (later calls return the
     * first measurement).
     *
     * @return elapsed wall seconds
     */
    double stop();

  private:
    TimerRegistry *registry;
    std::string name;
    std::chrono::steady_clock::time_point start;
    bool running;
    double elapsed = 0.0;
};

} // namespace bpsim

#endif // BPSIM_SUPPORT_OBSERVE_HH
