#include "support/random.hh"

#include <algorithm>
#include <cmath>

namespace bpsim
{

namespace
{

std::uint64_t
splitmix64(std::uint64_t &x)
{
    x += 0x9e3779b97f4a7c15ULL;
    std::uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

std::uint64_t
rotl(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

Rng::Rng(std::uint64_t seed)
{
    std::uint64_t s = seed;
    for (auto &word : state)
        word = splitmix64(s);
}

std::uint64_t
Rng::next()
{
    const std::uint64_t result = rotl(state[1] * 5, 7) * 9;
    const std::uint64_t t = state[1] << 17;

    state[2] ^= state[0];
    state[3] ^= state[1];
    state[1] ^= state[2];
    state[0] ^= state[3];
    state[2] ^= t;
    state[3] = rotl(state[3], 45);

    return result;
}

std::uint64_t
Rng::nextBelow(std::uint64_t bound)
{
    bpsim_assert(bound != 0, "nextBelow(0)");
    // Rejection sampling to avoid modulo bias.
    const std::uint64_t threshold = -bound % bound;
    for (;;) {
        const std::uint64_t r = next();
        if (r >= threshold)
            return r % bound;
    }
}

double
Rng::nextDouble()
{
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

bool
Rng::chance(double p)
{
    if (p <= 0.0)
        return false;
    if (p >= 1.0)
        return true;
    return nextDouble() < p;
}

std::uint64_t
Rng::geometric(double mean)
{
    bpsim_assert(mean >= 1.0, "geometric mean below 1");
    if (mean == 1.0)
        return 1;
    const double p = 1.0 / mean;
    // Inverse-CDF sampling of a geometric distribution on {1, 2, ...}.
    const double u = std::max(nextDouble(), 1e-300);
    const double value = std::ceil(std::log(u) / std::log(1.0 - p));
    return value < 1.0 ? 1 : static_cast<std::uint64_t>(value);
}

Rng::Zipf::Zipf(std::size_t n, double s)
{
    bpsim_assert(n > 0, "empty Zipf support");
    cdf.resize(n);
    double total = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
        total += 1.0 / std::pow(static_cast<double>(i + 1), s);
        cdf[i] = total;
    }
    for (auto &c : cdf)
        c /= total;
}

std::size_t
Rng::Zipf::sample(Rng &rng) const
{
    const double u = rng.nextDouble();
    const auto it = std::lower_bound(cdf.begin(), cdf.end(), u);
    return static_cast<std::size_t>(it - cdf.begin());
}

double
Rng::Zipf::mass(std::size_t i) const
{
    bpsim_assert(i < cdf.size(), "Zipf index out of range");
    return i == 0 ? cdf[0] : cdf[i] - cdf[i - 1];
}

Rng::Discrete::Discrete(const std::vector<double> &weights)
{
    cdf.reserve(weights.size());
    for (const double w : weights) {
        bpsim_assert(w >= 0.0, "negative weight");
        total += w;
        cdf.push_back(total);
    }
}

std::size_t
Rng::Discrete::sample(Rng &rng) const
{
    bpsim_assert(total > 0.0, "sampling from empty distribution");
    const double u = rng.nextDouble() * total;
    const auto it = std::upper_bound(cdf.begin(), cdf.end(), u);
    const auto idx = static_cast<std::size_t>(it - cdf.begin());
    return idx < cdf.size() ? idx : cdf.size() - 1;
}

Rng
Rng::fork()
{
    // Derive a child seed from the parent stream; both remain usable.
    return Rng(next());
}

} // namespace bpsim
