/**
 * @file
 * Minimal command-line option parser for the library's tools.
 *
 * Supports "--name value", "--name=value", boolean flags, defaults,
 * and generated usage text. Unknown options and unparseable values
 * produce a structured config_invalid Error naming the offending
 * token; the exiting entry points (parse()/getUint()/getDouble())
 * print it with a usage hint and exit 2, while the try* variants
 * return a Result for callers (and tests) that handle it themselves.
 */

#ifndef BPSIM_SUPPORT_ARGS_HH
#define BPSIM_SUPPORT_ARGS_HH

#include <cstdint>
#include <string>
#include <vector>

#include "support/error.hh"

namespace bpsim
{

/** Exit status of a tool rejecting its command line (config error). */
inline constexpr int usageExitCode = 2;

/** Declarative option parser. */
class ArgParser
{
  public:
    /** @param tool_name used in the usage banner. */
    explicit ArgParser(std::string tool_name);

    /** Declare a string option with a default. */
    void addOption(const std::string &name,
                   const std::string &default_value,
                   const std::string &help);

    /** Declare a boolean flag (defaults to false). */
    void addFlag(const std::string &name, const std::string &help);

    /**
     * Parse argv (excluding any leading subcommand the caller has
     * already consumed). On unknown options or a missing value,
     * prints the structured error plus usage and exits with
     * usageExitCode (2); prints usage and exits 0 on --help.
     * Repeating an option keeps the last value given (never
     * accumulates); repeating a flag is idempotent.
     */
    void parse(int argc, char **argv, int first = 1);

    /**
     * Non-exiting parse: returns a config_invalid Error naming the
     * offending token instead of exiting (--help still prints usage
     * and exits 0). Parsing stops at the first bad token; options
     * seen before it keep their parsed values.
     */
    Result<void> tryParse(int argc, char **argv, int first = 1);

    /** Value of a declared string option. */
    const std::string &get(const std::string &name) const;

    /** Value of a string option parsed as an unsigned integer;
     * structured error + exit 2 when unparseable. */
    std::uint64_t getUint(const std::string &name) const;

    /** Value of a string option parsed as a double; structured error
     * + exit 2 when unparseable. */
    double getDouble(const std::string &name) const;

    /** Non-exiting getUint(). */
    Result<std::uint64_t> tryGetUint(const std::string &name) const;

    /** Non-exiting getDouble(). */
    Result<double> tryGetDouble(const std::string &name) const;

    /** State of a declared flag. */
    bool getFlag(const std::string &name) const;

    /** Positional (non-option) arguments in order. */
    const std::vector<std::string> &positional() const
    {
        return positionals;
    }

    /** Render the usage text. */
    std::string usage() const;

  private:
    struct Option
    {
        std::string name;
        std::string value;
        std::string help;
        bool isFlag;
    };

    Option *find(const std::string &name);
    const Option *find(const std::string &name) const;

    /** Print @p error plus usage and exit with usageExitCode. */
    [[noreturn]] void usageExit(const Error &error) const;

    std::string toolName;
    std::vector<Option> options;
    std::vector<std::string> positionals;
};

} // namespace bpsim

#endif // BPSIM_SUPPORT_ARGS_HH
