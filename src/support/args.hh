/**
 * @file
 * Minimal command-line option parser for the library's tools.
 *
 * Supports "--name value", "--name=value", boolean flags, defaults,
 * and generated usage text. Unknown options are fatal (user error).
 */

#ifndef BPSIM_SUPPORT_ARGS_HH
#define BPSIM_SUPPORT_ARGS_HH

#include <cstdint>
#include <string>
#include <vector>

namespace bpsim
{

/** Declarative option parser. */
class ArgParser
{
  public:
    /** @param tool_name used in the usage banner. */
    explicit ArgParser(std::string tool_name);

    /** Declare a string option with a default. */
    void addOption(const std::string &name,
                   const std::string &default_value,
                   const std::string &help);

    /** Declare a boolean flag (defaults to false). */
    void addFlag(const std::string &name, const std::string &help);

    /**
     * Parse argv (excluding any leading subcommand the caller has
     * already consumed). fatal() on unknown options or a missing
     * value; prints usage and exits 0 on --help. Repeating an option
     * keeps the last value given (never accumulates); repeating a
     * flag is idempotent.
     */
    void parse(int argc, char **argv, int first = 1);

    /** Value of a declared string option. */
    const std::string &get(const std::string &name) const;

    /** Value of a string option parsed as an unsigned integer. */
    std::uint64_t getUint(const std::string &name) const;

    /** Value of a string option parsed as a double. */
    double getDouble(const std::string &name) const;

    /** State of a declared flag. */
    bool getFlag(const std::string &name) const;

    /** Positional (non-option) arguments in order. */
    const std::vector<std::string> &positional() const
    {
        return positionals;
    }

    /** Render the usage text. */
    std::string usage() const;

  private:
    struct Option
    {
        std::string name;
        std::string value;
        std::string help;
        bool isFlag;
    };

    Option *find(const std::string &name);
    const Option *find(const std::string &name) const;

    std::string toolName;
    std::vector<Option> options;
    std::vector<std::string> positionals;
};

} // namespace bpsim

#endif // BPSIM_SUPPORT_ARGS_HH
