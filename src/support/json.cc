#include "support/json.hh"

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <utility>

#include "support/logging.hh"

namespace bpsim
{

namespace
{

const char *
typeName(JsonValue::Type type)
{
    switch (type) {
      case JsonValue::Type::Null:
        return "null";
      case JsonValue::Type::Bool:
        return "bool";
      case JsonValue::Type::Number:
        return "number";
      case JsonValue::Type::String:
        return "string";
      case JsonValue::Type::Array:
        return "array";
      case JsonValue::Type::Object:
        return "object";
    }
    return "?";
}

} // namespace

/** Recursive-descent parser over a complete in-memory document. */
class JsonParser
{
  public:
    JsonParser(const std::string &text, const std::string &where)
        : text(text), where(where)
    {
    }

    JsonValue
    document()
    {
        JsonValue value = parseValue();
        skipSpace();
        if (pos != text.size())
            fail("trailing characters after the document");
        return value;
    }

  private:
    [[noreturn]] void
    fail(const std::string &message) const
    {
        // Thrown as a structured error so tryParse() can return it;
        // the fatal entry point catches and keeps its old behaviour.
        raise(Error(ErrorCode::IoFailure,
                    where + ": offset " + std::to_string(pos) + ": " +
                        message));
    }

    void
    skipSpace()
    {
        while (pos < text.size() &&
               std::isspace(static_cast<unsigned char>(text[pos])))
            ++pos;
    }

    char
    peek()
    {
        skipSpace();
        if (pos >= text.size())
            fail("unexpected end of input");
        return text[pos];
    }

    void
    expect(char c)
    {
        if (peek() != c)
            fail(std::string("expected '") + c + "', got '" +
                 text[pos] + "'");
        ++pos;
    }

    bool
    consume(char c)
    {
        if (peek() != c)
            return false;
        ++pos;
        return true;
    }

    void
    literal(const char *word)
    {
        for (const char *p = word; *p != '\0'; ++p, ++pos) {
            if (pos >= text.size() || text[pos] != *p)
                fail(std::string("malformed literal (expected ") +
                     word + ")");
        }
    }

    std::string
    parseString()
    {
        expect('"');
        std::string out;
        while (true) {
            if (pos >= text.size())
                fail("unterminated string");
            const char c = text[pos++];
            if (c == '"')
                return out;
            if (c != '\\') {
                out.push_back(c);
                continue;
            }
            if (pos >= text.size())
                fail("unterminated escape");
            const char esc = text[pos++];
            switch (esc) {
              case '"':
              case '\\':
              case '/':
                out.push_back(esc);
                break;
              case 'b':
                out.push_back('\b');
                break;
              case 'f':
                out.push_back('\f');
                break;
              case 'n':
                out.push_back('\n');
                break;
              case 'r':
                out.push_back('\r');
                break;
              case 't':
                out.push_back('\t');
                break;
              case 'u': {
                // \uXXXX: decode to UTF-8 (BMP only; good enough for
                // the ASCII-centric files we read).
                if (pos + 4 > text.size())
                    fail("truncated \\u escape");
                unsigned code = 0;
                for (int i = 0; i < 4; ++i) {
                    const char h = text[pos++];
                    code <<= 4;
                    if (h >= '0' && h <= '9')
                        code |= static_cast<unsigned>(h - '0');
                    else if (h >= 'a' && h <= 'f')
                        code |= static_cast<unsigned>(h - 'a' + 10);
                    else if (h >= 'A' && h <= 'F')
                        code |= static_cast<unsigned>(h - 'A' + 10);
                    else
                        fail("bad hex digit in \\u escape");
                }
                if (code < 0x80) {
                    out.push_back(static_cast<char>(code));
                } else if (code < 0x800) {
                    out.push_back(
                        static_cast<char>(0xc0 | (code >> 6)));
                    out.push_back(
                        static_cast<char>(0x80 | (code & 0x3f)));
                } else {
                    out.push_back(
                        static_cast<char>(0xe0 | (code >> 12)));
                    out.push_back(static_cast<char>(
                        0x80 | ((code >> 6) & 0x3f)));
                    out.push_back(
                        static_cast<char>(0x80 | (code & 0x3f)));
                }
                break;
              }
              default:
                fail("unknown escape character");
            }
        }
    }

    JsonValue
    parseValue()
    {
        JsonValue value;
        const char c = peek();
        switch (c) {
          case '{': {
            ++pos;
            value.valueType = JsonValue::Type::Object;
            if (consume('}'))
                return value;
            while (true) {
                std::string key = parseString();
                expect(':');
                value.objectMembers.emplace_back(std::move(key),
                                                 parseValue());
                if (consume('}'))
                    return value;
                expect(',');
            }
          }
          case '[': {
            ++pos;
            value.valueType = JsonValue::Type::Array;
            if (consume(']'))
                return value;
            while (true) {
                value.arrayItems.push_back(parseValue());
                if (consume(']'))
                    return value;
                expect(',');
            }
          }
          case '"':
            value.valueType = JsonValue::Type::String;
            value.stringValue = parseString();
            return value;
          case 't':
            literal("true");
            value.valueType = JsonValue::Type::Bool;
            value.boolValue = true;
            return value;
          case 'f':
            literal("false");
            value.valueType = JsonValue::Type::Bool;
            value.boolValue = false;
            return value;
          case 'n':
            literal("null");
            value.valueType = JsonValue::Type::Null;
            return value;
          default: {
            if (c != '-' && !std::isdigit(static_cast<unsigned char>(c)))
                fail(std::string("unexpected character '") + c + "'");
            const char *start = text.c_str() + pos;
            char *end = nullptr;
            value.valueType = JsonValue::Type::Number;
            value.numberValue = std::strtod(start, &end);
            if (end == start)
                fail("malformed number");
            pos += static_cast<std::size_t>(end - start);
            return value;
          }
        }
    }

    const std::string &text;
    const std::string &where;
    std::size_t pos = 0;
};

JsonValue
JsonValue::parse(const std::string &text, const std::string &where)
{
    Result<JsonValue> parsed = tryParse(text, where);
    if (!parsed.ok())
        bpsim_fatal(parsed.error().message());
    return std::move(parsed.value());
}

Result<JsonValue>
JsonValue::tryParse(const std::string &text, const std::string &where)
{
    try {
        return JsonParser(text, where).document();
    } catch (const ErrorException &failure) {
        return failure.error();
    }
}

JsonValue
JsonValue::parseFile(const std::string &path)
{
    std::FILE *file = std::fopen(path.c_str(), "rb");
    if (file == nullptr)
        bpsim_fatal("cannot read '", path, "'");
    std::string text;
    char chunk[4096];
    std::size_t got;
    while ((got = std::fread(chunk, 1, sizeof(chunk), file)) > 0)
        text.append(chunk, got);
    std::fclose(file);
    return parse(text, path);
}

bool
JsonValue::asBool() const
{
    if (valueType != Type::Bool)
        bpsim_fatal("json: expected bool, got ", typeName(valueType));
    return boolValue;
}

double
JsonValue::asNumber() const
{
    if (valueType != Type::Number)
        bpsim_fatal("json: expected number, got ", typeName(valueType));
    return numberValue;
}

const std::string &
JsonValue::asString() const
{
    if (valueType != Type::String)
        bpsim_fatal("json: expected string, got ", typeName(valueType));
    return stringValue;
}

const std::vector<JsonValue> &
JsonValue::items() const
{
    if (valueType != Type::Array)
        bpsim_fatal("json: expected array, got ", typeName(valueType));
    return arrayItems;
}

const std::vector<std::pair<std::string, JsonValue>> &
JsonValue::members() const
{
    if (valueType != Type::Object)
        bpsim_fatal("json: expected object, got ", typeName(valueType));
    return objectMembers;
}

const JsonValue *
JsonValue::find(const std::string &key) const
{
    for (const auto &[name, value] : members()) {
        if (name == key)
            return &value;
    }
    return nullptr;
}

const JsonValue &
JsonValue::at(const std::string &key) const
{
    const JsonValue *value = find(key);
    if (value == nullptr)
        bpsim_fatal("json: missing key '", key, "'");
    return *value;
}

std::string
jsonEscape(const std::string &text)
{
    std::string out;
    out.reserve(text.size());
    for (const char c : text) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\r':
            out += "\\r";
            break;
          case '\t':
            out += "\\t";
            break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x",
                              static_cast<unsigned>(
                                  static_cast<unsigned char>(c)));
                out += buf;
            } else {
                out.push_back(c);
            }
        }
    }
    return out;
}

std::string
jsonQuote(const std::string &text)
{
    return "\"" + jsonEscape(text) + "\"";
}

} // namespace bpsim
