/**
 * @file
 * Bit-manipulation utilities used by predictor indexing logic.
 */

#ifndef BPSIM_SUPPORT_BITS_HH
#define BPSIM_SUPPORT_BITS_HH

#include <cstdint>
#include <string_view>

#include "support/logging.hh"
#include "support/types.hh"

namespace bpsim
{

/** Return a mask with the low @p bits bits set. Supports 0..64. */
constexpr std::uint64_t
mask(BitCount bits)
{
    return bits >= 64 ? ~std::uint64_t{0}
                      : ((std::uint64_t{1} << bits) - 1);
}

/** True iff @p value is a nonzero power of two. */
constexpr bool
isPowerOfTwo(std::uint64_t value)
{
    return value != 0 && (value & (value - 1)) == 0;
}

/** Floor of log2; @p value must be nonzero. */
constexpr BitCount
floorLog2(std::uint64_t value)
{
    BitCount result = 0;
    while (value >>= 1)
        ++result;
    return result;
}

/** Ceiling of log2; @p value must be nonzero. */
constexpr BitCount
ceilLog2(std::uint64_t value)
{
    return isPowerOfTwo(value) ? floorLog2(value) : floorLog2(value) + 1;
}

/**
 * Fold a wide value down to @p bits bits by XORing successive
 * @p bits-wide slices together. Used to hash long histories or
 * addresses into a table index without discarding entropy.
 */
constexpr std::uint64_t
foldBits(std::uint64_t value, BitCount bits)
{
    if (bits == 0)
        return 0;
    if (bits >= 64)
        return value;
    std::uint64_t folded = 0;
    while (value != 0) {
        folded ^= value & mask(bits);
        value >>= bits;
    }
    return folded;
}

/**
 * gshare-family table index: folded branch address XORed with the raw
 * global history, reduced to @p bits. The single definition shared by
 * gshare, agree, bi-mode direction tables and the batch replay
 * kernels, so the scalar and batched paths cannot drift.
 *
 * @param pc_index branch address already divided by the instruction
 *                 size (pc / instructionBytes)
 * @param history  raw history register value (not pre-folded; bits
 *                 beyond the index width are discarded by the mask,
 *                 matching the classic gshare formulation)
 */
constexpr std::uint64_t
hashPcHistoryXor(std::uint64_t pc_index, std::uint64_t history,
                 BitCount bits)
{
    return (foldBits(pc_index, bits) ^ history) & mask(bits);
}

/**
 * gselect-style concatenated index: folded branch address in the high
 * bits, @p history_bits of global history in the low bits.
 */
constexpr std::uint64_t
hashPcHistoryConcat(std::uint64_t pc_index, std::uint64_t history,
                    BitCount history_bits, BitCount bits)
{
    return ((foldBits(pc_index, bits - history_bits) << history_bits) |
            history) &
           mask(bits);
}

/** Extract bits [lo, lo+len) of @p value. */
constexpr std::uint64_t
bitSlice(std::uint64_t value, BitCount lo, BitCount len)
{
    return (value >> lo) & mask(len);
}

/**
 * FNV-1a hash of a byte string. Stable across platforms, processes
 * and builds: the artifact cache derives file names and header
 * checksums from it and the shard partitioner derives shard
 * membership from it, so the constants are part of the on-disk /
 * cross-process contract and must never change.
 */
constexpr std::uint64_t
fnv1a64(std::string_view bytes)
{
    std::uint64_t hash = 0xcbf29ce484222325ULL;
    for (const char c : bytes) {
        hash ^= static_cast<unsigned char>(c);
        hash *= 0x100000001b3ULL;
    }
    return hash;
}

/**
 * Reversible mix of a branch PC into a well-distributed 64-bit value
 * (splitmix64 finalizer). Deterministic; used for synthetic PC layout
 * and hash-based index schemes.
 */
constexpr std::uint64_t
mix64(std::uint64_t x)
{
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
}

} // namespace bpsim

#endif // BPSIM_SUPPORT_BITS_HH
