#include "support/atomic_file.hh"

#include <cerrno>
#include <cstring>

#ifdef _WIN32
#include <process.h>
#define bpsim_getpid _getpid
#else
#include <unistd.h>
#define bpsim_getpid getpid
#endif

namespace bpsim
{

AtomicFile::AtomicFile(std::string path) : finalPath(std::move(path))
{
    tempPath = finalPath + ".tmp." +
               std::to_string(static_cast<long>(bpsim_getpid()));
    file = std::fopen(tempPath.c_str(), "w");
}

AtomicFile::~AtomicFile()
{
    if (!committed)
        discard();
}

void
AtomicFile::discard()
{
    if (file != nullptr) {
        std::fclose(file);
        file = nullptr;
    }
    std::remove(tempPath.c_str());
}

Result<void>
AtomicFile::commit()
{
    if (committed)
        return okResult();
    if (file == nullptr) {
        return Error(ErrorCode::IoFailure,
                     "cannot open temp file '" + tempPath + "': " +
                         std::strerror(errno));
    }
    const bool flushed = std::fflush(file) == 0;
    const int close_error = std::fclose(file);
    file = nullptr;
    if (!flushed || close_error != 0) {
        std::remove(tempPath.c_str());
        return Error(ErrorCode::IoFailure,
                     "cannot flush '" + tempPath + "': " +
                         std::strerror(errno));
    }
    if (std::rename(tempPath.c_str(), finalPath.c_str()) != 0) {
        const std::string reason = std::strerror(errno);
        std::remove(tempPath.c_str());
        return Error(ErrorCode::IoFailure,
                     "cannot rename '" + tempPath + "' to '" +
                         finalPath + "': " + reason);
    }
    committed = true;
    return okResult();
}

Result<void>
writeFileAtomic(const std::string &path, const std::string &content)
{
    AtomicFile out(path);
    if (out.ok()) {
        const std::size_t written = std::fwrite(
            content.data(), 1, content.size(), out.stream());
        if (written != content.size()) {
            return Error(ErrorCode::IoFailure,
                         "short write to '" + path + "'");
        }
    }
    return out.commit();
}

} // namespace bpsim
