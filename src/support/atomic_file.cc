#include "support/atomic_file.hh"

#include <cerrno>
#include <cstring>

#ifdef _WIN32
#include <process.h>
#define bpsim_getpid _getpid
#else
#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>
#define bpsim_getpid getpid
#endif

namespace bpsim
{

namespace
{

#ifndef _WIN32

/** EINTR-retrying fsync(2). */
int
fsyncRetry(int fd)
{
    int rc;
    do {
        rc = ::fsync(fd);
    } while (rc != 0 && errno == EINTR);
    return rc;
}

/**
 * Durability of the rename itself: fsync the directory holding
 * @p path so the new directory entry survives power loss. Best
 * effort — some filesystems refuse to open or sync a directory, and
 * a failure here only weakens durability, never atomicity, so the
 * caller treats it as advisory.
 */
void
syncParentDirectory(const std::string &path)
{
    const std::size_t slash = path.find_last_of('/');
    const std::string dir =
        slash == std::string::npos ? "." : path.substr(0, slash);
    int fd;
    do {
        fd = ::open(dir.empty() ? "/" : dir.c_str(),
                    O_RDONLY | O_DIRECTORY);
    } while (fd < 0 && errno == EINTR);
    if (fd < 0)
        return;
    fsyncRetry(fd);
    int rc;
    do {
        rc = ::close(fd);
    } while (rc != 0 && errno == EINTR);
}

#endif // !_WIN32

/** EINTR-retrying rename(2) (via the C library). */
int
renameRetry(const char *from, const char *to)
{
    int rc;
    do {
        rc = std::rename(from, to);
    } while (rc != 0 && errno == EINTR);
    return rc;
}

} // namespace

AtomicFile::AtomicFile(std::string path) : finalPath(std::move(path))
{
    tempPath = finalPath + ".tmp." +
               std::to_string(static_cast<long>(bpsim_getpid()));
    file = std::fopen(tempPath.c_str(), "w");
}

AtomicFile::~AtomicFile()
{
    if (!committed)
        discard();
}

void
AtomicFile::discard()
{
    if (file != nullptr) {
        std::fclose(file);
        file = nullptr;
    }
    std::remove(tempPath.c_str());
}

Result<void>
AtomicFile::commit()
{
    if (committed)
        return okResult();
    if (file == nullptr) {
        return Error(ErrorCode::IoFailure,
                     "cannot open temp file '" + tempPath + "': " +
                         std::strerror(errno));
    }
    // Flush the stdio buffer, then force the bytes to stable storage
    // before the rename: a rename that lands before its data would
    // let a power loss expose a complete-looking but empty/stale
    // file, defeating the crash-safety the temp+rename dance buys.
    bool flushed = std::fflush(file) == 0;
#ifndef _WIN32
    if (flushed && fsyncRetry(::fileno(file)) != 0)
        flushed = false;
#endif
    const int close_error = std::fclose(file);
    file = nullptr;
    if (!flushed || close_error != 0) {
        std::remove(tempPath.c_str());
        return Error(ErrorCode::IoFailure,
                     "cannot flush '" + tempPath + "': " +
                         std::strerror(errno));
    }
    if (renameRetry(tempPath.c_str(), finalPath.c_str()) != 0) {
        const std::string reason = std::strerror(errno);
        std::remove(tempPath.c_str());
        return Error(ErrorCode::IoFailure,
                     "cannot rename '" + tempPath + "' to '" +
                         finalPath + "': " + reason);
    }
#ifndef _WIN32
    syncParentDirectory(finalPath);
#endif
    committed = true;
    return okResult();
}

Result<void>
writeFileAtomic(const std::string &path, const std::string &content)
{
    AtomicFile out(path);
    if (out.ok()) {
        const std::size_t written = std::fwrite(
            content.data(), 1, content.size(), out.stream());
        if (written != content.size()) {
            return Error(ErrorCode::IoFailure,
                         "short write to '" + path + "'");
        }
    }
    return out.commit();
}

} // namespace bpsim
