#include "support/skew.hh"

#include "support/bits.hh"
#include "support/logging.hh"

namespace bpsim
{

std::uint64_t
skewH(std::uint64_t x, BitCount bits)
{
    bpsim_assert(bits >= 1 && bits <= 63, "bad H width ", bits);
    x &= mask(bits);
    if (bits == 1)
        return x;
    const std::uint64_t msb = (x >> (bits - 1)) & 1;
    const std::uint64_t lsb = x & 1;
    return ((msb ^ lsb) << (bits - 1)) | (x >> 1);
}

std::uint64_t
skewHinv(std::uint64_t x, BitCount bits)
{
    bpsim_assert(bits >= 1 && bits <= 63, "bad H width ", bits);
    x &= mask(bits);
    if (bits == 1)
        return x;
    // Forward: new_msb = old_msb ^ old_lsb; rest = old >> 1, so the
    // old MSB now sits at position bits-2 and the old LSB is the XOR
    // of the two top bits of the transformed value.
    const std::uint64_t msb = (x >> (bits - 1)) & 1;
    const std::uint64_t old_msb = (x >> (bits - 2)) & 1;
    const std::uint64_t old_lsb = msb ^ old_msb;
    return ((x << 1) & mask(bits)) | old_lsb;
}

std::uint64_t
skewIndex(unsigned bank, std::uint64_t v1, std::uint64_t v2, BitCount bits)
{
    v1 &= mask(bits);
    v2 &= mask(bits);
    // Apply H (bank+1) times to v1 and its inverse as many times to v2,
    // then mix in one of the raw sources depending on bank parity. Each
    // bank therefore uses a distinct bijective combination, giving the
    // inter-bank dispersion the gskew scheme relies on.
    std::uint64_t a = v1;
    std::uint64_t b = v2;
    for (unsigned i = 0; i <= bank; ++i) {
        a = skewH(a, bits);
        b = skewHinv(b, bits);
    }
    return (a ^ b ^ (bank % 2 == 0 ? v2 : v1)) & mask(bits);
}

} // namespace bpsim
