#include "support/mmap_file.hh"

#include <cerrno>
#include <cstring>

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

namespace bpsim
{

namespace
{

Error
ioError(const char *what, const std::string &path)
{
    return Error(ErrorCode::IoFailure,
                 std::string(what) + " failed: " + std::strerror(errno))
        .withContext("path " + path);
}

} // namespace

Result<MmapFile>
MmapFile::openReadOnly(const std::string &path)
{
    const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
    if (fd < 0)
        return ioError("open", path);

    struct stat st = {};
    if (::fstat(fd, &st) != 0) {
        const Error error = ioError("fstat", path);
        ::close(fd);
        return error;
    }

    MmapFile file;
    file.sourcePath = path;
    file.bytes = static_cast<std::size_t>(st.st_size);
    if (file.bytes == 0) {
        // mmap rejects zero-length maps; an empty file is a valid
        // (if useless) artifact, so represent it as an empty view.
        ::close(fd);
        return file;
    }

    void *base =
        ::mmap(nullptr, file.bytes, PROT_READ, MAP_SHARED, fd, 0);
    // The mapping keeps its own reference to the file; the
    // descriptor is not needed once mmap has succeeded (or failed).
    ::close(fd);
    if (base == MAP_FAILED) {
        file.bytes = 0;
        return ioError("mmap", path);
    }
    file.base = base;
    return file;
}

void
MmapFile::unmap()
{
    if (base != nullptr)
        ::munmap(const_cast<void *>(base), bytes);
    base = nullptr;
    bytes = 0;
}

} // namespace bpsim
