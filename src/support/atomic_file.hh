/**
 * @file
 * Crash-safe file writes: write-temp-then-rename.
 *
 * Every machine-readable record the repo emits (BENCH_runner.json,
 * journal JSONL + metrics, golden regeneration, sweep checkpoints)
 * goes through this helper, so a run killed mid-write leaves either
 * the previous complete file or the new complete file — never a
 * truncated one. rename(2) within one directory is atomic on POSIX,
 * which is all the repo targets.
 *
 * Durability: commit() fsyncs the temp file before the rename and
 * the parent directory after it, so a committed file also survives
 * power loss, not just process death. The rename/fsync syscalls are
 * wrapped in EINTR retry loops — a signal (the service's SIGTERM
 * drain, a profiler) must not turn into a spurious write failure.
 */

#ifndef BPSIM_SUPPORT_ATOMIC_FILE_HH
#define BPSIM_SUPPORT_ATOMIC_FILE_HH

#include <cstdio>
#include <string>

#include "support/error.hh"

namespace bpsim
{

/**
 * RAII temp-file writer. Opens "<path>.tmp.<pid>" on construction;
 * commit() flushes and renames it over @p path. Destruction without a
 * commit discards the temp file, so a failed writer never clobbers an
 * existing good file.
 */
class AtomicFile
{
  public:
    explicit AtomicFile(std::string path);

    AtomicFile(const AtomicFile &) = delete;
    AtomicFile &operator=(const AtomicFile &) = delete;

    ~AtomicFile();

    /** Did the temp file open? (commit() re-reports the error.) */
    bool ok() const { return file != nullptr; }

    /** The temp file's stream; null when ok() is false. */
    std::FILE *stream() { return file; }

    /** Flush, close and rename into place. Idempotent on failure. */
    Result<void> commit();

  private:
    void discard();

    std::string finalPath;
    std::string tempPath;
    std::FILE *file = nullptr;
    bool committed = false;
};

/** Write @p content to @p path atomically. */
Result<void> writeFileAtomic(const std::string &path,
                             const std::string &content);

} // namespace bpsim

#endif // BPSIM_SUPPORT_ATOMIC_FILE_HH
