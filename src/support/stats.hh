/**
 * @file
 * Small statistics accumulators used by the simulation engine and the
 * benchmark harnesses (running moments, Pearson correlation, ratios).
 */

#ifndef BPSIM_SUPPORT_STATS_HH
#define BPSIM_SUPPORT_STATS_HH

#include <cstdint>
#include <string>

#include "support/types.hh"

namespace bpsim
{

/** Welford running mean / variance / extrema accumulator. */
class RunningStat
{
  public:
    /** Add one sample. */
    void add(double x);

    /** Number of samples so far. */
    Count count() const { return n; }

    /** Sample mean (0 when empty). */
    double mean() const { return n == 0 ? 0.0 : runningMean; }

    /** Unbiased sample variance (0 when fewer than two samples). */
    double variance() const;

    /** Sample standard deviation. */
    double stddev() const;

    /** Smallest sample seen. */
    double min() const { return minValue; }

    /** Largest sample seen. */
    double max() const { return maxValue; }

  private:
    Count n = 0;
    double runningMean = 0.0;
    double m2 = 0.0;
    double minValue = 0.0;
    double maxValue = 0.0;
};

/** Streaming Pearson correlation between two paired series. */
class Correlation
{
  public:
    /** Add one (x, y) pair. */
    void add(double x, double y);

    /** Number of pairs. */
    Count count() const { return n; }

    /** Pearson r (0 when degenerate). */
    double r() const;

  private:
    Count n = 0;
    double meanX = 0.0;
    double meanY = 0.0;
    double m2x = 0.0;
    double m2y = 0.0;
    double cxy = 0.0;
};

/** Percentage of @p part in @p whole, 0 when whole is 0. */
double percent(Count part, Count whole);

/** Events per thousand of a base count (e.g. MISP/KI), 0 when base 0. */
double perKilo(Count events, Count base);

/** Format a double with @p decimals digits (for table output). */
std::string formatFixed(double value, int decimals);

} // namespace bpsim

#endif // BPSIM_SUPPORT_STATS_HH
