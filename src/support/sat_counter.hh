/**
 * @file
 * Saturating up/down counter, the basic storage cell of every
 * table-based dynamic branch predictor in this library.
 */

#ifndef BPSIM_SUPPORT_SAT_COUNTER_HH
#define BPSIM_SUPPORT_SAT_COUNTER_HH

#include <cstdint>

#include "support/logging.hh"
#include "support/types.hh"

namespace bpsim
{

/**
 * Lane form of the saturating-counter train step, operating on a raw
 * counter value as stored in structure-of-arrays counter tables.
 * Branchless so batch kernels can apply it per lane with no
 * data-dependent control flow.
 *
 * @param max_value largest representable value, (1 << bits) - 1
 */
constexpr std::uint8_t
satCounterTrain(std::uint8_t counter, bool taken_outcome,
                std::uint8_t max_value)
{
    const unsigned up = static_cast<unsigned>(taken_outcome) &
                        static_cast<unsigned>(counter != max_value);
    const unsigned down = static_cast<unsigned>(!taken_outcome) &
                          static_cast<unsigned>(counter != 0);
    return static_cast<std::uint8_t>(counter + up - down);
}

/**
 * Lane form of the prediction carried by a raw counter value.
 *
 * @param msb the MSB threshold, 1 << (bits - 1)
 */
constexpr bool
satCounterTaken(std::uint8_t counter, std::uint8_t msb)
{
    return counter >= msb;
}

/**
 * An n-bit saturating up/down counter (n in 1..8).
 *
 * The most significant bit is the "taken" prediction. Counters are
 * constructed weakly-not-taken by default (value 2^(n-1) - 1), the
 * convention used in the literature the paper builds on, but any
 * initial value may be given.
 */
class SatCounter
{
  public:
    /** Construct an @p bits wide counter with initial @p value. */
    explicit SatCounter(BitCount bits = 2, std::uint8_t value = 0)
        : counter(value), numBits(static_cast<std::uint8_t>(bits))
    {
        bpsim_assert(bits >= 1 && bits <= 8,
                     "counter width ", bits, " out of range");
        bpsim_assert(value <= maxValue(), "initial value too large");
    }

    /** Construct weakly biased toward @p taken. */
    static SatCounter
    weak(BitCount bits, bool taken)
    {
        const std::uint8_t mid =
            static_cast<std::uint8_t>((1u << (bits - 1)) - (taken ? 0 : 1));
        return SatCounter(bits, mid);
    }

    /** Largest representable value. */
    std::uint8_t maxValue() const
    {
        return static_cast<std::uint8_t>((1u << numBits) - 1);
    }

    /** Current raw value. */
    std::uint8_t value() const { return counter; }

    /** Width in bits. */
    BitCount bits() const { return numBits; }

    /** Prediction carried by the counter (MSB set => predict taken). */
    bool taken() const { return counter >= (1u << (numBits - 1)); }

    /** True when the counter cannot move further in its direction. */
    bool
    saturated() const
    {
        return counter == 0 || counter == maxValue();
    }

    /** Increment with saturation. */
    void
    increment()
    {
        counter = static_cast<std::uint8_t>(
            counter + (counter != maxValue() ? 1 : 0));
    }

    /** Decrement with saturation. */
    void
    decrement()
    {
        counter = static_cast<std::uint8_t>(
            counter - (counter != 0 ? 1 : 0));
    }

    /**
     * Train toward the actual outcome of a branch. Branchless: the
     * step is computed from comparison results so the hot simulation
     * kernels carry no data-dependent branch here.
     */
    void
    train(bool taken_outcome)
    {
        counter = satCounterTrain(counter, taken_outcome, maxValue());
    }

    /** Reset to an explicit value (used by tests and table clears). */
    void
    set(std::uint8_t value)
    {
        bpsim_assert(value <= maxValue(), "value too large");
        counter = value;
    }

  private:
    std::uint8_t counter;
    std::uint8_t numBits;
};

} // namespace bpsim

#endif // BPSIM_SUPPORT_SAT_COUNTER_HH
