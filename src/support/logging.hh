/**
 * @file
 * Error-reporting helpers in the spirit of gem5's logging.hh.
 *
 * fatal() is for user errors (bad configuration, malformed input files):
 * the process exits with status 1. panic() is for internal invariant
 * violations (simulator bugs): the process aborts.
 */

#ifndef BPSIM_SUPPORT_LOGGING_HH
#define BPSIM_SUPPORT_LOGGING_HH

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>

namespace bpsim
{

/** Terminate with an error message attributable to the user. */
[[noreturn]] inline void
fatalImpl(const char *file, int line, const std::string &msg)
{
    std::fprintf(stderr, "fatal: %s (%s:%d)\n", msg.c_str(), file, line);
    std::exit(1);
}

/** Terminate with an error message attributable to a simulator bug. */
[[noreturn]] inline void
panicImpl(const char *file, int line, const std::string &msg)
{
    std::fprintf(stderr, "panic: %s (%s:%d)\n", msg.c_str(), file, line);
    std::abort();
}

namespace detail
{

/** Build a message string from stream-formattable pieces. */
template <typename... Args>
std::string
formatPieces(Args &&...args)
{
    std::ostringstream os;
    (os << ... << args);
    return os.str();
}

} // namespace detail

} // namespace bpsim

#define bpsim_fatal(...) \
    ::bpsim::fatalImpl(__FILE__, __LINE__, \
                       ::bpsim::detail::formatPieces(__VA_ARGS__))

#define bpsim_panic(...) \
    ::bpsim::panicImpl(__FILE__, __LINE__, \
                       ::bpsim::detail::formatPieces(__VA_ARGS__))

/** Panic unless an internal invariant holds. */
#define bpsim_assert(cond, ...) \
    do { \
        if (!(cond)) { \
            ::bpsim::panicImpl(__FILE__, __LINE__, \
                ::bpsim::detail::formatPieces("assertion '", #cond, \
                                              "' failed ", ##__VA_ARGS__)); \
        } \
    } while (0)

#endif // BPSIM_SUPPORT_LOGGING_HH
