/**
 * @file
 * Structured error subsystem: a typed error value with a small code
 * taxonomy, context chaining, and a Result<T> propagation helper.
 *
 * The repo's original error story was fatal()/panic() — fine for a
 * CLI, fatal (literally) for a long sweep where one bad cell must not
 * take down the other 89. Error is the recoverable counterpart: a
 * value that can cross thread boundaries (via ErrorException and the
 * TaskPool's exception capture), be attached to a failed matrix cell,
 * and be serialized into journals and reports.
 *
 * Taxonomy, not hierarchy: the codes cover the failure classes the
 * runner and service distinguish (validation, I/O, transient
 * resource, cell execution, cancellation, deadline expiry,
 * invariant), and the retry policy keys off Error::transient()
 * rather than string matching.
 */

#ifndef BPSIM_SUPPORT_ERROR_HH
#define BPSIM_SUPPORT_ERROR_HH

#include <exception>
#include <string>
#include <utility>
#include <vector>

namespace bpsim
{

/** The error-code taxonomy. */
enum class ErrorCode
{
    ConfigInvalid,     ///< bad user configuration (fail fast, don't run)
    IoFailure,         ///< file unreadable/unwritable/corrupt
    ResourceExhausted, ///< transient resource failure (retryable)
    CellFailed,        ///< a matrix cell's execution failed
    Internal,          ///< invariant violation / unexpected exception
    Cancelled,         ///< work skipped: its request was cancelled
    DeadlineExceeded,  ///< work skipped: its deadline expired
};

/** Wire name of @p code ("config_invalid", "io_failure", ...). */
const char *errorCodeName(ErrorCode code);

/**
 * One structured error: a code, a message, and a chain of context
 * notes added as the error propagates outward (innermost first).
 */
class Error
{
  public:
    Error() = default;

    Error(ErrorCode code, std::string message)
        : errorCode(code), errorMessage(std::move(message))
    {
    }

    ErrorCode code() const { return errorCode; }
    const std::string &message() const { return errorMessage; }
    const std::vector<std::string> &context() const { return notes; }

    /** Append a propagation note ("while running cell X"). */
    Error &
    withContext(std::string note)
    {
        notes.push_back(std::move(note));
        return *this;
    }

    /** Retry policy hook: is this failure worth retrying? */
    bool
    transient() const
    {
        return errorCode == ErrorCode::ResourceExhausted;
    }

    /** "[code] message (context: a; b)" for logs and reports. */
    std::string describe() const;

  private:
    ErrorCode errorCode = ErrorCode::Internal;
    std::string errorMessage;
    std::vector<std::string> notes;
};

/**
 * Exception wrapper so an Error can unwind through code that cannot
 * return a Result (deep call stacks, TaskPool workers). The pool
 * captures these per task; ExperimentRunner turns them back into
 * Error values on the failed cell.
 */
class ErrorException : public std::exception
{
  public:
    explicit ErrorException(Error error)
        : heldError(std::move(error)), rendered(heldError.describe())
    {
    }

    const Error &error() const { return heldError; }

    const char *what() const noexcept override
    {
        return rendered.c_str();
    }

  private:
    Error heldError;
    std::string rendered;
};

/** Throw @p error as an ErrorException. */
[[noreturn]] inline void
raise(Error error)
{
    throw ErrorException(std::move(error));
}

/**
 * Value-or-Error propagation helper. A Result is either ok (holding
 * a T) or failed (holding an Error); accessing the wrong side is an
 * invariant violation. Use okResult()/failure() to construct.
 */
template <typename T>
class Result
{
  public:
    Result(T value) : held(std::move(value)), hasValue(true) {}
    Result(Error error) : heldError(std::move(error)), hasValue(false)
    {
    }

    bool ok() const { return hasValue; }
    explicit operator bool() const { return hasValue; }

    T &
    value()
    {
        errorOnValueAccess(!hasValue);
        return held;
    }

    const T &
    value() const
    {
        errorOnValueAccess(!hasValue);
        return held;
    }

    const Error &
    error() const
    {
        errorOnValueAccess(hasValue);
        return heldError;
    }

    Error &
    error()
    {
        errorOnValueAccess(hasValue);
        return heldError;
    }

  private:
    static void errorOnValueAccess(bool wrong_side);

    T held{};
    Error heldError;
    bool hasValue;
};

/** Result<void>: success carries no value. */
template <>
class Result<void>
{
  public:
    Result() : hasValue(true) {}
    Result(Error error) : heldError(std::move(error)), hasValue(false)
    {
    }

    bool ok() const { return hasValue; }
    explicit operator bool() const { return hasValue; }

    const Error &
    error() const
    {
        errorOnValueAccess(hasValue);
        return heldError;
    }

    Error &
    error()
    {
        errorOnValueAccess(hasValue);
        return heldError;
    }

  private:
    static void errorOnValueAccess(bool wrong_side);

    Error heldError;
    bool hasValue;
};

/** Shared guard: panic (simulator bug) on wrong-side Result access. */
void resultAccessPanic();

template <typename T>
void
Result<T>::errorOnValueAccess(bool wrong_side)
{
    if (wrong_side)
        resultAccessPanic();
}

inline void
Result<void>::errorOnValueAccess(bool wrong_side)
{
    if (wrong_side)
        resultAccessPanic();
}

/** Success value for Result<void> call sites that want to be explicit. */
inline Result<void>
okResult()
{
    return {};
}

} // namespace bpsim

#endif // BPSIM_SUPPORT_ERROR_HH
