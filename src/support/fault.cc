#include "support/fault.hh"

#include <cstdlib>
#include <vector>

#include "support/logging.hh"

namespace bpsim
{

namespace
{

Result<ErrorCode>
errorCodeFromName(const std::string &name)
{
    for (const ErrorCode code :
         {ErrorCode::ConfigInvalid, ErrorCode::IoFailure,
          ErrorCode::ResourceExhausted, ErrorCode::CellFailed,
          ErrorCode::Internal, ErrorCode::Cancelled,
          ErrorCode::DeadlineExceeded}) {
        if (name == errorCodeName(code))
            return code;
    }
    return Error(ErrorCode::ConfigInvalid,
                 "unknown error code '" + name + "'");
}

Result<Count>
parseCount(const std::string &text, const char *what)
{
    char *end = nullptr;
    const unsigned long long value =
        std::strtoull(text.c_str(), &end, 10);
    if (text.empty() || end != text.c_str() + text.size()) {
        return Error(ErrorCode::ConfigInvalid,
                     std::string(what) + " expects an unsigned "
                                         "integer, got '" +
                         text + "'");
    }
    return Count{value};
}

} // namespace

FaultInjector::FaultInjector()
{
    if (const char *spec = std::getenv("BPSIM_FAULT_INJECT")) {
        const Result<void> armed = armFromSpec(spec);
        if (!armed.ok()) {
            bpsim_fatal("BPSIM_FAULT_INJECT: ",
                        armed.error().describe());
        }
    }
}

FaultInjector &
FaultInjector::instance()
{
    static FaultInjector injector;
    return injector;
}

void
FaultInjector::arm(std::string point, Count nth, ErrorCode code,
                   Count times, std::string match)
{
    std::lock_guard<std::mutex> guard(lock);
    armedPoint = std::move(point);
    armedMatch = std::move(match);
    armedNth = nth;
    armedTimes = times;
    armedCode = code;
    hitCounts.clear();
    isArmed.store(!armedPoint.empty() && armedNth > 0,
                  std::memory_order_relaxed);
}

Result<void>
FaultInjector::armFromSpec(const std::string &spec)
{
    std::vector<std::string> parts;
    std::size_t pos = 0;
    while (pos <= spec.size()) {
        const std::size_t colon = spec.find(':', pos);
        parts.push_back(spec.substr(pos, colon - pos));
        if (colon == std::string::npos)
            break;
        pos = colon + 1;
    }
    if (parts.size() < 2 || parts.size() > 4 || parts[0].empty()) {
        return Error(ErrorCode::ConfigInvalid,
                     "fault spec '" + spec +
                         "' is not point:nth[:code[:times]]");
    }

    const Result<Count> nth = parseCount(parts[1], "fault spec nth");
    if (!nth.ok())
        return nth.error();
    if (nth.value() == 0) {
        return Error(ErrorCode::ConfigInvalid,
                     "fault spec nth is 1-based; 0 never fires");
    }

    ErrorCode code = ErrorCode::Internal;
    if (parts.size() >= 3) {
        const Result<ErrorCode> parsed = errorCodeFromName(parts[2]);
        if (!parsed.ok())
            return parsed.error();
        code = parsed.value();
    }

    Count times = 1;
    if (parts.size() == 4) {
        const Result<Count> parsed =
            parseCount(parts[3], "fault spec times");
        if (!parsed.ok())
            return parsed.error();
        if (parsed.value() == 0) {
            return Error(ErrorCode::ConfigInvalid,
                         "fault spec times must be positive");
        }
        times = parsed.value();
    }

    arm(parts[0], nth.value(), code, times);
    return okResult();
}

void
FaultInjector::disarm()
{
    std::lock_guard<std::mutex> guard(lock);
    armedPoint.clear();
    armedMatch.clear();
    armedNth = 0;
    armedTimes = 0;
    hitCounts.clear();
    isArmed.store(false, std::memory_order_relaxed);
}

Count
FaultInjector::hits(const std::string &point) const
{
    std::lock_guard<std::mutex> guard(lock);
    const auto it = hitCounts.find(point);
    return it != hitCounts.end() ? it->second : 0;
}

void
FaultInjector::onHit(const char *point, const std::string &context)
{
    Error error;
    {
        std::lock_guard<std::mutex> guard(lock);
        if (armedPoint != point)
            return;
        if (!armedMatch.empty() &&
            context.find(armedMatch) == std::string::npos)
            return;
        const Count hit = ++hitCounts[armedPoint];
        if (hit < armedNth || hit >= armedNth + armedTimes)
            return;
        error = Error(armedCode,
                      "injected fault at " + armedPoint + " (hit " +
                          std::to_string(hit) + ")");
        if (!context.empty())
            error.withContext(context);
    }
    raise(std::move(error));
}

} // namespace bpsim
