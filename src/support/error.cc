#include "support/error.hh"

#include "support/logging.hh"

namespace bpsim
{

const char *
errorCodeName(ErrorCode code)
{
    switch (code) {
      case ErrorCode::ConfigInvalid:
        return "config_invalid";
      case ErrorCode::IoFailure:
        return "io_failure";
      case ErrorCode::ResourceExhausted:
        return "resource_exhausted";
      case ErrorCode::CellFailed:
        return "cell_failed";
      case ErrorCode::Internal:
        return "internal";
      case ErrorCode::Cancelled:
        return "cancelled";
      case ErrorCode::DeadlineExceeded:
        return "deadline_exceeded";
    }
    return "?";
}

std::string
Error::describe() const
{
    std::string out = "[";
    out += errorCodeName(errorCode);
    out += "] ";
    out += errorMessage;
    if (!notes.empty()) {
        out += " (context: ";
        for (std::size_t i = 0; i < notes.size(); ++i) {
            if (i > 0)
                out += "; ";
            out += notes[i];
        }
        out += ")";
    }
    return out;
}

void
resultAccessPanic()
{
    bpsim_panic("Result accessed on the wrong side (value() on a "
                "failure or error() on a success)");
}

} // namespace bpsim
