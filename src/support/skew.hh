/**
 * @file
 * Skewed indexing functions in the style of Seznec's skewed-associative
 * caches and the (2bc)gskew family of branch predictors.
 *
 * Each bank of a skewed predictor indexes its table with a different
 * member of a family of hashing functions built from the bijection H
 * and its inverse. The family has the inter-bank dispersion property:
 * two branches that collide in one bank are very unlikely to collide in
 * another, which is what lets the majority vote absorb aliasing.
 */

#ifndef BPSIM_SUPPORT_SKEW_HH
#define BPSIM_SUPPORT_SKEW_HH

#include <cstdint>

#include "support/bits.hh"
#include "support/logging.hh"
#include "support/types.hh"

namespace bpsim
{

/**
 * The n-bit bijection H: rotate right by one with the new MSB set to
 * (old MSB xor old LSB). A bijection for any width 1..63.
 *
 * Defined inline: the batch replay kernels evaluate the skewed index
 * functions once per record in their precompute pass.
 */
inline std::uint64_t
skewH(std::uint64_t x, BitCount bits)
{
    bpsim_assert(bits >= 1 && bits <= 63, "bad H width ", bits);
    x &= mask(bits);
    if (bits == 1)
        return x;
    const std::uint64_t msb = (x >> (bits - 1)) & 1;
    const std::uint64_t lsb = x & 1;
    return ((msb ^ lsb) << (bits - 1)) | (x >> 1);
}

/** Inverse of skewH: skewHinv(skewH(x)) == x. */
inline std::uint64_t
skewHinv(std::uint64_t x, BitCount bits)
{
    bpsim_assert(bits >= 1 && bits <= 63, "bad H width ", bits);
    x &= mask(bits);
    if (bits == 1)
        return x;
    // Forward: new_msb = old_msb ^ old_lsb; rest = old >> 1, so the
    // old MSB now sits at position bits-2 and the old LSB is the XOR
    // of the two top bits of the transformed value.
    const std::uint64_t msb = (x >> (bits - 1)) & 1;
    const std::uint64_t old_msb = (x >> (bits - 2)) & 1;
    const std::uint64_t old_lsb = msb ^ old_msb;
    return ((x << 1) & mask(bits)) | old_lsb;
}

/**
 * Bank-specific skewed index for a table of 2^bits entries.
 *
 * @param bank which member of the function family (0, 1, 2, ...)
 * @param v1   first index source (e.g. folded branch address)
 * @param v2   second index source (e.g. folded global history)
 * @param bits table index width
 */
inline std::uint64_t
skewIndex(unsigned bank, std::uint64_t v1, std::uint64_t v2, BitCount bits)
{
    v1 &= mask(bits);
    v2 &= mask(bits);
    // Apply H (bank+1) times to v1 and its inverse as many times to v2,
    // then mix in one of the raw sources depending on bank parity. Each
    // bank therefore uses a distinct bijective combination, giving the
    // inter-bank dispersion the gskew scheme relies on.
    std::uint64_t a = v1;
    std::uint64_t b = v2;
    for (unsigned i = 0; i <= bank; ++i) {
        a = skewH(a, bits);
        b = skewHinv(b, bits);
    }
    return (a ^ b ^ (bank % 2 == 0 ? v2 : v1)) & mask(bits);
}

} // namespace bpsim

#endif // BPSIM_SUPPORT_SKEW_HH
