/**
 * @file
 * Skewed indexing functions in the style of Seznec's skewed-associative
 * caches and the (2bc)gskew family of branch predictors.
 *
 * Each bank of a skewed predictor indexes its table with a different
 * member of a family of hashing functions built from the bijection H
 * and its inverse. The family has the inter-bank dispersion property:
 * two branches that collide in one bank are very unlikely to collide in
 * another, which is what lets the majority vote absorb aliasing.
 */

#ifndef BPSIM_SUPPORT_SKEW_HH
#define BPSIM_SUPPORT_SKEW_HH

#include <cstdint>

#include "support/types.hh"

namespace bpsim
{

/**
 * The n-bit bijection H: rotate right by one with the new MSB set to
 * (old MSB xor old LSB). A bijection for any width 1..63.
 */
std::uint64_t skewH(std::uint64_t x, BitCount bits);

/** Inverse of skewH: skewHinv(skewH(x)) == x. */
std::uint64_t skewHinv(std::uint64_t x, BitCount bits);

/**
 * Bank-specific skewed index for a table of 2^bits entries.
 *
 * @param bank which member of the function family (0, 1, 2, ...)
 * @param v1   first index source (e.g. folded branch address)
 * @param v2   second index source (e.g. folded global history)
 * @param bits table index width
 */
std::uint64_t skewIndex(unsigned bank, std::uint64_t v1, std::uint64_t v2,
                        BitCount bits);

} // namespace bpsim

#endif // BPSIM_SUPPORT_SKEW_HH
