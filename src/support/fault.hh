/**
 * @file
 * Fault-injection harness for the fault-tolerance tests and CI.
 *
 * The runner stack calls faultPoint() at its failure-relevant
 * boundaries (materialize, profile_phase, cell, checkpoint_write).
 * In normal operation the armed-check is one relaxed atomic load and
 * the hooks cost nothing. When armed — programmatically from tests or
 * via BPSIM_FAULT_INJECT from the environment — the injector counts
 * hits per point and throws an ErrorException at the configured ones,
 * which exercises exactly the same unwind path a real failure takes.
 *
 * Spec syntax (env and armFromSpec):
 *
 *     point:nth[:code[:times]]
 *
 * fires on the nth, nth+1, ..., nth+times-1 matching hits (1-based,
 * default times = 1, default code = internal). Programmatic arming
 * adds an optional context-substring match so tests can target one
 * specific cell regardless of thread scheduling.
 */

#ifndef BPSIM_SUPPORT_FAULT_HH
#define BPSIM_SUPPORT_FAULT_HH

#include <atomic>
#include <map>
#include <mutex>
#include <string>

#include "support/error.hh"
#include "support/types.hh"

namespace bpsim
{

/** Fault-point names used by the runner stack. */
namespace fault_points
{
inline constexpr const char *materialize = "materialize";
inline constexpr const char *profilePhase = "profile_phase";
inline constexpr const char *cell = "cell";
inline constexpr const char *checkpointWrite = "checkpoint_write";
inline constexpr const char *cacheWrite = "cache_write";
inline constexpr const char *cacheMap = "cache_map";
/** Service layer: request admission (before queueing). */
inline constexpr const char *serviceAdmit = "service_admit";
/** Service layer: request execution (before the runner starts). */
inline constexpr const char *serviceExecute = "service_execute";
} // namespace fault_points

/** Process-wide fault injector (see file comment for semantics). */
class FaultInjector
{
  public:
    /** The process-wide instance. Reads BPSIM_FAULT_INJECT once, on
     * first access; tests re-arm programmatically. */
    static FaultInjector &instance();

    /**
     * Arm the injector: hits of @p point whose context contains
     * @p match (every context when empty) fail with @p code starting
     * at the @p nth matching hit (1-based), @p times times.
     * Re-arming replaces the previous arming and zeroes hit counts.
     */
    void arm(std::string point, Count nth,
             ErrorCode code = ErrorCode::Internal, Count times = 1,
             std::string match = {});

    /** Parse and arm a "point:nth[:code[:times]]" spec. */
    Result<void> armFromSpec(const std::string &spec);

    /** Disarm and zero all hit counts. */
    void disarm();

    bool armed() const
    {
        return isArmed.load(std::memory_order_relaxed);
    }

    /** Matching hits of @p point seen since the last (dis)arm. */
    Count hits(const std::string &point) const;

    /**
     * Count a hit of @p point; throws ErrorException when the arming
     * says this hit fails. @p context names the unit of work (cell
     * label, program name) for targeting and error messages.
     */
    void onHit(const char *point, const std::string &context);

  private:
    FaultInjector();

    std::atomic<bool> isArmed{false};

    mutable std::mutex lock;
    std::string armedPoint;
    std::string armedMatch;
    Count armedNth = 0;
    Count armedTimes = 0;
    ErrorCode armedCode = ErrorCode::Internal;
    std::map<std::string, Count> hitCounts;
};

/** Fault-point hook: near-free unless the injector is armed. */
inline void
faultPoint(const char *point, const std::string &context = {})
{
    FaultInjector &injector = FaultInjector::instance();
    if (injector.armed())
        injector.onHit(point, context);
}

} // namespace bpsim

#endif // BPSIM_SUPPORT_FAULT_HH
