/**
 * @file
 * Fundamental scalar types shared across the simulator.
 */

#ifndef BPSIM_SUPPORT_TYPES_HH
#define BPSIM_SUPPORT_TYPES_HH

#include <cstdint>

namespace bpsim
{

/** Byte address of an instruction in the simulated text segment. */
using Addr = std::uint64_t;

/** A count of dynamic events (instructions, branches, collisions...). */
using Count = std::uint64_t;

/** Width, index, or size expressed in bits. */
using BitCount = unsigned;

/** Alpha-style fixed instruction size; branch PCs are multiples of it. */
constexpr Addr instructionBytes = 4;

} // namespace bpsim

#endif // BPSIM_SUPPORT_TYPES_HH
