#include "support/stats.hh"

#include <cmath>
#include <cstdio>

namespace bpsim
{

void
RunningStat::add(double x)
{
    if (n == 0) {
        minValue = x;
        maxValue = x;
    } else {
        if (x < minValue)
            minValue = x;
        if (x > maxValue)
            maxValue = x;
    }
    ++n;
    const double delta = x - runningMean;
    runningMean += delta / static_cast<double>(n);
    m2 += delta * (x - runningMean);
}

double
RunningStat::variance() const
{
    return n < 2 ? 0.0 : m2 / static_cast<double>(n - 1);
}

double
RunningStat::stddev() const
{
    return std::sqrt(variance());
}

void
Correlation::add(double x, double y)
{
    ++n;
    const double inv_n = 1.0 / static_cast<double>(n);
    const double dx = x - meanX;
    const double dy = y - meanY;
    meanX += dx * inv_n;
    meanY += dy * inv_n;
    m2x += dx * (x - meanX);
    m2y += dy * (y - meanY);
    cxy += dx * (y - meanY);
}

double
Correlation::r() const
{
    if (n < 2 || m2x == 0.0 || m2y == 0.0)
        return 0.0;
    return cxy / std::sqrt(m2x * m2y);
}

double
percent(Count part, Count whole)
{
    if (whole == 0)
        return 0.0;
    return 100.0 * static_cast<double>(part) / static_cast<double>(whole);
}

double
perKilo(Count events, Count base)
{
    if (base == 0)
        return 0.0;
    return 1000.0 * static_cast<double>(events) /
           static_cast<double>(base);
}

std::string
formatFixed(double value, int decimals)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", decimals, value);
    return buf;
}

} // namespace bpsim
