/**
 * @file
 * Read-only memory-mapped file wrapper.
 *
 * MmapFile maps a whole file read-only and owns the mapping for its
 * lifetime (RAII, move-only). The artifact cache maps replay-buffer
 * files through this so N worker processes on one host share a single
 * physical copy of the trace columns: read-only MAP_SHARED pages of
 * the same file are backed by the same page-cache entries, so warm
 * starts cost no per-process copy and no per-process materialize
 * work.
 *
 * All failures surface as structured io_failure errors carrying the
 * path and errno text — never ad-hoc exceptions.
 */

#ifndef BPSIM_SUPPORT_MMAP_FILE_HH
#define BPSIM_SUPPORT_MMAP_FILE_HH

#include <cstddef>
#include <string>
#include <utility>

#include "support/error.hh"

namespace bpsim
{

/** A read-only mapping of an entire file (move-only RAII). */
class MmapFile
{
  public:
    MmapFile() = default;

    /**
     * Map @p path read-only in its entirety. An empty file maps
     * successfully with size() == 0 and data() == nullptr. Any
     * open/stat/mmap failure returns io_failure with the path and
     * errno context.
     */
    static Result<MmapFile> openReadOnly(const std::string &path);

    ~MmapFile() { unmap(); }

    MmapFile(MmapFile &&other) noexcept
        : base(other.base), bytes(other.bytes),
          sourcePath(std::move(other.sourcePath))
    {
        other.base = nullptr;
        other.bytes = 0;
    }

    MmapFile &
    operator=(MmapFile &&other) noexcept
    {
        if (this != &other) {
            unmap();
            base = other.base;
            bytes = other.bytes;
            sourcePath = std::move(other.sourcePath);
            other.base = nullptr;
            other.bytes = 0;
        }
        return *this;
    }

    MmapFile(const MmapFile &) = delete;
    MmapFile &operator=(const MmapFile &) = delete;

    /** First mapped byte (nullptr when nothing is mapped). */
    const void *data() const { return base; }

    /** Mapped length in bytes. */
    std::size_t size() const { return bytes; }

    /** The path the mapping was opened from. */
    const std::string &path() const { return sourcePath; }

    bool mapped() const { return base != nullptr; }

  private:
    void unmap();

    const void *base = nullptr;
    std::size_t bytes = 0;
    std::string sourcePath;
};

} // namespace bpsim

#endif // BPSIM_SUPPORT_MMAP_FILE_HH
