#include "support/args.hh"

#include <cstdio>
#include <cstdlib>
#include <sstream>

#include "support/logging.hh"

namespace bpsim
{

ArgParser::ArgParser(std::string tool_name)
    : toolName(std::move(tool_name))
{
}

void
ArgParser::addOption(const std::string &name,
                     const std::string &default_value,
                     const std::string &help)
{
    bpsim_assert(find(name) == nullptr, "duplicate option ", name);
    options.push_back({name, default_value, help, false});
}

void
ArgParser::addFlag(const std::string &name, const std::string &help)
{
    bpsim_assert(find(name) == nullptr, "duplicate option ", name);
    options.push_back({name, "", help, true});
}

ArgParser::Option *
ArgParser::find(const std::string &name)
{
    for (auto &option : options) {
        if (option.name == name)
            return &option;
    }
    return nullptr;
}

const ArgParser::Option *
ArgParser::find(const std::string &name) const
{
    return const_cast<ArgParser *>(this)->find(name);
}

void
ArgParser::parse(int argc, char **argv, int first)
{
    const Result<void> parsed = tryParse(argc, argv, first);
    if (!parsed.ok())
        usageExit(parsed.error());
}

Result<void>
ArgParser::tryParse(int argc, char **argv, int first)
{
    for (int i = first; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--help" || arg == "-h") {
            std::fputs(usage().c_str(), stdout);
            std::exit(0);
        }
        if (arg.rfind("--", 0) != 0) {
            positionals.push_back(arg);
            continue;
        }
        arg = arg.substr(2);
        std::string value;
        bool has_value = false;
        const auto eq = arg.find('=');
        if (eq != std::string::npos) {
            value = arg.substr(eq + 1);
            arg = arg.substr(0, eq);
            has_value = true;
        }
        Option *option = find(arg);
        if (option == nullptr) {
            return Error(ErrorCode::ConfigInvalid,
                         "unknown option '--" + arg + "'")
                .withContext("see --help for usage");
        }
        if (option->isFlag) {
            if (has_value) {
                return Error(ErrorCode::ConfigInvalid,
                             "flag '--" + arg + "' takes no value");
            }
            option->value = "1";
        } else {
            if (!has_value) {
                if (i + 1 >= argc) {
                    return Error(ErrorCode::ConfigInvalid,
                                 "option '--" + arg +
                                     "' needs a value");
                }
                value = argv[++i];
            }
            option->value = value;
        }
    }
    return okResult();
}

[[noreturn]] void
ArgParser::usageExit(const Error &error) const
{
    std::fprintf(stderr, "%s: error %s\n%s", toolName.c_str(),
                 error.describe().c_str(), usage().c_str());
    std::exit(usageExitCode);
}

const std::string &
ArgParser::get(const std::string &name) const
{
    const Option *option = find(name);
    bpsim_assert(option != nullptr && !option->isFlag,
                 "undeclared option ", name);
    return option->value;
}

Result<std::uint64_t>
ArgParser::tryGetUint(const std::string &name) const
{
    const std::string &text = get(name);
    char *end = nullptr;
    const std::uint64_t value = std::strtoull(text.c_str(), &end, 10);
    if (text.empty() || end != text.c_str() + text.size()) {
        return Error(ErrorCode::ConfigInvalid,
                     "option '--" + name +
                         "' expects an integer, got '" + text + "'");
    }
    return value;
}

Result<double>
ArgParser::tryGetDouble(const std::string &name) const
{
    const std::string &text = get(name);
    char *end = nullptr;
    const double value = std::strtod(text.c_str(), &end);
    if (text.empty() || end != text.c_str() + text.size()) {
        return Error(ErrorCode::ConfigInvalid,
                     "option '--" + name +
                         "' expects a number, got '" + text + "'");
    }
    return value;
}

std::uint64_t
ArgParser::getUint(const std::string &name) const
{
    Result<std::uint64_t> value = tryGetUint(name);
    if (!value.ok())
        usageExit(value.error());
    return value.value();
}

double
ArgParser::getDouble(const std::string &name) const
{
    Result<double> value = tryGetDouble(name);
    if (!value.ok())
        usageExit(value.error());
    return value.value();
}

bool
ArgParser::getFlag(const std::string &name) const
{
    const Option *option = find(name);
    bpsim_assert(option != nullptr && option->isFlag,
                 "undeclared flag ", name);
    return !option->value.empty();
}

std::string
ArgParser::usage() const
{
    std::ostringstream os;
    os << "usage: " << toolName << " [options]\n";
    for (const auto &option : options) {
        os << "  --" << option.name;
        if (!option.isFlag)
            os << " <value>";
        os << "\n      " << option.help;
        if (!option.isFlag && !option.value.empty())
            os << " (default: " << option.value << ")";
        os << "\n";
    }
    return os.str();
}

} // namespace bpsim
