/**
 * @file
 * Deterministic pseudo-random number generation for workload synthesis.
 *
 * The generator is xoshiro256**, seeded through splitmix64 so that any
 * 64-bit seed yields a well-mixed state. All randomness in the simulator
 * flows through this class so experiments are reproducible bit-for-bit
 * from a seed.
 */

#ifndef BPSIM_SUPPORT_RANDOM_HH
#define BPSIM_SUPPORT_RANDOM_HH

#include <array>
#include <cstdint>
#include <vector>

#include "support/logging.hh"

namespace bpsim
{

/** xoshiro256** PRNG with convenience distributions. */
class Rng
{
  public:
    /** Seed deterministically from a single 64-bit value. */
    explicit Rng(std::uint64_t seed = 0x1234567890abcdefULL);

    /** Next raw 64-bit value. */
    std::uint64_t next();

    /** Uniform in [0, bound); @p bound must be nonzero. */
    std::uint64_t nextBelow(std::uint64_t bound);

    /** Uniform double in [0, 1). */
    double nextDouble();

    /** Bernoulli trial: true with probability @p p. */
    bool chance(double p);

    /**
     * Geometric-ish trip count: 1 + number of failures before a success
     * with probability 1/mean; approximates loop trip-count spread.
     */
    std::uint64_t geometric(double mean);

    /**
     * Sample an index in [0, n) from a Zipf distribution with exponent
     * @p s, using a precomputed CDF. Used for branch execution
     * frequencies, which are heavily skewed in real programs.
     */
    class Zipf
    {
      public:
        Zipf(std::size_t n, double s);

        /** Draw one sample using @p rng. */
        std::size_t sample(Rng &rng) const;

        /** Probability mass of index @p i. */
        double mass(std::size_t i) const;

      private:
        std::vector<double> cdf;
    };

    /**
     * Sample an index from an arbitrary weight vector (CDF method).
     * Weights need not be normalised; zero-weight entries are never
     * drawn.
     */
    class Discrete
    {
      public:
        explicit Discrete(const std::vector<double> &weights);

        /** Draw one index using @p rng. */
        std::size_t sample(Rng &rng) const;

        /** True when every weight was zero (sampling not possible). */
        bool empty() const { return total == 0.0; }

      private:
        std::vector<double> cdf;
        double total = 0.0;
    };

    /** Fork a child generator whose stream is independent of this one. */
    Rng fork();

  private:
    std::array<std::uint64_t, 4> state;
};

} // namespace bpsim

#endif // BPSIM_SUPPORT_RANDOM_HH
