#include "support/observe.hh"

namespace bpsim
{

void
CounterRegistry::add(const std::string &name, Count delta)
{
    std::lock_guard<std::mutex> guard(lock);
    counters[name] += delta;
}

Count
CounterRegistry::value(const std::string &name) const
{
    std::lock_guard<std::mutex> guard(lock);
    const auto it = counters.find(name);
    return it == counters.end() ? 0 : it->second;
}

std::map<std::string, Count>
CounterRegistry::snapshot() const
{
    std::lock_guard<std::mutex> guard(lock);
    return counters;
}

void
TimerRegistry::add(const std::string &name, double seconds)
{
    std::lock_guard<std::mutex> guard(lock);
    TimerStat &stat = stats[name];
    ++stat.count;
    stat.seconds += seconds;
}

std::map<std::string, TimerStat>
TimerRegistry::snapshot() const
{
    std::lock_guard<std::mutex> guard(lock);
    return stats;
}

ScopedTimer::ScopedTimer(TimerRegistry *registry, std::string name)
    : registry(registry), name(std::move(name)),
      start(std::chrono::steady_clock::now()), running(true)
{
    if (registry != nullptr)
        registry->open.fetch_add(1, std::memory_order_acq_rel);
}

double
ScopedTimer::stop()
{
    if (!running)
        return elapsed;
    running = false;
    elapsed = std::chrono::duration<double>(
                  std::chrono::steady_clock::now() - start)
                  .count();
    if (registry != nullptr) {
        registry->add(name, elapsed);
        registry->open.fetch_sub(1, std::memory_order_acq_rel);
    }
    return elapsed;
}

} // namespace bpsim
