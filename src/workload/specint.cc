#include "workload/specint.hh"

#include "support/bits.hh"
#include "support/logging.hh"

namespace bpsim
{

const std::vector<SpecProgram> &
allSpecPrograms()
{
    static const std::vector<SpecProgram> programs = {
        SpecProgram::Go,       SpecProgram::Gcc,
        SpecProgram::Perl,     SpecProgram::M88ksim,
        SpecProgram::Compress, SpecProgram::Ijpeg,
    };
    return programs;
}

std::string
specProgramName(SpecProgram program)
{
    switch (program) {
      case SpecProgram::Go:
        return "go";
      case SpecProgram::Gcc:
        return "gcc";
      case SpecProgram::Perl:
        return "perl";
      case SpecProgram::M88ksim:
        return "m88ksim";
      case SpecProgram::Compress:
        return "compress";
      case SpecProgram::Ijpeg:
        return "ijpeg";
    }
    bpsim_panic("unknown SpecProgram");
}

SpecProgram
specProgramFromName(const std::string &name)
{
    for (const auto program : allSpecPrograms()) {
        if (specProgramName(program) == name)
            return program;
    }
    bpsim_fatal("unknown program '", name,
                "' (expected go/gcc/perl/m88ksim/compress/ijpeg)");
}

ProgramConfig
specProgramConfig(SpecProgram program)
{
    ProgramConfig cfg;
    cfg.name = specProgramName(program);

    switch (program) {
      case SpecProgram::Go:
        // Hardest program: few biased branches (Table 2: 15.9% of
        // dynamic branches above 95% bias), lots of data-dependent and
        // correlated control flow, 7777 static branches, 117 CBRs/KI.
        cfg.staticBranches = 7777;
        cfg.meanScheduleLen = 12;
        cfg.meanScheduleRepeats = 40;
        cfg.avgGap = 1000.0 / 117.0;
        cfg.fracHighBias = 0.30;
        cfg.fracLowBias = 0.05;
        cfg.fracCorrelated = 0.32;
        cfg.fracPattern = 0.10;
        cfg.fracPhase = 0.02;
        cfg.loopDensity = 0.06;
        cfg.meanTripCount = 8;
        cfg.zipfExponent = 1.3;
        cfg.trainCoverage = 0.96;
        cfg.flipFraction = 0.02;
        cfg.driftFraction = 0.30;
        cfg.medBiasLo = 0.75;
        cfg.medBiasHi = 0.95;
        break;

      case SpecProgram::Gcc:
        // Largest static branch count in the suite (38852) and the
        // highest branch density (156 CBRs/KI): the aliasing-dominated
        // program of the paper. Flat-ish region frequencies keep many
        // branches simultaneously live in the predictor tables.
        cfg.staticBranches = 38852;
        cfg.meanScheduleLen = 48;
        cfg.meanScheduleRepeats = 40;
        cfg.avgGap = 1000.0 / 156.0;
        cfg.fracHighBias = 0.62;
        cfg.fracLowBias = 0.02;
        cfg.fracCorrelated = 0.12;
        cfg.fracPattern = 0.06;
        cfg.fracPhase = 0.02;
        cfg.loopDensity = 0.10;
        cfg.meanTripCount = 10;
        cfg.zipfExponent = 1.0;
        cfg.trainCoverage = 0.97;
        cfg.flipFraction = 0.01;
        cfg.driftFraction = 0.25;
        cfg.medBiasLo = 0.85;
        cfg.medBiasHi = 0.97;
        break;

      case SpecProgram::Perl:
        // Highly biased branches dominate (71.4%); poor train-input
        // coverage and hot direction-flipping branches make it the
        // worst case for naive cross-training (Figure 13).
        cfg.staticBranches = 9569;
        cfg.meanScheduleLen = 16;
        cfg.meanScheduleRepeats = 48;
        cfg.avgGap = 1000.0 / 122.0;
        cfg.fracHighBias = 0.80;
        cfg.highBiasHardFrac = 0.80;
        cfg.takenMajorityFrac = 0.20;
        cfg.fracLowBias = 0.01;
        cfg.fracCorrelated = 0.08;
        cfg.fracPattern = 0.04;
        cfg.fracPhase = 0.01;
        cfg.loopDensity = 0.10;
        cfg.meanTripCount = 20;
        cfg.emptyLoopFrac = 0.4;
        cfg.zipfExponent = 1.4;
        cfg.medBiasLo = 0.90;
        cfg.medBiasHi = 0.98;
        cfg.trainCoverage = 0.62;
        cfg.flipFraction = 0.04;
        cfg.driftFraction = 0.20;
        cfg.hotFlips = true;
        break;

      case SpecProgram::M88ksim:
        // Almost everything is highly biased (85.5%); like perl, some
        // hot branches reverse direction between inputs.
        cfg.staticBranches = 5365;
        cfg.meanScheduleLen = 40;
        cfg.meanScheduleRepeats = 64;
        cfg.avgGap = 1000.0 / 115.0;
        cfg.fracHighBias = 0.90;
        cfg.highBiasHardFrac = 0.88;
        cfg.takenMajorityFrac = 0.12;
        cfg.fracLowBias = 0.01;
        cfg.fracCorrelated = 0.02;
        cfg.fracPattern = 0.01;
        cfg.fracPhase = 0.01;
        cfg.loopDensity = 0.20;
        cfg.meanTripCount = 45;
        cfg.fixedTripFrac = 0.25;
        cfg.emptyLoopFrac = 0.6;
        cfg.zipfExponent = 1.1;
        cfg.medBiasLo = 0.96;
        cfg.medBiasHi = 0.995;
        cfg.trainCoverage = 0.97;
        cfg.flipFraction = 0.03;
        cfg.driftFraction = 0.15;
        cfg.hotFlips = true;
        break;

      case SpecProgram::Compress:
        // Small static footprint (2238 branches) with a substantial
        // correlated population: bias fraction mid-pack (49.1%) but
        // prediction accuracy lower than bias alone would suggest.
        cfg.staticBranches = 2238;
        cfg.meanScheduleLen = 6;
        cfg.meanScheduleRepeats = 64;
        cfg.avgGap = 1000.0 / 123.0;
        cfg.fracHighBias = 0.55;
        cfg.fracLowBias = 0.02;
        cfg.fracCorrelated = 0.20;
        cfg.fracPattern = 0.06;
        cfg.fracPhase = 0.01;
        cfg.loopDensity = 0.10;
        cfg.meanTripCount = 15;
        cfg.zipfExponent = 1.6;
        cfg.trainCoverage = 0.99;
        cfg.flipFraction = 0.01;
        cfg.driftFraction = 0.20;
        break;

      case SpecProgram::Ijpeg:
        // Low branch density (61 CBRs/KI) and long-trip loops over a
        // concentrated hot set: little aliasing pressure, so static
        // prediction has the least to offer (paper §5).
        cfg.staticBranches = 5290;
        cfg.meanScheduleLen = 5;
        cfg.meanScheduleRepeats = 64;
        cfg.avgGap = 1000.0 / 61.0;
        cfg.fracHighBias = 0.48;
        cfg.fracLowBias = 0.03;
        cfg.fracCorrelated = 0.08;
        cfg.fracPattern = 0.08;
        cfg.fracPhase = 0.02;
        cfg.loopDensity = 0.30;
        cfg.meanTripCount = 18;
        cfg.fixedTripFrac = 0.2;
        cfg.emptyLoopFrac = 0.35;
        cfg.zipfExponent = 1.8;
        cfg.medBiasLo = 0.90;
        cfg.medBiasHi = 0.98;
        cfg.trainCoverage = 0.99;
        cfg.flipFraction = 0.01;
        cfg.driftFraction = 0.10;
        break;
    }
    return cfg;
}

SyntheticProgram
makeSpecProgram(SpecProgram program, InputSet input, std::uint64_t seed)
{
    ProgramConfig cfg = specProgramConfig(program);
    cfg.seed = mix64(seed ^ (static_cast<std::uint64_t>(program) + 1));
    return buildProgram(cfg, input);
}

} // namespace bpsim
