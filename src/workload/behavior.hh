/**
 * @file
 * Per-branch outcome models for synthetic workloads.
 *
 * Each static branch in a synthetic program owns a BranchBehavior that
 * decides taken/not-taken each time the branch executes. The behaviour
 * families mirror the branch populations the paper's evaluation depends
 * on: highly biased branches (the Static_95 targets), loop controls,
 * history-correlated branches (what ghist/gshare exploit), repeating
 * local patterns, phase changers, and input-sensitive branches whose
 * bias drifts or flips between the 'train' and 'ref' inputs (the §5.1
 * cross-training hazard).
 */

#ifndef BPSIM_WORKLOAD_BEHAVIOR_HH
#define BPSIM_WORKLOAD_BEHAVIOR_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "support/random.hh"
#include "support/types.hh"

namespace bpsim
{

/** Which input set the program is being run with. */
enum class InputSet : unsigned
{
    Train = 0,
    Ref = 1,
};

/** Number of distinct input sets. */
constexpr unsigned numInputSets = 2;

/** Execution-time information a behaviour may consult. */
struct BehaviorContext
{
    /** Program-wide execution RNG (deterministic from the run seed). */
    Rng &rng;

    /** True outcomes of the most recent branches, LSB = most recent. */
    std::uint64_t globalHistory;

    /**
     * Outcomes of the most recent *semantic* branches only — the
     * data-dependent population (correlated, pattern, low-bias).
     * Real inter-branch correlation flows through shared data, i.e.
     * through other data-dependent branches, not through the biased
     * guards that static prediction removes.
     */
    std::uint64_t semanticHistory;

    /** Input set of the current run. */
    InputSet input;
};

/** Abstract per-branch outcome model. */
class BranchBehavior
{
  public:
    virtual ~BranchBehavior() = default;

    /** Decide the outcome of one execution of this branch. */
    virtual bool outcome(const BehaviorContext &ctx) = 0;

    /** Discard run-time state so a fresh run replays identically. */
    virtual void reset() {}
};

/**
 * Bernoulli branch with a per-input taken probability. Covers highly
 * biased, medium, and low-bias populations as well as input drift and
 * majority-direction flips (train probability p, ref probability p').
 */
class BiasedBehavior : public BranchBehavior
{
  public:
    BiasedBehavior(double p_train, double p_ref)
        : pTaken{p_train, p_ref}
    {}

    bool
    outcome(const BehaviorContext &ctx) override
    {
        return ctx.rng.chance(pTaken[static_cast<unsigned>(ctx.input)]);
    }

    /** Taken probability under @p input (used by workload analysis). */
    double
    takenProbability(InputSet input) const
    {
        return pTaken[static_cast<unsigned>(input)];
    }

  private:
    double pTaken[numInputSets];
};

/**
 * Loop control branch: taken while the loop continues, not-taken once
 * per loop exit. Trip counts are drawn from a geometric distribution
 * around a per-input mean, so the bias of a loop branch is roughly
 * (trip - 1) / trip.
 */
class LoopBehavior : public BranchBehavior
{
  public:
    /**
     * @param mean_trip_train mean control evaluations per entry
     *                        under the train input
     * @param mean_trip_ref   likewise for ref
     * @param fixed_trip      when true the trip count is the same on
     *                        every entry (a counted loop: perfectly
     *                        predictable by a history predictor whose
     *                        history covers the trip); when false it
     *                        is drawn geometrically per entry (a
     *                        data-dependent loop)
     */
    LoopBehavior(double mean_trip_train, double mean_trip_ref,
                 bool fixed_trip = false)
        : meanTrip{mean_trip_train, mean_trip_ref},
          fixedTrip(fixed_trip)
    {}

    bool outcome(const BehaviorContext &ctx) override;
    void reset() override;

  private:
    double meanTrip[numInputSets];
    bool fixedTrip;
    std::uint64_t remaining = 0;
    bool active = false;
};

/**
 * Repeating fixed taken/not-taken pattern (e.g. TTNTTN...). Perfectly
 * predictable by a history-based predictor with enough history, and
 * mispredicted at the pattern rate by bimodal.
 */
class PatternBehavior : public BranchBehavior
{
  public:
    explicit PatternBehavior(std::vector<bool> pattern);

    bool outcome(const BehaviorContext &ctx) override;
    void reset() override { position = 0; }

  private:
    std::vector<bool> pattern;
    std::size_t position = 0;
};

/**
 * Branch whose outcome is the parity of selected recent global
 * outcomes, optionally inverted per input, with a small noise floor.
 * This is the population that embodies the paper's "branch
 * correlation" principle: near-50% bias, yet highly predictable by
 * ghist/gshare when aliasing permits.
 */
class CorrelatedBehavior : public BranchBehavior
{
  public:
    /**
     * @param semantic_mask which semantic-history bits feed the
     *                      parity (the dominant correlation channel)
     * @param global_mask   which raw global-history bits also feed it
     *                      (0 for most branches; a nonzero mask makes
     *                      the branch sensitive to whether statically
     *                      predicted outcomes stay in the history —
     *                      the paper's Table 4 shift phenomenon)
     * @param invert_train  invert the parity under 'train'
     * @param invert_ref    invert the parity under 'ref'
     * @param noise         probability of a random outcome instead
     */
    CorrelatedBehavior(std::uint64_t semantic_mask,
                       std::uint64_t global_mask, bool invert_train,
                       bool invert_ref, double noise)
        : semanticMask(semantic_mask), globalMask(global_mask),
          invert{invert_train, invert_ref}, noise(noise)
    {}

    bool outcome(const BehaviorContext &ctx) override;

  private:
    std::uint64_t semanticMask;
    std::uint64_t globalMask;
    bool invert[numInputSets];
    double noise;
};

/**
 * Branch alternating between two biases with a fixed period,
 * modelling program phase changes that degrade static prediction.
 */
class PhaseBehavior : public BranchBehavior
{
  public:
    PhaseBehavior(double p_phase_a, double p_phase_b,
                  std::uint64_t period)
        : pA(p_phase_a), pB(p_phase_b), period(period)
    {}

    bool outcome(const BehaviorContext &ctx) override;
    void reset() override { executions = 0; }

  private:
    double pA;
    double pB;
    std::uint64_t period;
    std::uint64_t executions = 0;
};

} // namespace bpsim

#endif // BPSIM_WORKLOAD_BEHAVIOR_HH
