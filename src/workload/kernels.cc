#include "workload/kernels.hh"

#include "support/logging.hh"

namespace bpsim
{

namespace
{

/** Running PC cursor for kernel construction. */
struct PcCursor
{
    Addr next = 0x140000000ULL;

    Addr
    take(std::uint32_t gap)
    {
        next += gap * instructionBytes;
        return next - instructionBytes;
    }
};

BranchSite
site(PcCursor &pc, std::unique_ptr<BranchBehavior> behavior,
     std::uint32_t gap = 8, bool semantic = false)
{
    BranchSite s;
    s.gapMean = gap;
    s.pc = pc.take(gap);
    s.behavior = std::move(behavior);
    s.semantic = semantic;
    return s;
}

Region
singleRegion(Block body)
{
    Region region;
    region.body = std::move(body);
    region.weight[0] = 1.0;
    region.weight[1] = 1.0;
    return region;
}

std::vector<Region>
buildMatrixSweep(PcCursor &pc)
{
    // for (row = 0; row < 6; ++row)
    //     for (col = 0; col < 8; ++col)
    //         if (overflow) ...      // effectively never taken
    //
    // Trip counts are kept inside a ~13-bit history window so a
    // history predictor can count both loops exactly; bimodal pays
    // 1/trip per loop level on the exits.
    Block inner_body;
    inner_body.items.emplace_back(site(
        pc, std::make_unique<BiasedBehavior>(0.002, 0.002), 6));

    Loop inner;
    inner.control =
        site(pc, std::make_unique<LoopBehavior>(8, 8, true), 4);
    inner.body = std::make_unique<Block>(std::move(inner_body));

    Block outer_body;
    outer_body.items.emplace_back(std::move(inner));

    Loop outer;
    outer.control =
        site(pc, std::make_unique<LoopBehavior>(6, 6, true), 6);
    outer.body = std::make_unique<Block>(std::move(outer_body));

    Block main;
    main.items.emplace_back(std::move(outer));
    std::vector<Region> regions;
    regions.push_back(singleRegion(std::move(main)));
    return regions;
}

std::vector<Region>
buildListTraversal(PcCursor &pc)
{
    // while (node) { if (!node->key) rare_path(); node = node->next; }
    Block body;
    body.items.emplace_back(site(
        pc, std::make_unique<BiasedBehavior>(0.001, 0.001), 5));

    Loop walk;
    walk.control =
        site(pc, std::make_unique<LoopBehavior>(24, 24, false), 7);
    walk.body = std::make_unique<Block>(std::move(body));

    Block main;
    main.items.emplace_back(std::move(walk));
    std::vector<Region> regions;
    regions.push_back(singleRegion(std::move(main)));
    return regions;
}

std::vector<Region>
buildInterpreterDispatch(PcCursor &pc)
{
    // Eight equiprobable opcodes resolved by a sequential compare
    // chain: branch i is taken (dispatch found) with probability
    // 1 / (8 - i) given the previous compares failed.
    Block chain;
    for (int i = 0; i < 8; ++i) {
        const double p = 1.0 / static_cast<double>(8 - i);
        chain.items.emplace_back(
            site(pc, std::make_unique<BiasedBehavior>(p, p), 4));
    }
    std::vector<Region> regions;
    regions.push_back(singleRegion(std::move(chain)));
    return regions;
}

std::vector<Region>
buildQuicksortPartition(PcCursor &pc)
{
    // for (i = 0; i < 24; ++i) if (a[i] < pivot) swap(...)
    Block body;
    body.items.emplace_back(
        site(pc, std::make_unique<BiasedBehavior>(0.5, 0.5), 6));

    Loop scan;
    scan.control =
        site(pc, std::make_unique<LoopBehavior>(24, 24, true), 5);
    scan.body = std::make_unique<Block>(std::move(body));

    Block main;
    main.items.emplace_back(std::move(scan));
    std::vector<Region> regions;
    regions.push_back(singleRegion(std::move(main)));
    return regions;
}

std::vector<Region>
buildStateMachine(PcCursor &pc)
{
    // Four branches whose outcomes are exact functions of the recent
    // semantic history, tuned so the system settles into a period-two
    // orbit: three of the branches alternate every round (useless to
    // bimodal, trivial for any history predictor) and one is
    // constant. Deterministic, zero noise.
    //
    //   b1 = NOT its own previous outcome        -> alternates
    //   b2 = b1's current outcome                -> alternates
    //   b3 = NOT (b1 XOR b2) = NOT 0             -> constant taken
    //   b4 = b2 XOR b3 (current)                 -> alternates
    Block main;
    main.items.emplace_back(
        site(pc,
             std::make_unique<CorrelatedBehavior>(0b1000, 0, true,
                                                  true, 0.0),
             6, true));
    main.items.emplace_back(
        site(pc,
             std::make_unique<CorrelatedBehavior>(0b0001, 0, false,
                                                  false, 0.0),
             6, true));
    main.items.emplace_back(
        site(pc,
             std::make_unique<CorrelatedBehavior>(0b0011, 0, true,
                                                  true, 0.0),
             6, true));
    main.items.emplace_back(
        site(pc,
             std::make_unique<CorrelatedBehavior>(0b0110, 0, false,
                                                  false, 0.0),
             6, true));
    std::vector<Region> regions;
    regions.push_back(singleRegion(std::move(main)));
    return regions;
}

} // namespace

const std::vector<Kernel> &
allKernels()
{
    static const std::vector<Kernel> kernels = {
        Kernel::MatrixSweep,        Kernel::ListTraversal,
        Kernel::InterpreterDispatch, Kernel::QuicksortPartition,
        Kernel::StateMachine,
    };
    return kernels;
}

std::string
kernelName(Kernel kernel)
{
    switch (kernel) {
      case Kernel::MatrixSweep:
        return "matrix_sweep";
      case Kernel::ListTraversal:
        return "list_traversal";
      case Kernel::InterpreterDispatch:
        return "interpreter_dispatch";
      case Kernel::QuicksortPartition:
        return "quicksort_partition";
      case Kernel::StateMachine:
        return "state_machine";
    }
    bpsim_panic("unknown Kernel");
}

Kernel
kernelFromName(const std::string &name)
{
    for (const auto kernel : allKernels()) {
        if (kernelName(kernel) == name)
            return kernel;
    }
    bpsim_fatal("unknown kernel '", name, "'");
}

SyntheticProgram
makeKernel(Kernel kernel, std::uint64_t seed)
{
    PcCursor pc;
    std::vector<Region> regions;
    switch (kernel) {
      case Kernel::MatrixSweep:
        regions = buildMatrixSweep(pc);
        break;
      case Kernel::ListTraversal:
        regions = buildListTraversal(pc);
        break;
      case Kernel::InterpreterDispatch:
        regions = buildInterpreterDispatch(pc);
        break;
      case Kernel::QuicksortPartition:
        regions = buildQuicksortPartition(pc);
        break;
      case Kernel::StateMachine:
        regions = buildStateMachine(pc);
        break;
    }
    // A single region repeated forever: schedule structure is
    // irrelevant, so use a trivial 1-entry schedule.
    return SyntheticProgram(kernelName(kernel), std::move(regions),
                            seed, InputSet::Ref, 1, 1024);
}

} // namespace bpsim
