/**
 * @file
 * Static structure of a synthetic program: regions of straight-line
 * branch sites and nested loops.
 *
 * A program is a set of weighted regions (think: hot functions). A
 * region body is a block; a block is a sequence of items; an item is
 * either a plain branch site or a loop (a control branch guarding a
 * nested block, while-at-top semantics). Executing the program means
 * repeatedly drawing a region by weight and walking its body, emitting
 * one BranchRecord per branch-site evaluation.
 */

#ifndef BPSIM_WORKLOAD_CFG_HH
#define BPSIM_WORKLOAD_CFG_HH

#include <memory>
#include <variant>
#include <vector>

#include "support/types.hh"
#include "workload/behavior.hh"

namespace bpsim
{

/** One static conditional branch. */
struct BranchSite
{
    /** Instruction address; unique across the program. */
    Addr pc = 0;

    /** Outcome model; owns all run-time state of the branch. */
    std::unique_ptr<BranchBehavior> behavior;

    /**
     * Mean instructions retired between the previous branch and this
     * one (inclusive); controls the program's CBRs/KI.
     */
    std::uint32_t gapMean = 8;

    /**
     * True for data-dependent branches (correlated, pattern,
     * low-bias): their outcomes feed the semantic history channel
     * that other correlated branches read.
     */
    bool semantic = false;
};

struct Block;

/** A loop: control branch plus body, control evaluated at the top. */
struct Loop
{
    /** Loop control; taken = (re)enter the body. */
    BranchSite control;

    /** Loop body, executed once per taken evaluation of the control. */
    std::unique_ptr<Block> body;

    /** Safety bound on iterations per entry (behaviour-independent). */
    std::uint32_t maxIterations = 1u << 16;
};

/** Either a plain branch site or a nested loop. */
using CfgItem = std::variant<BranchSite, Loop>;

/** Straight-line sequence of items. */
struct Block
{
    std::vector<CfgItem> items;
};

/** A weighted region (hot function / trace) of the program. */
struct Region
{
    Block body;

    /** Selection weight per input set; 0 = never executed. */
    double weight[numInputSets] = {1.0, 1.0};
};

/** Invoke @p fn on every BranchSite in @p block (loop controls too). */
template <typename Fn>
void
forEachSite(Block &block, Fn &&fn)
{
    for (auto &item : block.items) {
        if (auto *site = std::get_if<BranchSite>(&item)) {
            fn(*site);
        } else {
            auto &loop = std::get<Loop>(item);
            fn(loop.control);
            forEachSite(*loop.body, fn);
        }
    }
}

/** Count the branch sites in @p block, including loop controls. */
std::size_t countSites(const Block &block);

} // namespace bpsim

#endif // BPSIM_WORKLOAD_CFG_HH
