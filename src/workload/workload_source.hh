/**
 * @file
 * The runner-facing workload abstraction: a named, seeded, replayable
 * branch stream with selectable input sets.
 *
 * Everything the experiment runner needs from a workload — a stable
 * name and seed for fingerprints and artifact-cache keys, input-set
 * switching for cross-training, and the BranchStream protocol for
 * materialization — lives here, so single programs (SyntheticProgram)
 * and multi-context scenario interleaves (ScenarioWorkload) are
 * interchangeable matrix entries: fused grouping, the profile cache,
 * checkpoint fingerprints, sharding and service mode all key on this
 * interface and compose with any implementation.
 */

#ifndef BPSIM_WORKLOAD_WORKLOAD_SOURCE_HH
#define BPSIM_WORKLOAD_WORKLOAD_SOURCE_HH

#include <cstdint>
#include <string>

#include "trace/branch_stream.hh"
#include "workload/cfg.hh"

namespace bpsim
{

/** A named, seeded branch stream the runner can own and replay. */
class WorkloadSource : public BranchStream
{
  public:
    ~WorkloadSource() override = default;

    /**
     * Stable workload name. Together with seedValue() this is the
     * workload's identity in checkpoint fingerprints and artifact
     * cache keys, so it must encode every stream-affecting parameter
     * (scenario implementations fold their interleave spec in).
     */
    virtual const std::string &name() const = 0;

    /** Run seed (the other half of the checkpoint identity). */
    virtual std::uint64_t seedValue() const = 0;

    /** Switch input set (also resets execution state). */
    virtual void setInput(InputSet input) = 0;

    /** Current input set. */
    virtual InputSet input() const = 0;
};

} // namespace bpsim

#endif // BPSIM_WORKLOAD_WORKLOAD_SOURCE_HH
