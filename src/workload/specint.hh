/**
 * @file
 * Synthetic stand-ins for the six SPECINT95 programs of the paper.
 *
 * Each preset parameterises the generic program builder so that the
 * resulting workload approximates the program characteristics the
 * paper reports (Table 1: static branch counts and CBRs/KI; Table 2:
 * fraction of highly biased dynamic branches; Table 5: train-to-ref
 * behaviour drift). See DESIGN.md for the substitution rationale.
 */

#ifndef BPSIM_WORKLOAD_SPECINT_HH
#define BPSIM_WORKLOAD_SPECINT_HH

#include <string>
#include <vector>

#include "workload/synthetic_program.hh"

namespace bpsim
{

/** The six SPECINT95 benchmarks used in the paper. */
enum class SpecProgram
{
    Go,
    Gcc,
    Perl,
    M88ksim,
    Compress,
    Ijpeg,
};

/** All six programs in the paper's Table-2 order. */
const std::vector<SpecProgram> &allSpecPrograms();

/** Lower-case program name ("go", "gcc", ...). */
std::string specProgramName(SpecProgram program);

/** Parse a program name; fatal() on an unknown one. */
SpecProgram specProgramFromName(const std::string &name);

/** Builder configuration for @p program (seed folded in later). */
ProgramConfig specProgramConfig(SpecProgram program);

/**
 * Build the synthetic stand-in for @p program.
 *
 * @param program which benchmark to model
 * @param input   train or ref input set
 * @param seed    structure/run seed (default matches the benches)
 */
SyntheticProgram makeSpecProgram(SpecProgram program, InputSet input,
                                 std::uint64_t seed = 2000);

} // namespace bpsim

#endif // BPSIM_WORKLOAD_SPECINT_HH
