/**
 * @file
 * Executable synthetic program: a BranchStream over a synthetic CFG.
 *
 * This stands in for the paper's Atom-instrumented Alpha binaries: it
 * produces an unbounded, fully deterministic (seeded) stream of
 * conditional-branch executions with realistic frequency skew, loop
 * structure, history correlation and train/ref input divergence.
 */

#ifndef BPSIM_WORKLOAD_SYNTHETIC_PROGRAM_HH
#define BPSIM_WORKLOAD_SYNTHETIC_PROGRAM_HH

#include <cstddef>
#include <memory>
#include <string>
#include <vector>

#include "support/error.hh"
#include "support/random.hh"
#include "workload/cfg.hh"
#include "workload/workload_source.hh"

namespace bpsim
{

/** A runnable synthetic program. The stream never ends; bound it. */
class SyntheticProgram : public WorkloadSource
{
  public:
    /**
     * @param name    human-readable program name
     * @param regions program structure (takes ownership)
     * @param seed    run seed; combined with the input set
     * @param input   which input set to run with
     * @param mean_schedule_len     mean regions per schedule
     * @param mean_schedule_repeats mean schedule repetitions per phase
     */
    SyntheticProgram(std::string name, std::vector<Region> regions,
                     std::uint64_t seed, InputSet input,
                     unsigned mean_schedule_len = 6,
                     double mean_schedule_repeats = 64);

    // The structure owns unique_ptrs; the program is move-only.
    SyntheticProgram(SyntheticProgram &&) = default;
    SyntheticProgram &operator=(SyntheticProgram &&) = default;

    bool next(BranchRecord &record) override;
    void reset() override;

    /** Switch input set (also resets execution state). */
    void setInput(InputSet input) override;

    /** Current input set. */
    InputSet input() const override { return currentInput; }

    /** Program name. */
    const std::string &name() const override { return programName; }

    /** Run seed (with the name, the program's checkpoint identity). */
    std::uint64_t seedValue() const override { return seed; }

    /** Number of static conditional branches in the program. */
    std::size_t staticBranchCount() const;

    /**
     * Approximate static instruction count: branch sites plus their
     * surrounding straight-line code (sum of gap means).
     */
    Count staticInstructionEstimate() const;

    /** Mutable region access (used by the builder and tests). */
    std::vector<Region> &regionData() { return regions; }
    const std::vector<Region> &regionData() const { return regions; }

  private:
    /** One level of the block-walking stack. */
    struct Frame
    {
        Block *block;
        std::size_t index;
        /** Loop whose body this frame executes; null for region root. */
        Loop *loop;
        /** Completed body iterations of that loop. */
        std::uint32_t iterations;
    };

    /** Evaluate @p site, fill @p record, update global history. */
    void emit(BranchSite &site, BranchRecord &record);

    /** Rebuild the region sampler for the current input. */
    void rebuildSampler();

    std::string programName;
    std::vector<Region> regions;
    std::uint64_t seed;
    InputSet currentInput;

    Rng execRng;
    std::unique_ptr<Rng::Discrete> regionSampler;
    std::vector<Frame> stack;
    std::uint64_t globalHistory = 0;
    std::uint64_t semanticHistory = 0;

    // Phase structure: the current region schedule and its position.
    unsigned meanScheduleLen;
    double meanScheduleRepeats;
    std::vector<std::size_t> schedule;
    std::size_t schedulePos = 0;
    std::uint64_t repeatsLeft = 0;
};

/**
 * Knobs for the generic program builder. Fractions refer to plain
 * (non-loop-control) branch sites and need not sum to one; the
 * remainder becomes medium-bias Bernoulli branches.
 */
struct ProgramConfig
{
    std::string name = "synthetic";

    /** Approximate number of static conditional branches. */
    std::size_t staticBranches = 1000;

    /** Mean instructions per branch (1000 / CBRs-per-KI). */
    double avgGap = 8.0;

    /** Zipf exponent of region selection frequency. */
    double zipfExponent = 1.0;

    /** Mean plain sites per region (region size is randomised). */
    unsigned meanRegionSites = 10;

    // --- behaviour mixture over plain sites ---
    double fracHighBias = 0.45;   ///< bias concentrated near 1.0
    double fracLowBias = 0.10;    ///< bias in [0.50, 0.70)
    double fracCorrelated = 0.15; ///< ghist-parity branches
    double fracPattern = 0.05;    ///< fixed local patterns
    double fracPhase = 0.03;      ///< phase-changing bias

    /** Bias range of the remaining ("medium") Bernoulli sites. */
    double medBiasLo = 0.75;
    double medBiasHi = 0.95;

    /**
     * Share of the high-bias class that is effectively deterministic
     * (bias 99.99%: never-failing guards, error paths). The rest
     * draws bias quadratically close to 1. A high value gives static
     * prediction of biased branches a near-zero misprediction floor.
     */
    double highBiasHardFrac = 0.5;

    /**
     * Probability that a biased site's majority direction is taken.
     * Real code skews not-taken (error paths, guards), which makes a
     * substantial share of predictor collisions constructive; a value
     * of 0.5 would make nearly all collisions destructive.
     */
    double takenMajorityFrac = 0.35;

    /** Fraction of loops with a constant (counted) trip count. */
    double fixedTripFrac = 0.5;

    // --- phase structure ---
    /**
     * Regions are not drawn independently: execution follows a
     * *schedule* of regions (an outer loop over hot functions) that
     * repeats many times before being redrawn. This is what makes the
     * global history identify program position, as it does in real
     * code; fully random interleaving would leave history-indexed
     * predictors nothing to learn.
     */
    unsigned meanScheduleLen = 6;

    /** Mean repetitions of a schedule before a redraw (a "phase"). */
    double meanScheduleRepeats = 64;

    // --- loop structure ---
    double loopDensity = 0.12;  ///< probability an item is a loop
    double meanTripCount = 12;  ///< mean control evaluations per entry
    double nestProbability = 0.25; ///< chance a loop body nests another

    /**
     * Fraction of loops with an empty body (tight spin/scan loops).
     * These emit long runs of taken outcomes that saturate a global
     * history register — the classic weakness of the pure-history
     * 'ghist' (GAg) scheme that Static_95 relieves by removing the
     * loop controls from the history stream.
     */
    double emptyLoopFrac = 0.2;

    // --- train/ref divergence (§5.1 of the paper) ---
    /** Fraction of regions executable under the train input. */
    double trainCoverage = 0.97;
    /** Fraction of sites whose majority direction flips train->ref. */
    double flipFraction = 0.02;
    /** Fraction of sites with a >5% bias drift train->ref. */
    double driftFraction = 0.15;
    /** Concentrate flipping sites in the hottest regions. */
    bool hotFlips = false;

    /** Structure seed (PCs, behaviours, weights all derive from it). */
    std::uint64_t seed = 1;

    /**
     * Fail-fast validation: config_invalid Error naming the offending
     * knob (empty program, non-positive gaps/trip counts, fractions
     * outside [0, 1] or a behaviour mixture summing past one).
     * buildProgram() raises it before constructing anything.
     */
    Result<void> validate() const;
};

/** Build a program from @p config; deterministic in config.seed. */
SyntheticProgram buildProgram(const ProgramConfig &config,
                              InputSet input = InputSet::Ref);

} // namespace bpsim

#endif // BPSIM_WORKLOAD_SYNTHETIC_PROGRAM_HH
