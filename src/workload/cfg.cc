#include "workload/cfg.hh"

namespace bpsim
{

std::size_t
countSites(const Block &block)
{
    std::size_t n = 0;
    for (const auto &item : block.items) {
        if (std::holds_alternative<BranchSite>(item)) {
            ++n;
        } else {
            const auto &loop = std::get<Loop>(item);
            n += 1 + countSites(*loop.body);
        }
    }
    return n;
}

} // namespace bpsim
