#include "workload/behavior.hh"

#include "support/bits.hh"
#include "support/logging.hh"

namespace bpsim
{

bool
LoopBehavior::outcome(const BehaviorContext &ctx)
{
    if (!active) {
        const double mean = meanTrip[static_cast<unsigned>(ctx.input)];
        remaining = fixedTrip
                        ? static_cast<std::uint64_t>(mean + 0.5)
                        : ctx.rng.geometric(mean);
        if (remaining == 0)
            remaining = 1;
        active = true;
    }
    if (remaining > 0) {
        --remaining;
        if (remaining > 0)
            return true;
    }
    // Final iteration: fall out of the loop.
    active = false;
    return false;
}

void
LoopBehavior::reset()
{
    remaining = 0;
    active = false;
}

PatternBehavior::PatternBehavior(std::vector<bool> pattern)
    : pattern(std::move(pattern))
{
    bpsim_assert(!this->pattern.empty(), "empty pattern");
}

bool
PatternBehavior::outcome(const BehaviorContext &)
{
    const bool taken = pattern[position];
    position = (position + 1) % pattern.size();
    return taken;
}

bool
CorrelatedBehavior::outcome(const BehaviorContext &ctx)
{
    if (noise > 0.0 && ctx.rng.chance(noise))
        return ctx.rng.chance(0.5);
    const std::uint64_t bits =
        (ctx.semanticHistory & semanticMask) ^
        ((ctx.globalHistory & globalMask) << 32);
    const bool parity = (__builtin_popcountll(bits) & 1) != 0;
    return parity ^ invert[static_cast<unsigned>(ctx.input)];
}

bool
PhaseBehavior::outcome(const BehaviorContext &ctx)
{
    bpsim_assert(period > 0, "zero phase period");
    const bool in_phase_a = (executions / period) % 2 == 0;
    ++executions;
    return ctx.rng.chance(in_phase_a ? pA : pB);
}

} // namespace bpsim
