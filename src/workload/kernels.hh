/**
 * @file
 * Hand-built micro-kernel workloads with analytically known branch
 * behaviour.
 *
 * Unlike the statistically calibrated SPECINT95 stand-ins, each
 * kernel here is a small, exact control-flow structure whose
 * prediction difficulty is known in closed form — counted nested
 * loops, pointer-chase loops, interpreter dispatch chains, random
 * comparison trees. They serve as ground-truth stimuli for validating
 * predictors, as teaching examples, and as fixed points the test
 * suite can assert exact expectations against.
 */

#ifndef BPSIM_WORKLOAD_KERNELS_HH
#define BPSIM_WORKLOAD_KERNELS_HH

#include <string>
#include <vector>

#include "workload/synthetic_program.hh"

namespace bpsim
{

/** The available micro-kernels. */
enum class Kernel
{
    /**
     * Dense matrix sweep: counted nested loops (32 rows x 16 cols)
     * with a boundary check in the body. Loop exits are periodic, so
     * history predictors approach 100% while bimodal pays 1/trip per
     * loop level.
     */
    MatrixSweep,

    /**
     * Linked-list traversal: a data-dependent loop (geometric trip
     * count, mean 24) guarded by a null check that almost never
     * fires. Loop exits are memoryless: no predictor beats
     * 1 - 1/trip on the control.
     */
    ListTraversal,

    /**
     * Interpreter dispatch: a chain of eight opcode-compare branches
     * per iteration, where branch i is taken with the conditional
     * probability that opcode i matches given the earlier ones did
     * not. Dispatch chains resist every scheme (the hard case the
     * paper's go program is full of).
     */
    InterpreterDispatch,

    /**
     * Quicksort partition: a counted scan loop whose body contains a
     * 50/50 random comparison. The comparison is irreducible noise;
     * everything else is perfectly predictable.
     */
    QuicksortPartition,

    /**
     * Finite state machine: branches whose outcomes are exact
     * functions of the recent semantic history (zero noise). A
     * history predictor with enough capacity is perfect; bimodal is
     * near 50%.
     */
    StateMachine,
};

/** All kernels in declaration order. */
const std::vector<Kernel> &allKernels();

/** Kernel name ("matrix_sweep", ...). */
std::string kernelName(Kernel kernel);

/** Parse a kernel name; fatal() on an unknown one. */
Kernel kernelFromName(const std::string &name);

/** Build the kernel as a runnable program. */
SyntheticProgram makeKernel(Kernel kernel, std::uint64_t seed = 7);

} // namespace bpsim

#endif // BPSIM_WORKLOAD_KERNELS_HH
