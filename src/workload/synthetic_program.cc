#include "workload/synthetic_program.hh"

#include <algorithm>
#include <cmath>

#include "support/bits.hh"
#include "support/logging.hh"

namespace bpsim
{

SyntheticProgram::SyntheticProgram(std::string name,
                                   std::vector<Region> regions,
                                   std::uint64_t seed, InputSet input,
                                   unsigned mean_schedule_len,
                                   double mean_schedule_repeats)
    : programName(std::move(name)), regions(std::move(regions)),
      seed(seed), currentInput(input), execRng(0),
      meanScheduleLen(mean_schedule_len),
      meanScheduleRepeats(mean_schedule_repeats)
{
    bpsim_assert(mean_schedule_len >= 1, "empty schedule");
    bpsim_assert(mean_schedule_repeats >= 1.0, "bad repeat mean");
    bpsim_assert(!this->regions.empty(), "program with no regions");
    reset();
}

void
SyntheticProgram::rebuildSampler()
{
    std::vector<double> weights;
    weights.reserve(regions.size());
    for (const auto &region : regions)
        weights.push_back(
            region.weight[static_cast<unsigned>(currentInput)]);
    regionSampler = std::make_unique<Rng::Discrete>(weights);
    bpsim_assert(!regionSampler->empty(),
                 "no region is executable under this input");
}

void
SyntheticProgram::reset()
{
    execRng =
        Rng(mix64(seed ^ (0x9e37u + static_cast<std::uint64_t>(
                                        currentInput))));
    globalHistory = 0;
    semanticHistory = 0;
    stack.clear();
    schedule.clear();
    schedulePos = 0;
    repeatsLeft = 0;
    rebuildSampler();
    for (auto &region : regions) {
        forEachSite(region.body,
                    [](BranchSite &site) { site.behavior->reset(); });
    }
}

void
SyntheticProgram::setInput(InputSet input)
{
    currentInput = input;
    reset();
}

std::size_t
SyntheticProgram::staticBranchCount() const
{
    std::size_t n = 0;
    for (const auto &region : regions)
        n += countSites(region.body);
    return n;
}

Count
SyntheticProgram::staticInstructionEstimate() const
{
    Count total = 0;
    for (auto &region : const_cast<std::vector<Region> &>(regions)) {
        forEachSite(region.body, [&total](BranchSite &site) {
            total += site.gapMean;
        });
    }
    return total;
}

void
SyntheticProgram::emit(BranchSite &site, BranchRecord &record)
{
    const BehaviorContext ctx{execRng, globalHistory, semanticHistory,
                              currentInput};
    const bool taken = site.behavior->outcome(ctx);

    record.pc = site.pc;
    record.taken = taken;
    // Jitter the gap by -1/0/+1 around the mean, floor at 1.
    const std::uint32_t jitter =
        static_cast<std::uint32_t>(execRng.nextBelow(3));
    const std::uint32_t gap = site.gapMean + jitter;
    record.instGap = gap > 1 ? gap - 1 : 1;

    globalHistory = (globalHistory << 1) | (taken ? 1 : 0);
    if (site.semantic)
        semanticHistory = (semanticHistory << 1) | (taken ? 1 : 0);
}

bool
SyntheticProgram::next(BranchRecord &record)
{
    for (;;) {
        if (stack.empty()) {
            // Follow the current region schedule; redraw it when its
            // phase (repeat budget) is exhausted. The repetition is
            // what gives the global history its position-identifying
            // power.
            if (schedulePos >= schedule.size()) {
                schedulePos = 0;
                if (repeatsLeft == 0) {
                    const std::size_t len =
                        1 + execRng.nextBelow(2 * meanScheduleLen - 1);
                    schedule.clear();
                    for (std::size_t i = 0; i < len; ++i)
                        schedule.push_back(
                            regionSampler->sample(execRng));
                    repeatsLeft =
                        execRng.geometric(meanScheduleRepeats);
                }
                --repeatsLeft;
            }
            const std::size_t pick = schedule[schedulePos++];
            stack.push_back({&regions[pick].body, 0, nullptr, 0});
        }

        Frame &frame = stack.back();

        if (frame.index < frame.block->items.size()) {
            CfgItem &item = frame.block->items[frame.index];
            if (auto *site = std::get_if<BranchSite>(&item)) {
                ++frame.index;
                emit(*site, record);
                return true;
            }
            // Loop entry: evaluate the control at the top.
            auto &loop = std::get<Loop>(item);
            emit(loop.control, record);
            if (record.taken) {
                stack.push_back({loop.body.get(), 0, &loop, 0});
            } else {
                ++frame.index;
            }
            return true;
        }

        // Block exhausted.
        if (frame.loop != nullptr) {
            // End of a loop body: re-evaluate the control.
            Loop &loop = *frame.loop;
            ++frame.iterations;
            emit(loop.control, record);
            if (record.taken && frame.iterations < loop.maxIterations) {
                frame.index = 0;
            } else {
                stack.pop_back();
                bpsim_assert(!stack.empty(), "loop body without parent");
                ++stack.back().index;
            }
            return true;
        }

        // Region finished; pick a new one on the next iteration.
        stack.pop_back();
    }
}

namespace
{

/** Transient state shared by the recursive builder helpers. */
struct BuildState
{
    const ProgramConfig &config;
    Rng rng;
    Addr nextPc;
    std::size_t sitesBuilt = 0;
    std::size_t flipsAssigned = 0;

    explicit BuildState(const ProgramConfig &config)
        : config(config), rng(mix64(config.seed ^ 0xb5157ULL)),
          nextPc(0x120000000ULL)
    {}
};

/** Advance the PC cursor past @p instructions instructions. */
Addr
allocatePc(BuildState &state, std::uint32_t instructions)
{
    state.nextPc += instructions * instructionBytes;
    return state.nextPc - instructionBytes;
}

/** Draw a bias magnitude uniformly within [lo, hi). */
double
drawBias(Rng &rng, double lo, double hi)
{
    return lo + rng.nextDouble() * (hi - lo);
}

/**
 * Convert a bias magnitude into a taken probability, choosing the
 * majority direction with the program's taken-majority skew.
 */
double
orientBias(BuildState &state, double bias)
{
    return state.rng.chance(state.config.takenMajorityFrac)
               ? bias
               : 1.0 - bias;
}

std::unique_ptr<BranchBehavior>
makePlainBehavior(BuildState &state, bool hot_region, bool in_loop,
                  bool &semantic_out)
{
    const ProgramConfig &cfg = state.config;
    Rng &rng = state.rng;

    // Decide whether this site flips its majority between inputs. When
    // hotFlips is set, flips only land in hot regions so they carry
    // dynamic weight (the perl/m88ksim failure mode of §5.1).
    const bool may_flip = !cfg.hotFlips || hot_region;
    const bool flips =
        may_flip &&
        rng.chance(cfg.flipFraction * (cfg.hotFlips && hot_region
                                           ? 4.0
                                           : 1.0));
    const bool drifts = !flips && rng.chance(cfg.driftFraction);

    // Helpers shared between the in-loop fast path and the general
    // mixture below.
    const auto make_correlated = [&]() -> std::unique_ptr<BranchBehavior>
    {
        semantic_out = true;
        // Parity over 1-3 of the last 6 semantic outcomes — the
        // correlation channel flows through other data-dependent
        // branches. A minority of branches additionally reads one raw
        // global-history bit, making them sensitive to whether
        // statically predicted outcomes stay in the history register
        // (the paper's Table 4 shift experiment).
        const unsigned nbits =
            1 + static_cast<unsigned>(rng.nextBelow(3));
        std::uint64_t semantic_mask = 0;
        for (unsigned i = 0; i < nbits; ++i)
            semantic_mask |= std::uint64_t{1} << rng.nextBelow(4);
        std::uint64_t global_mask = 0;
        if (rng.chance(0.3))
            global_mask = std::uint64_t{1} << rng.nextBelow(8);
        const bool inv_train = rng.chance(0.5);
        const bool inv_ref = flips ? !inv_train : inv_train;
        const double noise = 0.01 + rng.nextDouble() * 0.06;
        return std::make_unique<CorrelatedBehavior>(
            semantic_mask, global_mask, inv_train, inv_ref, noise);
    };
    const auto make_pattern = [&]() -> std::unique_ptr<BranchBehavior>
    {
        semantic_out = true;
        const std::size_t len = 2 + rng.nextBelow(6);
        std::vector<bool> pattern(len);
        for (std::size_t i = 0; i < len; ++i)
            pattern[i] = rng.chance(0.5);
        return std::make_unique<PatternBehavior>(std::move(pattern));
    };

    // Pattern and correlated branches concentrate inside loop bodies:
    // there a short global history window contains the branch's own
    // recent outcomes and its neighbours', which is what makes such
    // branches history-predictable in real code.
    if (in_loop) {
        const double structured = cfg.fracPattern + cfg.fracCorrelated;
        if (structured > 0.0 &&
            rng.chance(std::min(0.4, 1.5 * structured))) {
            const double pattern_share =
                cfg.fracPattern / structured;
            return rng.chance(pattern_share) ? make_pattern()
                                             : make_correlated();
        }
    }

    const double u = rng.nextDouble();
    double edge = cfg.fracHighBias;
    if (u < edge) {
        // Mass concentrated near 1.0: half the class is effectively
        // always-one-direction (error checks, guards), the rest
        // quadratically close to 1, so the *sampled* bias of most of
        // these branches clears a 95% profiling cutoff.
        const double v = rng.nextDouble();
        const double magnitude = rng.chance(cfg.highBiasHardFrac)
                                     ? 0.9999
                                     : 1.0 - 0.04 * v * v;
        const double p = orientBias(state, magnitude);
        double p_ref = p;
        if (flips)
            p_ref = 1.0 - p;
        else if (drifts)
            p_ref = std::clamp(
                p + (rng.chance(0.5) ? 1 : -1) *
                        drawBias(rng, 0.05, 0.25),
                0.0, 1.0);
        return std::make_unique<BiasedBehavior>(p, p_ref);
    }
    edge += cfg.fracLowBias;
    if (u < edge) {
        semantic_out = true;
        const double p = orientBias(state, drawBias(rng, 0.50, 0.70));
        const double p_ref =
            flips ? 1.0 - p
                  : (drifts ? std::clamp(p + drawBias(rng, -0.15, 0.15),
                                         0.05, 0.95)
                            : p);
        return std::make_unique<BiasedBehavior>(p, p_ref);
    }
    edge += cfg.fracCorrelated;
    if (u < edge)
        return make_correlated();
    edge += cfg.fracPattern;
    if (u < edge)
        return make_pattern();
    edge += cfg.fracPhase;
    if (u < edge) {
        const double p_a = drawBias(rng, 0.05, 0.45);
        const double p_b = drawBias(rng, 0.55, 0.95);
        const std::uint64_t period = 64 + rng.nextBelow(1024);
        return std::make_unique<PhaseBehavior>(p_a, p_b, period);
    }
    // Remainder: medium-bias Bernoulli.
    const double p =
        orientBias(state, drawBias(rng, cfg.medBiasLo, cfg.medBiasHi));
    const double p_ref =
        flips ? 1.0 - p
              : (drifts ? std::clamp(p + drawBias(rng, -0.20, 0.20),
                                     0.05, 0.999)
                        : p);
    if (flips)
        ++state.flipsAssigned;
    return std::make_unique<BiasedBehavior>(p, p_ref);
}

BranchSite
makeSite(BuildState &state, std::unique_ptr<BranchBehavior> behavior)
{
    BranchSite site;
    const double avg = state.config.avgGap;
    // Spread gap means around the average (0.5x .. 1.5x).
    const double factor = 0.5 + state.rng.nextDouble();
    site.gapMean = std::max<std::uint32_t>(
        1, static_cast<std::uint32_t>(std::lround(avg * factor)));
    site.pc = allocatePc(state, site.gapMean);
    site.behavior = std::move(behavior);
    ++state.sitesBuilt;
    return site;
}

/** Build a block with ~@p plain_sites sites; may nest loops. */
Block
buildBlock(BuildState &state, unsigned plain_sites, bool hot_region,
           unsigned depth)
{
    const bool in_loop = depth > 0;
    Block block;
    const ProgramConfig &cfg = state.config;
    for (unsigned i = 0; i < plain_sites; ++i) {
        const bool make_loop =
            depth < 3 && state.rng.chance(cfg.loopDensity);
        if (make_loop) {
            Loop loop;
            const bool fixed = state.rng.chance(cfg.fixedTripFrac);
            // Counted loops stay short enough for a history register
            // to span; data-dependent loops spread around the mean.
            const double trip =
                fixed ? 3.0 + static_cast<double>(
                                  state.rng.nextBelow(10))
                      : std::max(2.0, cfg.meanTripCount *
                                          (0.5 +
                                           state.rng.nextDouble()));
            // Mild per-input trip drift for data-dependent loops.
            const double trip_ref =
                fixed ? trip
                      : std::max(2.0,
                                 trip * (0.9 +
                                         0.2 * state.rng.nextDouble()));
            loop.control = makeSite(
                state,
                std::make_unique<LoopBehavior>(trip, trip_ref, fixed));
            const bool nests =
                depth < 2 && state.rng.chance(cfg.nestProbability);
            const unsigned body_sites =
                state.rng.chance(cfg.emptyLoopFrac)
                    ? 0
                    : 1 + static_cast<unsigned>(state.rng.nextBelow(4));
            loop.body = std::make_unique<Block>(buildBlock(
                state, body_sites, hot_region, depth + (nests ? 1 : 2)));
            block.items.emplace_back(std::move(loop));
        } else {
            bool semantic = false;
            BranchSite site = makeSite(
                state,
                makePlainBehavior(state, hot_region, in_loop,
                                  semantic));
            site.semantic = semantic;
            block.items.emplace_back(std::move(site));
        }
    }
    return block;
}

} // namespace

Result<void>
ProgramConfig::validate() const
{
    if (staticBranches < 4) {
        return Error(ErrorCode::ConfigInvalid,
                     "staticBranches must be >= 4, got " +
                         std::to_string(staticBranches));
    }
    if (meanRegionSites < 1) {
        return Error(ErrorCode::ConfigInvalid,
                     "meanRegionSites must be >= 1 (empty regions)");
    }
    if (!(avgGap > 0.0)) {
        return Error(ErrorCode::ConfigInvalid,
                     "avgGap must be positive, got " +
                         std::to_string(avgGap));
    }
    if (zipfExponent < 0.0) {
        return Error(ErrorCode::ConfigInvalid,
                     "zipfExponent must be non-negative, got " +
                         std::to_string(zipfExponent));
    }
    struct Fraction
    {
        const char *name;
        double value;
    };
    const Fraction fractions[] = {
        {"fracHighBias", fracHighBias},
        {"fracLowBias", fracLowBias},
        {"fracCorrelated", fracCorrelated},
        {"fracPattern", fracPattern},
        {"fracPhase", fracPhase},
        {"highBiasHardFrac", highBiasHardFrac},
        {"takenMajorityFrac", takenMajorityFrac},
        {"fixedTripFrac", fixedTripFrac},
        {"loopDensity", loopDensity},
        {"nestProbability", nestProbability},
        {"emptyLoopFrac", emptyLoopFrac},
        {"trainCoverage", trainCoverage},
        {"flipFraction", flipFraction},
        {"driftFraction", driftFraction},
    };
    for (const Fraction &fraction : fractions) {
        if (fraction.value < 0.0 || fraction.value > 1.0) {
            return Error(ErrorCode::ConfigInvalid,
                         std::string(fraction.name) +
                             " must be in [0, 1], got " +
                             std::to_string(fraction.value));
        }
    }
    const double mixture = fracHighBias + fracLowBias +
                           fracCorrelated + fracPattern + fracPhase;
    if (mixture > 1.0) {
        return Error(ErrorCode::ConfigInvalid,
                     "behaviour mixture fractions sum to " +
                         std::to_string(mixture) + ", must be <= 1");
    }
    if (medBiasLo < 0.0 || medBiasHi > 1.0 || medBiasLo > medBiasHi) {
        return Error(ErrorCode::ConfigInvalid,
                     "medium-bias range [" + std::to_string(medBiasLo) +
                         ", " + std::to_string(medBiasHi) +
                         ") must be ordered within [0, 1]");
    }
    if (meanScheduleLen < 1) {
        return Error(ErrorCode::ConfigInvalid,
                     "meanScheduleLen must be >= 1");
    }
    if (meanScheduleRepeats < 1.0) {
        return Error(ErrorCode::ConfigInvalid,
                     "meanScheduleRepeats must be >= 1, got " +
                         std::to_string(meanScheduleRepeats));
    }
    if (!(meanTripCount > 0.0)) {
        return Error(ErrorCode::ConfigInvalid,
                     "meanTripCount must be positive, got " +
                         std::to_string(meanTripCount));
    }
    return okResult();
}

SyntheticProgram
buildProgram(const ProgramConfig &config, InputSet input)
{
    if (Result<void> valid = config.validate(); !valid.ok())
        raise(std::move(valid.error()));

    BuildState state(config);
    std::vector<Region> regions;

    // Build regions until the static branch budget is spent. Loop
    // controls and loop bodies count against the budget, so the final
    // site count lands close to config.staticBranches.
    const std::size_t rough_regions = std::max<std::size_t>(
        1, config.staticBranches / config.meanRegionSites);
    while (state.sitesBuilt < config.staticBranches) {
        const bool hot_region = regions.size() < std::max<std::size_t>(
                                    1, rough_regions / 16);
        const unsigned sites =
            1 + static_cast<unsigned>(state.rng.nextBelow(
                    2 * config.meanRegionSites - 1));
        Region region;
        region.body = buildBlock(state, sites, hot_region, 0);
        regions.push_back(std::move(region));
    }

    // Region selection frequency follows a Zipf law over the region
    // index, so low-index regions are the hot ones.
    Rng::Zipf zipf(regions.size(), config.zipfExponent);
    for (std::size_t r = 0; r < regions.size(); ++r) {
        const double w = zipf.mass(r);
        regions[r].weight[static_cast<unsigned>(InputSet::Ref)] = w;
        regions[r].weight[static_cast<unsigned>(InputSet::Train)] = w;
    }
    const std::size_t region_count = regions.size();

    // Gate a fraction of the colder regions out of the train input to
    // model imperfect profile coverage (Table 5 "seen with train").
    const std::size_t protect = region_count / 4;
    for (std::size_t r = protect; r < region_count; ++r) {
        if (state.rng.chance(1.0 - config.trainCoverage)) {
            // Scale the miss probability so the overall static
            // coverage lands near trainCoverage.
            regions[r].weight[static_cast<unsigned>(InputSet::Train)] =
                0.0;
        }
    }

    return SyntheticProgram(config.name, std::move(regions),
                            config.seed, input,
                            config.meanScheduleLen,
                            config.meanScheduleRepeats);
}

} // namespace bpsim
