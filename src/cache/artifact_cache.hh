/**
 * @file
 * Content-addressed on-disk cache of materialized sweep artifacts.
 *
 * Two artifact kinds are cached under one directory:
 *
 *  - Replay buffers ("replay-<hash>.bprc"): the flat PC + packed
 *    gap/outcome columns a ReplayBuffer holds. Loaded back via a
 *    read-only mmap and wrapped with ReplayBuffer::fromColumns(), so
 *    N worker processes on one host replay a single physical copy of
 *    the trace data instead of each materializing its own.
 *
 *  - Profile phases ("profile-<hash>.bppf"): the per-branch counters
 *    of one profile simulation plus its simulated-branch total. Small
 *    files, copied into a ProfileDb on load.
 *
 * Keys are deterministic strings built by artifact-key helpers from
 * the same identity fields the checkpoint fingerprints use (program
 * name + seed, input set, branch budgets, predictor identity).
 * Dispatch/SIMD level and thread count are deliberately excluded —
 * results are bit-identical across them, so cache hits cross SIMD
 * levels and process topologies. File names are the FNV-1a hash of
 * the key; the full key is stored in the file and verified on load,
 * so a hash collision degrades to a miss, never to wrong data.
 *
 * Every file is written through AtomicFile (temp + rename), making
 * concurrent writers from racing shard processes benign: both write
 * identical bytes for a given key and the last rename wins. Loads
 * validate structure (magic, version, sizes, key, header checksum
 * over header + key bytes) but deliberately do not checksum the
 * payload: a warm start must cost ~zero, and the payload is only
 * ever produced by the atomic writer. Corrupt or truncated files
 * surface as structured io_failure errors the runner converts into a
 * cache_corrupt journal event and a fallback re-materialization —
 * cache damage never aborts a sweep.
 *
 * The on-disk byte order is the host's (little-endian on every
 * supported target); cache directories are per-host scratch space,
 * not portable archives.
 */

#ifndef BPSIM_CACHE_ARTIFACT_CACHE_HH
#define BPSIM_CACHE_ARTIFACT_CACHE_HH

#include <cstddef>
#include <mutex>
#include <string>

#include "profile/profile_db.hh"
#include "support/error.hh"
#include "support/types.hh"
#include "trace/replay_buffer.hh"

namespace bpsim
{

/**
 * Key of a materialized replay buffer: program identity (name +
 * seed), input set and record budget. The budget is part of the key
 * because the columns themselves depend on it.
 */
std::string replayArtifactKey(const std::string &program_name,
                              std::uint64_t program_seed,
                              unsigned input_set, Count records);

/**
 * Key of a profile phase: program identity, profile input set and
 * branch budget, and the predictor identity string ("kind:bytes" for
 * factory predictors, "custom:<key>" for keyed custom ones).
 */
std::string profileArtifactKey(const std::string &program_name,
                               std::uint64_t program_seed,
                               unsigned profile_input,
                               Count profile_branches,
                               const std::string &predictor_identity);

/** Counters accumulated across one cache instance's lifetime. */
struct ArtifactCacheStats
{
    Count replayHits = 0;
    Count replayMisses = 0;
    Count profileHits = 0;
    Count profileMisses = 0;
    /** Files present but structurally invalid (fell back to a miss
     * at the call site after a cache_corrupt event). */
    Count corrupt = 0;
    /** Replay payload bytes mapped in from cache hits (cumulative). */
    std::size_t mappedBytes = 0;
};

/**
 * One cache directory. Thread-safe: materialize tasks and profile
 * phases running on different workers load and store concurrently
 * (only the stats counters share state).
 */
class ArtifactCache
{
  public:
    explicit ArtifactCache(std::string directory);

    const std::string &directory() const { return dir; }

    struct ReplayLookup
    {
        bool hit = false;
        ReplayBuffer buffer;
    };

    /**
     * Look up the replay buffer for @p key. ok(hit=false) when the
     * file does not exist; ok(hit=true) with a mapped buffer on a
     * valid hit; io_failure when a file exists but is corrupt,
     * truncated or unreadable (the caller re-materializes). Hits the
     * cache_map fault point.
     */
    Result<ReplayLookup> loadReplay(const std::string &key);

    /**
     * Persist @p buffer under @p key (atomic write; racing writers
     * of the same key are benign). Hits the cache_write fault point.
     */
    Result<void> storeReplay(const std::string &key,
                             const ReplayBuffer &buffer);

    struct ProfileLookup
    {
        bool hit = false;
        ProfileDb profile;
        Count simulatedBranches = 0;
    };

    /** Profile-phase analogue of loadReplay(). */
    Result<ProfileLookup> loadProfile(const std::string &key);

    /** Profile-phase analogue of storeReplay(). */
    Result<void> storeProfile(const std::string &key,
                              const ProfileDb &profile,
                              Count simulated_branches);

    /** The file @p key's replay artifact lives in (exists or not). */
    std::string replayPath(const std::string &key) const;

    /** The file @p key's profile artifact lives in. */
    std::string profilePath(const std::string &key) const;

    ArtifactCacheStats stats() const;

  private:
    Result<void> ensureDirectory();

    void
    count(Count ArtifactCacheStats::*counter, Count delta = 1)
    {
        std::lock_guard<std::mutex> guard(lock);
        tally.*counter += delta;
    }

    std::string dir;
    bool dirReady = false;

    mutable std::mutex lock;
    ArtifactCacheStats tally;
};

} // namespace bpsim

#endif // BPSIM_CACHE_ARTIFACT_CACHE_HH
