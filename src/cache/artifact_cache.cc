#include "cache/artifact_cache.hh"

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <memory>
#include <utility>
#include <vector>

#include <unistd.h>

#include "support/atomic_file.hh"
#include "support/bits.hh"
#include "support/fault.hh"
#include "support/mmap_file.hh"

namespace bpsim
{

namespace
{

// Both artifact kinds share one 64-byte header layout; the magic
// distinguishes them. headerHash covers the header bytes (with the
// hash field zeroed) plus the key string, so any flipped header or
// key byte is detected; the payload is structurally validated via
// the size fields but not checksummed (see the file comment in the
// header).
struct FileHeader
{
    char magic[8];
    std::uint32_t version;
    std::uint32_t reserved;
    std::uint64_t keyBytes;
    std::uint64_t records;
    std::uint64_t extra; // instructions (replay) / simulated (profile)
    std::uint64_t payloadOffset;
    std::uint64_t fileBytes;
    std::uint64_t headerHash;
};
static_assert(sizeof(FileHeader) == 64, "cache header must be 64 bytes");

constexpr char replayMagic[8] = {'B', 'P', 'R', 'C', 0, 'v', '1', 0};
constexpr char profileMagic[8] = {'B', 'P', 'P', 'F', 0, 'v', '1', 0};
constexpr std::uint32_t formatVersion = 1;

struct ProfileEntry
{
    std::uint64_t pc;
    std::uint64_t executed;
    std::uint64_t taken;
    std::uint64_t predicted;
    std::uint64_t correct;
    std::uint64_t collisions;
};
static_assert(sizeof(ProfileEntry) == 48, "profile entry must be packed");

std::uint64_t
alignUp64(std::uint64_t offset)
{
    return (offset + 63) & ~std::uint64_t{63};
}

std::uint64_t
headerChecksum(const FileHeader &header, const std::string &key)
{
    FileHeader copy = header;
    copy.headerHash = 0;
    std::string bytes(reinterpret_cast<const char *>(&copy),
                      sizeof(copy));
    bytes += key;
    return fnv1a64(bytes);
}

FileHeader
makeHeader(const char (&magic)[8], const std::string &key,
           std::uint64_t records, std::uint64_t extra,
           std::uint64_t payload_bytes)
{
    FileHeader header = {};
    std::memcpy(header.magic, magic, sizeof(header.magic));
    header.version = formatVersion;
    header.keyBytes = key.size();
    header.records = records;
    header.extra = extra;
    header.payloadOffset = alignUp64(sizeof(FileHeader) + key.size());
    header.fileBytes = header.payloadOffset + payload_bytes;
    header.headerHash = headerChecksum(header, key);
    return header;
}

Error
corruptError(const std::string &what, const std::string &path)
{
    return Error(ErrorCode::IoFailure, "cache file " + what)
        .withContext("path " + path);
}

/**
 * Validate a mapped artifact file against the expected magic and
 * key. Returns the header on success (pointing into the mapping).
 */
Result<const FileHeader *>
validateArtifact(const MmapFile &file, const char (&magic)[8],
                 const std::string &key,
                 std::uint64_t payload_bytes_per_record)
{
    if (file.size() < sizeof(FileHeader))
        return corruptError("shorter than its header", file.path());
    const auto *header =
        reinterpret_cast<const FileHeader *>(file.data());
    if (std::memcmp(header->magic, magic, sizeof(header->magic)) != 0)
        return corruptError("has the wrong magic", file.path());
    if (header->version != formatVersion)
        return corruptError("has unsupported version " +
                                std::to_string(header->version),
                            file.path());
    if (header->keyBytes != key.size() ||
        sizeof(FileHeader) + header->keyBytes > file.size())
        return corruptError("key length mismatch", file.path());
    const char *stored_key =
        static_cast<const char *>(file.data()) + sizeof(FileHeader);
    if (std::memcmp(stored_key, key.data(), key.size()) != 0)
        return corruptError("key mismatch (hash collision?)",
                            file.path());
    if (header->headerHash != headerChecksum(*header, key))
        return corruptError("header checksum mismatch", file.path());
    const std::uint64_t expected_offset =
        alignUp64(sizeof(FileHeader) + key.size());
    if (header->payloadOffset != expected_offset)
        return corruptError("payload offset mismatch", file.path());
    const std::uint64_t expected_bytes =
        header->payloadOffset +
        header->records * payload_bytes_per_record;
    if (header->fileBytes != expected_bytes ||
        file.size() != expected_bytes)
        return corruptError("truncated or oversized payload",
                            file.path());
    return header;
}

Result<void>
writeArtifact(const std::string &path, const FileHeader &header,
              const std::string &key,
              const std::vector<std::pair<const void *, std::size_t>>
                  &payload_chunks)
{
    AtomicFile out(path);
    if (!out.ok())
        return Error(ErrorCode::IoFailure,
                     "cannot open cache temp file")
            .withContext("path " + path);

    bool wrote = std::fwrite(&header, sizeof(header), 1,
                             out.stream()) == 1;
    if (wrote && !key.empty())
        wrote = std::fwrite(key.data(), 1, key.size(),
                            out.stream()) == key.size();
    const std::size_t pad =
        header.payloadOffset - sizeof(header) - key.size();
    if (wrote && pad > 0) {
        const char zeros[64] = {};
        wrote = std::fwrite(zeros, 1, pad, out.stream()) == pad;
    }
    for (const auto &[data, bytes] : payload_chunks) {
        if (!wrote)
            break;
        if (bytes > 0)
            wrote = std::fwrite(data, 1, bytes, out.stream()) == bytes;
    }
    if (!wrote)
        return Error(ErrorCode::IoFailure,
                     "short write to cache temp file")
            .withContext("path " + path);
    return out.commit();
}

std::string
hashedName(const char *prefix, const std::string &key,
           const char *suffix)
{
    char hex[17];
    std::snprintf(hex, sizeof(hex), "%016llx",
                  static_cast<unsigned long long>(fnv1a64(key)));
    return std::string(prefix) + hex + suffix;
}

} // namespace

std::string
replayArtifactKey(const std::string &program_name,
                  std::uint64_t program_seed, unsigned input_set,
                  Count records)
{
    return "replay-v1|" + program_name + "|" +
           std::to_string(program_seed) + "|in" +
           std::to_string(input_set) + "|" + std::to_string(records);
}

std::string
profileArtifactKey(const std::string &program_name,
                   std::uint64_t program_seed, unsigned profile_input,
                   Count profile_branches,
                   const std::string &predictor_identity)
{
    return "profile-v1|" + program_name + "|" +
           std::to_string(program_seed) + "|in" +
           std::to_string(profile_input) + "|" +
           std::to_string(profile_branches) + "|" + predictor_identity;
}

ArtifactCache::ArtifactCache(std::string directory)
    : dir(std::move(directory))
{
}

std::string
ArtifactCache::replayPath(const std::string &key) const
{
    return dir + "/" + hashedName("replay-", key, ".bprc");
}

std::string
ArtifactCache::profilePath(const std::string &key) const
{
    return dir + "/" + hashedName("profile-", key, ".bppf");
}

Result<void>
ArtifactCache::ensureDirectory()
{
    std::lock_guard<std::mutex> guard(lock);
    if (dirReady)
        return okResult();
    std::error_code ec;
    std::filesystem::create_directories(dir, ec);
    if (ec)
        return Error(ErrorCode::IoFailure,
                     "cannot create cache directory: " + ec.message())
            .withContext("path " + dir);
    dirReady = true;
    return okResult();
}

Result<ArtifactCache::ReplayLookup>
ArtifactCache::loadReplay(const std::string &key)
{
    ReplayLookup lookup;
    const std::string path = replayPath(key);
    if (::access(path.c_str(), F_OK) != 0) {
        count(&ArtifactCacheStats::replayMisses);
        return lookup;
    }
    try {
        faultPoint(fault_points::cacheMap, key);
    } catch (const ErrorException &e) {
        count(&ArtifactCacheStats::corrupt);
        return e.error();
    }

    Result<MmapFile> mapped = MmapFile::openReadOnly(path);
    if (!mapped.ok()) {
        count(&ArtifactCacheStats::corrupt);
        return mapped.error();
    }
    auto file = std::make_shared<MmapFile>(std::move(mapped.value()));
    Result<const FileHeader *> header = validateArtifact(
        *file, replayMagic, key, ReplayBuffer::bytesPerBranch);
    if (!header.ok()) {
        count(&ArtifactCacheStats::corrupt);
        return header.error();
    }

    const Count records = header.value()->records;
    const char *base = static_cast<const char *>(file->data());
    const auto *pc_column = reinterpret_cast<const Addr *>(
        base + header.value()->payloadOffset);
    const auto *packed_column = reinterpret_cast<const std::uint32_t *>(
        base + header.value()->payloadOffset + records * sizeof(Addr));
    // The aliasing shared_ptr keeps the mapping alive for as long as
    // any copy of the buffer exists.
    lookup.buffer = ReplayBuffer::fromColumns(
        pc_column, packed_column, records, header.value()->extra,
        std::shared_ptr<const void>(file, file->data()));
    lookup.hit = true;

    {
        std::lock_guard<std::mutex> guard(lock);
        ++tally.replayHits;
        tally.mappedBytes += records * ReplayBuffer::bytesPerBranch;
    }
    return lookup;
}

Result<void>
ArtifactCache::storeReplay(const std::string &key,
                           const ReplayBuffer &buffer)
{
    try {
        faultPoint(fault_points::cacheWrite, key);
    } catch (const ErrorException &e) {
        return e.error();
    }
    if (Result<void> made = ensureDirectory(); !made.ok())
        return made.error();

    const FileHeader header =
        makeHeader(replayMagic, key, buffer.size(),
                   buffer.instructionCount(),
                   buffer.size() * ReplayBuffer::bytesPerBranch);
    return writeArtifact(
        replayPath(key), header, key,
        {{buffer.pcData(), buffer.size() * sizeof(Addr)},
         {buffer.packedData(),
          buffer.size() * sizeof(std::uint32_t)}});
}

Result<ArtifactCache::ProfileLookup>
ArtifactCache::loadProfile(const std::string &key)
{
    ProfileLookup lookup;
    const std::string path = profilePath(key);
    if (::access(path.c_str(), F_OK) != 0) {
        count(&ArtifactCacheStats::profileMisses);
        return lookup;
    }
    try {
        faultPoint(fault_points::cacheMap, key);
    } catch (const ErrorException &e) {
        count(&ArtifactCacheStats::corrupt);
        return e.error();
    }

    Result<MmapFile> mapped = MmapFile::openReadOnly(path);
    if (!mapped.ok()) {
        count(&ArtifactCacheStats::corrupt);
        return mapped.error();
    }
    Result<const FileHeader *> header = validateArtifact(
        mapped.value(), profileMagic, key, sizeof(ProfileEntry));
    if (!header.ok()) {
        count(&ArtifactCacheStats::corrupt);
        return header.error();
    }

    const char *base =
        static_cast<const char *>(mapped.value().data()) +
        header.value()->payloadOffset;
    for (std::uint64_t i = 0; i < header.value()->records; ++i) {
        // The 64-byte payload alignment only guarantees the first
        // entry's alignment; copy each entry out rather than cast.
        ProfileEntry entry;
        std::memcpy(&entry, base + i * sizeof(ProfileEntry),
                    sizeof(entry));
        BranchProfile profile;
        profile.executed = entry.executed;
        profile.taken = entry.taken;
        profile.predicted = entry.predicted;
        profile.correct = entry.correct;
        profile.collisions = entry.collisions;
        lookup.profile.setEntry(entry.pc, profile);
    }
    lookup.simulatedBranches = header.value()->extra;
    lookup.hit = true;
    count(&ArtifactCacheStats::profileHits);
    return lookup;
}

Result<void>
ArtifactCache::storeProfile(const std::string &key,
                            const ProfileDb &profile,
                            Count simulated_branches)
{
    try {
        faultPoint(fault_points::cacheWrite, key);
    } catch (const ErrorException &e) {
        return e.error();
    }
    if (Result<void> made = ensureDirectory(); !made.ok())
        return made.error();

    // Sort entries by PC so equal databases produce identical bytes
    // regardless of hash-map iteration order (racing shard writers
    // then write byte-identical files).
    std::vector<ProfileEntry> entries;
    entries.reserve(profile.size());
    for (const auto &[pc, record] : profile.entries())
        entries.push_back({pc, record.executed, record.taken,
                           record.predicted, record.correct,
                           record.collisions});
    std::sort(entries.begin(), entries.end(),
              [](const ProfileEntry &a, const ProfileEntry &b) {
                  return a.pc < b.pc;
              });

    const FileHeader header =
        makeHeader(profileMagic, key, entries.size(),
                   simulated_branches,
                   entries.size() * sizeof(ProfileEntry));
    return writeArtifact(
        profilePath(key), header, key,
        {{entries.data(), entries.size() * sizeof(ProfileEntry)}});
}

ArtifactCacheStats
ArtifactCache::stats() const
{
    std::lock_guard<std::mutex> guard(lock);
    return tally;
}

} // namespace bpsim
