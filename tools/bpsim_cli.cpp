/**
 * @file
 * The bpsim command-line simulator: run any predictor over any
 * workload or trace, with or without profile-directed static
 * prediction, and get either a human-readable report or a CSV row.
 *
 * Subcommands:
 *
 *   bpsim_cli run    [options]  one simulation
 *   bpsim_cli sweep  [options]  size sweep (comma-separated --sizes)
 *   bpsim_cli merge  [options]  combine shard checkpoints into one
 *   bpsim_cli client [options]  submit a request to a bpsim_serve
 *   bpsim_cli list              available programs/predictors/schemes
 *
 * Examples:
 *   bpsim_cli run --program gcc --predictor 2bcgskew:8192 \
 *       --scheme static_acc --shift shift
 *   bpsim_cli run --trace gcc.trace --predictor gshare:4096 --csv
 *   bpsim_cli sweep --program go --predictor gshare \
 *       --sizes 1024,4096,16384 --scheme static_95
 *   bpsim_cli sweep --shard 1/2 --checkpoint s1.jsonl \
 *       --cache-dir /tmp/bpsim-cache ...   # one process per shard
 *   bpsim_cli merge --out merged.jsonl s1.jsonl s2.jsonl
 */

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "core/checkpoint.hh"
#include "core/cpi_model.hh"
#include "core/engine.hh"
#include "core/experiment.hh"
#include "core/runner.hh"
#include "core/simd.hh"
#include "obs/run_journal.hh"
#include "predictor/registry.hh"
#include "scenario/scenario.hh"
#include "service/client.hh"
#include "service/protocol.hh"
#include "support/args.hh"
#include "support/atomic_file.hh"
#include "support/error.hh"
#include "trace/trace_io.hh"
#include "workload/specint.hh"

using namespace bpsim;

namespace
{

/**
 * Journal wiring for one CLI invocation (--journal): opens the
 * journal when requested, brackets each simulation as a
 * cell_begin/cell_end pair carrying the same stat-snapshot fields the
 * matrix runner emits, and writes the JSONL + metrics files from
 * finish().
 */
class CliJournal
{
  public:
    CliJournal(std::string path, std::string label, bool simd)
        : path(std::move(path))
    {
        if (this->path.empty())
            return;
        const SimdLevel level = resolveSimdLevel(simd);
        journal =
            std::make_unique<obs::RunJournal>(std::move(label));
        journal->record(
            obs::EventKind::RunBegin, 0, journal->runLabel(),
            {obs::Field::u64("threads", 1),
             obs::Field::str("dispatch", simdLevelName(level)),
             obs::Field::u64("simd_width", simdWidth(level))});
    }

    CounterRegistry *
    counters()
    {
        return journal ? &journal->counters() : nullptr;
    }

    TimerRegistry *
    timers()
    {
        return journal ? &journal->timers() : nullptr;
    }

    void
    beginCell(const std::string &label)
    {
        if (journal == nullptr)
            return;
        journal->record(obs::EventKind::CellBegin, 0, label,
                        {obs::Field::u64("cell", cells)});
    }

    void
    endCell(const std::string &label, double seconds,
            std::size_t hints, const SimStats &stats)
    {
        if (journal == nullptr)
            return;
        const Count classified = stats.collisions.constructive +
                                 stats.collisions.destructive;
        const Count neutral = stats.collisions.collisions > classified
                                  ? stats.collisions.collisions -
                                        classified
                                  : 0;
        journal->record(
            obs::EventKind::CellEnd, 0, label,
            {obs::Field::u64("cell", cells),
             obs::Field::f64("seconds", seconds),
             obs::Field::u64("branches", stats.branches),
             obs::Field::u64("instructions", stats.instructions),
             obs::Field::u64("mispredictions", stats.mispredictions),
             obs::Field::f64("misp_ki", stats.mispKi()),
             obs::Field::u64("hints", hints),
             obs::Field::u64("static_predicted",
                             stats.staticPredicted),
             obs::Field::u64("lookups", stats.collisions.lookups),
             obs::Field::u64("collisions",
                             stats.collisions.collisions),
             obs::Field::u64("constructive",
                             stats.collisions.constructive),
             obs::Field::u64("destructive",
                             stats.collisions.destructive),
             obs::Field::u64("neutral", neutral)});
        ++cells;
    }

    void
    finish()
    {
        if (journal == nullptr)
            return;
        journal->record(
            obs::EventKind::RunEnd, 0, journal->runLabel(),
            {obs::Field::f64("seconds",
                             journal->secondsSinceStart()),
             obs::Field::u64("cells", cells)});
        journal->writeJsonl(path);
        const std::string metrics =
            obs::RunJournal::metricsPathFor(path);
        journal->writeMetrics(metrics);
        std::printf("journal: %s\nmetrics: %s\n", path.c_str(),
                    metrics.c_str());
    }

  private:
    std::string path;
    std::unique_ptr<obs::RunJournal> journal;
    Count cells = 0;
};

ShiftPolicy
shiftFromName(const std::string &name)
{
    if (name == "noshift")
        return ShiftPolicy::NoShift;
    if (name == "shift")
        return ShiftPolicy::ShiftOutcome;
    if (name == "shiftpred")
        return ShiftPolicy::ShiftPrediction;
    bpsim_fatal("unknown shift policy '", name,
                "' (expected noshift/shift/shiftpred)");
}

void
addCommonOptions(ArgParser &args)
{
    args.addOption("program", "gcc",
                   "synthetic workload to run "
                   "(go/gcc/perl/m88ksim/compress/ijpeg)");
    args.addOption("trace", "",
                   "binary trace file to replay instead of a "
                   "synthetic program (run only)");
    args.addOption("input", "ref", "input set: train or ref");
    args.addOption("branches", "2000000",
                   "branches in the measured window");
    args.addOption("warmup", "0", "unmeasured warmup branches");
    args.addOption("seed", "2000", "workload seed");
    args.addOption("scheme", "none",
                   "static selection scheme: none/static_95/"
                   "static_acc/static_fac/static_alias");
    args.addOption("shift", "noshift",
                   "history policy for static branches: "
                   "noshift/shift/shiftpred");
    args.addOption("profile-input", "",
                   "input profiled in phase 1 (default: same as "
                   "--input, i.e. self-trained)");
    args.addOption("profile-branches", "1000000",
                   "branches simulated in the profiling phase");
    args.addOption("cutoff", "0.95", "Static_95 bias cutoff");
    args.addFlag("filter-unstable",
                 "apply the cross-training merge filter (5% rule)");
    args.addFlag("csv", "emit one machine-readable CSV row per run");
    args.addFlag("simd",
                 "run the batched SIMD-dispatch kernels (default; "
                 "results are bit-identical either way)");
    args.addFlag("no-simd",
                 "run the record-at-a-time reference kernels "
                 "(overrides --simd; BPSIM_SIMD=off|scalar|avx2|neon "
                 "overrides both)");
    args.addOption("journal", "",
                   "write the structured run journal (JSONL) to this "
                   "path; the metrics summary lands next to it "
                   "(empty = disabled)");
}

/** Split a comma-separated name list ("go,gcc,perl"). */
std::vector<std::string>
splitNames(const std::string &list)
{
    std::vector<std::string> names;
    std::size_t pos = 0;
    while (pos <= list.size()) {
        const auto comma = list.find(',', pos);
        names.push_back(list.substr(
            pos, comma == std::string::npos ? std::string::npos
                                            : comma - pos));
        if (comma == std::string::npos)
            break;
        pos = comma + 1;
    }
    return names;
}

SyntheticProgram
makeProgram(const ArgParser &args)
{
    const InputSet input = args.get("input") == "train"
                               ? InputSet::Train
                               : InputSet::Ref;
    return makeSpecProgram(specProgramFromName(args.get("program")),
                           input, args.getUint("seed"));
}

void
printCsvHeaderOnce(bool &done)
{
    if (done)
        return;
    std::printf("workload,predictor,size_bytes,scheme,shift,hints,"
                "branches,instructions,mispredictions,misp_ki,"
                "accuracy_pct,static_share_pct,collisions,"
                "destructive,cpi\n");
    done = true;
}

void
report(const ArgParser &args, const std::string &workload,
       const std::string &predictor_name, std::size_t size_bytes,
       const std::string &scheme, const std::string &shift,
       std::size_t hints, const SimStats &stats, bool &csv_header)
{
    if (args.getFlag("csv")) {
        printCsvHeaderOnce(csv_header);
        std::printf("%s,%s,%zu,%s,%s,%zu,%llu,%llu,%llu,%.4f,%.4f,"
                    "%.4f,%llu,%llu,%.4f\n",
                    workload.c_str(), predictor_name.c_str(),
                    size_bytes, scheme.c_str(), shift.c_str(), hints,
                    static_cast<unsigned long long>(stats.branches),
                    static_cast<unsigned long long>(
                        stats.instructions),
                    static_cast<unsigned long long>(
                        stats.mispredictions),
                    stats.mispKi(), stats.accuracyPercent(),
                    stats.staticShare(),
                    static_cast<unsigned long long>(
                        stats.collisions.collisions),
                    static_cast<unsigned long long>(
                        stats.collisions.destructive),
                    estimateCpi(stats));
        return;
    }
    std::printf("%-10s %-16s %8zuB %-12s %-8s hints=%-6zu "
                "MISP/KI=%7.2f acc=%6.2f%% static=%5.1f%% "
                "coll=%llu cpi=%.3f\n",
                workload.c_str(), predictor_name.c_str(), size_bytes,
                scheme.c_str(), shift.c_str(), hints, stats.mispKi(),
                stats.accuracyPercent(), stats.staticShare(),
                static_cast<unsigned long long>(
                    stats.collisions.collisions),
                estimateCpi(stats));
}

int
cmdRun(int argc, char **argv)
{
    ArgParser args("bpsim_cli run");
    addCommonOptions(args);
    args.addOption("predictor", "gshare:8192",
                   "predictor spec name[:bytes]");
    args.parse(argc, argv, 2);

    const StaticScheme scheme =
        staticSchemeFromName(args.get("scheme"));
    bool csv_header = false;
    CliJournal journal(args.get("journal"), "bpsim_cli run",
                       !args.getFlag("no-simd"));

    if (!args.get("trace").empty()) {
        // Trace replay: static schemes need a workload to re-run for
        // phase 1, so only plain dynamic prediction is offered here.
        if (scheme != StaticScheme::None)
            bpsim_fatal("--trace replay supports --scheme none only");
        TraceReader reader(args.get("trace"));
        auto predictor = makePredictor(args.get("predictor"));
        SimOptions options;
        options.maxBranches = args.getUint("branches");
        options.warmupBranches = args.getUint("warmup");
        options.counters = journal.counters();
        options.simd = !args.getFlag("no-simd");
        const std::string label =
            args.get("trace") + "/" + predictor->name();
        journal.beginCell(label);
        ScopedTimer timer(journal.timers(), "cli.run");
        const SimStats stats = simulate(*predictor, reader, options);
        journal.endCell(label, timer.stop(), 0, stats);
        report(args, args.get("trace"), predictor->name(),
               predictor->sizeBytes(), "none", "noshift", 0, stats,
               csv_header);
        journal.finish();
        return 0;
    }

    SyntheticProgram program = makeProgram(args);
    auto probe = makePredictor(args.get("predictor"));
    const std::string spec = args.get("predictor");
    const std::string kind_name = spec.substr(0, spec.find(':'));

    if (scheme == StaticScheme::None) {
        SimOptions options;
        options.maxBranches = args.getUint("branches");
        options.warmupBranches = args.getUint("warmup");
        options.counters = journal.counters();
        options.simd = !args.getFlag("no-simd");
        auto predictor = makePredictor(spec);
        const std::string label =
            program.name() + "/" + predictor->name() + "/none";
        journal.beginCell(label);
        ScopedTimer timer(journal.timers(), "cli.run");
        const SimStats stats = simulate(*predictor, program, options);
        journal.endCell(label, timer.stop(), 0, stats);
        report(args, program.name(), predictor->name(),
               predictor->sizeBytes(), "none", "noshift", 0, stats,
               csv_header);
        journal.finish();
        return 0;
    }

    // Two-phase experiment path (paper methodology); any registered
    // predictor works — kernel-capable ones replay devirtualized,
    // the rest run record-at-a-time through the virtual reference.
    Result<ParsedPredictorSpec> parsed = parsePredictorSpec(spec);
    if (!parsed.ok())
        raise(std::move(parsed.error()));
    ExperimentConfig config;
    config.predictor = parsed.value().info->name;
    config.sizeBytes = parsed.value().bytes;
    config.scheme = scheme;
    config.shift = shiftFromName(args.get("shift"));
    config.evalBranches = args.getUint("branches");
    config.profileBranches = args.getUint("profile-branches");
    config.selection.cutoffBias = args.getDouble("cutoff");
    config.evalInput = args.get("input") == "train" ? InputSet::Train
                                                    : InputSet::Ref;
    config.profileInput =
        args.get("profile-input").empty()
            ? config.evalInput
            : (args.get("profile-input") == "train" ? InputSet::Train
                                                    : InputSet::Ref);
    config.filterUnstable = args.getFlag("filter-unstable");
    config.evalWarmupBranches = args.getUint("warmup");
    config.counters = journal.counters();
    config.simd = !args.getFlag("no-simd");

    const std::string label = program.name() + "/" + kind_name + ":" +
                              std::to_string(config.sizeBytes) + "/" +
                              args.get("scheme");
    journal.beginCell(label);
    ScopedTimer timer(journal.timers(), "cli.run");
    const ExperimentResult result = runExperiment(program, config);
    journal.endCell(label, timer.stop(), result.hintCount,
                    result.stats);
    report(args, program.name(), kind_name, config.sizeBytes,
           args.get("scheme"), args.get("shift"), result.hintCount,
           result.stats, csv_header);
    journal.finish();
    return 0;
}

/**
 * Parse the comma-separated --sizes list. Rejects empty, non-numeric
 * and zero tokens with a structured config_invalid error instead of
 * the unhandled std::stoul exception the original parser threw.
 */
std::vector<std::size_t>
parseSizes(const std::string &list)
{
    std::vector<std::size_t> sizes;
    std::size_t pos = 0;
    while (pos <= list.size()) {
        const auto comma = list.find(',', pos);
        const std::string token =
            list.substr(pos, comma == std::string::npos
                                 ? std::string::npos
                                 : comma - pos);
        errno = 0;
        char *end = nullptr;
        const unsigned long long value =
            std::strtoull(token.c_str(), &end, 10);
        if (token.empty() || end != token.c_str() + token.size() ||
            errno == ERANGE || value == 0) {
            raise(Error(ErrorCode::ConfigInvalid,
                        "--sizes expects comma-separated positive "
                        "byte counts, got '" +
                            token + "'")
                      .withContext("see --help for usage"));
        }
        sizes.push_back(static_cast<std::size_t>(value));
        if (comma == std::string::npos)
            break;
        pos = comma + 1;
    }
    return sizes;
}

int
cmdSweep(int argc, char **argv)
{
    ArgParser args("bpsim_cli sweep");
    addCommonOptions(args);
    args.addOption("predictor", "gshare",
                   "predictor kind (no size suffix)");
    args.addOption("sizes", "1024,2048,4096,8192,16384,32768,65536",
                   "comma-separated byte sizes");
    addThreadsOption(args);
    args.addOption("checkpoint", "",
                   "persist each finished cell to this JSONL "
                   "checkpoint (empty = disabled)");
    args.addFlag("resume",
                 "restore finished cells from --checkpoint instead "
                 "of re-running them");
    args.addOption("retries", "0",
                   "extra attempts for transient "
                   "(resource_exhausted) cell failures");
    args.addFlag("fail-fast",
                 "abort the sweep at the first failed cell");
    args.addFlag("fused",
                 "fuse cells sharing a replay buffer into one pass "
                 "(default; results are bit-identical either way)");
    args.addFlag("no-fused",
                 "run every cell's evaluation as its own pass "
                 "(overrides --fused)");
    args.addOption("shard", "",
                   "execute only shard i of N (1-based \"i/N\"); "
                   "cells are partitioned by fingerprint hash, so N "
                   "processes with the same matrix cover it exactly "
                   "once");
    args.addOption("cache-dir", "",
                   "content-addressed artifact cache directory: "
                   "replay buffers and profiling phases are persisted "
                   "there and mmap'd back on later (or concurrent) "
                   "runs (empty = disabled)");
    args.addOption("scenario", "",
                   "interleave several programs into one shared "
                   "predictor: smt/ctxsw/server (empty = plain "
                   "single-program sweep)");
    args.addOption("programs", "",
                   "comma-separated member programs for --scenario, "
                   "context id = position (default: --program alone)");
    args.addOption("quantum", "20000",
                   "branches per scheduling quantum "
                   "(--scenario ctxsw)");
    args.addOption("zipf", "1.2",
                   "Zipf exponent of the tenant popularity skew "
                   "(--scenario server)");
    args.parse(argc, argv, 2);

    Result<ParsedPredictorSpec> parsed =
        parsePredictorSpec(args.get("predictor"));
    if (!parsed.ok())
        raise(std::move(parsed.error()));
    const std::string predictor_name = parsed.value().info->name;
    const StaticScheme scheme =
        staticSchemeFromName(args.get("scheme"));
    const std::vector<std::size_t> sizes =
        parseSizes(args.get("sizes"));
    if (args.getFlag("resume") && args.get("checkpoint").empty()) {
        raise(Error(ErrorCode::ConfigInvalid,
                    "--resume needs --checkpoint")
                  .withContext("see --help for usage"));
    }

    const std::string journal_path = args.get("journal");
    std::unique_ptr<obs::RunJournal> journal;
    if (!journal_path.empty()) {
        journal =
            std::make_unique<obs::RunJournal>("bpsim_cli sweep");
    }

    RunnerOptions options;
    options.threads = threadsFromArgs(args);
    options.journal = journal.get();
    options.retries = static_cast<unsigned>(args.getUint("retries"));
    options.failFast = args.getFlag("fail-fast");
    options.checkpointPath = args.get("checkpoint");
    options.resume = args.getFlag("resume");
    options.fused = !args.getFlag("no-fused");
    options.simd = !args.getFlag("no-simd");
    options.cacheDir = args.get("cache-dir");
    if (!args.get("shard").empty()) {
        Result<std::pair<unsigned, unsigned>> shard =
            parseShardSpec(args.get("shard"));
        if (!shard.ok())
            raise(std::move(shard.error()));
        options.shardIndex = shard.value().first;
        options.shardCount = shard.value().second;
    }

    ExperimentRunner runner(options);
    std::size_t scenario_contexts = 0;
    std::size_t program_index = 0;
    if (!args.get("scenario").empty()) {
        Result<ScenarioKind> kind =
            parseScenarioKind(args.get("scenario"));
        if (!kind.ok())
            raise(std::move(kind.error()));
        const InputSet input = args.get("input") == "train"
                                   ? InputSet::Train
                                   : InputSet::Ref;
        const std::string member_list = args.get("programs").empty()
                                            ? args.get("program")
                                            : args.get("programs");
        std::vector<SyntheticProgram> members;
        for (const std::string &name : splitNames(member_list)) {
            members.push_back(
                makeSpecProgram(specProgramFromName(name), input,
                                args.getUint("seed")));
        }
        ScenarioSpec scenario_spec;
        scenario_spec.kind = kind.value();
        scenario_spec.quantum = args.getUint("quantum");
        scenario_spec.zipfExponent = args.getDouble("zipf");
        scenario_contexts = members.size();
        program_index =
            runner.addWorkload(std::make_unique<ScenarioWorkload>(
                scenario_spec, std::move(members)));
    } else {
        program_index = runner.addProgram(makeProgram(args));
    }
    const std::string program_name =
        runner.program(program_index).name();

    for (const std::size_t bytes : sizes) {
        ExperimentConfig config;
        config.predictor = predictor_name;
        config.sizeBytes = bytes;
        config.scheme = scheme;
        config.shift = shiftFromName(args.get("shift"));
        config.evalBranches = args.getUint("branches");
        config.evalWarmupBranches = args.getUint("warmup");
        config.profileBranches = args.getUint("profile-branches");
        config.selection.cutoffBias = args.getDouble("cutoff");
        config.scenarioContexts = scenario_contexts;
        config.counters =
            journal != nullptr ? &journal->counters() : nullptr;
        runner.addCell(program_index, config,
                       program_name + "/" + args.get("predictor") +
                           ":" + std::to_string(bytes) + "/" +
                           args.get("scheme"));
    }

    const MatrixResult matrix = runner.run();

    bool csv_header = false;
    Count failed = 0;
    for (std::size_t i = 0; i < matrix.cells.size(); ++i) {
        const CellResult &cell = matrix.cells[i];
        if (cell.shardSkipped)
            continue;
        if (!cell.ok()) {
            ++failed;
            std::fprintf(stderr,
                         "bpsim_cli sweep: cell '%s' failed: %s\n",
                         runner.cell(i).label.c_str(),
                         cell.error->describe().c_str());
            continue;
        }
        report(args, program_name, args.get("predictor"), sizes[i],
               args.get("scheme"), args.get("shift"),
               cell.result.hintCount, cell.result.stats, csv_header);
    }

    if (journal != nullptr) {
        journal->writeJsonl(journal_path);
        const std::string metrics =
            obs::RunJournal::metricsPathFor(journal_path);
        journal->writeMetrics(metrics);
        std::printf("journal: %s\nmetrics: %s\n",
                    journal_path.c_str(), metrics.c_str());
    }
    return failed == 0 ? 0 : 1;
}

/**
 * Combine a complete set of shard checkpoints into one plain
 * checkpoint an unsharded --resume run restores in full. Validation
 * (disjointness, completeness, matching matrices) happens in
 * mergeShardCheckpoints; any violation is a config_invalid usage
 * error.
 */
int
cmdMerge(int argc, char **argv)
{
    ArgParser args("bpsim_cli merge");
    args.addOption("out", "merged.jsonl",
                   "write the merged checkpoint here");
    args.addOption("summary", "",
                   "write the bpsim-merge-v1 summary JSON here "
                   "(default: <out>.merge.json)");
    args.parse(argc, argv, 2);

    const std::vector<std::string> &shards = args.positional();
    if (shards.empty()) {
        raise(Error(ErrorCode::ConfigInvalid,
                    "merge needs at least one shard checkpoint path")
                  .withContext("usage: bpsim_cli merge --out "
                               "merged.jsonl shard1.jsonl ..."));
    }
    Result<MergeSummary> merged =
        mergeShardCheckpoints(shards, args.get("out"));
    if (!merged.ok())
        raise(std::move(merged.error()));

    const std::string summary_path = args.get("summary").empty()
                                         ? args.get("out") +
                                               ".merge.json"
                                         : args.get("summary");
    const std::string summary_json =
        renderMergeSummaryJson(merged.value(), args.get("out"));
    Result<void> written =
        writeFileAtomic(summary_path, summary_json);
    if (!written.ok()) {
        raise(std::move(written.error())
                  .withContext("while writing merge summary"));
    }

    std::printf("merged %llu records from %u shards (%llu matrix "
                "cells) into %s\nsummary: %s\n",
                static_cast<unsigned long long>(
                    merged.value().records),
                merged.value().shardCount,
                static_cast<unsigned long long>(
                    merged.value().matrixCells),
                args.get("out").c_str(), summary_path.c_str());
    return 0;
}

/**
 * The label a compiled cell carries is
 * "program/predictor:bytes/scheme"; recover the byte size for
 * reporting (a response cell does not store it as its own field).
 */
std::size_t
bytesFromLabel(const std::string &label)
{
    const std::size_t colon = label.rfind(':');
    if (colon == std::string::npos)
        return 0;
    return static_cast<std::size_t>(
        std::strtoull(label.c_str() + colon + 1, nullptr, 10));
}

/** Append protocol lines to the --save transcript (JSONL). */
void
appendTranscript(const std::string &path,
                 const std::vector<std::string> &lines)
{
    std::FILE *file = std::fopen(path.c_str(), "a");
    if (file == nullptr) {
        raise(Error(ErrorCode::IoFailure,
                    "cannot open transcript '" + path +
                        "': " + std::strerror(errno)));
    }
    for (const std::string &line : lines)
        std::fprintf(file, "%s\n", line.c_str());
    std::fclose(file);
}

/**
 * Submit one request to a running bpsim_serve daemon and report the
 * reply: response cells print through the same report() path as
 * local runs (so daemon and batch output are directly diffable), and
 * --save appends the raw request/response JSONL lines for the
 * `check_bench_json.py --schema service` validator.
 */
int
cmdClient(int argc, char **argv)
{
    ArgParser args("bpsim_cli client");
    args.addOption("socket", "bpsim.sock",
                   "unix socket the daemon listens on");
    args.addOption("op", "sweep",
                   "operation: run/sweep/status/cancel/shutdown");
    args.addOption("id", "",
                   "request id echoed in the response (default: "
                   "derived from the parameters)");
    args.addOption("target", "",
                   "request id to cancel (--op cancel)");
    args.addOption("deadline-ms", "0",
                   "cooperative deadline in ms; an expired request "
                   "keeps its finished cells checkpointed for a "
                   "resubmit (0 = none)");
    args.addOption("fault", "",
                   "fault-injection spec forwarded with the request "
                   "(daemon must run with --allow-fault-inject)");
    args.addOption("save", "",
                   "append the request and response JSONL lines to "
                   "this transcript (empty = disabled)");
    args.addOption("program", "gcc",
                   "synthetic workload to run "
                   "(go/gcc/perl/m88ksim/compress/ijpeg)");
    args.addOption("input", "ref", "input set: train or ref");
    args.addOption("seed", "2000", "workload seed");
    args.addOption("predictor", "gshare",
                   "predictor kind (no size suffix)");
    args.addOption("sizes", "8192", "comma-separated byte sizes");
    args.addOption("scheme", "none",
                   "static selection scheme: none/static_95/"
                   "static_acc/static_fac/static_alias");
    args.addOption("shift", "noshift",
                   "history policy for static branches: "
                   "noshift/shift/shiftpred");
    args.addOption("branches", "2000000",
                   "branches in the measured window");
    args.addOption("warmup", "0", "unmeasured warmup branches");
    args.addOption("profile-branches", "1000000",
                   "branches simulated in the profiling phase");
    args.addOption("profile-input", "",
                   "input profiled in phase 1 (default: same as "
                   "--input, i.e. self-trained)");
    args.addOption("cutoff", "0.95", "Static_95 bias cutoff");
    args.addFlag("filter-unstable",
                 "apply the cross-training merge filter (5% rule)");
    args.addOption("scenario", "",
                   "interleave several programs into one shared "
                   "predictor: smt/ctxsw/server (empty = plain "
                   "single-program sweep)");
    args.addOption("programs", "",
                   "comma-separated member programs for --scenario, "
                   "context id = position (default: --program alone)");
    args.addOption("quantum", "20000",
                   "branches per scheduling quantum "
                   "(--scenario ctxsw)");
    args.addOption("zipf", "1.2",
                   "Zipf exponent of the tenant popularity skew "
                   "(--scenario server)");
    args.addFlag("csv", "emit one machine-readable CSV row per cell");
    args.parse(argc, argv, 2);

    service::ServiceRequest request;
    Result<service::RequestKind> kind =
        service::requestKindFromName(args.get("op"));
    if (!kind.ok())
        raise(std::move(kind.error()));
    request.kind = kind.value();
    request.deadlineMs = args.getUint("deadline-ms");
    request.faultSpec = args.get("fault");
    request.targetId = args.get("target");
    request.sweep.program = args.get("program");
    request.sweep.input = args.get("input");
    request.sweep.seed = args.getUint("seed");
    request.sweep.predictor = args.get("predictor");
    request.sweep.sizes = parseSizes(args.get("sizes"));
    request.sweep.scheme = args.get("scheme");
    request.sweep.shift = args.get("shift");
    request.sweep.evalBranches = args.getUint("branches");
    request.sweep.warmupBranches = args.getUint("warmup");
    request.sweep.profileBranches = args.getUint("profile-branches");
    request.sweep.profileInput = args.get("profile-input");
    request.sweep.cutoff = args.getDouble("cutoff");
    request.sweep.filterUnstable = args.getFlag("filter-unstable");
    request.sweep.scenario = args.get("scenario");
    if (!request.sweep.scenario.empty()) {
        request.sweep.programs =
            splitNames(args.get("programs").empty()
                           ? args.get("program")
                           : args.get("programs"));
        request.sweep.quantum = args.getUint("quantum");
        request.sweep.zipf = args.getDouble("zipf");
    }
    request.id = args.get("id");
    if (request.id.empty()) {
        // Deterministic default so resubmitting the same command
        // line correlates naturally in the daemon's journal.
        request.id = args.get("op") + "-" + request.sweep.program +
                     "-" + request.sweep.predictor + "-" +
                     args.get("sizes") + "-" + request.sweep.scheme;
    }

    Result<service::ServiceClient> client =
        service::ServiceClient::connect(args.get("socket"));
    if (!client.ok())
        raise(std::move(client.error()));
    Result<service::ServiceResponse> reply =
        client.value().call(request);
    if (!reply.ok())
        raise(std::move(reply.error()));
    const service::ServiceResponse &response = reply.value();

    if (!args.get("save").empty()) {
        appendTranscript(args.get("save"),
                         {service::renderRequest(request),
                          service::renderResponse(response)});
    }

    if (!response.ok) {
        const Error &failure = response.failure.has_value()
                                   ? *response.failure
                                   : Error(ErrorCode::Internal,
                                           "daemon reported failure "
                                           "without an error object");
        std::fprintf(stderr,
                     "bpsim_cli client: request '%s' failed: %s\n",
                     response.id.c_str(),
                     failure.describe().c_str());
        if (response.retryAfterMs > 0) {
            std::fprintf(stderr,
                         "bpsim_cli client: retry after %llu ms\n",
                         static_cast<unsigned long long>(
                             response.retryAfterMs));
        }
        return failure.code() == ErrorCode::ConfigInvalid
                   ? usageExitCode
                   : 1;
    }

    if (request.kind == service::RequestKind::Status) {
        std::printf("state=%s queue=%llu/%llu active=%llu "
                    "completed=%llu rejected=%llu quarantined=%llu\n",
                    response.state.c_str(),
                    static_cast<unsigned long long>(
                        response.queueDepth),
                    static_cast<unsigned long long>(
                        response.queueLimit),
                    static_cast<unsigned long long>(response.active),
                    static_cast<unsigned long long>(
                        response.completed),
                    static_cast<unsigned long long>(
                        response.rejected),
                    static_cast<unsigned long long>(
                        response.quarantined));
        return 0;
    }
    if (request.kind == service::RequestKind::Cancel ||
        request.kind == service::RequestKind::Shutdown) {
        std::printf("request '%s': ok\n", response.id.c_str());
        return 0;
    }

    bool csv_header = false;
    for (const CheckpointRecord &cell : response.cells) {
        report(args, request.sweep.program, request.sweep.predictor,
               bytesFromLabel(cell.label), request.sweep.scheme,
               request.sweep.shift, cell.result.hintCount,
               cell.result.stats, csv_header);
    }
    for (const service::CellFailure &failed : response.cellErrors) {
        std::fprintf(stderr,
                     "bpsim_cli client: cell '%s' failed: %s: %s\n",
                     failed.label.c_str(), failed.code.c_str(),
                     failed.message.c_str());
    }
    if (!args.getFlag("csv")) {
        std::printf("request '%s': ok (executed=%llu restored=%llu "
                    "failed=%llu fingerprint=%s)\n",
                    response.id.c_str(),
                    static_cast<unsigned long long>(
                        response.executed),
                    static_cast<unsigned long long>(
                        response.restored),
                    static_cast<unsigned long long>(response.failed),
                    response.fingerprint.c_str());
    }
    return response.cellErrors.empty() ? 0 : 1;
}

int
cmdList()
{
    std::printf("programs:  ");
    for (const auto id : allSpecPrograms())
        std::printf("%s ", specProgramName(id).c_str());
    std::printf("\npredictors:\n");
    for (const PredictorInfo *info :
         PredictorRegistry::instance().all()) {
        std::printf("  %-12s %-6s default=%zuB kernel=%-3s "
                    "batch=%-3s  %s\n",
                    info->name.c_str(),
                    info->paperKind ? "paper" : "ext",
                    info->defaultBytes,
                    info->kernelCapable ? "yes" : "no",
                    info->batchCapable ? "yes" : "no",
                    info->description.c_str());
    }
    std::printf("schemes:   none static_95 static_acc static_fac "
                "static_alias\n");
    std::printf("shifts:    noshift shift shiftpred\n");
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    const std::string command = argc > 1 ? argv[1] : "";
    try {
        if (command == "run")
            return cmdRun(argc, argv);
        if (command == "sweep")
            return cmdSweep(argc, argv);
        if (command == "merge")
            return cmdMerge(argc, argv);
        if (command == "client")
            return cmdClient(argc, argv);
        if (command == "list")
            return cmdList();
    } catch (const ErrorException &failure) {
        std::fprintf(stderr, "bpsim_cli: error %s\n",
                     failure.error().describe().c_str());
        return failure.error().code() == ErrorCode::ConfigInvalid
                   ? usageExitCode
                   : 1;
    }
    std::fprintf(stderr,
                 "usage: bpsim_cli <run|sweep|merge|client|list> "
                 "[options]\n"
                 "       bpsim_cli run --help\n");
    return usageExitCode;
}
