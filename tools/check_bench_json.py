#!/usr/bin/env python3
"""Validate a BENCH_runner.json timing file.

The experiment-matrix runner (src/core/runner.cc, writeRunnerJson)
emits per-cell and aggregate timing so the perf trajectory is tracked
across PRs; this validator is wired into ctest so a malformed emitter
fails tier-1 instead of silently corrupting the record.

Usage: check_bench_json.py FILE [FILE...]
Exits non-zero with a message on the first problem found.
"""

import json
import math
import sys

TOP_LEVEL_REQUIRED = {
    "bench": str,
    "threads": int,
    "cells": list,
    "materialize_seconds": (int, float),
    "profile_seconds": (int, float),
    "profile_cache_hits": int,
    "profile_cache_misses": int,
    "kernel_cells": int,
    "run_seconds": (int, float),
    "wall_seconds": (int, float),
    "total_branches": int,
    "actual_branches": int,
    "kernel_branches_per_second": (int, float),
    "branches_per_second": (int, float),
    "replay_buffer_bytes": int,
    "serial_estimate_seconds": (int, float),
    "speedup_vs_serial_estimate": (int, float),
}

CELL_REQUIRED = {
    "label": str,
    "program": str,
    "misp_ki": (int, float),
    "hints": int,
    "branches": int,
    "wall_seconds": (int, float),
    "branches_per_second": (int, float),
    "kernel": bool,
    "profile_cached": bool,
}


def fail(path, message):
    print(f"{path}: {message}", file=sys.stderr)
    sys.exit(1)


def check_fields(path, obj, spec, where):
    for key, expected in spec.items():
        if key not in obj:
            fail(path, f"{where}: missing key '{key}'")
        value = obj[key]
        if expected is bool:
            if not isinstance(value, bool):
                fail(path, f"{where}: key '{key}' has type "
                           f"{type(value).__name__}, expected bool")
            continue
        if isinstance(value, bool) or not isinstance(value, expected):
            fail(path, f"{where}: key '{key}' has type "
                       f"{type(value).__name__}, expected "
                       f"{expected}")
        if isinstance(value, (int, float)):
            if isinstance(value, float) and not math.isfinite(value):
                fail(path, f"{where}: key '{key}' is not finite")
            if value < 0:
                fail(path, f"{where}: key '{key}' is negative")


def check_file(path):
    try:
        with open(path, encoding="utf-8") as handle:
            data = json.load(handle)
    except OSError as error:
        fail(path, f"cannot read: {error}")
    except json.JSONDecodeError as error:
        fail(path, f"not valid JSON: {error}")

    if not isinstance(data, dict):
        fail(path, "top level must be an object")
    check_fields(path, data, TOP_LEVEL_REQUIRED, "top level")

    if not data["cells"]:
        fail(path, "cells array is empty")
    for index, cell in enumerate(data["cells"]):
        where = f"cells[{index}]"
        if not isinstance(cell, dict):
            fail(path, f"{where}: must be an object")
        check_fields(path, cell, CELL_REQUIRED, where)

    if "baseline_seconds" in data and "speedup_vs_baseline" not in data:
        fail(path, "baseline_seconds without speedup_vs_baseline")

    total = sum(cell["branches"] for cell in data["cells"])
    if total != data["total_branches"]:
        fail(path, f"total_branches {data['total_branches']} != "
                   f"sum of cell branches {total}")

    # The profile cache removes work, never adds it: actual_branches
    # counts each shared profiling phase once, total_branches once per
    # consuming cell.
    if data["actual_branches"] > data["total_branches"]:
        fail(path, f"actual_branches {data['actual_branches']} > "
                   f"total_branches {data['total_branches']}")
    if data["profile_cache_hits"] > 0 and \
            data["actual_branches"] == data["total_branches"]:
        fail(path, "profile cache hits reported but actual_branches "
                   "== total_branches (no work was shared)")

    kernel_cells = sum(1 for cell in data["cells"] if cell["kernel"])
    if kernel_cells != data["kernel_cells"]:
        fail(path, f"kernel_cells {data['kernel_cells']} != "
                   f"count of kernel cells {kernel_cells}")

    cached_cells = sum(
        1 for cell in data["cells"] if cell["profile_cached"])
    cache_accesses = data["profile_cache_hits"] + \
        data["profile_cache_misses"]
    if cached_cells != cache_accesses:
        fail(path, f"profile_cache_hits + profile_cache_misses "
                   f"{cache_accesses} != count of profile_cached "
                   f"cells {cached_cells}")

    print(f"{path}: ok ({len(data['cells'])} cells, "
          f"{data['threads']} threads, "
          f"{data['wall_seconds']:.2f}s wall, "
          f"{data['profile_cache_hits']} profile-cache hits, "
          f"{data['kernel_cells']} kernel cells)")


def main(argv):
    if len(argv) < 2:
        print(__doc__, file=sys.stderr)
        return 2
    for path in argv[1:]:
        check_file(path)
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
