#!/usr/bin/env python3
"""Validate bpsim's machine-readable run records.

Five schemas, selected with --schema (default: runner):

  runner      BENCH_runner.json timing files written by
              writeRunnerJson (src/core/runner.cc)
  journal     run-journal JSONL event streams written by
              obs::RunJournal::writeJsonl (one event object per line)
  metrics     aggregated metrics summaries written by
              obs::RunJournal::writeMetrics
  checkpoint  sweep-checkpoint JSONL files written by
              SweepCheckpoint (src/core/checkpoint.cc), optionally
              led by a bpsim-checkpoint-header-v1 shard stamp
  merge       bpsim-merge-v1 summaries written by `bpsim_cli merge`

The validator is wired into ctest (and CI smoke runs), so a malformed
emitter fails tier-1 instead of silently corrupting the record.

--warm-cache (runner schema only) additionally asserts the run was
served entirely from a warm artifact cache: zero replay and profile
cache misses, zero corrupt artifacts, and a non-empty mmap footprint.

Usage: check_bench_json.py
       [--schema runner|journal|metrics|checkpoint|merge]
       [--warm-cache] FILE...
Exits non-zero with a message on the first problem found.
"""

import json
import math
import re
import sys

TOP_LEVEL_REQUIRED = {
    "bench": str,
    "threads": int,
    "cells": list,
    "materialize_seconds": (int, float),
    "profile_seconds": (int, float),
    "profile_cache_hits": int,
    "profile_cache_misses": int,
    "kernel_cells": int,
    "simd_cells": int,
    "dispatch": str,
    "simd_width": int,
    "fused": bool,
    "fused_groups": int,
    "failed_cells": int,
    "restored_cells": int,
    "run_seconds": (int, float),
    "wall_seconds": (int, float),
    "total_branches": int,
    "actual_branches": int,
    "kernel_branches_per_second": (int, float),
    "branches_per_second": (int, float),
    "replay_buffer_bytes": int,
    "cache_replay_hits": int,
    "cache_replay_misses": int,
    "cache_profile_hits": int,
    "cache_profile_misses": int,
    "cache_corrupt": int,
    "mmap_bytes": int,
    "shard_index": int,
    "shard_count": int,
    "shard_cells": int,
    "shard_skipped_cells": int,
    "serial_estimate_seconds": (int, float),
    "speedup_vs_serial_estimate": (int, float),
}

CELL_REQUIRED = {
    "label": str,
    "program": str,
    "misp_ki": (int, float),
    "hints": int,
    "branches": int,
    "wall_seconds": (int, float),
    "branches_per_second": (int, float),
    "kernel": bool,
    "simd": bool,
    "profile_cached": bool,
}

# Runtime dispatch levels (bpsim::SimdLevel wire names).
DISPATCH_LEVELS = {"off", "scalar", "avx2", "neon"}

# Registered predictor names (the anchor list in
# src/predictor/registry.cc) and static-scheme wire names. Canonical
# cell labels are "program/predictor:bytes/scheme"; a label of that
# shape must name a registered predictor and a known scheme.
# Free-form labels (custom addCell strings) pass through untouched.
KNOWN_PREDICTORS = {
    "bimodal", "ghist", "gshare", "bimode", "2bcgskew",
    "agree", "tournament", "gselect", "yags", "ideal",
    "tage", "perceptron",
}

KNOWN_SCHEMES = {
    "none", "static_95", "static_acc", "static_fac", "static_alias",
}

CANONICAL_LABEL_RE = re.compile(r"^[^/]+/([^/:]+):(\d+)/([^/]+)$")


def check_cell_label(path, label, where):
    match = CANONICAL_LABEL_RE.match(label)
    if match is None:
        return
    predictor, _, scheme = match.groups()
    if predictor not in KNOWN_PREDICTORS:
        fail(path, f"{where}: label '{label}' names unknown "
                   f"predictor '{predictor}'")
    if scheme not in KNOWN_SCHEMES:
        fail(path, f"{where}: label '{label}' names unknown "
                   f"scheme '{scheme}'")

# The error-code taxonomy (bpsim::ErrorCode wire names).
ERROR_CODES = {
    "config_invalid",
    "io_failure",
    "resource_exhausted",
    "cell_failed",
    "internal",
    "cancelled",
    "deadline_exceeded",
}

CELL_ERROR_OBJECT_REQUIRED = {
    "code": str,
    "message": str,
    "attempts": int,
}

# The journal event taxonomy (obs::EventKind wire names).
EVENT_KINDS = {
    "run_begin",
    "phase_begin",
    "phase_end",
    "materialize",
    "profile_phase",
    "fused_group",
    "scenario_cell",
    "cell_begin",
    "cell_end",
    "cell_error",
    "cache",
    "cache_corrupt",
    "run_end",
    "request_begin",
    "request_cell",
    "request_end",
    "request_rejected",
    "service_state",
}

EVENT_REQUIRED = {
    "seq": int,
    "t": (int, float),
    "thread": int,
    "event": str,
    "label": str,
}

CELL_END_REQUIRED = {
    "seconds": (int, float),
    "branches": int,
    "misp_ki": (int, float),
    "hints": int,
    "collisions": int,
    "constructive": int,
    "destructive": int,
    "neutral": int,
}

CELL_ERROR_REQUIRED = {
    "cell": int,
    "code": str,
    "message": str,
    "attempts": int,
}

# One fused_group event per fused pass (profile or cells phase);
# 'cells' is the comma-joined member list, so its element count must
# equal 'members'.
FUSED_GROUP_REQUIRED = {
    "phase": str,
    "members": int,
    "cells": str,
    "seconds": (int, float),
    "branches": int,
}

FUSED_GROUP_PHASES = {"profile", "cells"}

# Cells-phase groups additionally carry per-member stat breakdowns as
# comma-joined lists aligned with 'cells'.
FUSED_CELLS_PHASE_REQUIRED = {
    "branches_per_cell": str,
    "mispredictions_per_cell": str,
}

# One scenario_cell event per multi-context cell: the cross- vs
# self-context split of its collision classification. The full NxN
# victim x aggressor matrix lives in the runner JSON ('interference'),
# not the journal.
SCENARIO_CELL_EVENT_REQUIRED = {
    "cell": int,
    "contexts": int,
    "collisions_cross": int,
    "destructive_cross": int,
    "collisions_self": int,
    "destructive_self": int,
}

# Per-context stat block of a scenario cell in the runner JSON.
SCENARIO_CONTEXT_STAT_REQUIRED = {
    "context": int,
    "branches": int,
    "instructions": int,
    "mispredictions": int,
    "misp_ki": (int, float),
    "static_predicted": int,
    "collisions": int,
}

# One victim x aggressor pair of a scenario cell's interference
# matrix in the runner JSON (row-major: victim outer, aggressor
# inner).
SCENARIO_INTERFERENCE_REQUIRED = {
    "victim": int,
    "aggressor": int,
    "collisions": int,
    "constructive": int,
    "destructive": int,
}

METRICS_REQUIRED = {
    "schema": str,
    "run": str,
    "total_events": int,
    "events_by_kind": dict,
    "events_by_thread": dict,
    "cells_begun": int,
    "cells_ended": int,
    "cells_failed": int,
    "cells_restored": int,
    "phase_begins": int,
    "phase_ends": int,
    "phases_balanced": bool,
    "materialize_seconds": (int, float),
    "profile_seconds": (int, float),
    "cell_seconds": (int, float),
    "wall_seconds": (int, float),
    "kernel_cells": int,
    "simd_cells": int,
    "dispatch": str,
    "simd_width": int,
    "cached_cells": int,
    "fused_groups": int,
    "fused_members": int,
    "branches": int,
    "collisions": int,
    "constructive": int,
    "destructive": int,
    "neutral": int,
    "counters": dict,
    "timers": dict,
}

METRICS_SCHEMA_ID = "bpsim-metrics-v1"

CHECKPOINT_SCHEMA_ID = "bpsim-checkpoint-v1"

CHECKPOINT_HEADER_SCHEMA_ID = "bpsim-checkpoint-header-v1"

CHECKPOINT_HEADER_REQUIRED = {
    "schema": str,
    "shard_index": int,
    "shard_count": int,
    "matrix_cells": int,
    "shard_cells": int,
}

CHECKPOINT_REQUIRED = {
    "schema": str,
    "fingerprint": str,
    "label": str,
    "branches": int,
    "instructions": int,
    "mispredictions": int,
    "static_predicted": int,
    "static_mispredictions": int,
    "lookups": int,
    "collisions": int,
    "constructive": int,
    "destructive": int,
    "hints": int,
    "simulated_branches": int,
    "kernel": bool,
    "simd": bool,
    "phase_branches": int,
}


def fail(path, message):
    print(f"{path}: {message}", file=sys.stderr)
    sys.exit(1)


def check_fields(path, obj, spec, where):
    for key, expected in spec.items():
        if key not in obj:
            fail(path, f"{where}: missing key '{key}'")
        value = obj[key]
        if expected is bool:
            if not isinstance(value, bool):
                fail(path, f"{where}: key '{key}' has type "
                           f"{type(value).__name__}, expected bool")
            continue
        if isinstance(value, bool) or not isinstance(value, expected):
            fail(path, f"{where}: key '{key}' has type "
                       f"{type(value).__name__}, expected "
                       f"{expected}")
        if isinstance(value, (int, float)):
            if isinstance(value, float) and not math.isfinite(value):
                fail(path, f"{where}: key '{key}' is not finite")
            if value < 0:
                fail(path, f"{where}: key '{key}' is negative")


def check_scenario_cell(path, cell, where):
    """Validate the scenario payload of one runner-JSON cell."""
    if cell["scenario"] is not True:
        fail(path, f"{where}: 'scenario', when present, must be true")
    check_fields(path, cell, {"contexts": int,
                              "context_stats": list}, where)
    contexts = cell["contexts"]
    if contexts < 1:
        fail(path, f"{where}: contexts {contexts} < 1")
    stats = cell["context_stats"]
    if len(stats) != contexts:
        fail(path, f"{where}: context_stats has {len(stats)} "
                   f"entries, expected {contexts}")
    for index, entry in enumerate(stats):
        entry_where = f"{where}.context_stats[{index}]"
        if not isinstance(entry, dict):
            fail(path, f"{entry_where}: must be an object")
        check_fields(path, entry, SCENARIO_CONTEXT_STAT_REQUIRED,
                     entry_where)
        if entry["context"] != index:
            fail(path, f"{entry_where}: context {entry['context']} "
                       f"!= position {index}")
        if entry["mispredictions"] > entry["branches"]:
            fail(path, f"{entry_where}: mispredictions > branches")
        if entry["branches"] > entry["instructions"]:
            fail(path, f"{entry_where}: branches > instructions")
        if entry["instructions"] > 0:
            computed = 1000.0 * entry["mispredictions"] / \
                entry["instructions"]
            if abs(computed - entry["misp_ki"]) > 1e-3:
                fail(path, f"{entry_where}: misp_ki "
                           f"{entry['misp_ki']} != computed "
                           f"{computed:.6f}")
    if "interference" in cell:
        matrix = cell["interference"]
        if not isinstance(matrix, list):
            fail(path, f"{where}: 'interference' must be a list")
        if len(matrix) != contexts * contexts:
            fail(path, f"{where}: interference has {len(matrix)} "
                       f"pairs, expected {contexts * contexts}")
        for index, pair in enumerate(matrix):
            pair_where = f"{where}.interference[{index}]"
            if not isinstance(pair, dict):
                fail(path, f"{pair_where}: must be an object")
            check_fields(path, pair, SCENARIO_INTERFERENCE_REQUIRED,
                         pair_where)
            if pair["victim"] != index // contexts or \
                    pair["aggressor"] != index % contexts:
                fail(path, f"{pair_where}: expected victim "
                           f"{index // contexts} / aggressor "
                           f"{index % contexts}, got "
                           f"{pair['victim']}/{pair['aggressor']}")
            classified = pair["constructive"] + pair["destructive"]
            if classified > pair["collisions"]:
                fail(path, f"{pair_where}: constructive + "
                           f"destructive {classified} > collisions "
                           f"{pair['collisions']}")


def check_runner_file(path, warm_cache=False):
    try:
        with open(path, encoding="utf-8") as handle:
            data = json.load(handle)
    except OSError as error:
        fail(path, f"cannot read: {error}")
    except json.JSONDecodeError as error:
        fail(path, f"not valid JSON: {error}")

    if not isinstance(data, dict):
        fail(path, "top level must be an object")
    check_fields(path, data, TOP_LEVEL_REQUIRED, "top level")

    if not data["cells"]:
        fail(path, "cells array is empty")
    failed_cells = 0
    restored_cells = 0
    skipped_cells = 0
    for index, cell in enumerate(data["cells"]):
        where = f"cells[{index}]"
        if not isinstance(cell, dict):
            fail(path, f"{where}: must be an object")
        check_fields(path, cell, CELL_REQUIRED, where)
        check_cell_label(path, cell["label"], where)
        if "scenario" in cell:
            check_scenario_cell(path, cell, where)
        if "restored" in cell:
            if cell["restored"] is not True:
                fail(path, f"{where}: 'restored', when present, must "
                           f"be true")
            restored_cells += 1
        if "shard_skipped" in cell:
            if cell["shard_skipped"] is not True:
                fail(path, f"{where}: 'shard_skipped', when present, "
                           f"must be true")
            if "restored" in cell or "error" in cell:
                fail(path, f"{where}: a shard-skipped cell cannot "
                           f"also be restored or failed")
            skipped_cells += 1
        if "error" in cell:
            error = cell["error"]
            if not isinstance(error, dict):
                fail(path, f"{where}: 'error' must be an object")
            check_fields(path, error, CELL_ERROR_OBJECT_REQUIRED,
                         f"{where}.error")
            if error["code"] not in ERROR_CODES:
                fail(path, f"{where}.error: unknown code "
                           f"'{error['code']}'")
            failed_cells += 1

    if failed_cells != data["failed_cells"]:
        fail(path, f"failed_cells {data['failed_cells']} != "
                   f"count of cells carrying an error {failed_cells}")
    if restored_cells != data["restored_cells"]:
        fail(path, f"restored_cells {data['restored_cells']} != "
                   f"count of restored cells {restored_cells}")

    if "baseline_seconds" in data and "speedup_vs_baseline" not in data:
        fail(path, "baseline_seconds without speedup_vs_baseline")

    # Shard accounting: the declared slice must be well formed and
    # every cell is either owned by this shard or marked skipped.
    if not 1 <= data["shard_index"] <= data["shard_count"]:
        fail(path, f"shard_index {data['shard_index']} outside "
                   f"1..shard_count {data['shard_count']}")
    if skipped_cells != data["shard_skipped_cells"]:
        fail(path, f"shard_skipped_cells "
                   f"{data['shard_skipped_cells']} != count of "
                   f"shard_skipped cells {skipped_cells}")
    if data["shard_cells"] + data["shard_skipped_cells"] != \
            len(data["cells"]):
        fail(path, f"shard_cells {data['shard_cells']} + "
                   f"shard_skipped_cells "
                   f"{data['shard_skipped_cells']} != "
                   f"{len(data['cells'])} cells")
    if data["shard_count"] == 1 and data["shard_skipped_cells"] != 0:
        fail(path, f"unsharded run skipped "
                   f"{data['shard_skipped_cells']} cells")

    if warm_cache:
        for key in ("cache_replay_misses", "cache_profile_misses",
                    "cache_corrupt"):
            if data[key] != 0:
                fail(path, f"--warm-cache: {key} is {data[key]}, "
                           f"expected 0")
        if data["cache_replay_hits"] == 0:
            fail(path, "--warm-cache: cache_replay_hits is 0")
        if data["mmap_bytes"] == 0:
            fail(path, "--warm-cache: mmap_bytes is 0")

    total = sum(cell["branches"] for cell in data["cells"]
                if "error" not in cell)
    if total != data["total_branches"]:
        fail(path, f"total_branches {data['total_branches']} != "
                   f"sum of successful cell branches {total}")

    # The profile cache removes work, never adds it: actual_branches
    # counts each shared profiling phase once, total_branches once per
    # consuming cell. With failed cells the inequality can flip (a
    # phase may have run for a cell that then failed), so these two
    # checks only hold on a fully successful run.
    if failed_cells == 0:
        if data["actual_branches"] > data["total_branches"]:
            fail(path, f"actual_branches {data['actual_branches']} > "
                       f"total_branches {data['total_branches']}")
        if data["profile_cache_hits"] > 0 and \
                data["actual_branches"] == data["total_branches"]:
            fail(path, "profile cache hits reported but "
                       "actual_branches == total_branches (no work "
                       "was shared)")

    kernel_cells = sum(1 for cell in data["cells"] if cell["kernel"])
    if kernel_cells != data["kernel_cells"]:
        fail(path, f"kernel_cells {data['kernel_cells']} != "
                   f"count of kernel cells {kernel_cells}")

    # Batched SIMD execution is a refinement of the devirtualized
    # kernel path: a cell can only batch if it took the kernels, and
    # an off dispatch means no cell batched at all.
    if data["dispatch"] not in DISPATCH_LEVELS:
        fail(path, f"unknown dispatch level '{data['dispatch']}'")
    simd_cells = sum(1 for cell in data["cells"] if cell["simd"])
    if simd_cells != data["simd_cells"]:
        fail(path, f"simd_cells {data['simd_cells']} != "
                   f"count of simd cells {simd_cells}")
    for index, cell in enumerate(data["cells"]):
        if cell["simd"] and not cell["kernel"]:
            fail(path, f"cells[{index}]: simd without kernel")
    # Restored cells keep the flag of the run that executed them, so
    # only freshly executed cells must obey this run's dispatch.
    executed_simd = sum(1 for cell in data["cells"]
                        if cell["simd"] and "restored" not in cell)
    if data["dispatch"] == "off" and executed_simd > 0:
        fail(path, f"dispatch is off but {executed_simd} executed "
                   f"cells report simd")
    if data["simd_width"] < 1:
        fail(path, f"simd_width {data['simd_width']} < 1")
    if data["dispatch"] in ("off", "scalar") and \
            data["simd_width"] != 1:
        fail(path, f"dispatch '{data['dispatch']}' with simd_width "
                   f"{data['simd_width']} (expected 1)")

    # Every non-failed cell in the cache plan reports profile_cached;
    # failed consumers drop out of the count, so with failures the
    # plan size only bounds it.
    cached_cells = sum(
        1 for cell in data["cells"] if cell["profile_cached"])
    cache_accesses = data["profile_cache_hits"] + \
        data["profile_cache_misses"]
    if failed_cells == 0 and cached_cells != cache_accesses:
        fail(path, f"profile_cache_hits + profile_cache_misses "
                   f"{cache_accesses} != count of profile_cached "
                   f"cells {cached_cells}")
    if cached_cells > cache_accesses:
        fail(path, f"{cached_cells} profile_cached cells > "
                   f"profile_cache_hits + profile_cache_misses "
                   f"{cache_accesses}")

    print(f"{path}: ok ({len(data['cells'])} cells, "
          f"{data['threads']} threads, "
          f"{data['wall_seconds']:.2f}s wall, "
          f"{data['profile_cache_hits']} profile-cache hits, "
          f"{data['kernel_cells']} kernel cells, "
          f"{data['simd_cells']} simd cells via "
          f"{data['dispatch']}, "
          f"{data['failed_cells']} failed, "
          f"{data['restored_cells']} restored)")


def check_collision_split(path, obj, where):
    classified = obj["constructive"] + obj["destructive"] + \
        obj["neutral"]
    if classified != obj["collisions"]:
        fail(path, f"{where}: constructive + destructive + neutral "
                   f"{classified} != collisions {obj['collisions']}")


def check_journal_file(path):
    try:
        with open(path, encoding="utf-8") as handle:
            lines = handle.read().splitlines()
    except OSError as error:
        fail(path, f"cannot read: {error}")

    events = []
    for number, line in enumerate(lines, start=1):
        if not line.strip():
            fail(path, f"line {number}: blank line in JSONL stream")
        try:
            event = json.loads(line)
        except json.JSONDecodeError as error:
            fail(path, f"line {number}: not valid JSON: {error}")
        if not isinstance(event, dict):
            fail(path, f"line {number}: event must be an object")
        check_fields(path, event, EVENT_REQUIRED, f"line {number}")
        if event["event"] not in EVENT_KINDS:
            fail(path, f"line {number}: unknown event kind "
                       f"'{event['event']}'")
        events.append(event)

    if not events:
        fail(path, "journal is empty")

    # Sequence numbers are assigned under the journal lock: strictly
    # increasing from zero, timestamps monotonic.
    for index, event in enumerate(events):
        where = f"line {index + 1}"
        if event["seq"] != index:
            fail(path, f"{where}: seq {event['seq']} != line "
                       f"position {index}")
        if index > 0 and event["t"] < events[index - 1]["t"]:
            fail(path, f"{where}: timestamp {event['t']} goes "
                       f"backwards")

    if events[0]["event"] != "run_begin":
        fail(path, "first event must be run_begin")
    # Dispatch resolution is recorded once, up front. Both fields are
    # optional (journals predating the batch kernels lack them) but
    # must arrive as a consistent pair when present.
    run_begin = events[0]
    if "dispatch" in run_begin:
        if run_begin["dispatch"] not in DISPATCH_LEVELS:
            fail(path, f"run_begin: unknown dispatch level "
                       f"'{run_begin['dispatch']}'")
        check_fields(path, run_begin, {"simd_width": int},
                     "run_begin")
        if run_begin["dispatch"] in ("off", "scalar") and \
                run_begin["simd_width"] != 1:
            fail(path, f"run_begin: dispatch "
                       f"'{run_begin['dispatch']}' with simd_width "
                       f"{run_begin['simd_width']} (expected 1)")
    elif "simd_width" in run_begin:
        fail(path, "run_begin: simd_width without dispatch")
    if events[-1]["event"] != "run_end":
        fail(path, "last event must be run_end")
    for marker in ("run_begin", "run_end"):
        count = sum(1 for e in events if e["event"] == marker)
        if count != 1:
            fail(path, f"expected exactly one {marker}, found {count}")

    # Phases balance per label and never close more than they opened.
    open_phases = {}
    for index, event in enumerate(events):
        if event["event"] == "phase_begin":
            open_phases[event["label"]] = \
                open_phases.get(event["label"], 0) + 1
        elif event["event"] == "phase_end":
            open_phases[event["label"]] = \
                open_phases.get(event["label"], 0) - 1
            if open_phases[event["label"]] < 0:
                fail(path, f"line {index + 1}: phase_end "
                           f"'{event['label']}' without a matching "
                           f"phase_begin")
    for label, net in open_phases.items():
        if net != 0:
            fail(path, f"phase '{label}' opened {net} more times than "
                       f"it closed")

    # Every cell_begin is closed by exactly one cell_end (success or
    # checkpoint restore) or cell_error (failure), and a cell_end
    # carries a consistent stat snapshot.
    # Fused passes journal one fused_group event per group chunk with
    # a consistent member roster.
    fused_groups = []
    for index, event in enumerate(events):
        if event["event"] != "fused_group":
            continue
        where = f"line {index + 1}"
        check_fields(path, event, FUSED_GROUP_REQUIRED, where)
        if event["phase"] not in FUSED_GROUP_PHASES:
            fail(path, f"{where}: unknown fused phase "
                       f"'{event['phase']}'")
        roster = event["cells"].split(",")
        if len(roster) != event["members"]:
            fail(path, f"{where}: members {event['members']} != "
                       f"{len(roster)} entries in cells list")
        if event["phase"] == "cells":
            check_fields(path, event, FUSED_CELLS_PHASE_REQUIRED,
                         where)
            for key in FUSED_CELLS_PHASE_REQUIRED:
                values = event[key].split(",")
                if len(values) != event["members"]:
                    fail(path, f"{where}: {key} has {len(values)} "
                               f"entries, expected {event['members']}")
                if not all(v.isdigit() for v in values):
                    fail(path, f"{where}: {key} entries must be "
                               f"unsigned integers")
        fused_groups.append(event)

    # Multi-context cells journal one scenario_cell event each; the
    # cross/self split must classify no more than it counted.
    for index, event in enumerate(events):
        if event["event"] != "scenario_cell":
            continue
        where = f"line {index + 1}"
        check_fields(path, event, SCENARIO_CELL_EVENT_REQUIRED, where)
        if event["contexts"] < 1:
            fail(path, f"{where}: contexts {event['contexts']} < 1")
        if event["destructive_cross"] > event["collisions_cross"]:
            fail(path, f"{where}: destructive_cross > "
                       f"collisions_cross")
        if event["destructive_self"] > event["collisions_self"]:
            fail(path, f"{where}: destructive_self > "
                       f"collisions_self")
        if event["contexts"] == 1 and event["collisions_cross"] != 0:
            fail(path, f"{where}: single-context scenario reports "
                       f"{event['collisions_cross']} cross-context "
                       f"collisions")

    begun = set()
    closed = set()
    cell_ends = []
    cell_errors = []
    for index, event in enumerate(events):
        where = f"line {index + 1}"
        if event["event"] == "cell_begin":
            check_cell_label(path, event["label"], where)
            begun.add((event["label"], event.get("cell")))
        elif event["event"] in ("cell_end", "cell_error"):
            key = (event["label"], event.get("cell"))
            if key not in begun:
                fail(path, f"{where}: {event['event']} without an "
                           f"earlier cell_begin for {key}")
            if key in closed:
                fail(path, f"{where}: cell {key} closed twice")
            closed.add(key)
            if event["event"] == "cell_end":
                check_fields(path, event, CELL_END_REQUIRED, where)
                check_collision_split(path, event, where)
                if "simd" in event:
                    if not isinstance(event["simd"], bool):
                        fail(path, f"{where}: 'simd' must be a bool")
                    if event["simd"] and event.get("kernel") is False:
                        fail(path, f"{where}: simd without kernel")
                    if event["simd"] and \
                            event.get("restored") is not True and \
                            run_begin.get("dispatch") == "off":
                        fail(path, f"{where}: simd cell executed "
                                   f"under an off dispatch")
                cell_ends.append(event)
            else:
                check_fields(path, event, CELL_ERROR_REQUIRED, where)
                if event["code"] not in ERROR_CODES:
                    fail(path, f"{where}: unknown error code "
                               f"'{event['code']}'")
                cell_errors.append(event)
    if len(begun) != len(closed):
        fail(path, f"{len(begun)} cells begun but {len(closed)} "
                   f"closed by cell_end/cell_error")
    restored = sum(1 for e in cell_ends
                   if e.get("restored") is True)

    # Aggregate cross-checks against run_end, for the fields the
    # emitter chose to include (the matrix runner includes them all;
    # the CLI's single-cell run_end only carries cells).
    run_end = events[-1]
    if "cells" in run_end and \
            run_end["cells"] != len(cell_ends) + len(cell_errors):
        fail(path, f"run_end cells {run_end['cells']} != "
                   f"{len(cell_ends)} cell_end + {len(cell_errors)} "
                   f"cell_error events")
    if "failed_cells" in run_end and \
            run_end["failed_cells"] != len(cell_errors):
        fail(path, f"run_end failed_cells "
                   f"{run_end['failed_cells']} != "
                   f"{len(cell_errors)} cell_error events")
    if "restored_cells" in run_end and \
            run_end["restored_cells"] != restored:
        fail(path, f"run_end restored_cells "
                   f"{run_end['restored_cells']} != {restored} "
                   f"restored cell_end events")
    if "fused_groups" in run_end and \
            run_end["fused_groups"] != len(fused_groups):
        fail(path, f"run_end fused_groups "
                   f"{run_end['fused_groups']} != "
                   f"{len(fused_groups)} fused_group events")
    if fused_groups and run_end.get("fused") is False:
        fail(path, "fused_group events present but run_end says "
                   "fused is false")
    if "kernel_cells" in run_end:
        kernel = sum(1 for e in cell_ends if e.get("kernel") is True)
        if kernel != run_end["kernel_cells"]:
            fail(path, f"run_end kernel_cells "
                       f"{run_end['kernel_cells']} != {kernel} "
                       f"kernel cell_end events")
    if "simd_cells" in run_end:
        simd = sum(1 for e in cell_ends if e.get("simd") is True)
        if simd != run_end["simd_cells"]:
            fail(path, f"run_end simd_cells "
                       f"{run_end['simd_cells']} != {simd} "
                       f"simd cell_end events")
    if "total_branches" in run_end:
        total = sum(e.get("simulated_branches", e["branches"])
                    for e in cell_ends)
        if total != run_end["total_branches"]:
            fail(path, f"run_end total_branches "
                       f"{run_end['total_branches']} != sum of "
                       f"cell_end simulated branches {total}")
    if "profile_cache_hits" in run_end and \
            "profile_cache_misses" in run_end:
        cached = sum(1 for e in cell_ends
                     if e.get("profile_cached") is True)
        accesses = run_end["profile_cache_hits"] + \
            run_end["profile_cache_misses"]
        if not cell_errors and cached != accesses:
            fail(path, f"profile_cache_hits + profile_cache_misses "
                       f"{accesses} != {cached} profile_cached "
                       f"cell_end events")
        if cached > accesses:
            fail(path, f"{cached} profile_cached cell_end events > "
                       f"profile_cache_hits + profile_cache_misses "
                       f"{accesses}")
        # Restored consumers skip their phase and failed phases emit
        # no event, so the executed phases only match the miss count
        # exactly on an uninterrupted, fully successful run.
        phases = sum(1 for e in events
                     if e["event"] == "profile_phase")
        if not cell_errors and restored == 0 and \
                phases != run_end["profile_cache_misses"]:
            fail(path, f"{phases} profile_phase events != "
                       f"profile_cache_misses "
                       f"{run_end['profile_cache_misses']}")
        if phases > run_end["profile_cache_misses"]:
            fail(path, f"{phases} profile_phase events > "
                       f"profile_cache_misses "
                       f"{run_end['profile_cache_misses']}")

    print(f"{path}: ok ({len(events)} events, {len(cell_ends)} cells, "
          f"{len(cell_errors)} failed, {restored} restored, "
          f"{len(fused_groups)} fused groups, "
          f"{len(set(e['thread'] for e in events))} threads)")


def check_metrics_file(path):
    try:
        with open(path, encoding="utf-8") as handle:
            data = json.load(handle)
    except OSError as error:
        fail(path, f"cannot read: {error}")
    except json.JSONDecodeError as error:
        fail(path, f"not valid JSON: {error}")

    if not isinstance(data, dict):
        fail(path, "top level must be an object")
    check_fields(path, data, METRICS_REQUIRED, "top level")

    if data["schema"] != METRICS_SCHEMA_ID:
        fail(path, f"schema '{data['schema']}' != "
                   f"'{METRICS_SCHEMA_ID}'")

    for kind in data["events_by_kind"]:
        if kind not in EVENT_KINDS:
            fail(path, f"events_by_kind: unknown event kind '{kind}'")
    by_kind = sum(data["events_by_kind"].values())
    if by_kind != data["total_events"]:
        fail(path, f"events_by_kind sums to {by_kind}, "
                   f"total_events is {data['total_events']}")
    by_thread = sum(data["events_by_thread"].values())
    if by_thread != data["total_events"]:
        fail(path, f"events_by_thread sums to {by_thread}, "
                   f"total_events is {data['total_events']}")

    closed = data["cells_ended"] + data["cells_failed"]
    if data["cells_begun"] != closed:
        fail(path, f"cells_begun {data['cells_begun']} != "
                   f"cells_ended {data['cells_ended']} + "
                   f"cells_failed {data['cells_failed']}")
    if data["cells_restored"] > data["cells_ended"]:
        fail(path, f"cells_restored {data['cells_restored']} > "
                   f"cells_ended {data['cells_ended']}")
    fused_events = data["events_by_kind"].get("fused_group", 0)
    if data["fused_groups"] != fused_events:
        fail(path, f"fused_groups {data['fused_groups']} != "
                   f"{fused_events} fused_group events")
    if data["fused_groups"] > 0 and \
            data["fused_members"] < data["fused_groups"]:
        fail(path, f"fused_members {data['fused_members']} < "
                   f"fused_groups {data['fused_groups']} (every "
                   f"group has at least one member)")
    if data["fused_groups"] == 0 and data["fused_members"] != 0:
        fail(path, f"fused_members {data['fused_members']} without "
                   f"any fused groups")
    # An empty dispatch means the journal's run_begin predates the
    # batch kernels; otherwise it must name a known level.
    if data["dispatch"] and data["dispatch"] not in DISPATCH_LEVELS:
        fail(path, f"unknown dispatch level '{data['dispatch']}'")
    if data["simd_cells"] > data["kernel_cells"]:
        fail(path, f"simd_cells {data['simd_cells']} > "
                   f"kernel_cells {data['kernel_cells']} (batching "
                   f"refines the kernel path)")
    if not data["phases_balanced"]:
        fail(path, "phases_balanced is false")
    if data["phase_begins"] != data["phase_ends"]:
        fail(path, f"phase_begins {data['phase_begins']} != "
                   f"phase_ends {data['phase_ends']}")
    check_collision_split(path, data, "top level")

    for name, stat in data["timers"].items():
        where = f"timers['{name}']"
        if not isinstance(stat, dict):
            fail(path, f"{where}: must be an object")
        check_fields(path, stat, {"count": int,
                                  "seconds": (int, float)}, where)

    print(f"{path}: ok ({data['total_events']} events, "
          f"{data['cells_ended']} cells, "
          f"{len(data['counters'])} counters, "
          f"{len(data['timers'])} timers)")


def check_checkpoint_file(path):
    try:
        with open(path, encoding="utf-8") as handle:
            lines = handle.read().splitlines()
    except OSError as error:
        fail(path, f"cannot read: {error}")

    # An empty checkpoint is legal: a sweep killed before any cell
    # finished leaves (at most) an empty file behind.
    fingerprints = set()
    header = None
    for number, line in enumerate(lines, start=1):
        where = f"line {number}"
        if not line.strip():
            fail(path, f"{where}: blank line in JSONL stream")
        try:
            record = json.loads(line)
        except json.JSONDecodeError as error:
            fail(path, f"{where}: not valid JSON: {error}")
        if not isinstance(record, dict):
            fail(path, f"{where}: record must be an object")
        if record.get("schema") == CHECKPOINT_HEADER_SCHEMA_ID:
            # The shard stamp of a sharded sweep: first line only.
            if number != 1:
                fail(path, f"{where}: shard header must be the "
                           f"first line")
            check_fields(path, record, CHECKPOINT_HEADER_REQUIRED,
                         where)
            if not 1 <= record["shard_index"] <= \
                    record["shard_count"]:
                fail(path, f"{where}: shard_index "
                           f"{record['shard_index']} outside "
                           f"1..shard_count "
                           f"{record['shard_count']}")
            if record["shard_cells"] > record["matrix_cells"]:
                fail(path, f"{where}: shard_cells "
                           f"{record['shard_cells']} > matrix_cells "
                           f"{record['matrix_cells']}")
            header = record
            continue
        check_fields(path, record, CHECKPOINT_REQUIRED, where)
        if record["schema"] != CHECKPOINT_SCHEMA_ID:
            fail(path, f"{where}: schema '{record['schema']}' != "
                       f"'{CHECKPOINT_SCHEMA_ID}'")
        if not record["fingerprint"].startswith("v1|"):
            fail(path, f"{where}: fingerprint does not start with "
                       f"'v1|'")
        if record["fingerprint"] in fingerprints:
            fail(path, f"{where}: duplicate fingerprint "
                       f"'{record['fingerprint']}'")
        fingerprints.add(record["fingerprint"])
        if record["mispredictions"] > record["branches"]:
            fail(path, f"{where}: mispredictions > branches")
        if record["branches"] > record["simulated_branches"]:
            fail(path, f"{where}: branches > simulated_branches")
        if record["collisions"] > record["lookups"]:
            fail(path, f"{where}: collisions > lookups")
        if record["simd"] and not record["kernel"]:
            fail(path, f"{where}: simd without kernel")
        classified = record["constructive"] + record["destructive"]
        if classified > record["collisions"]:
            fail(path, f"{where}: constructive + destructive "
                       f"{classified} > collisions "
                       f"{record['collisions']}")
        # Scenario cells persist per-context stats as 5-number rows
        # and the NxN interference matrix as 3-number triples; both
        # are absent on plain cells.
        if "contexts" in record:
            contexts = record["contexts"]
            if not isinstance(contexts, list) or not contexts:
                fail(path, f"{where}: 'contexts' must be a "
                           f"non-empty list")
            for index, row in enumerate(contexts):
                if not isinstance(row, list) or len(row) != 5 or \
                        not all(isinstance(v, int) and v >= 0
                                for v in row):
                    fail(path, f"{where}: contexts[{index}] must be "
                               f"5 non-negative integers")
            if "alias_matrix" in record:
                matrix = record["alias_matrix"]
                expected = len(contexts) * len(contexts)
                if not isinstance(matrix, list) or \
                        len(matrix) != expected:
                    fail(path, f"{where}: alias_matrix must hold "
                               f"{expected} triples")
                for index, triple in enumerate(matrix):
                    if not isinstance(triple, list) or \
                            len(triple) != 3 or \
                            not all(isinstance(v, int) and v >= 0
                                    for v in triple):
                        fail(path, f"{where}: alias_matrix[{index}] "
                                   f"must be 3 non-negative integers")
                    if triple[1] + triple[2] > triple[0]:
                        fail(path, f"{where}: alias_matrix[{index}] "
                                   f"classifies more than its "
                                   f"collisions")
        elif "alias_matrix" in record:
            fail(path, f"{where}: alias_matrix without contexts")

    if header is not None and \
            len(fingerprints) > header["shard_cells"]:
        fail(path, f"{len(fingerprints)} records exceed the header's "
                   f"shard_cells {header['shard_cells']}")

    stamp = ""
    if header is not None:
        stamp = (f", shard {header['shard_index']}/"
                 f"{header['shard_count']}")
    print(f"{path}: ok ({len(fingerprints)} checkpoint "
          f"records{stamp})")


MERGE_SCHEMA_ID = "bpsim-merge-v1"

MERGE_REQUIRED = {
    "schema": str,
    "output": str,
    "shard_count": int,
    "matrix_cells": int,
    "records": int,
    "shards": list,
}

MERGE_SHARD_REQUIRED = {
    "path": str,
    "shard_index": int,
    "shard_cells": int,
    "records": int,
}


def check_merge_file(path):
    try:
        with open(path, encoding="utf-8") as handle:
            data = json.load(handle)
    except OSError as error:
        fail(path, f"cannot read: {error}")
    except json.JSONDecodeError as error:
        fail(path, f"not valid JSON: {error}")

    if not isinstance(data, dict):
        fail(path, "top level must be an object")
    check_fields(path, data, MERGE_REQUIRED, "top level")
    if data["schema"] != MERGE_SCHEMA_ID:
        fail(path, f"schema '{data['schema']}' != "
                   f"'{MERGE_SCHEMA_ID}'")
    if len(data["shards"]) != data["shard_count"]:
        fail(path, f"{len(data['shards'])} shard entries != "
                   f"shard_count {data['shard_count']}")

    # A merge only succeeds on a complete, disjoint shard set, so the
    # summary must show every index exactly once and every shard
    # contributing exactly the records its stamp promised.
    seen = set()
    total_records = 0
    for index, shard in enumerate(data["shards"]):
        where = f"shards[{index}]"
        if not isinstance(shard, dict):
            fail(path, f"{where}: must be an object")
        check_fields(path, shard, MERGE_SHARD_REQUIRED, where)
        if not 1 <= shard["shard_index"] <= data["shard_count"]:
            fail(path, f"{where}: shard_index "
                       f"{shard['shard_index']} outside "
                       f"1..shard_count {data['shard_count']}")
        if shard["shard_index"] in seen:
            fail(path, f"{where}: duplicate shard_index "
                       f"{shard['shard_index']}")
        seen.add(shard["shard_index"])
        if shard["records"] != shard["shard_cells"]:
            fail(path, f"{where}: records {shard['records']} != "
                       f"shard_cells {shard['shard_cells']} "
                       f"(incomplete shard)")
        total_records += shard["records"]
    if total_records != data["records"]:
        fail(path, f"shard records sum to {total_records}, "
                   f"records is {data['records']}")
    if data["records"] > data["matrix_cells"]:
        fail(path, f"records {data['records']} > matrix_cells "
                   f"{data['matrix_cells']}")

    print(f"{path}: ok ({data['shard_count']} shards, "
          f"{data['records']} records, "
          f"{data['matrix_cells']} matrix cells)")


# --- service protocol (bpsim_serve / bpsim_cli client) ---------------

SERVICE_REQUEST_SCHEMA_ID = "bpsim-request-v1"
SERVICE_RESPONSE_SCHEMA_ID = "bpsim-response-v1"

SERVICE_OPS = {"run", "sweep", "status", "cancel", "shutdown",
               "subscribe"}

SERVICE_STATES = {"listening", "draining", "stopped"}

SERVICE_REJECT_REASONS = {"malformed", "draining", "quarantined",
                          "duplicate_id", "queue_full"}

SERVICE_OUTCOMES = ERROR_CODES | {"ok"}

SERVICE_REQUEST_REQUIRED = {
    "schema": str,
    "id": str,
    "op": str,
}

SERVICE_SWEEP_REQUIRED = {
    "program": str,
    "input": str,
    "seed": int,
    "predictor": str,
    "sizes": list,
    "scheme": str,
    "shift": str,
    "eval_branches": int,
    "warmup_branches": int,
    "profile_branches": int,
    "profile_input": str,
    "cutoff": (int, float),
    "filter_unstable": bool,
}

SERVICE_RESPONSE_REQUIRED = {
    "schema": str,
    "id": str,
    "ok": bool,
}

SERVICE_ERROR_REQUIRED = {
    "code": str,
    "message": str,
}

REQUEST_BEGIN_REQUIRED = {
    "fingerprint": str,
    "op": str,
    "cells": int,
    "deadline_ms": int,
}

REQUEST_CELL_REQUIRED = {
    "cell": int,
    "ok": bool,
    "restored": bool,
}

REQUEST_END_REQUIRED = {
    "outcome": str,
    "fingerprint": str,
    "executed": int,
    "restored": int,
    "failed": int,
}


def check_service_request(path, obj, where):
    check_fields(path, obj, SERVICE_REQUEST_REQUIRED, where)
    if obj["op"] not in SERVICE_OPS:
        fail(path, f"{where}: unknown op '{obj['op']}'")
    if not obj["id"]:
        fail(path, f"{where}: empty request id")
    if obj["op"] in ("run", "sweep"):
        sweep = obj.get("sweep")
        if not isinstance(sweep, dict):
            fail(path, f"{where}: {obj['op']} request without a "
                       f"sweep object")
        check_fields(path, sweep, SERVICE_SWEEP_REQUIRED,
                     f"{where}: sweep")
        if not sweep["sizes"]:
            fail(path, f"{where}: sweep has no sizes")
        for size in sweep["sizes"]:
            if isinstance(size, bool) or not isinstance(size, int) \
                    or size <= 0:
                fail(path, f"{where}: sweep size '{size}' is not a "
                           f"positive integer")
        if sweep["scheme"] not in KNOWN_SCHEMES:
            fail(path, f"{where}: unknown scheme "
                       f"'{sweep['scheme']}'")
        if sweep["predictor"] not in KNOWN_PREDICTORS:
            fail(path, f"{where}: unknown predictor "
                       f"'{sweep['predictor']}'")
    if obj["op"] == "cancel" and not obj.get("target"):
        fail(path, f"{where}: cancel request without a target")


def check_service_response(path, obj, where):
    check_fields(path, obj, SERVICE_RESPONSE_REQUIRED, where)
    if not obj["ok"]:
        error = obj.get("error")
        if not isinstance(error, dict):
            fail(path, f"{where}: failed response without an error "
                       f"object")
        check_fields(path, error, SERVICE_ERROR_REQUIRED,
                     f"{where}: error")
        if error["code"] not in ERROR_CODES:
            fail(path, f"{where}: unknown error code "
                       f"'{error['code']}'")
    if "retry_after_ms" in obj:
        check_fields(path, obj, {"retry_after_ms": int}, where)
    if "state" in obj and obj["state"] not in SERVICE_STATES:
        fail(path, f"{where}: unknown daemon state '{obj['state']}'")
    cells = obj.get("cells", [])
    if not isinstance(cells, list):
        fail(path, f"{where}: cells must be a list")
    for index, cell in enumerate(cells):
        cell_where = f"{where}: cells[{index}]"
        if not isinstance(cell, dict):
            fail(path, f"{cell_where}: must be an object")
        check_fields(path, cell, CHECKPOINT_REQUIRED, cell_where)
        if cell["schema"] != CHECKPOINT_SCHEMA_ID:
            fail(path, f"{cell_where}: schema '{cell['schema']}' != "
                       f"'{CHECKPOINT_SCHEMA_ID}'")
        check_cell_label(path, cell["label"], cell_where)
    if "executed" in obj and "restored" in obj:
        # Response cells are read back from the request checkpoint:
        # everything executed or restored is in it, failures are not.
        if len(cells) != obj["executed"] + obj["restored"]:
            fail(path, f"{where}: {len(cells)} cells != executed "
                       f"{obj['executed']} + restored "
                       f"{obj['restored']}")
    for index, cell_error in enumerate(obj.get("cell_errors", [])):
        err_where = f"{where}: cell_errors[{index}]"
        if not isinstance(cell_error, dict):
            fail(path, f"{err_where}: must be an object")
        check_fields(path, cell_error,
                     {"label": str, "code": str, "message": str},
                     err_where)
        if cell_error["code"] not in ERROR_CODES:
            fail(path, f"{err_where}: unknown error code "
                       f"'{cell_error['code']}'")


def check_service_event(path, obj, where):
    check_fields(path, obj, EVENT_REQUIRED, where)
    kind = obj["event"]
    if kind not in EVENT_KINDS:
        fail(path, f"{where}: unknown event kind '{kind}'")
    if kind == "service_state":
        if obj["label"] not in SERVICE_STATES:
            fail(path, f"{where}: unknown service state "
                       f"'{obj['label']}'")
    elif kind == "request_begin":
        check_fields(path, obj, REQUEST_BEGIN_REQUIRED, where)
        if obj["op"] not in SERVICE_OPS:
            fail(path, f"{where}: unknown op '{obj['op']}'")
    elif kind == "request_cell":
        check_fields(path, obj, REQUEST_CELL_REQUIRED, where)
        if "code" in obj and obj["code"] not in ERROR_CODES:
            fail(path, f"{where}: unknown error code '{obj['code']}'")
    elif kind == "request_end":
        check_fields(path, obj, REQUEST_END_REQUIRED, where)
        if obj["outcome"] not in SERVICE_OUTCOMES:
            fail(path, f"{where}: unknown outcome "
                       f"'{obj['outcome']}'")
    elif kind == "request_rejected":
        check_fields(path, obj, {"reason": str}, where)
        if obj["reason"] not in SERVICE_REJECT_REASONS:
            fail(path, f"{where}: unknown reject reason "
                       f"'{obj['reason']}'")


def check_service_file(path):
    """Validate a service-mode JSONL stream.

    Accepts any mix of protocol lines (a `bpsim_cli client --save`
    transcript) and service journal events (a bpsim_serve --journal
    file or a subscriber capture), dispatching per line on the
    "schema"/"event" keys.
    """
    try:
        with open(path, encoding="utf-8") as handle:
            lines = handle.read().splitlines()
    except OSError as error:
        fail(path, f"cannot read: {error}")

    requests = responses = events = 0
    begun = ended = 0
    for number, line in enumerate(lines, start=1):
        where = f"line {number}"
        if not line.strip():
            fail(path, f"{where}: blank line in JSONL stream")
        try:
            obj = json.loads(line)
        except json.JSONDecodeError as error:
            fail(path, f"{where}: not valid JSON: {error}")
        if not isinstance(obj, dict):
            fail(path, f"{where}: line must be an object")
        schema = obj.get("schema")
        if schema == SERVICE_REQUEST_SCHEMA_ID:
            check_service_request(path, obj, where)
            requests += 1
        elif schema == SERVICE_RESPONSE_SCHEMA_ID:
            check_service_response(path, obj, where)
            responses += 1
        elif "event" in obj:
            check_service_event(path, obj, where)
            events += 1
            if obj["event"] == "request_begin":
                begun += 1
            elif obj["event"] == "request_end":
                ended += 1
        else:
            fail(path, f"{where}: neither a protocol line nor a "
                       f"journal event")

    if requests + responses + events == 0:
        fail(path, "service stream is empty")
    if ended > begun:
        fail(path, f"{ended} request_end events > {begun} "
                   f"request_begin events")

    print(f"{path}: ok ({requests} requests, {responses} responses, "
          f"{events} journal events)")


CHECKERS = {
    "runner": check_runner_file,
    "journal": check_journal_file,
    "metrics": check_metrics_file,
    "checkpoint": check_checkpoint_file,
    "merge": check_merge_file,
    "service": check_service_file,
}


def main(argv):
    schema = "runner"
    warm_cache = False
    paths = []
    i = 1
    while i < len(argv):
        arg = argv[i]
        if arg == "--schema":
            if i + 1 >= len(argv):
                print("--schema needs a value", file=sys.stderr)
                return 2
            schema = argv[i + 1]
            i += 2
            continue
        if arg.startswith("--schema="):
            schema = arg.split("=", 1)[1]
            i += 1
            continue
        if arg == "--warm-cache":
            warm_cache = True
            i += 1
            continue
        paths.append(arg)
        i += 1
    if schema not in CHECKERS:
        print(f"unknown schema '{schema}' (expected "
              f"{'/'.join(sorted(CHECKERS))})", file=sys.stderr)
        return 2
    if warm_cache and schema != "runner":
        print("--warm-cache only applies to the runner schema",
              file=sys.stderr)
        return 2
    if not paths:
        print(__doc__, file=sys.stderr)
        return 2
    for path in paths:
        if schema == "runner":
            check_runner_file(path, warm_cache=warm_cache)
        else:
            CHECKERS[schema](path)
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
