/**
 * @file
 * The bpsim service daemon: a long-lived experiment server over a
 * Unix domain socket (see src/service/server.hh for the robustness
 * model). Clients speak newline-delimited JSON — the repo's own
 * `bpsim_cli client`, the service tests, or anything that can write
 * a JSONL line to a socket.
 *
 *   bpsim_serve --socket /tmp/bpsim.sock --state-dir /tmp/bpsim-state
 *
 * SIGTERM/SIGINT begin a graceful drain: admission stops, the
 * request in flight finishes and is checkpointed, queued requests
 * are answered with resource_exhausted, the journal is flushed, and
 * the process exits 0.
 */

#include <csignal>
#include <cstdio>
#include <cstdlib>

#include <unistd.h>

#include "service/server.hh"
#include "support/args.hh"

using namespace bpsim;

namespace
{

/** Drain-pipe write end for the signal handler (write(2) is the
 * only async-signal-safe thing the server exposes). */
volatile int drain_fd = -1;

extern "C" void
onTermSignal(int)
{
    const char byte = 'd';
    if (drain_fd >= 0)
        (void)!::write(drain_fd, &byte, 1);
}

} // namespace

int
main(int argc, char **argv)
{
    ArgParser args("bpsim_serve");
    args.addOption("socket", "bpsim.sock",
                   "unix socket path to listen on");
    args.addOption("state-dir", "bpsim-state",
                   "directory for request checkpoints and the "
                   "quarantine list (created if absent)");
    args.addOption("threads", "0",
                   "runner worker threads per request (0 = "
                   "hardware/BPSIM_THREADS)");
    args.addOption("queue-limit", "8",
                   "admitted requests allowed to wait before "
                   "load-shedding");
    args.addOption("quarantine-threshold", "3",
                   "consecutive failing requests that quarantine a "
                   "config fingerprint");
    args.addOption("retry-after-ms", "250",
                   "client back-off hint attached to shed requests");
    args.addOption("journal", "",
                   "write the service journal (JSONL + metrics) "
                   "here on drain (empty = disabled)");
    args.addFlag("allow-fault-inject",
                 "honor per-request fault-injection specs (test/CI "
                 "servers only)");
    args.parse(argc, argv);

    service::ServiceOptions options;
    options.socketPath = args.get("socket");
    options.stateDir = args.get("state-dir");
    options.threads = static_cast<unsigned>(args.getUint("threads"));
    options.queueLimit =
        static_cast<std::size_t>(args.getUint("queue-limit"));
    options.quarantineThreshold =
        static_cast<unsigned>(args.getUint("quarantine-threshold"));
    options.retryAfterMs = args.getUint("retry-after-ms");
    options.journalPath = args.get("journal");
    options.allowFaultInjection = args.getFlag("allow-fault-inject");

    service::ServiceServer server(options);
    const Result<void> started = server.start();
    if (!started.ok()) {
        std::fprintf(stderr, "bpsim_serve: %s\n",
                     started.error().describe().c_str());
        return 1;
    }

    drain_fd = server.drainFd();
    struct sigaction action{};
    action.sa_handler = onTermSignal;
    sigemptyset(&action.sa_mask);
    sigaction(SIGTERM, &action, nullptr);
    sigaction(SIGINT, &action, nullptr);

    std::printf("bpsim_serve: listening on %s (state: %s)\n",
                options.socketPath.c_str(),
                options.stateDir.c_str());
    std::fflush(stdout);

    server.waitUntilStopped();
    const service::ServiceStats stats = server.stats();
    std::printf("bpsim_serve: drained (completed=%llu failed=%llu "
                "rejected=%llu)\n",
                static_cast<unsigned long long>(stats.completed),
                static_cast<unsigned long long>(stats.failed),
                static_cast<unsigned long long>(stats.rejected));
    return 0;
}
