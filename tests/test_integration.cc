/**
 * @file
 * Cross-module integration tests: live workload vs recorded trace
 * equivalence, the full profile->select->evaluate pipeline through
 * on-disk artifacts, and end-to-end shape checks that tie the
 * workload, predictors and static selection together.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "core/engine.hh"
#include "core/experiment.hh"
#include "trace/trace_io.hh"
#include "workload/specint.hh"

namespace bpsim
{
namespace
{

std::string
tempPath(const std::string &tag)
{
    return testing::TempDir() + "bpsim_integ_" + tag + "_" +
           std::to_string(::getpid());
}

TEST(Integration, LiveAndRecordedStreamsAgree)
{
    // Simulating a live program and simulating a trace recorded from
    // the same program must produce identical statistics.
    SyntheticProgram program =
        makeSpecProgram(SpecProgram::Compress, InputSet::Ref);
    const Count n = 200000;

    const std::string path = tempPath("live_vs_trace") + ".trace";
    {
        program.reset();
        BoundedStream bounded(program, n);
        TraceWriter writer(path);
        EXPECT_EQ(writer.writeAll(bounded), n);
    }

    auto a = makePredictor(PredictorKind::TwoBcGskew, 8192);
    SimOptions options;
    options.maxBranches = n;
    const SimStats live = simulate(*a, program, options);

    TraceReader reader(path);
    auto b = makePredictor(PredictorKind::TwoBcGskew, 8192);
    const SimStats recorded = simulate(*b, reader, options);

    EXPECT_EQ(live.branches, recorded.branches);
    EXPECT_EQ(live.instructions, recorded.instructions);
    EXPECT_EQ(live.mispredictions, recorded.mispredictions);
    EXPECT_EQ(live.collisions.collisions,
              recorded.collisions.collisions);
    std::remove(path.c_str());
}

TEST(Integration, PipelineThroughDiskArtifacts)
{
    // Phase 1 writes a profile database; an offline pass turns it
    // into a hint database; phase 2 reads the hints back — the
    // deployment flow of a Spike-style optimizer.
    SyntheticProgram program =
        makeSpecProgram(SpecProgram::M88ksim, InputSet::Ref);
    const std::string profile_path = tempPath("profile") + ".profile";
    const std::string hints_path = tempPath("hints") + ".hints";

    {
        auto predictor = makePredictor(PredictorKind::Gshare, 4096);
        ProfileDb profile;
        SimOptions options;
        options.maxBranches = 300000;
        options.profile = &profile;
        simulate(*predictor, program, options);
        profile.save(profile_path);
    }
    {
        ProfileDb profile = ProfileDb::load(profile_path);
        HintDb hints = selectStatic95(profile);
        EXPECT_GT(hints.size(), 20u);
        hints.save(hints_path);
    }

    HintDb hints = HintDb::load(hints_path);
    CombinedPredictor combined(
        makePredictor(PredictorKind::Gshare, 4096), hints);
    SimOptions options;
    options.maxBranches = 300000;
    const SimStats stats = simulate(combined, program, options);
    EXPECT_GT(stats.staticPredicted, stats.branches / 2);

    std::remove(profile_path.c_str());
    std::remove(hints_path.c_str());
}

TEST(Integration, StaticPredictionRemovesHintedBranchesFromTables)
{
    // The central mechanism: statically predicted branches stop
    // indexing the dynamic tables, so table lookups drop sharply and
    // (for an alias-dominated program like gcc) total collisions drop
    // too. The paper notes collisions can occasionally *rise* in
    // other configurations (its ijpeg observation), so the collision
    // assertion is tied to the robust configuration.
    SyntheticProgram program =
        makeSpecProgram(SpecProgram::Gcc, InputSet::Ref);
    ExperimentConfig config;
    config.kind = PredictorKind::Gshare;
    config.sizeBytes = 2048;
    config.profileBranches = 300000;
    config.evalBranches = 400000;

    config.scheme = StaticScheme::None;
    const ExperimentResult base = runExperiment(program, config);
    config.scheme = StaticScheme::StaticAcc;
    const ExperimentResult with = runExperiment(program, config);

    EXPECT_LT(with.stats.collisions.lookups,
              base.stats.collisions.lookups);
    EXPECT_LT(with.stats.collisions.collisions,
              base.stats.collisions.collisions);
}

TEST(Integration, BimodalGainsNothingFromStatic95)
{
    // Figures 7-12 headline: bimodal + Static_95 is a wash because
    // bimodal already captures biased branches.
    SyntheticProgram program =
        makeSpecProgram(SpecProgram::Perl, InputSet::Ref);
    ExperimentConfig config;
    config.kind = PredictorKind::Bimodal;
    config.sizeBytes = 8192;
    config.profileBranches = 300000;
    config.evalBranches = 400000;

    config.scheme = StaticScheme::None;
    const double base = runExperiment(program, config).stats.mispKi();
    config.scheme = StaticScheme::Static95;
    const double with = runExperiment(program, config).stats.mispKi();

    EXPECT_NEAR(with, base, base * 0.05);
}

TEST(Integration, GhistGainsClearlyFromStatic95)
{
    SyntheticProgram program =
        makeSpecProgram(SpecProgram::M88ksim, InputSet::Ref);
    ExperimentConfig config;
    config.kind = PredictorKind::Ghist;
    config.sizeBytes = 4096;
    config.profileBranches = 300000;
    config.evalBranches = 400000;

    config.scheme = StaticScheme::None;
    const double base = runExperiment(program, config).stats.mispKi();
    config.scheme = StaticScheme::Static95;
    const double with = runExperiment(program, config).stats.mispKi();

    EXPECT_LT(with, base * 0.95);
}

TEST(Integration, InputSwitchMidProgramIsClean)
{
    // Alternate inputs repeatedly on one program object; stats stay
    // reproducible per input (no state leaks across setInput).
    SyntheticProgram program =
        makeSpecProgram(SpecProgram::Go, InputSet::Train);
    auto run = [&](InputSet input) {
        program.setInput(input);
        auto predictor = makePredictor(PredictorKind::Gshare, 2048);
        SimOptions options;
        options.maxBranches = 100000;
        return simulate(*predictor, program, options).mispredictions;
    };
    const Count train_a = run(InputSet::Train);
    const Count ref_a = run(InputSet::Ref);
    const Count train_b = run(InputSet::Train);
    const Count ref_b = run(InputSet::Ref);
    EXPECT_EQ(train_a, train_b);
    EXPECT_EQ(ref_a, ref_b);
    EXPECT_NE(train_a, ref_a);
}

} // namespace
} // namespace bpsim
