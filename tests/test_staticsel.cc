/**
 * @file
 * Unit tests for the static selection module: the three selection
 * schemes, their tunables, and the hint database.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "staticsel/selection.hh"
#include "staticsel/static_hint.hh"

namespace bpsim
{
namespace
{

/** Add a branch with explicit outcome and prediction statistics. */
void
addBranch(ProfileDb &db, Addr pc, Count executed, double taken_rate,
          double accuracy)
{
    const Count taken =
        static_cast<Count>(taken_rate * static_cast<double>(executed));
    const Count correct =
        static_cast<Count>(accuracy * static_cast<double>(executed));
    for (Count i = 0; i < executed; ++i) {
        db.recordOutcome(pc, i < taken);
        db.recordPrediction(pc, i < correct);
    }
}

TEST(HintDbTest, InsertLookupContains)
{
    HintDb db;
    EXPECT_FALSE(db.contains(0x100));
    db.insert(0x100, true);
    db.insert(0x200, false);
    EXPECT_TRUE(db.contains(0x100));
    EXPECT_EQ(db.size(), 2u);

    bool taken = false;
    ASSERT_TRUE(db.lookup(0x100, taken));
    EXPECT_TRUE(taken);
    ASSERT_TRUE(db.lookup(0x200, taken));
    EXPECT_FALSE(taken);
    EXPECT_FALSE(db.lookup(0x300, taken));
}

TEST(HintDbTest, SaveLoadRoundTrip)
{
    HintDb db;
    for (int i = 0; i < 100; ++i)
        db.insert(0x1000 + 4 * i, i % 3 == 0);
    const std::string path = testing::TempDir() + "bpsim_hints_" +
                             std::to_string(::getpid()) + ".db";
    db.save(path);
    HintDb loaded = HintDb::load(path);
    ASSERT_EQ(loaded.size(), db.size());
    for (const auto &[pc, taken] : db.entries()) {
        bool loaded_taken = !taken;
        ASSERT_TRUE(loaded.lookup(pc, loaded_taken));
        EXPECT_EQ(loaded_taken, taken);
    }
    std::remove(path.c_str());
}

TEST(SchemeNamesTest, RoundTrip)
{
    for (const auto scheme :
         {StaticScheme::None, StaticScheme::Static95,
          StaticScheme::StaticAcc, StaticScheme::StaticFac}) {
        EXPECT_EQ(staticSchemeFromName(staticSchemeName(scheme)),
                  scheme);
    }
    EXPECT_EXIT(staticSchemeFromName("bogus"),
                ::testing::ExitedWithCode(1), "unknown static scheme");
}

TEST(Static95Test, SelectsOnlyAboveCutoff)
{
    ProfileDb db;
    addBranch(db, 0xa0, 1000, 0.99, 0.5);  // selected, taken hint
    addBranch(db, 0xb0, 1000, 0.01, 0.5);  // selected, not-taken hint
    addBranch(db, 0xc0, 1000, 0.90, 0.5);  // below cutoff
    addBranch(db, 0xd0, 1000, 0.955, 0.5); // just above

    HintDb hints = selectStatic95(db);
    EXPECT_EQ(hints.size(), 3u);
    bool taken = false;
    ASSERT_TRUE(hints.lookup(0xa0, taken));
    EXPECT_TRUE(taken);
    ASSERT_TRUE(hints.lookup(0xb0, taken));
    EXPECT_FALSE(taken);
    EXPECT_FALSE(hints.contains(0xc0));
    EXPECT_TRUE(hints.contains(0xd0));
}

TEST(Static95Test, CutoffIsTunable)
{
    ProfileDb db;
    addBranch(db, 0xa0, 1000, 0.90, 0.5);
    SelectionParams params;
    params.cutoffBias = 0.85;
    EXPECT_EQ(selectStatic95(db, params).size(), 1u);
    params.cutoffBias = 0.95;
    EXPECT_EQ(selectStatic95(db, params).size(), 0u);
}

TEST(Static95Test, MinExecutionsFiltersNoise)
{
    ProfileDb db;
    addBranch(db, 0xa0, 4, 1.0, 1.0); // too few executions
    SelectionParams params;
    params.minExecutions = 16;
    EXPECT_EQ(selectStatic95(db, params).size(), 0u);
    params.minExecutions = 2;
    EXPECT_EQ(selectStatic95(db, params).size(), 1u);
}

TEST(StaticAccTest, SelectsBiasAboveAccuracy)
{
    ProfileDb db;
    addBranch(db, 0xa0, 1000, 0.90, 0.70); // bias 0.9 > acc 0.7: yes
    addBranch(db, 0xb0, 1000, 0.90, 0.95); // bias 0.9 < acc: no
    addBranch(db, 0xc0, 1000, 0.10, 0.80); // bias 0.9 > acc 0.8: yes
    HintDb hints = selectStaticAcc(db);
    EXPECT_EQ(hints.size(), 2u);
    EXPECT_TRUE(hints.contains(0xa0));
    EXPECT_FALSE(hints.contains(0xb0));
    bool taken = true;
    ASSERT_TRUE(hints.lookup(0xc0, taken));
    EXPECT_FALSE(taken); // majority direction, not accuracy
}

TEST(StaticAccTest, RequiresPredictionCounts)
{
    ProfileDb db;
    for (int i = 0; i < 100; ++i)
        db.recordOutcome(0xa0, true); // bias 1.0 but never predicted
    EXPECT_EQ(selectStaticAcc(db).size(), 0u);
}

TEST(StaticFacTest, FactorGatesSelection)
{
    ProfileDb db;
    // Static misp = 0.05 * 1000 = 50; dynamic misp = 200.
    addBranch(db, 0xa0, 1000, 0.95, 0.80);
    SelectionParams params;
    params.factor = 2.0; // 50 * 2 = 100 <= 200: selected
    EXPECT_EQ(selectStaticFac(db, params).size(), 1u);
    params.factor = 5.0; // 250 > 200: rejected
    EXPECT_EQ(selectStaticFac(db, params).size(), 0u);
}

TEST(DispatchTest, SelectStaticByScheme)
{
    ProfileDb db;
    addBranch(db, 0xa0, 1000, 0.99, 0.70);
    EXPECT_EQ(selectStatic(StaticScheme::None, db).size(), 0u);
    EXPECT_EQ(selectStatic(StaticScheme::Static95, db).size(), 1u);
    EXPECT_EQ(selectStatic(StaticScheme::StaticAcc, db).size(), 1u);
    EXPECT_EQ(selectStatic(StaticScheme::StaticFac, db).size(), 1u);
}

} // namespace
} // namespace bpsim
