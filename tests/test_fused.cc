/**
 * @file
 * Differential bit-identity suite for fused sweep execution: a fused
 * run must produce exactly the per-cell path's MatrixResult in every
 * deterministic field — at any thread count, with the journal on or
 * off, when resuming from a mid-sweep checkpoint, and when a fault
 * kills one member of a fused group.
 *
 * Like test_fault.cc, tests that arm the process-wide FaultInjector
 * use a fixture whose TearDown disarms it.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "core/runner.hh"
#include "obs/run_journal.hh"
#include "support/fault.hh"
#include "workload/specint.hh"

namespace bpsim
{
namespace
{

constexpr Count testProfileBranches = 60'000;
constexpr Count testEvalBranches = 120'000;

ExperimentConfig
testConfig(PredictorKind kind, StaticScheme scheme)
{
    ExperimentConfig config;
    config.kind = kind;
    config.sizeBytes = 2048;
    config.scheme = scheme;
    config.profileBranches = testProfileBranches;
    config.evalBranches = testEvalBranches;
    return config;
}

/**
 * 2 programs x 2 kinds x 3 schemes = 12 cells in 2 fused cell groups
 * (one per program), plus 4 profile runs in 2 fused profile groups.
 * Same-kind scheme cells land in one gang; the two kinds make each
 * group heterogeneous across gangs.
 */
void
addTestCells(ExperimentRunner &runner)
{
    for (const auto id : {SpecProgram::Go, SpecProgram::Compress}) {
        const std::size_t program =
            runner.addProgram(makeSpecProgram(id, InputSet::Ref));
        for (const auto kind :
             {PredictorKind::Gshare, PredictorKind::Bimodal}) {
            for (const auto scheme :
                 {StaticScheme::None, StaticScheme::Static95,
                  StaticScheme::StaticAcc}) {
                runner.addCell(program, testConfig(kind, scheme));
            }
        }
    }
}

MatrixResult
runMatrix(RunnerOptions options)
{
    ExperimentRunner runner(options);
    addTestCells(runner);
    return runner.run();
}

RunnerOptions
matrixOptions(unsigned threads, bool fused)
{
    RunnerOptions options;
    options.threads = threads;
    options.fused = fused;
    return options;
}

/** Per-cell (non-fused) single-thread reference run. */
const MatrixResult &
perCellReference()
{
    static const MatrixResult reference =
        runMatrix(matrixOptions(1, false));
    return reference;
}

void
expectSameStats(const SimStats &a, const SimStats &b)
{
    EXPECT_EQ(a.branches, b.branches);
    EXPECT_EQ(a.instructions, b.instructions);
    EXPECT_EQ(a.mispredictions, b.mispredictions);
    EXPECT_EQ(a.staticPredicted, b.staticPredicted);
    EXPECT_EQ(a.staticMispredictions, b.staticMispredictions);
    EXPECT_EQ(a.collisions.lookups, b.collisions.lookups);
    EXPECT_EQ(a.collisions.collisions, b.collisions.collisions);
    EXPECT_EQ(a.collisions.constructive, b.collisions.constructive);
    EXPECT_EQ(a.collisions.destructive, b.collisions.destructive);
}

void
expectSameDeterministicFields(const CellResult &a, const CellResult &b)
{
    expectSameStats(a.result.stats, b.result.stats);
    EXPECT_EQ(a.result.hintCount, b.result.hintCount);
    EXPECT_EQ(a.result.simulatedBranches, b.result.simulatedBranches);
    EXPECT_EQ(a.usedKernel, b.usedKernel);
    EXPECT_EQ(a.profileCached, b.profileCached);
}

void
expectSameMatrix(const MatrixResult &fused, const MatrixResult &ref)
{
    ASSERT_EQ(fused.cells.size(), ref.cells.size());
    for (std::size_t i = 0; i < fused.cells.size(); ++i) {
        ASSERT_TRUE(fused.cells[i].ok()) << "cell " << i;
        expectSameDeterministicFields(fused.cells[i], ref.cells[i]);
    }
    EXPECT_EQ(fused.failedCells, ref.failedCells);
    EXPECT_EQ(fused.profileCacheHits, ref.profileCacheHits);
    EXPECT_EQ(fused.profileCacheMisses, ref.profileCacheMisses);
    EXPECT_EQ(fused.kernelCells, ref.kernelCells);
    EXPECT_EQ(fused.totalBranches, ref.totalBranches);
    EXPECT_EQ(fused.actualBranches, ref.actualBranches);
}

std::string
tempPath(const std::string &name)
{
    return ::testing::TempDir() + name;
}

std::string
readFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    std::ostringstream content;
    content << in.rdbuf();
    return content.str();
}

void
writeFile(const std::string &path, const std::string &content)
{
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out << content;
}

TEST(FusedTest, BitIdenticalToPerCellAtAnyThreadCount)
{
    const MatrixResult &reference = perCellReference();
    EXPECT_FALSE(reference.fused);
    EXPECT_EQ(reference.fusedGroups, 0u);

    for (const unsigned threads : {1u, 2u, 4u}) {
        const MatrixResult fused =
            runMatrix(matrixOptions(threads, true));
        EXPECT_TRUE(fused.fused) << threads << " threads";
        // 2 profile groups + 2 cell groups; spare workers may split
        // a group into more chunks, never fewer.
        EXPECT_GE(fused.fusedGroups, 4u) << threads << " threads";
        expectSameMatrix(fused, reference);
    }
    // Serially there is nothing to split: exactly one fused pass per
    // (program, input) pair and phase.
    EXPECT_EQ(runMatrix(matrixOptions(1, true)).fusedGroups, 4u);
}

TEST(FusedTest, JournalDoesNotPerturbResultsAndRecordsGroups)
{
    const MatrixResult &reference = perCellReference();

    obs::RunJournal journal("fused journal");
    RunnerOptions options = matrixOptions(2, true);
    options.journal = &journal;
    const MatrixResult fused = runMatrix(options);
    expectSameMatrix(fused, reference);

    const obs::JournalSummary summary = journal.summary();
    EXPECT_EQ(summary.fusedGroups, fused.fusedGroups);
    // 4 profile members (2 kinds x 2 programs) + 12 cell members.
    EXPECT_EQ(summary.fusedMembers, 16u);
    EXPECT_EQ(summary.cellsBegun, fused.cells.size());
    EXPECT_EQ(summary.cellsEnded, fused.cells.size());
    EXPECT_TRUE(summary.phasesBalanced);
}

TEST(FusedTest, ProfileCacheOffStillBitIdentical)
{
    RunnerOptions uncached_ref = matrixOptions(1, false);
    uncached_ref.profileCache = false;
    const MatrixResult reference = runMatrix(uncached_ref);

    RunnerOptions uncached_fused = matrixOptions(2, true);
    uncached_fused.profileCache = false;
    const MatrixResult fused = runMatrix(uncached_fused);

    EXPECT_EQ(fused.profileCacheHits, 0u);
    expectSameMatrix(fused, reference);
}

/**
 * Same bit-identity contract for the registry's tagged family: tage
 * and perceptron gang-replay via visitPredictor but have no batch
 * kernels, so the fused path must agree with per-cell execution
 * through the record-at-a-time kernels. A separate cell set keeps the
 * group-count and fault-index assertions above untouched.
 */
ExperimentConfig
taggedConfig(const std::string &predictor, StaticScheme scheme)
{
    ExperimentConfig config;
    config.predictor = predictor;
    config.sizeBytes = 2048;
    config.scheme = scheme;
    config.profileBranches = testProfileBranches;
    config.evalBranches = testEvalBranches;
    return config;
}

MatrixResult
runTaggedMatrix(const RunnerOptions &options)
{
    ExperimentRunner runner(options);
    for (const auto id : {SpecProgram::Go, SpecProgram::Compress}) {
        const std::size_t program =
            runner.addProgram(makeSpecProgram(id, InputSet::Ref));
        for (const char *predictor : {"tage", "perceptron"}) {
            for (const auto scheme :
                 {StaticScheme::None, StaticScheme::Static95,
                  StaticScheme::StaticAcc}) {
                runner.addCell(program,
                               taggedConfig(predictor, scheme));
            }
        }
    }
    return runner.run();
}

TEST(FusedTest, TaggedFamilyBitIdenticalToPerCellAtAnyThreadCount)
{
    const MatrixResult reference =
        runTaggedMatrix(matrixOptions(1, false));
    // Registry predictors marked kernel-capable devirtualize via
    // visitPredictor even though they have no batch kernels.
    EXPECT_EQ(reference.kernelCells, reference.cells.size());

    for (const unsigned threads : {1u, 2u, 4u}) {
        const MatrixResult fused =
            runTaggedMatrix(matrixOptions(threads, true));
        EXPECT_TRUE(fused.fused) << threads << " threads";
        expectSameMatrix(fused, reference);
    }
}

class FusedFaultTest : public ::testing::Test
{
  protected:
    void TearDown() override { FaultInjector::instance().disarm(); }
};

/** Cell index 1 of the matrix above: one member of go's fused cell
 * group, gang-mate of indices 0 and 2. */
constexpr const char *targetLabel = "go/gshare:2048/static_95";
constexpr std::size_t targetIndex = 1;

TEST_F(FusedFaultTest, FaultKillsOneMemberSurvivorsUnaffected)
{
    const MatrixResult &reference = perCellReference();
    FaultInjector::instance().arm(fault_points::cell, 1,
                                  ErrorCode::CellFailed, 1,
                                  targetLabel);
    const MatrixResult result = runMatrix(matrixOptions(2, true));

    EXPECT_EQ(result.failedCells, 1u);
    const CellResult &failed = result.cells[targetIndex];
    ASSERT_FALSE(failed.ok());
    EXPECT_EQ(failed.error->code(), ErrorCode::CellFailed);
    EXPECT_EQ(failed.attempts, 1u);

    // The dead member's gang-mates and every other cell still match
    // the per-cell reference bit for bit.
    for (std::size_t i = 0; i < result.cells.size(); ++i) {
        if (i == targetIndex)
            continue;
        ASSERT_TRUE(result.cells[i].ok()) << "cell " << i;
        expectSameDeterministicFields(result.cells[i],
                                      reference.cells[i]);
    }
}

TEST_F(FusedFaultTest, TransientMemberFaultRetriesWithinTheGroup)
{
    const MatrixResult &reference = perCellReference();
    FaultInjector::instance().arm(fault_points::cell, 1,
                                  ErrorCode::ResourceExhausted, 1,
                                  targetLabel);
    RunnerOptions options = matrixOptions(2, true);
    options.retries = 1;
    const MatrixResult result = runMatrix(options);

    EXPECT_EQ(result.failedCells, 0u);
    ASSERT_TRUE(result.cells[targetIndex].ok());
    EXPECT_EQ(result.cells[targetIndex].attempts, 2u);
    expectSameMatrix(result, reference);
}

TEST_F(FusedFaultTest, ResumeFromMidSweepCheckpointIsBitIdentical)
{
    const MatrixResult &reference = perCellReference();
    const std::string path = tempPath("fused_resume.jsonl");
    std::remove(path.c_str());

    // Interrupted first attempt: the fault kills one cell, so the
    // checkpoint holds every cell except the target — a mid-sweep
    // snapshot.
    FaultInjector::instance().arm(fault_points::cell, 1,
                                  ErrorCode::CellFailed, 1,
                                  targetLabel);
    RunnerOptions first = matrixOptions(2, true);
    first.checkpointPath = path;
    const MatrixResult interrupted = runMatrix(first);
    EXPECT_EQ(interrupted.failedCells, 1u);
    FaultInjector::instance().disarm();
    const std::string snapshot = readFile(path);

    for (const unsigned threads : {1u, 2u, 4u}) {
        // A successful resume appends the re-run cell to the
        // checkpoint; restore the mid-sweep snapshot so every thread
        // count resumes from the same partial state.
        writeFile(path, snapshot);

        obs::RunJournal journal("fused resume");
        RunnerOptions resume = matrixOptions(threads, true);
        resume.checkpointPath = path;
        resume.resume = true;
        resume.journal = &journal;
        const MatrixResult resumed = runMatrix(resume);

        EXPECT_EQ(resumed.failedCells, 0u) << threads << " threads";
        EXPECT_EQ(resumed.restoredCells, resumed.cells.size() - 1)
            << threads << " threads";
        EXPECT_FALSE(resumed.cells[targetIndex].restored);
        expectSameMatrix(resumed, reference);

        EXPECT_EQ(journal.summary().cellsRestored,
                  resumed.cells.size() - 1);
    }
}

TEST_F(FusedFaultTest, FusedAndPerCellResumeSeeTheSameCheckpoint)
{
    // Cross-path checkpoint compatibility: a checkpoint recorded by a
    // fused sweep restores under --no-fused, and vice versa.
    const MatrixResult &reference = perCellReference();
    const std::string path = tempPath("fused_cross_resume.jsonl");
    std::remove(path.c_str());

    RunnerOptions record = matrixOptions(2, true);
    record.checkpointPath = path;
    const MatrixResult original = runMatrix(record);
    EXPECT_EQ(original.failedCells, 0u);

    for (const bool fused : {false, true}) {
        RunnerOptions resume = matrixOptions(2, fused);
        resume.checkpointPath = path;
        resume.resume = true;
        const MatrixResult resumed = runMatrix(resume);
        EXPECT_EQ(resumed.restoredCells, resumed.cells.size())
            << "fused " << fused;
        expectSameMatrix(resumed, reference);
    }
}

} // namespace
} // namespace bpsim
